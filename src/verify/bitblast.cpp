#include "verify/bitblast.h"

#include <stdexcept>

namespace ndb::verify {

BitBlaster::BitBlaster(SatSolver& solver) : solver_(solver) {}

Lit BitBlaster::true_lit() {
    if (const_true_ < 0) {
        const int v = solver_.new_var();
        const_true_ = mk_lit(v);
        solver_.add_unit(const_true_);
    }
    return const_true_;
}

Lit BitBlaster::fresh() { return mk_lit(solver_.new_var()); }

Lit BitBlaster::lit_and(Lit a, Lit b) {
    if (a == false_lit() || b == false_lit()) return false_lit();
    if (a == true_lit()) return b;
    if (b == true_lit()) return a;
    if (a == b) return a;
    if (a == neg(b)) return false_lit();
    const Lit z = fresh();
    solver_.add_binary(neg(z), a);
    solver_.add_binary(neg(z), b);
    solver_.add_ternary(z, neg(a), neg(b));
    return z;
}

Lit BitBlaster::lit_or(Lit a, Lit b) { return neg(lit_and(neg(a), neg(b))); }

Lit BitBlaster::lit_xor(Lit a, Lit b) {
    if (a == false_lit()) return b;
    if (b == false_lit()) return a;
    if (a == true_lit()) return neg(b);
    if (b == true_lit()) return neg(a);
    if (a == b) return false_lit();
    if (a == neg(b)) return true_lit();
    const Lit z = fresh();
    solver_.add_ternary(neg(z), a, b);
    solver_.add_ternary(neg(z), neg(a), neg(b));
    solver_.add_ternary(z, neg(a), b);
    solver_.add_ternary(z, a, neg(b));
    return z;
}

Lit BitBlaster::lit_mux(Lit sel, Lit then_lit, Lit else_lit) {
    if (sel == true_lit()) return then_lit;
    if (sel == false_lit()) return else_lit;
    if (then_lit == else_lit) return then_lit;
    const Lit z = fresh();
    solver_.add_ternary(neg(z), neg(sel), then_lit);
    solver_.add_ternary(neg(z), sel, else_lit);
    solver_.add_ternary(z, neg(sel), neg(then_lit));
    solver_.add_ternary(z, sel, neg(else_lit));
    return z;
}

std::pair<Lit, Lit> BitBlaster::full_adder(Lit a, Lit b, Lit carry) {
    const Lit axb = lit_xor(a, b);
    const Lit sum = lit_xor(axb, carry);
    const Lit carry_out = lit_or(lit_and(a, b), lit_and(carry, axb));
    return {sum, carry_out};
}

std::vector<Lit> BitBlaster::add_vectors(const std::vector<Lit>& a,
                                         const std::vector<Lit>& b, Lit carry_in) {
    std::vector<Lit> out(a.size());
    Lit carry = carry_in;
    for (std::size_t i = 0; i < a.size(); ++i) {
        auto [sum, carry_out] = full_adder(a[i], b[i], carry);
        out[i] = sum;
        carry = carry_out;
    }
    return out;
}

Lit BitBlaster::equals(const std::vector<Lit>& a, const std::vector<Lit>& b) {
    Lit acc = true_lit();
    for (std::size_t i = 0; i < a.size(); ++i) {
        acc = lit_and(acc, neg(lit_xor(a[i], b[i])));
    }
    return acc;
}

Lit BitBlaster::less_than(const std::vector<Lit>& a, const std::vector<Lit>& b,
                          bool or_equal) {
    // LSB-to-MSB recurrence: lt = (~a_i & b_i) | (xnor(a_i,b_i) & lt_prev).
    Lit lt = or_equal ? true_lit() : false_lit();
    for (std::size_t i = 0; i < a.size(); ++i) {
        const Lit bit_lt = lit_and(neg(a[i]), b[i]);
        const Lit same = neg(lit_xor(a[i], b[i]));
        lt = lit_or(bit_lt, lit_and(same, lt));
    }
    return lt;
}

std::vector<Lit> BitBlaster::shift(const std::vector<Lit>& value,
                                   const std::vector<Lit>& amount, bool left) {
    const std::size_t n = value.size();
    std::vector<Lit> cur = value;
    // Barrel shifter over the amount bits that matter.
    for (std::size_t j = 0; j < amount.size() && (1ull << j) < n; ++j) {
        const std::size_t step = 1ull << j;
        std::vector<Lit> shifted(n, false_lit());
        for (std::size_t i = 0; i < n; ++i) {
            if (left) {
                if (i >= step) shifted[i] = cur[i - step];
            } else {
                if (i + step < n) shifted[i] = cur[i + step];
            }
        }
        std::vector<Lit> next(n);
        for (std::size_t i = 0; i < n; ++i) {
            next[i] = lit_mux(amount[j], shifted[i], cur[i]);
        }
        cur = std::move(next);
    }
    // Any set amount bit at weight >= n zeroes the result.
    Lit overflow = false_lit();
    for (std::size_t j = 0; j < amount.size(); ++j) {
        if ((1ull << j) >= n || j >= 63) overflow = lit_or(overflow, amount[j]);
    }
    if (overflow != false_lit()) {
        for (auto& bit : cur) bit = lit_mux(overflow, false_lit(), bit);
    }
    return cur;
}

std::vector<Lit> BitBlaster::blast(const SExpr& e) {
    const auto cached = cache_.find(e);
    if (cached != cache_.end()) return cached->second;

    std::vector<Lit> out;
    switch (e->op) {
        case Op::constant:
        case Op::bool_const: {
            out.resize(static_cast<std::size_t>(e->width));
            for (int i = 0; i < e->width; ++i) {
                out[static_cast<std::size_t>(i)] =
                    e->value.bit(i) ? true_lit() : false_lit();
            }
            break;
        }
        case Op::var:
        case Op::bool_var: {
            auto& bits = var_bits_[e->var_id];
            if (bits.empty()) {
                bits.resize(static_cast<std::size_t>(e->width));
                for (auto& b : bits) b = fresh();
            }
            out = bits;
            break;
        }
        case Op::add:
            out = add_vectors(blast(e->a), blast(e->b), false_lit());
            break;
        case Op::sub: {
            auto b = blast(e->b);
            for (auto& bit : b) bit = neg(bit);
            out = add_vectors(blast(e->a), b, true_lit());
            break;
        }
        case Op::mul: {
            const auto a = blast(e->a);
            const auto b = blast(e->b);
            const std::size_t n = a.size();
            std::vector<Lit> acc(n, false_lit());
            for (std::size_t i = 0; i < n; ++i) {
                std::vector<Lit> addend(n, false_lit());
                for (std::size_t k = i; k < n; ++k) {
                    addend[k] = lit_and(a[k - i], b[i]);
                }
                acc = add_vectors(acc, addend, false_lit());
            }
            out = std::move(acc);
            break;
        }
        case Op::band: {
            const auto a = blast(e->a);
            const auto b = blast(e->b);
            out.resize(a.size());
            for (std::size_t i = 0; i < a.size(); ++i) out[i] = lit_and(a[i], b[i]);
            break;
        }
        case Op::bor: {
            const auto a = blast(e->a);
            const auto b = blast(e->b);
            out.resize(a.size());
            for (std::size_t i = 0; i < a.size(); ++i) out[i] = lit_or(a[i], b[i]);
            break;
        }
        case Op::bxor: {
            const auto a = blast(e->a);
            const auto b = blast(e->b);
            out.resize(a.size());
            for (std::size_t i = 0; i < a.size(); ++i) out[i] = lit_xor(a[i], b[i]);
            break;
        }
        case Op::bnot: {
            out = blast(e->a);
            for (auto& bit : out) bit = neg(bit);
            break;
        }
        case Op::shl:
            out = shift(blast(e->a), blast(e->b), /*left=*/true);
            break;
        case Op::lshr:
            out = shift(blast(e->a), blast(e->b), /*left=*/false);
            break;
        case Op::eq:
            out = {equals(blast(e->a), blast(e->b))};
            break;
        case Op::ult:
            out = {less_than(blast(e->a), blast(e->b), false)};
            break;
        case Op::ule:
            out = {less_than(blast(e->a), blast(e->b), true)};
            break;
        case Op::bool_and:
            out = {lit_and(blast(e->a)[0], blast(e->b)[0])};
            break;
        case Op::bool_or:
            out = {lit_or(blast(e->a)[0], blast(e->b)[0])};
            break;
        case Op::bool_not:
            out = {neg(blast(e->a)[0])};
            break;
        case Op::ite: {
            const Lit sel = blast(e->c)[0];
            const auto a = blast(e->a);
            const auto b = blast(e->b);
            out.resize(a.size());
            for (std::size_t i = 0; i < a.size(); ++i) {
                out[i] = lit_mux(sel, a[i], b[i]);
            }
            break;
        }
        case Op::slice: {
            const auto a = blast(e->a);
            out.assign(a.begin() + e->lo, a.begin() + e->hi + 1);
            break;
        }
        case Op::concat: {
            const auto hi = blast(e->a);
            const auto lo = blast(e->b);
            out = lo;
            out.insert(out.end(), hi.begin(), hi.end());
            break;
        }
        case Op::zext: {
            out = blast(e->a);
            out.resize(static_cast<std::size_t>(e->width), false_lit());
            break;
        }
    }
    if (static_cast<int>(out.size()) != e->width) {
        throw std::logic_error("BitBlaster: width bookkeeping error");
    }
    cache_.emplace(e, out);
    return out;
}

void BitBlaster::assert_true(const SExpr& e) {
    if (!e->is_bool) throw std::invalid_argument("assert_true: not a boolean term");
    solver_.add_unit(blast(e)[0]);
}

Bitvec BitBlaster::model_value(const SExpr& e) {
    const auto bits = blast(e);
    Bitvec v(static_cast<int>(bits.size()));
    for (std::size_t i = 0; i < bits.size(); ++i) {
        const bool bit = solver_.value(lit_var(bits[i])) != lit_sign(bits[i]);
        if (bit) v.set_bit(static_cast<int>(i), true);
    }
    return v;
}

}  // namespace ndb::verify
