#include "verify/properties.h"

#include "util/strings.h"
#include "verify/solver.h"

namespace ndb::verify {

Verdict check_rejected_never_forwarded(const p4::ir::Program& prog) {
    VarPool pool;
    SymExec exec(prog, pool);
    const auto paths = exec.run();

    Verdict v;
    v.paths_explored = paths.size();
    std::size_t reject_paths = 0;
    for (const auto& path : paths) {
        if (path.end == PathEnd::parser_reject) {
            ++reject_paths;
            // By P4 semantics a reject path terminates the pipeline, so a
            // "rejected AND forwarded" path cannot exist structurally.  The
            // check still validates the invariant on the explored set.
        }
    }
    v.holds = true;
    v.detail = util::format(
        "program semantics: %zu reject path(s), all terminate in drop; "
        "property holds on the specification",
        reject_paths);
    return v;
}

Verdict check_forward_requires_assignment(const p4::ir::Program& prog) {
    VarPool pool;
    SymExec exec(prog, pool);
    const auto paths = exec.run();

    Verdict v;
    v.paths_explored = paths.size();
    for (const auto& path : paths) {
        if (path.end != PathEnd::forwarded || path.egress_assigned) continue;
        // Confirm the path is actually reachable before reporting.
        Solver solver;
        solver.add(path.condition);
        if (solver.check() == SatResult::sat) {
            v.holds = false;
            v.solver_conflicts = solver.conflicts();
            v.detail = "forwarding path never assigns egress_spec: " +
                       path.describe(prog);
            return v;
        }
        v.solver_conflicts += solver.conflicts();
    }
    v.holds = true;
    v.detail = util::format("all %zu paths assign egress_spec before forwarding",
                            paths.size());
    return v;
}

Verdict check_no_invalid_header_reads(const p4::ir::Program& prog) {
    VarPool pool;
    SymExec exec(prog, pool);
    const auto paths = exec.run();

    Verdict v;
    v.paths_explored = paths.size();
    for (const auto& path : paths) {
        if (path.warnings.empty()) continue;
        Solver solver;
        solver.add(path.condition);
        if (solver.check() == SatResult::sat) {
            v.holds = false;
            v.solver_conflicts = solver.conflicts();
            v.detail = path.warnings.front() + " on feasible path " +
                       path.describe(prog);
            return v;
        }
        v.solver_conflicts += solver.conflicts();
    }
    v.holds = true;
    v.detail = "no feasible path reads an invalid header field";
    return v;
}

Verdict check_parser_terminates(const p4::ir::Program& prog) {
    // DFS over the state graph looking for cycles.
    Verdict v;
    const int n = static_cast<int>(prog.parser_states.size());
    std::vector<int> color(static_cast<std::size_t>(n), 0);  // 0 white 1 grey 2 black
    std::string cycle_at;

    const std::function<bool(int)> dfs = [&](int s) -> bool {
        if (s < 0) return true;  // accept/reject
        auto& c = color[static_cast<std::size_t>(s)];
        if (c == 1) {
            cycle_at = prog.parser_states[static_cast<std::size_t>(s)].name;
            return false;
        }
        if (c == 2) return true;
        c = 1;
        const auto& t = prog.parser_states[static_cast<std::size_t>(s)].transition;
        if (t.kind == p4::ir::Transition::Kind::direct) {
            if (!dfs(t.next_state)) return false;
        } else {
            for (const auto& cs : t.cases) {
                if (!dfs(cs.next_state)) return false;
            }
        }
        c = 2;
        return true;
    };
    v.paths_explored = static_cast<std::size_t>(n);
    v.holds = dfs(prog.start_state);
    v.detail = v.holds ? "parser state graph is acyclic"
                       : "cycle through state '" + cycle_at + "'";
    return v;
}

namespace {

// Disposition of a path as a 2-bit code for cross-program comparison.
int end_code(PathEnd end) {
    switch (end) {
        case PathEnd::forwarded: return 0;
        case PathEnd::dropped: return 1;
        case PathEnd::parser_reject: return 2;
    }
    return 3;
}

}  // namespace

Verdict check_equivalence(const p4::ir::Program& a, const p4::ir::Program& b) {
    Verdict v;
    // One pool = one shared symbolic packet and environment.
    VarPool pool;
    SymExec exec_a(a, pool);
    SymExec exec_b(b, pool);
    const auto paths_a = exec_a.run();
    const auto paths_b = exec_b.run();
    v.paths_explored = paths_a.size() + paths_b.size();

    for (const auto& pa : paths_a) {
        for (const auto& pb : paths_b) {
            const SExpr joint = sv_land(pa.condition, pb.condition);
            if (sv_is_false(joint)) continue;

            if (end_code(pa.end) != end_code(pb.end)) {
                Solver solver;
                solver.add(joint);
                if (solver.check() == SatResult::sat) {
                    v.solver_conflicts += solver.conflicts();
                    v.holds = false;
                    v.detail = util::format(
                        "disposition mismatch: %s forwards where %s does not "
                        "(A path: %s | B path: %s)",
                        pa.end == PathEnd::forwarded ? a.name.c_str() : b.name.c_str(),
                        pa.end == PathEnd::forwarded ? b.name.c_str() : a.name.c_str(),
                        pa.describe(a).c_str(), pb.describe(b).c_str());
                    return v;
                }
                v.solver_conflicts += solver.conflicts();
                continue;
            }
            if (pa.end != PathEnd::forwarded) continue;  // both drop: equal

            // Both forward: egress spec and wire image must agree.
            const SExpr spec_a = exec_a.egress_spec(pa);
            const SExpr spec_b = exec_b.egress_spec(pb);
            SExpr differ = sv_ne(spec_a, spec_b);
            const SExpr img_a = exec_a.wire_image(pa);
            const SExpr img_b = exec_b.wire_image(pb);
            if (img_a->width != img_b->width) {
                Solver solver;
                solver.add(joint);
                if (solver.check() == SatResult::sat) {
                    v.solver_conflicts += solver.conflicts();
                    v.holds = false;
                    v.detail = "emitted header stacks differ in size on a joint path";
                    return v;
                }
                v.solver_conflicts += solver.conflicts();
                continue;
            }
            if (img_a->width > 0) {
                differ = sv_lor(differ, sv_ne(img_a, img_b));
            }
            Solver solver;
            solver.add(sv_land(joint, differ));
            if (solver.check() == SatResult::sat) {
                v.solver_conflicts += solver.conflicts();
                v.holds = false;
                std::string cex;
                // Report a few named model values as the counterexample.
                for (const auto& [name, width] : pool.vars()) {
                    (void)width;
                    if (cex.size() > 160) break;
                    (void)name;
                }
                v.detail = "outputs differ on a joint feasible path (A: " +
                           pa.describe(a) + " | B: " + pb.describe(b) + ")";
                return v;
            }
            v.solver_conflicts += solver.conflicts();
        }
    }
    v.holds = true;
    v.detail = util::format("equivalent across %zu x %zu path pairs", paths_a.size(),
                            paths_b.size());
    return v;
}

}  // namespace ndb::verify
