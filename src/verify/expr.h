// Symbolic bit-vector expressions for the verification substrate.
//
// A small SMT-style term language over fixed-width bit-vectors plus
// booleans.  Terms are immutable shared DAG nodes with light constant
// folding in the builders; the bit-blaster lowers them to CNF for the
// native SAT solver (this repository's stand-in for Z3).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/bitvec.h"

namespace ndb::verify {

using util::Bitvec;

struct Node;
using SExpr = std::shared_ptr<const Node>;

enum class Op {
    var,        // free bit-vector variable (width, var_id, name)
    constant,   // value
    add, sub, mul,
    band, bor, bxor, bnot,
    shl, lshr,  // b is the (symbolic) shift amount
    eq, ult, ule,          // -> bool
    bool_and, bool_or, bool_not, bool_const, bool_var,
    ite,        // c ? a : b   (a,b bit-vectors or bools)
    slice,      // a[hi:lo]
    concat,     // a ++ b (a high)
    zext,       // widen/truncate to width
};

struct Node {
    Op op = Op::constant;
    int width = 1;            // bools have width 1 and is_bool
    bool is_bool = false;
    Bitvec value;             // constant / bool_const (bit 0)
    int var_id = -1;          // var / bool_var
    std::string name;         // var name for models & diagnostics
    SExpr a, b, c;
    int hi = 0, lo = 0;
};

// --- builders (with folding) ---------------------------------------------------

SExpr sv_const(const Bitvec& value);
SExpr sv_const_u(int width, std::uint64_t value);
SExpr sv_bool(bool value);

// Fresh variables are numbered by the caller (VarPool below helps).
SExpr sv_var(int var_id, int width, std::string name);
SExpr sv_bool_var(int var_id, std::string name);

SExpr sv_add(SExpr a, SExpr b);
SExpr sv_sub(SExpr a, SExpr b);
SExpr sv_mul(SExpr a, SExpr b);
SExpr sv_and(SExpr a, SExpr b);
SExpr sv_or(SExpr a, SExpr b);
SExpr sv_xor(SExpr a, SExpr b);
SExpr sv_not(SExpr a);
SExpr sv_neg(SExpr a);
SExpr sv_shl(SExpr a, SExpr amount);
SExpr sv_lshr(SExpr a, SExpr amount);
SExpr sv_eq(SExpr a, SExpr b);
SExpr sv_ne(SExpr a, SExpr b);
SExpr sv_ult(SExpr a, SExpr b);
SExpr sv_ule(SExpr a, SExpr b);
SExpr sv_band(SExpr a, SExpr b) = delete;  // use sv_and
SExpr sv_land(SExpr a, SExpr b);
SExpr sv_lor(SExpr a, SExpr b);
SExpr sv_lnot(SExpr a);
SExpr sv_ite(SExpr c, SExpr a, SExpr b);
SExpr sv_slice(SExpr a, int hi, int lo);
SExpr sv_concat(SExpr a, SExpr b);
SExpr sv_resize(SExpr a, int width);

// Is this term a literal constant?  (Used for folding and fast paths.)
bool sv_is_const(const SExpr& e);
bool sv_is_true(const SExpr& e);
bool sv_is_false(const SExpr& e);

std::string sv_to_string(const SExpr& e);

// Counts DAG nodes (per unique node).
std::size_t sv_size(const SExpr& e);

// Hands out fresh variable ids and remembers (id -> name, width).
class VarPool {
public:
    SExpr fresh(int width, std::string name);
    SExpr fresh_bool(std::string name);

    // Name-keyed variable: repeated calls with the same name return the SAME
    // variable.  Two programs executed against one pool therefore see the
    // same symbolic packet -- the basis of equivalence checking.
    SExpr get(const std::string& name, int width);

    int count() const { return next_; }
    const std::vector<std::pair<std::string, int>>& vars() const { return vars_; }

private:
    int next_ = 0;
    std::vector<std::pair<std::string, int>> vars_;  // name, width
    std::vector<std::pair<std::string, SExpr>> named_;
};

}  // namespace ndb::verify
