// Concolic seed synthesis: the bridge from the symbolic layer to the
// greybox campaign corpus.
//
// Given coverage slots that never lit during a guided campaign (mapped back
// to IR sites by coverage::EdgeIndex), this driver asks symexec for a path
// whose trace covers each site, conjoins the path condition with the
// concrete execution environment (in-range ingress port, the generator's
// timestamp, zeroed registers, green meters, exact packet length), solves
// with the in-tree SAT core via the bit-blaster, and decodes the model into
// a concrete packet plus the table default-action programming that steers
// execution down that path.  The campaign injects the result as a
// high-energy corpus entry -- hybrid fuzzing in the Driller/FP4 mold.
//
// This doubles as a differential check of the verify layer: the caller
// asserts every synthesized packet actually lights its target slot on the
// interpreter, so symexec/bitblast/SAT bugs surface as test failures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coverage/edge_index.h"
#include "p4/ir.h"
#include "util/bitvec.h"
#include "verify/expr.h"
#include "verify/symexec.h"

namespace ndb::verify {

struct ConcolicOptions {
    int max_paths = 4096;            // symexec exploration budget
    std::uint64_t max_conflicts = 200'000;  // SAT budget per candidate path
    int max_attempts_per_site = 4;   // candidate paths tried per dark site
    // Concrete environment the model must live in (mirrors SimDevice +
    // Generator defaults: 4 ports, stamps written at virtual time 1ms).
    int num_ports = 4;
    std::uint64_t timestamp_us = 1000;
    // Packet sizing: parsed bytes + pad, floored at min.  The pad keeps the
    // generator's 16 trailing stamp bytes out of the parsed region; the
    // floor matches Generator::write_stamp's minimum resize.
    int pad_bytes = 16;
    int min_packet_bytes = 30;
};

// One synthesized corpus seed: a packet + the control-plane programming
// that makes the reference image light `target`.
struct ConcolicSeed {
    coverage::EdgeSite target;
    std::vector<std::uint8_t> packet;
    std::uint32_t ingress_port = 0;

    struct Default {
        std::string table;
        std::string action;
        std::vector<util::Bitvec> args;
    };
    std::vector<Default> defaults;  // set_default_action ops, in table order
};

enum class TargetStatus {
    solved,    // model decoded into a seed
    unsat,     // every candidate path's constraint is unsatisfiable
    unknown,   // SAT conflict budget exhausted: NOT proof of unreachability
    no_path,   // symexec produced no path covering the site
};

const char* target_status_name(TargetStatus status);

struct TargetOutcome {
    coverage::EdgeSite site;
    TargetStatus status = TargetStatus::no_path;
    std::string detail;  // human diagnostics (why skipped / which path)
};

struct ConcolicResult {
    std::vector<ConcolicSeed> seeds;
    std::vector<TargetOutcome> outcomes;  // one per requested target
    // True when symexec hit max_paths: a no_path outcome then means "not
    // found within budget", never "unreachable".
    bool paths_exhausted = false;
};

class ConcolicSynthesizer {
public:
    explicit ConcolicSynthesizer(const p4::ir::Program& prog,
                                 ConcolicOptions options = {});

    // Attempts every target in order; deterministic (no randomness, fixed
    // path enumeration order), so round-barrier synthesis stays
    // byte-identical across campaign thread counts.
    ConcolicResult synthesize(const std::vector<coverage::EdgeSite>& targets);

private:
    void ensure_explored();
    std::vector<const SymPath*> candidates(const coverage::EdgeSite& site) const;
    // Solves one candidate; fills `seed` on sat.
    TargetStatus solve_path(const SymPath& path, ConcolicSeed& seed,
                            std::string& detail);

    const p4::ir::Program& prog_;
    ConcolicOptions options_;
    VarPool pool_;
    std::vector<SymPath> paths_;
    bool explored_ = false;
    bool paths_exhausted_ = false;
    // Coverage branch ordinal -> if_stmt, for branch-site candidate lookup.
    std::vector<const p4::ir::Stmt*> branch_by_ordinal_;
};

}  // namespace ndb::verify
