// Native CDCL SAT solver.
//
// The verification substrate's decision engine: conflict-driven clause
// learning with two-watched-literal propagation, first-UIP learning,
// activity-based (VSIDS-style) branching and geometric restarts.  It is
// deliberately dependency-free -- this repository's replacement for an
// off-the-shelf SMT solver backend.
#pragma once

#include <cstdint>
#include <vector>

namespace ndb::verify {

// Literals use the usual encoding: variable v (0-based), literal 2v (positive)
// or 2v+1 (negated).
using Lit = std::int32_t;

inline Lit mk_lit(int var, bool negated = false) { return 2 * var + (negated ? 1 : 0); }
inline Lit neg(Lit l) { return l ^ 1; }
inline int lit_var(Lit l) { return l >> 1; }
inline bool lit_sign(Lit l) { return l & 1; }  // true = negated

enum class SatResult { sat, unsat, unknown };

class SatSolver {
public:
    // Returns the index of a fresh variable.
    int new_var();
    int var_count() const { return static_cast<int>(assign_.size()); }

    // Adds a clause (empty clause makes the instance trivially unsat).
    void add_clause(std::vector<Lit> lits);
    void add_unit(Lit l) { add_clause({l}); }
    void add_binary(Lit a, Lit b) { add_clause({a, b}); }
    void add_ternary(Lit a, Lit b, Lit c) { add_clause({a, b, c}); }

    // Solves; `max_conflicts` of 0 means no limit.
    SatResult solve(std::uint64_t max_conflicts = 0);

    // Model access after sat.
    bool value(int var) const;

    // Statistics.
    std::uint64_t conflicts() const { return stats_conflicts_; }
    std::uint64_t decisions() const { return stats_decisions_; }
    std::uint64_t propagations() const { return stats_propagations_; }
    std::size_t clause_count() const { return clauses_.size(); }

private:
    // Truth values: 0 = false, 1 = true, 2 = unassigned.
    static constexpr std::uint8_t kFalse = 0, kTrue = 1, kUndef = 2;

    struct Clause {
        std::vector<Lit> lits;
        bool learned = false;
    };

    std::uint8_t lit_value(Lit l) const {
        const std::uint8_t v = assign_[static_cast<std::size_t>(lit_var(l))];
        if (v == kUndef) return kUndef;
        return lit_sign(l) ? static_cast<std::uint8_t>(v ^ 1) : v;
    }

    void enqueue(Lit l, int reason);
    int propagate();  // returns conflicting clause index or -1
    void analyze(int conflict, std::vector<Lit>& learned, int& backtrack_level);
    void backtrack(int level);
    Lit pick_branch();
    void bump_var(int var);
    void decay_activity();
    bool watch_clause(int ci);

    std::vector<Clause> clauses_;
    std::vector<std::vector<int>> watchers_;  // per literal: clause indices
    std::vector<std::uint8_t> assign_;        // per var
    std::vector<int> level_;                  // per var
    std::vector<int> reason_;                 // per var: clause index or -1
    std::vector<Lit> trail_;
    std::vector<std::size_t> trail_lim_;      // decision level boundaries
    std::size_t qhead_ = 0;
    std::vector<double> activity_;
    double var_inc_ = 1.0;
    bool unsat_ = false;

    std::uint64_t stats_conflicts_ = 0;
    std::uint64_t stats_decisions_ = 0;
    std::uint64_t stats_propagations_ = 0;
};

}  // namespace ndb::verify
