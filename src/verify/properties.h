// Program-level property checks (the p4v-style tool surface).
//
// Every check here reasons about the P4 *specification* via symbolic
// execution plus the native solver.  The checks are sound for the program
// -- and, as the paper stresses, therefore unable to observe bugs that live
// in the target implementation rather than in the program.
#pragma once

#include <functional>
#include <string>

#include "p4/ir.h"
#include "verify/expr.h"
#include "verify/symexec.h"

namespace ndb::verify {

struct Verdict {
    bool holds = false;
    std::string detail;            // human-readable explanation / counterexample
    std::size_t paths_explored = 0;
    std::uint64_t solver_conflicts = 0;

    explicit operator bool() const { return holds; }
};

// "A packet the parser rejects is never forwarded."  This is the property
// the Section-4 scenario cares about: it HOLDS on the program for every
// target -- which is precisely why software formal verification signs off
// on a device that violates it in hardware.
Verdict check_rejected_never_forwarded(const p4::ir::Program& prog);

// Every forwarding path assigned egress_spec (no packet leaves on an
// accidental default port).
Verdict check_forward_requires_assignment(const p4::ir::Program& prog);

// No path reads a field of a header that may be invalid at that point.
// Feasibility of the offending path is confirmed with the solver.
Verdict check_no_invalid_header_reads(const p4::ir::Program& prog);

// The parser terminates (no cycles in the state machine reachable within
// the unrolling bound).
Verdict check_parser_terminates(const p4::ir::Program& prog);

// Full program equivalence: same symbolic packet and environment into both
// programs implies same disposition, same egress port and same wire image.
// Table-bearing programs are compared under identical (symbolic) control
// planes only when their table/action structure matches; the comparison
// use-case in this repository applies it to table-free variants.
Verdict check_equivalence(const p4::ir::Program& a, const p4::ir::Program& b);

}  // namespace ndb::verify
