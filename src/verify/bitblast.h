// Bit-blaster: lowers bit-vector terms to CNF via the Tseitin transform.
#pragma once

#include <unordered_map>
#include <vector>

#include "verify/expr.h"
#include "verify/sat.h"

namespace ndb::verify {

class BitBlaster {
public:
    explicit BitBlaster(SatSolver& solver);

    // Returns the literal per bit, LSB first.  Results are cached per node,
    // and per var_id so the same variable is consistent across terms.
    std::vector<Lit> blast(const SExpr& e);

    // Asserts a boolean term.
    void assert_true(const SExpr& e);

    // Reads a term's value out of the model (call after SatResult::sat).
    Bitvec model_value(const SExpr& e);

    Lit true_lit();
    Lit false_lit() { return neg(true_lit()); }

private:
    Lit fresh();
    Lit lit_and(Lit a, Lit b);
    Lit lit_or(Lit a, Lit b);
    Lit lit_xor(Lit a, Lit b);
    Lit lit_mux(Lit sel, Lit then_lit, Lit else_lit);
    // sum, carry-out of a full adder.
    std::pair<Lit, Lit> full_adder(Lit a, Lit b, Lit carry);
    std::vector<Lit> add_vectors(const std::vector<Lit>& a, const std::vector<Lit>& b,
                                 Lit carry_in);
    Lit equals(const std::vector<Lit>& a, const std::vector<Lit>& b);
    Lit less_than(const std::vector<Lit>& a, const std::vector<Lit>& b,
                  bool or_equal);
    std::vector<Lit> shift(const std::vector<Lit>& value,
                           const std::vector<Lit>& amount, bool left);

    SatSolver& solver_;
    // Keyed by the owning SExpr, not the raw Node*: the cache must keep every
    // blasted node alive, or a freed node's address can be reused by a
    // structurally different term and inherit its literals (observed as
    // heap-layout-dependent spurious unsat when callers pass temporaries).
    std::unordered_map<SExpr, std::vector<Lit>> cache_;
    std::unordered_map<int, std::vector<Lit>> var_bits_;
    Lit const_true_ = -1;
};

}  // namespace ndb::verify
