#include "verify/expr.h"

#include <stdexcept>
#include <unordered_set>

namespace ndb::verify {

namespace {

SExpr make(Op op, int width, bool is_bool) {
    auto n = std::make_shared<Node>();
    n->op = op;
    n->width = width;
    n->is_bool = is_bool;
    return n;
}

const Bitvec& cval(const SExpr& e) { return e->value; }

void require_same_width(const SExpr& a, const SExpr& b, const char* who) {
    if (a->width != b->width) {
        throw std::invalid_argument(std::string(who) + ": width mismatch " +
                                    std::to_string(a->width) + " vs " +
                                    std::to_string(b->width));
    }
}

SExpr binary(Op op, SExpr a, SExpr b, int width, bool is_bool) {
    auto n = std::make_shared<Node>();
    n->op = op;
    n->width = width;
    n->is_bool = is_bool;
    n->a = std::move(a);
    n->b = std::move(b);
    return n;
}

}  // namespace

SExpr sv_const(const Bitvec& value) {
    auto n = make(Op::constant, value.width(), false);
    const_cast<Node*>(n.get())->value = value;
    return n;
}

SExpr sv_const_u(int width, std::uint64_t value) {
    return sv_const(Bitvec(width, value));
}

SExpr sv_bool(bool value) {
    auto n = make(Op::bool_const, 1, true);
    const_cast<Node*>(n.get())->value = Bitvec(1, value ? 1 : 0);
    return n;
}

SExpr sv_var(int var_id, int width, std::string name) {
    auto n = make(Op::var, width, false);
    auto* m = const_cast<Node*>(n.get());
    m->var_id = var_id;
    m->name = std::move(name);
    return n;
}

SExpr sv_bool_var(int var_id, std::string name) {
    auto n = make(Op::bool_var, 1, true);
    auto* m = const_cast<Node*>(n.get());
    m->var_id = var_id;
    m->name = std::move(name);
    return n;
}

bool sv_is_const(const SExpr& e) {
    return e->op == Op::constant || e->op == Op::bool_const;
}
bool sv_is_true(const SExpr& e) { return sv_is_const(e) && !e->value.is_zero(); }
bool sv_is_false(const SExpr& e) { return sv_is_const(e) && e->value.is_zero(); }

SExpr sv_add(SExpr a, SExpr b) {
    require_same_width(a, b, "sv_add");
    if (sv_is_const(a) && sv_is_const(b)) return sv_const(cval(a).add(cval(b)));
    if (sv_is_const(b) && cval(b).is_zero()) return a;
    if (sv_is_const(a) && cval(a).is_zero()) return b;
    const int w = a->width;
    return binary(Op::add, std::move(a), std::move(b), w, false);
}

SExpr sv_sub(SExpr a, SExpr b) {
    require_same_width(a, b, "sv_sub");
    if (sv_is_const(a) && sv_is_const(b)) return sv_const(cval(a).sub(cval(b)));
    if (sv_is_const(b) && cval(b).is_zero()) return a;
    const int w = a->width;
    return binary(Op::sub, std::move(a), std::move(b), w, false);
}

SExpr sv_mul(SExpr a, SExpr b) {
    require_same_width(a, b, "sv_mul");
    if (sv_is_const(a) && sv_is_const(b)) return sv_const(cval(a).mul(cval(b)));
    const int w = a->width;
    return binary(Op::mul, std::move(a), std::move(b), w, false);
}

SExpr sv_and(SExpr a, SExpr b) {
    require_same_width(a, b, "sv_and");
    if (sv_is_const(a) && sv_is_const(b)) return sv_const(cval(a).band(cval(b)));
    if (sv_is_const(a) && cval(a).is_zero()) return a;
    if (sv_is_const(b) && cval(b).is_zero()) return b;
    if (sv_is_const(a) && cval(a).is_ones()) return b;
    if (sv_is_const(b) && cval(b).is_ones()) return a;
    const int w = a->width;
    return binary(Op::band, std::move(a), std::move(b), w, false);
}

SExpr sv_or(SExpr a, SExpr b) {
    require_same_width(a, b, "sv_or");
    if (sv_is_const(a) && sv_is_const(b)) return sv_const(cval(a).bor(cval(b)));
    if (sv_is_const(a) && cval(a).is_zero()) return b;
    if (sv_is_const(b) && cval(b).is_zero()) return a;
    const int w = a->width;
    return binary(Op::bor, std::move(a), std::move(b), w, false);
}

SExpr sv_xor(SExpr a, SExpr b) {
    require_same_width(a, b, "sv_xor");
    if (sv_is_const(a) && sv_is_const(b)) return sv_const(cval(a).bxor(cval(b)));
    const int w = a->width;
    return binary(Op::bxor, std::move(a), std::move(b), w, false);
}

SExpr sv_not(SExpr a) {
    if (sv_is_const(a)) return sv_const(cval(a).bnot());
    auto n = make(Op::bnot, a->width, false);
    const_cast<Node*>(n.get())->a = std::move(a);
    return n;
}

SExpr sv_neg(SExpr a) {
    const int w = a->width;
    return sv_add(sv_not(std::move(a)), sv_const_u(w, 1));
}

SExpr sv_shl(SExpr a, SExpr amount) {
    if (sv_is_const(a) && sv_is_const(amount)) {
        const auto amt = static_cast<int>(
            std::min<std::uint64_t>(cval(amount).to_u64(),
                                    static_cast<std::uint64_t>(a->width)));
        return sv_const(cval(a).shl(amt));
    }
    const int w = a->width;
    return binary(Op::shl, std::move(a), std::move(amount), w, false);
}

SExpr sv_lshr(SExpr a, SExpr amount) {
    if (sv_is_const(a) && sv_is_const(amount)) {
        const auto amt = static_cast<int>(
            std::min<std::uint64_t>(cval(amount).to_u64(),
                                    static_cast<std::uint64_t>(a->width)));
        return sv_const(cval(a).lshr(amt));
    }
    const int w = a->width;
    return binary(Op::lshr, std::move(a), std::move(amount), w, false);
}

SExpr sv_eq(SExpr a, SExpr b) {
    require_same_width(a, b, "sv_eq");
    if (sv_is_const(a) && sv_is_const(b)) return sv_bool(cval(a).eq(cval(b)));
    return binary(Op::eq, std::move(a), std::move(b), 1, true);
}

SExpr sv_ne(SExpr a, SExpr b) { return sv_lnot(sv_eq(std::move(a), std::move(b))); }

SExpr sv_ult(SExpr a, SExpr b) {
    require_same_width(a, b, "sv_ult");
    if (sv_is_const(a) && sv_is_const(b)) return sv_bool(cval(a).ult(cval(b)));
    return binary(Op::ult, std::move(a), std::move(b), 1, true);
}

SExpr sv_ule(SExpr a, SExpr b) {
    require_same_width(a, b, "sv_ule");
    if (sv_is_const(a) && sv_is_const(b)) return sv_bool(cval(a).ule(cval(b)));
    return binary(Op::ule, std::move(a), std::move(b), 1, true);
}

SExpr sv_land(SExpr a, SExpr b) {
    if (sv_is_false(a)) return a;
    if (sv_is_false(b)) return b;
    if (sv_is_true(a)) return b;
    if (sv_is_true(b)) return a;
    return binary(Op::bool_and, std::move(a), std::move(b), 1, true);
}

SExpr sv_lor(SExpr a, SExpr b) {
    if (sv_is_true(a)) return a;
    if (sv_is_true(b)) return b;
    if (sv_is_false(a)) return b;
    if (sv_is_false(b)) return a;
    return binary(Op::bool_or, std::move(a), std::move(b), 1, true);
}

SExpr sv_lnot(SExpr a) {
    if (sv_is_const(a)) return sv_bool(a->value.is_zero());
    if (a->op == Op::bool_not) return a->a;  // double negation
    auto n = make(Op::bool_not, 1, true);
    const_cast<Node*>(n.get())->a = std::move(a);
    return n;
}

SExpr sv_ite(SExpr c, SExpr a, SExpr b) {
    require_same_width(a, b, "sv_ite");
    if (sv_is_true(c)) return a;
    if (sv_is_false(c)) return b;
    auto n = make(Op::ite, a->width, a->is_bool && b->is_bool);
    auto* m = const_cast<Node*>(n.get());
    m->c = std::move(c);
    m->a = std::move(a);
    m->b = std::move(b);
    return n;
}

SExpr sv_slice(SExpr a, int hi, int lo) {
    if (lo < 0 || hi < lo || hi >= a->width) {
        throw std::out_of_range("sv_slice: bad bounds");
    }
    if (sv_is_const(a)) return sv_const(cval(a).slice(hi, lo));
    if (hi == a->width - 1 && lo == 0) return a;
    auto n = make(Op::slice, hi - lo + 1, false);
    auto* m = const_cast<Node*>(n.get());
    m->a = std::move(a);
    m->hi = hi;
    m->lo = lo;
    return n;
}

SExpr sv_concat(SExpr a, SExpr b) {
    if (a->width == 0) return b;
    if (b->width == 0) return a;
    if (sv_is_const(a) && sv_is_const(b)) {
        return sv_const(Bitvec::concat(cval(a), cval(b)));
    }
    const int w = a->width + b->width;
    return binary(Op::concat, std::move(a), std::move(b), w, false);
}

SExpr sv_resize(SExpr a, int width) {
    if (a->width == width) return a;
    if (sv_is_const(a)) return sv_const(cval(a).resize(width));
    if (width < a->width) return sv_slice(std::move(a), width - 1, 0);
    auto n = make(Op::zext, width, false);
    const_cast<Node*>(n.get())->a = std::move(a);
    return n;
}

std::string sv_to_string(const SExpr& e) {
    switch (e->op) {
        case Op::var: return e->name;
        case Op::bool_var: return e->name;
        case Op::constant: return e->value.to_string();
        case Op::bool_const: return e->value.is_zero() ? "false" : "true";
        case Op::add: return "(" + sv_to_string(e->a) + " + " + sv_to_string(e->b) + ")";
        case Op::sub: return "(" + sv_to_string(e->a) + " - " + sv_to_string(e->b) + ")";
        case Op::mul: return "(" + sv_to_string(e->a) + " * " + sv_to_string(e->b) + ")";
        case Op::band: return "(" + sv_to_string(e->a) + " & " + sv_to_string(e->b) + ")";
        case Op::bor: return "(" + sv_to_string(e->a) + " | " + sv_to_string(e->b) + ")";
        case Op::bxor: return "(" + sv_to_string(e->a) + " ^ " + sv_to_string(e->b) + ")";
        case Op::bnot: return "~" + sv_to_string(e->a);
        case Op::shl: return "(" + sv_to_string(e->a) + " << " + sv_to_string(e->b) + ")";
        case Op::lshr: return "(" + sv_to_string(e->a) + " >> " + sv_to_string(e->b) + ")";
        case Op::eq: return "(" + sv_to_string(e->a) + " == " + sv_to_string(e->b) + ")";
        case Op::ult: return "(" + sv_to_string(e->a) + " <u " + sv_to_string(e->b) + ")";
        case Op::ule: return "(" + sv_to_string(e->a) + " <=u " + sv_to_string(e->b) + ")";
        case Op::bool_and: return "(" + sv_to_string(e->a) + " && " + sv_to_string(e->b) + ")";
        case Op::bool_or: return "(" + sv_to_string(e->a) + " || " + sv_to_string(e->b) + ")";
        case Op::bool_not: return "!" + sv_to_string(e->a);
        case Op::ite:
            return "(" + sv_to_string(e->c) + " ? " + sv_to_string(e->a) + " : " +
                   sv_to_string(e->b) + ")";
        case Op::slice:
            return sv_to_string(e->a) + "[" + std::to_string(e->hi) + ":" +
                   std::to_string(e->lo) + "]";
        case Op::concat: return "(" + sv_to_string(e->a) + " ++ " + sv_to_string(e->b) + ")";
        case Op::zext: return "zext" + std::to_string(e->width) + "(" + sv_to_string(e->a) + ")";
    }
    return "?";
}

namespace {
void count_nodes(const Node* n, std::unordered_set<const Node*>& seen) {
    if (!n || seen.count(n)) return;
    seen.insert(n);
    count_nodes(n->a.get(), seen);
    count_nodes(n->b.get(), seen);
    count_nodes(n->c.get(), seen);
}
}  // namespace

std::size_t sv_size(const SExpr& e) {
    std::unordered_set<const Node*> seen;
    count_nodes(e.get(), seen);
    return seen.size();
}

SExpr VarPool::fresh(int width, std::string name) {
    const int id = next_++;
    vars_.emplace_back(name, width);
    return sv_var(id, width, std::move(name));
}

SExpr VarPool::fresh_bool(std::string name) {
    const int id = next_++;
    vars_.emplace_back(name, 1);
    return sv_bool_var(id, std::move(name));
}

SExpr VarPool::get(const std::string& name, int width) {
    for (const auto& [n, e] : named_) {
        if (n == name) {
            if (e->width != width) {
                throw std::invalid_argument("VarPool::get: width conflict for " + name);
            }
            return e;
        }
    }
    SExpr e = fresh(width, name);
    named_.emplace_back(name, e);
    return e;
}

}  // namespace ndb::verify
