#include "verify/sat.h"

#include <algorithm>
#include <cmath>

namespace ndb::verify {

int SatSolver::new_var() {
    const int v = static_cast<int>(assign_.size());
    assign_.push_back(kUndef);
    level_.push_back(0);
    reason_.push_back(-1);
    activity_.push_back(0.0);
    watchers_.emplace_back();
    watchers_.emplace_back();
    return v;
}

void SatSolver::add_clause(std::vector<Lit> lits) {
    if (unsat_) return;
    // Normalize: drop duplicate literals; a clause with l and ~l is a tautology.
    std::sort(lits.begin(), lits.end());
    lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
    for (std::size_t i = 0; i + 1 < lits.size(); ++i) {
        if (lits[i] == neg(lits[i + 1])) return;  // tautology
    }
    // Remove literals already false at level 0; satisfied clauses are dropped.
    std::vector<Lit> pruned;
    for (const Lit l : lits) {
        const auto v = lit_value(l);
        if (v == kTrue && level_[static_cast<std::size_t>(lit_var(l))] == 0) return;
        if (v == kFalse && level_[static_cast<std::size_t>(lit_var(l))] == 0) continue;
        pruned.push_back(l);
    }
    if (pruned.empty()) {
        unsat_ = true;
        return;
    }
    if (pruned.size() == 1) {
        if (lit_value(pruned[0]) == kUndef) {
            enqueue(pruned[0], -1);
            if (propagate() >= 0) unsat_ = true;
        } else if (lit_value(pruned[0]) == kFalse) {
            unsat_ = true;
        }
        return;
    }
    const int ci = static_cast<int>(clauses_.size());
    clauses_.push_back({std::move(pruned), false});
    watchers_[static_cast<std::size_t>(clauses_[static_cast<std::size_t>(ci)].lits[0])]
        .push_back(ci);
    watchers_[static_cast<std::size_t>(clauses_[static_cast<std::size_t>(ci)].lits[1])]
        .push_back(ci);
}

void SatSolver::enqueue(Lit l, int reason) {
    const auto var = static_cast<std::size_t>(lit_var(l));
    assign_[var] = lit_sign(l) ? kFalse : kTrue;
    level_[var] = static_cast<int>(trail_lim_.size());
    reason_[var] = reason;
    trail_.push_back(l);
}

int SatSolver::propagate() {
    while (qhead_ < trail_.size()) {
        const Lit p = trail_[qhead_++];
        ++stats_propagations_;
        // Clauses watching ~p must find a new watch or propagate/conflict.
        const Lit false_lit = neg(p);
        auto& watch_list = watchers_[static_cast<std::size_t>(false_lit)];
        std::size_t keep = 0;
        for (std::size_t i = 0; i < watch_list.size(); ++i) {
            const int ci = watch_list[i];
            auto& lits = clauses_[static_cast<std::size_t>(ci)].lits;
            // Ensure the false literal is in slot 1.
            if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
            if (lit_value(lits[0]) == kTrue) {
                watch_list[keep++] = ci;  // clause satisfied; keep watch
                continue;
            }
            // Search for a replacement watch.
            bool moved = false;
            for (std::size_t k = 2; k < lits.size(); ++k) {
                if (lit_value(lits[k]) != kFalse) {
                    std::swap(lits[1], lits[k]);
                    watchers_[static_cast<std::size_t>(lits[1])].push_back(ci);
                    moved = true;
                    break;
                }
            }
            if (moved) continue;
            // No replacement: clause is unit or conflicting.
            watch_list[keep++] = ci;
            if (lit_value(lits[0]) == kFalse) {
                // Conflict: restore remaining watches and report.
                for (std::size_t j = i + 1; j < watch_list.size(); ++j) {
                    watch_list[keep++] = watch_list[j];
                }
                watch_list.resize(keep);
                qhead_ = trail_.size();
                return ci;
            }
            enqueue(lits[0], ci);
        }
        watch_list.resize(keep);
    }
    return -1;
}

void SatSolver::bump_var(int var) {
    activity_[static_cast<std::size_t>(var)] += var_inc_;
    if (activity_[static_cast<std::size_t>(var)] > 1e100) {
        for (auto& a : activity_) a *= 1e-100;
        var_inc_ *= 1e-100;
    }
}

void SatSolver::decay_activity() { var_inc_ /= 0.95; }

void SatSolver::analyze(int conflict, std::vector<Lit>& learned,
                        int& backtrack_level) {
    learned.clear();
    learned.push_back(0);  // slot for the asserting literal
    std::vector<bool> seen(assign_.size(), false);
    int counter = 0;
    Lit p = -1;
    std::size_t index = trail_.size();
    const int current_level = static_cast<int>(trail_lim_.size());

    int ci = conflict;
    do {
        const auto& lits = clauses_[static_cast<std::size_t>(ci)].lits;
        for (const Lit q : lits) {
            if (q == p) continue;
            const auto v = static_cast<std::size_t>(lit_var(q));
            if (seen[v] || level_[v] == 0) continue;
            seen[v] = true;
            bump_var(static_cast<int>(v));
            if (level_[v] >= current_level) {
                ++counter;
            } else {
                learned.push_back(q);
            }
        }
        // Walk the trail backwards to the next marked literal.
        while (!seen[static_cast<std::size_t>(lit_var(trail_[index - 1]))]) --index;
        p = trail_[--index];
        seen[static_cast<std::size_t>(lit_var(p))] = false;
        ci = reason_[static_cast<std::size_t>(lit_var(p))];
        --counter;
    } while (counter > 0);
    learned[0] = neg(p);

    // Backtrack level: the highest level among the other literals.
    backtrack_level = 0;
    for (std::size_t i = 1; i < learned.size(); ++i) {
        backtrack_level =
            std::max(backtrack_level,
                     level_[static_cast<std::size_t>(lit_var(learned[i]))]);
    }
}

void SatSolver::backtrack(int target_level) {
    if (static_cast<int>(trail_lim_.size()) <= target_level) return;
    const std::size_t bound = trail_lim_[static_cast<std::size_t>(target_level)];
    while (trail_.size() > bound) {
        const auto v = static_cast<std::size_t>(lit_var(trail_.back()));
        assign_[v] = kUndef;
        reason_[v] = -1;
        trail_.pop_back();
    }
    trail_lim_.resize(static_cast<std::size_t>(target_level));
    qhead_ = trail_.size();
}

Lit SatSolver::pick_branch() {
    int best = -1;
    double best_act = -1.0;
    for (std::size_t v = 0; v < assign_.size(); ++v) {
        if (assign_[v] == kUndef && activity_[v] > best_act) {
            best_act = activity_[v];
            best = static_cast<int>(v);
        }
    }
    if (best < 0) return -1;
    return mk_lit(best, true);  // negative-first polarity (MiniSat default)
}

SatResult SatSolver::solve(std::uint64_t max_conflicts) {
    if (unsat_) return SatResult::unsat;
    if (propagate() >= 0) {
        unsat_ = true;
        return SatResult::unsat;
    }
    std::uint64_t restart_limit = 128;
    std::uint64_t conflicts_since_restart = 0;

    for (;;) {
        const int conflict = propagate();
        if (conflict >= 0) {
            ++stats_conflicts_;
            ++conflicts_since_restart;
            if (max_conflicts && stats_conflicts_ > max_conflicts) {
                return SatResult::unknown;
            }
            if (trail_lim_.empty()) {
                unsat_ = true;
                return SatResult::unsat;
            }
            std::vector<Lit> learned;
            int back_level = 0;
            analyze(conflict, learned, back_level);
            backtrack(back_level);
            if (learned.size() == 1) {
                enqueue(learned[0], -1);
            } else {
                const int ci = static_cast<int>(clauses_.size());
                clauses_.push_back({learned, true});
                auto& lits = clauses_[static_cast<std::size_t>(ci)].lits;
                // Watch the asserting literal and one literal from back_level.
                std::size_t second = 1;
                for (std::size_t i = 1; i < lits.size(); ++i) {
                    if (level_[static_cast<std::size_t>(lit_var(lits[i]))] == back_level) {
                        second = i;
                        break;
                    }
                }
                std::swap(lits[1], lits[second]);
                watchers_[static_cast<std::size_t>(lits[0])].push_back(ci);
                watchers_[static_cast<std::size_t>(lits[1])].push_back(ci);
                enqueue(lits[0], ci);
            }
            decay_activity();
            if (conflicts_since_restart >= restart_limit) {
                conflicts_since_restart = 0;
                restart_limit = restart_limit * 3 / 2;
                backtrack(0);
            }
            continue;
        }
        const Lit branch = pick_branch();
        if (branch < 0) return SatResult::sat;  // fully assigned
        ++stats_decisions_;
        trail_lim_.push_back(trail_.size());
        enqueue(branch, -1);
    }
}

bool SatSolver::value(int var) const {
    return assign_.at(static_cast<std::size_t>(var)) == kTrue;
}

}  // namespace ndb::verify
