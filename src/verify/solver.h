// Solver facade: assert bit-vector constraints, check satisfiability,
// extract models.  One Solver per query (non-incremental).
#pragma once

#include <vector>

#include "verify/bitblast.h"
#include "verify/expr.h"
#include "verify/sat.h"

namespace ndb::verify {

class Solver {
public:
    Solver() : blaster_(sat_) {}

    void add(const SExpr& constraint);
    SatResult check(std::uint64_t max_conflicts = 5'000'000);

    // Model value of any term after a sat result.
    Bitvec eval(const SExpr& e) { return blaster_.model_value(e); }

    std::uint64_t conflicts() const { return sat_.conflicts(); }
    std::uint64_t decisions() const { return sat_.decisions(); }
    std::size_t clauses() const { return sat_.clause_count(); }
    int variables() const { return sat_.var_count(); }

    // One-shot helpers.
    static bool is_satisfiable(const SExpr& constraint);
    static bool is_valid(const SExpr& constraint);  // true iff !constraint unsat

private:
    SatSolver sat_;
    BitBlaster blaster_;
};

}  // namespace ndb::verify
