// Symbolic executor over the P4 IR.
//
// Explores every feasible path of the *program specification*: the parser
// state machine, both match-action controls (tables fork over their allowed
// actions with unconstrained action data) and the drop/forward decision.
// This is the repository's stand-in for software formal verification tools
// such as p4v [3]: it reasons about the P4 program only, so it can prove
// program-level properties but is blind to target-implementation bugs --
// exactly the limitation Figure 2 of the paper gives it.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "p4/ir.h"
#include "verify/expr.h"

namespace ndb::verify {

enum class PathEnd {
    forwarded,       // reached the deparser with egress_spec != drop
    dropped,         // egress_spec == drop after a control
    parser_reject,   // explicit transition to reject (or select fall-through)
};

const char* path_end_name(PathEnd end);

struct SymHeader {
    bool valid = false;   // validity is concrete along a path
    std::vector<SExpr> fields;
};

// One stretch of packet bytes the parser consumed, in wire order.
// `header >= 0` means the whole header instance was extracted there;
// `header == -1` is skipped (advanced-over) bits with no field backing.
struct WireChunk {
    int header = -1;
    int bits = 0;
};

struct SymPath {
    SExpr condition;                 // conjunction of branch constraints
    std::vector<SymHeader> headers;  // state at the end of the path
    PathEnd end = PathEnd::forwarded;
    bool egress_assigned = false;    // was egress_spec written on this path?
    std::vector<std::pair<int, int>> table_choices;  // (table id, action id)
    std::vector<std::string> warnings;  // e.g. reads of possibly-invalid headers

    // --- execution trace, mirrors the coverage instrumentation sites ---
    // Parser transitions taken, (from, to) with to possibly kAccept/kReject.
    std::vector<std::pair<int, int>> parser_edges;
    // State the parser terminated in: kAccept or kReject.
    int final_parser_state = p4::ir::kAccept;
    // Every if_stmt evaluated, with the direction taken.  Stmt pointers are
    // stable (the IR is owned by the Program) and map to coverage ordinals
    // via p4::ir::number_branches.
    std::vector<std::pair<const p4::ir::Stmt*, bool>> branches;
    // Every action body entered (table hits and direct calls), in order.
    std::vector<int> actions_run;
    // Wire layout the parser consumed, in order.
    std::vector<WireChunk> wire;
    // Fresh action-data variables per table choice; parallel to
    // table_choices.  Needed because fresh-var names embed a counter, so a
    // later model lookup by name cannot reconstruct them.
    std::vector<std::vector<SExpr>> table_args;

    std::string describe(const p4::ir::Program& prog) const;
};

struct SymExecResult {
    std::vector<SymPath> paths;
    // True when exploration hit max_paths and dropped work: an edge with no
    // covering path in `paths` is then "not found", never "unreachable".
    bool paths_exhausted = false;
};

struct SymExecOptions {
    int max_paths = 4096;
    // Treat reads of invalid (non-metadata) headers as warnings.
    bool track_invalid_reads = true;
};

class SymExec {
public:
    // `pool` provides input variables; sharing one pool between two programs
    // identifies their packets (same header/field names = same variables),
    // which is what program-equivalence checking needs.
    SymExec(const p4::ir::Program& prog, VarPool& pool, SymExecOptions options = {});

    // Explores the whole program; returns all syntactically feasible paths
    // (callers filter with the solver if they need semantic feasibility).
    std::vector<SymPath> run();

    // Like run(), but also reports whether max_paths truncated the search.
    SymExecResult explore();

    // Final value of a field on a path.
    SExpr field(const SymPath& path, p4::ir::FieldRef ref) const;
    // Symbolic egress_spec at the end of a path.
    SExpr egress_spec(const SymPath& path) const;
    // Concatenated wire image of the path's deparsed headers (valid ones).
    SExpr wire_image(const SymPath& path) const;

    int paths_truncated() const { return truncated_; }

private:
    struct State {
        SExpr condition;
        std::vector<SymHeader> headers;
        std::vector<SExpr> locals;
        std::vector<SExpr> params;
        bool exited = false;
        bool egress_assigned = false;
        std::vector<std::pair<int, int>> table_choices;
        std::vector<std::string> warnings;
        std::vector<std::pair<int, int>> parser_edges;
        int final_parser_state = p4::ir::kAccept;
        std::vector<std::pair<const p4::ir::Stmt*, bool>> branches;
        std::vector<int> actions_run;
        std::vector<WireChunk> wire;
        std::vector<std::vector<SExpr>> table_args;
    };

    // Copies the shared trace/bookkeeping fields of `st` into a SymPath.
    static SymPath finish_path(State&& st, SExpr condition, PathEnd end);

    State initial_state();
    SExpr input_var(const std::string& name, int width);

    // Charges one unit of the max_paths exploration budget for an extra
    // branch at a fork site (parser select case, if-statement second side,
    // table action beyond the first).  Returns false -- and records the
    // truncation -- once the budget is spent, so explore() can report that
    // missing paths mean "not found within budget", never "unreachable".
    bool fork_budget() {
        if (forks_ >= options_.max_paths) {
            ++truncated_;
            return false;
        }
        ++forks_;
        return true;
    }

    void run_parser(State state, int state_id, int depth, std::vector<State>& accepted,
                    std::vector<SymPath>& finished);
    // Executes body[from..] over `state`; appends completed states to `out`.
    void exec_body(const std::vector<p4::ir::StmtPtr>& body, std::size_t from,
                   State state, std::vector<State>& out);
    SExpr eval(const p4::ir::Expr& e, State& state);
    SExpr checksum_expr(const State& state, int header, int checksum_field) const;

    const p4::ir::Program& prog_;
    VarPool& pool_;
    SymExecOptions options_;
    int truncated_ = 0;
    int forks_ = 0;  // fork-budget units consumed (see fork_budget())
    int fresh_counter_ = 0;
};

}  // namespace ndb::verify
