// Symbolic executor over the P4 IR.
//
// Explores every feasible path of the *program specification*: the parser
// state machine, both match-action controls (tables fork over their allowed
// actions with unconstrained action data) and the drop/forward decision.
// This is the repository's stand-in for software formal verification tools
// such as p4v [3]: it reasons about the P4 program only, so it can prove
// program-level properties but is blind to target-implementation bugs --
// exactly the limitation Figure 2 of the paper gives it.
#pragma once

#include <string>
#include <vector>

#include "p4/ir.h"
#include "verify/expr.h"

namespace ndb::verify {

enum class PathEnd {
    forwarded,       // reached the deparser with egress_spec != drop
    dropped,         // egress_spec == drop after a control
    parser_reject,   // explicit transition to reject (or select fall-through)
};

const char* path_end_name(PathEnd end);

struct SymHeader {
    bool valid = false;   // validity is concrete along a path
    std::vector<SExpr> fields;
};

struct SymPath {
    SExpr condition;                 // conjunction of branch constraints
    std::vector<SymHeader> headers;  // state at the end of the path
    PathEnd end = PathEnd::forwarded;
    bool egress_assigned = false;    // was egress_spec written on this path?
    std::vector<std::pair<int, int>> table_choices;  // (table id, action id)
    std::vector<std::string> warnings;  // e.g. reads of possibly-invalid headers

    std::string describe(const p4::ir::Program& prog) const;
};

struct SymExecOptions {
    int max_paths = 4096;
    // Treat reads of invalid (non-metadata) headers as warnings.
    bool track_invalid_reads = true;
};

class SymExec {
public:
    // `pool` provides input variables; sharing one pool between two programs
    // identifies their packets (same header/field names = same variables),
    // which is what program-equivalence checking needs.
    SymExec(const p4::ir::Program& prog, VarPool& pool, SymExecOptions options = {});

    // Explores the whole program; returns all syntactically feasible paths
    // (callers filter with the solver if they need semantic feasibility).
    std::vector<SymPath> run();

    // Final value of a field on a path.
    SExpr field(const SymPath& path, p4::ir::FieldRef ref) const;
    // Symbolic egress_spec at the end of a path.
    SExpr egress_spec(const SymPath& path) const;
    // Concatenated wire image of the path's deparsed headers (valid ones).
    SExpr wire_image(const SymPath& path) const;

    int paths_truncated() const { return truncated_; }

private:
    struct State {
        SExpr condition;
        std::vector<SymHeader> headers;
        std::vector<SExpr> locals;
        std::vector<SExpr> params;
        bool exited = false;
        bool egress_assigned = false;
        std::vector<std::pair<int, int>> table_choices;
        std::vector<std::string> warnings;
    };

    State initial_state();
    SExpr input_var(const std::string& name, int width);

    void run_parser(State state, int state_id, int depth, std::vector<State>& accepted,
                    std::vector<SymPath>& finished);
    // Executes body[from..] over `state`; appends completed states to `out`.
    void exec_body(const std::vector<p4::ir::StmtPtr>& body, std::size_t from,
                   State state, std::vector<State>& out);
    SExpr eval(const p4::ir::Expr& e, State& state);
    SExpr checksum_expr(const State& state, int header, int checksum_field) const;

    const p4::ir::Program& prog_;
    VarPool& pool_;
    SymExecOptions options_;
    int truncated_ = 0;
    int fresh_counter_ = 0;
};

}  // namespace ndb::verify
