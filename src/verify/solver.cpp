#include "verify/solver.h"

namespace ndb::verify {

void Solver::add(const SExpr& constraint) { blaster_.assert_true(constraint); }

SatResult Solver::check(std::uint64_t max_conflicts) {
    return sat_.solve(max_conflicts);
}

bool Solver::is_satisfiable(const SExpr& constraint) {
    Solver s;
    s.add(constraint);
    return s.check() == SatResult::sat;
}

bool Solver::is_valid(const SExpr& constraint) {
    Solver s;
    s.add(sv_lnot(constraint));
    return s.check() == SatResult::unsat;
}

}  // namespace ndb::verify
