#include "verify/symexec.h"

#include <stdexcept>

#include "util/strings.h"

namespace ndb::verify {

using p4::ir::Expr;
using p4::ir::FieldRef;
using p4::ir::Program;
using p4::ir::Stmt;

const char* path_end_name(PathEnd end) {
    switch (end) {
        case PathEnd::forwarded: return "forwarded";
        case PathEnd::dropped: return "dropped";
        case PathEnd::parser_reject: return "parser_reject";
    }
    return "?";
}

std::string SymPath::describe(const Program& prog) const {
    std::string s = std::string(path_end_name(end)) + " when " +
                    sv_to_string(condition);
    for (const auto& [t, a] : table_choices) {
        s += util::format(" [%s->%s]",
                          prog.tables[static_cast<std::size_t>(t)].name.c_str(),
                          prog.actions[static_cast<std::size_t>(a)].name.c_str());
    }
    return s;
}

SymExec::SymExec(const Program& prog, VarPool& pool, SymExecOptions options)
    : prog_(prog), pool_(pool), options_(options) {}

SymPath SymExec::finish_path(State&& st, SExpr condition, PathEnd end) {
    SymPath path;
    path.condition = std::move(condition);
    path.headers = std::move(st.headers);
    path.end = end;
    path.egress_assigned = st.egress_assigned;
    path.table_choices = std::move(st.table_choices);
    path.warnings = std::move(st.warnings);
    path.parser_edges = std::move(st.parser_edges);
    path.final_parser_state = st.final_parser_state;
    path.branches = std::move(st.branches);
    path.actions_run = std::move(st.actions_run);
    path.wire = std::move(st.wire);
    path.table_args = std::move(st.table_args);
    return path;
}

SExpr SymExec::input_var(const std::string& name, int width) {
    return pool_.get(name, width);
}

SymExec::State SymExec::initial_state() {
    State st;
    st.condition = sv_bool(true);
    st.headers.resize(prog_.headers.size());
    for (std::size_t h = 0; h < prog_.headers.size(); ++h) {
        const auto& hdr = prog_.headers[h];
        st.headers[h].valid = hdr.is_metadata;
        st.headers[h].fields.reserve(hdr.fields.size());
        for (const auto& f : hdr.fields) {
            st.headers[h].fields.push_back(sv_const(Bitvec(f.width)));
        }
    }
    // Environment inputs are symbolic: any port, any length, any time.
    st.headers[static_cast<std::size_t>(prog_.f_ingress_port.header)]
        .fields[static_cast<std::size_t>(prog_.f_ingress_port.field)] =
        input_var("std.ingress_port", 9);
    st.headers[static_cast<std::size_t>(prog_.f_packet_length.header)]
        .fields[static_cast<std::size_t>(prog_.f_packet_length.field)] =
        input_var("std.packet_length", 32);
    st.headers[static_cast<std::size_t>(prog_.f_timestamp.header)]
        .fields[static_cast<std::size_t>(prog_.f_timestamp.field)] =
        input_var("std.timestamp", 48);
    return st;
}

SExpr SymExec::eval(const Expr& e, State& state) {
    switch (e.kind) {
        case Expr::Kind::constant:
            return sv_const(e.cvalue);
        case Expr::Kind::field: {
            const auto& hdr = prog_.headers[static_cast<std::size_t>(e.fref.header)];
            if (options_.track_invalid_reads && !hdr.is_metadata &&
                !state.headers[static_cast<std::size_t>(e.fref.header)].valid) {
                state.warnings.push_back("read of field " + prog_.field_name(e.fref) +
                                         " while header may be invalid");
            }
            return state.headers[static_cast<std::size_t>(e.fref.header)]
                .fields[static_cast<std::size_t>(e.fref.field)];
        }
        case Expr::Kind::param:
            return state.params.at(static_cast<std::size_t>(e.index));
        case Expr::Kind::local:
            return state.locals.at(static_cast<std::size_t>(e.index));
        case Expr::Kind::is_valid:
            return sv_bool(state.headers[static_cast<std::size_t>(e.fref.header)].valid);
        case Expr::Kind::unary: {
            SExpr a = eval(*e.a, state);
            switch (e.un) {
                case p4::ast::UnOp::neg: return sv_neg(std::move(a));
                case p4::ast::UnOp::bnot: return sv_not(std::move(a));
                case p4::ast::UnOp::lnot: return sv_lnot(std::move(a));
            }
            break;
        }
        case Expr::Kind::binary: {
            using p4::ast::BinOp;
            SExpr a = eval(*e.a, state);
            SExpr b = eval(*e.b, state);
            switch (e.bin) {
                case BinOp::add: return sv_add(a, b);
                case BinOp::sub: return sv_sub(a, b);
                case BinOp::mul: return sv_mul(a, b);
                case BinOp::band: return sv_and(a, b);
                case BinOp::bor: return sv_or(a, b);
                case BinOp::bxor: return sv_xor(a, b);
                case BinOp::shl: return sv_shl(a, sv_resize(b, a->width));
                case BinOp::shr: return sv_lshr(a, sv_resize(b, a->width));
                case BinOp::eq: return sv_eq(a, b);
                case BinOp::ne: return sv_ne(a, b);
                case BinOp::lt: return sv_ult(a, b);
                case BinOp::le: return sv_ule(a, b);
                case BinOp::gt: return sv_ult(b, a);
                case BinOp::ge: return sv_ule(b, a);
                case BinOp::land: return sv_land(a, b);
                case BinOp::lor: return sv_lor(a, b);
                case BinOp::concat: return sv_concat(a, b);
            }
            break;
        }
        case Expr::Kind::ternary:
            return sv_ite(eval(*e.c, state), eval(*e.a, state), eval(*e.b, state));
        case Expr::Kind::slice:
            return sv_slice(eval(*e.a, state), e.hi, e.lo);
        case Expr::Kind::cast:
            return sv_resize(eval(*e.a, state), e.width);
    }
    throw std::logic_error("SymExec::eval: unreachable");
}

SExpr SymExec::checksum_expr(const State& state, int header, int checksum_field) const {
    const auto& hdr = prog_.headers[static_cast<std::size_t>(header)];
    // Header image with the checksum field zeroed.
    SExpr image = sv_const(Bitvec(0));
    for (std::size_t f = 0; f < hdr.fields.size(); ++f) {
        const SExpr v = static_cast<int>(f) == checksum_field
                            ? sv_const(Bitvec(hdr.fields[f].width))
                            : state.headers[static_cast<std::size_t>(header)].fields[f];
        image = sv_concat(image, v);
    }
    // Pad to a 16-bit boundary on the right (low bits), like byte padding.
    const int pad = (16 - image->width % 16) % 16;
    if (pad) image = sv_concat(image, sv_const(Bitvec(pad)));
    // Sum the 16-bit words in a 32-bit accumulator; MSB-first words.
    SExpr sum = sv_const(Bitvec(32));
    for (int off = 0; off < image->width; off += 16) {
        const int hi = image->width - 1 - off;
        sum = sv_add(sum, sv_resize(sv_slice(image, hi, hi - 15), 32));
    }
    // Three folds bring any 32-bit ones-complement sum into 16 bits.
    for (int i = 0; i < 3; ++i) {
        sum = sv_add(sv_resize(sv_slice(sum, 15, 0), 32),
                     sv_resize(sv_slice(sum, 31, 16), 32));
    }
    return sv_not(sv_slice(sum, 15, 0));
}

void SymExec::run_parser(State state, int state_id, int depth,
                         std::vector<State>& accepted,
                         std::vector<SymPath>& finished) {
    if (state_id == p4::ir::kAccept) {
        accepted.push_back(std::move(state));
        return;
    }
    if (state_id == p4::ir::kReject || depth > 64) {
        state.final_parser_state = p4::ir::kReject;
        SExpr cond = state.condition;
        finished.push_back(
            finish_path(std::move(state), std::move(cond), PathEnd::parser_reject));
        return;
    }
    const auto& ps = prog_.parser_states[static_cast<std::size_t>(state_id)];
    for (const auto& op : ps.ops) {
        switch (op.kind) {
            case p4::ir::ParserOp::Kind::extract: {
                auto& inst = state.headers[static_cast<std::size_t>(op.header)];
                const auto& hdr = prog_.headers[static_cast<std::size_t>(op.header)];
                inst.valid = true;
                for (std::size_t f = 0; f < hdr.fields.size(); ++f) {
                    // Packet content is unconstrained: every extracted field
                    // is an input variable named after the header instance.
                    inst.fields[f] = input_var(hdr.name + "." + hdr.fields[f].name,
                                               hdr.fields[f].width);
                }
                state.wire.push_back({op.header, hdr.size_bits});
                break;
            }
            case p4::ir::ParserOp::Kind::advance:
                // No symbolic effect, but the bytes occupy wire positions.
                state.wire.push_back({-1, op.bits});
                break;
            case p4::ir::ParserOp::Kind::assign: {
                const SExpr v = eval(*op.value, state);
                state.headers[static_cast<std::size_t>(op.dst.header)]
                    .fields[static_cast<std::size_t>(op.dst.field)] =
                    sv_resize(v, prog_.field(op.dst).width);
                break;
            }
        }
    }
    const auto& t = ps.transition;
    if (t.kind == p4::ir::Transition::Kind::direct) {
        state.parser_edges.emplace_back(state_id, t.next_state);
        run_parser(std::move(state), t.next_state, depth + 1, accepted, finished);
        return;
    }
    // Select: evaluate keys once against the current state.
    std::vector<SExpr> keys;
    keys.reserve(t.keys.size());
    for (const auto& k : t.keys) keys.push_back(eval(*k, state));

    SExpr none_before = sv_bool(true);  // no earlier case matched
    bool first_case = true;             // the first live case rides for free
    for (const auto& c : t.cases) {
        SExpr match = sv_bool(true);
        for (std::size_t i = 0; i < c.sets.size(); ++i) {
            const auto& ks = c.sets[i];
            if (ks.any) continue;
            match = sv_land(match, sv_eq(sv_and(keys[i], sv_const(ks.mask)),
                                         sv_const(ks.value.band(ks.mask))));
        }
        const SExpr taken = sv_land(state.condition, sv_land(none_before, match));
        if (!sv_is_false(taken) && (first_case || fork_budget())) {
            first_case = false;
            State branch = state;
            branch.condition = taken;
            branch.parser_edges.emplace_back(state_id, c.next_state);
            run_parser(std::move(branch), c.next_state, depth + 1, accepted, finished);
        }
        none_before = sv_land(none_before, sv_lnot(match));
        if (sv_is_false(none_before)) return;  // later cases unreachable
    }
    // No case matched: implicit reject.
    const SExpr fallthrough = sv_land(state.condition, none_before);
    if (!sv_is_false(fallthrough) && (first_case || fork_budget())) {
        State branch = std::move(state);
        branch.condition = fallthrough;
        branch.parser_edges.emplace_back(state_id, p4::ir::kReject);
        run_parser(std::move(branch), p4::ir::kReject, depth + 1, accepted, finished);
    }
}

void SymExec::exec_body(const std::vector<p4::ir::StmtPtr>& body, std::size_t from,
                        State state, std::vector<State>& out) {
    for (std::size_t i = from; i < body.size(); ++i) {
        if (state.exited) break;
        const Stmt& s = *body[i];
        switch (s.kind) {
            case Stmt::Kind::assign_field: {
                const SExpr v = eval(*s.value, state);
                if (s.dst == prog_.f_egress_spec) state.egress_assigned = true;
                state.headers[static_cast<std::size_t>(s.dst.header)]
                    .fields[static_cast<std::size_t>(s.dst.field)] =
                    sv_resize(v, prog_.field(s.dst).width);
                continue;
            }
            case Stmt::Kind::assign_local:
                state.locals.at(static_cast<std::size_t>(s.local_index)) =
                    eval(*s.value, state);
                continue;
            case Stmt::Kind::assign_slice: {
                const SExpr v = eval(*s.value, state);
                auto& slot = state.headers[static_cast<std::size_t>(s.dst.header)]
                                 .fields[static_cast<std::size_t>(s.dst.field)];
                const int w = slot->width;
                SExpr result = v;
                if (s.hi + 1 < w) {
                    result = sv_concat(sv_slice(slot, w - 1, s.hi + 1), result);
                }
                if (s.lo > 0) {
                    result = sv_concat(result, sv_slice(slot, s.lo - 1, 0));
                }
                slot = result;
                continue;
            }
            case Stmt::Kind::if_stmt: {
                const SExpr cond = eval(*s.cond, state);
                const bool then_viable = !sv_is_false(cond);
                // Fork; each branch finishes the remainder of this body.
                if (then_viable) {
                    State then_state = state;
                    then_state.condition = sv_land(then_state.condition, cond);
                    then_state.branches.emplace_back(&s, true);
                    if (!sv_is_false(then_state.condition)) {
                        std::vector<State> after_then;
                        exec_body(s.then_body, 0, std::move(then_state), after_then);
                        for (auto& st : after_then) {
                            exec_body(body, i + 1, std::move(st), out);
                        }
                    }
                }
                const SExpr ncond = sv_lnot(cond);
                // The second live branch is a genuine fork and consumes
                // exploration budget; the first continuation is free.
                if (!sv_is_false(ncond) && (!then_viable || fork_budget())) {
                    State else_state = std::move(state);
                    else_state.condition = sv_land(else_state.condition, ncond);
                    else_state.branches.emplace_back(&s, false);
                    if (!sv_is_false(else_state.condition)) {
                        std::vector<State> after_else;
                        exec_body(s.else_body, 0, std::move(else_state), after_else);
                        for (auto& st : after_else) {
                            exec_body(body, i + 1, std::move(st), out);
                        }
                    }
                }
                return;  // both branches continued the body themselves
            }
            case Stmt::Kind::apply_table: {
                const auto& table = prog_.tables[static_cast<std::size_t>(s.table)];
                // The control plane is unconstrained: any allowed action (or
                // the default) may run, with arbitrary action data.  Fork per
                // action -- the sound over-approximation p4v uses absent
                // control-plane assumptions.
                bool first_action = true;
                for (const int action_id : table.actions) {
                    // Every action beyond the first is a fork.
                    if (!first_action && !fork_budget()) break;
                    first_action = false;
                    const auto& action =
                        prog_.actions[static_cast<std::size_t>(action_id)];
                    State branch = state;
                    branch.table_choices.emplace_back(s.table, action_id);
                    branch.actions_run.push_back(action_id);
                    // Fresh unconstrained action data per (table, action).
                    std::vector<SExpr> saved_params = branch.params;
                    std::vector<SExpr> saved_locals = branch.locals;
                    branch.params.clear();
                    for (std::size_t p = 0; p < action.param_widths.size(); ++p) {
                        branch.params.push_back(pool_.fresh(
                            action.param_widths[p],
                            util::format("%s.%s.arg%zu#%d", table.name.c_str(),
                                         action.name.c_str(), p, fresh_counter_++)));
                    }
                    branch.table_args.push_back(branch.params);
                    branch.locals.assign(action.local_widths.size(), nullptr);
                    for (std::size_t l = 0; l < action.local_widths.size(); ++l) {
                        branch.locals[l] = sv_const(Bitvec(action.local_widths[l]));
                    }
                    std::vector<State> after_action;
                    exec_body(action.body, 0, std::move(branch), after_action);
                    for (auto& st : after_action) {
                        st.params = saved_params;
                        st.locals = saved_locals;
                        st.exited = false;
                        exec_body(body, i + 1, std::move(st), out);
                    }
                }
                return;
            }
            case Stmt::Kind::call_action: {
                const auto& action = prog_.actions[static_cast<std::size_t>(s.action)];
                State branch = std::move(state);
                branch.actions_run.push_back(s.action);
                std::vector<SExpr> saved_params = branch.params;
                std::vector<SExpr> saved_locals = branch.locals;
                std::vector<SExpr> args;
                for (const auto& a : s.action_args) args.push_back(eval(*a, branch));
                branch.params = std::move(args);
                branch.locals.clear();
                for (const int w : action.local_widths) {
                    branch.locals.push_back(sv_const(Bitvec(w)));
                }
                std::vector<State> after_action;
                exec_body(action.body, 0, std::move(branch), after_action);
                for (auto& st : after_action) {
                    st.params = saved_params;
                    st.locals = saved_locals;
                    st.exited = false;
                    exec_body(body, i + 1, std::move(st), out);
                }
                return;
            }
            case Stmt::Kind::set_valid:
                state.headers[static_cast<std::size_t>(s.dst.header)].valid =
                    s.make_valid;
                continue;
            case Stmt::Kind::extern_op: {
                switch (s.ext) {
                    case p4::ir::ExternKind::mark_to_drop:
                        state.headers[static_cast<std::size_t>(
                                          prog_.f_egress_spec.header)]
                            .fields[static_cast<std::size_t>(
                                prog_.f_egress_spec.field)] =
                            sv_const_u(9, p4::ir::kDropPort);
                        state.egress_assigned = true;
                        continue;
                    case p4::ir::ExternKind::register_read: {
                        // Device state is unconstrained at verification time.
                        const int w = prog_.field(s.ext_dst).width;
                        state.headers[static_cast<std::size_t>(s.ext_dst.header)]
                            .fields[static_cast<std::size_t>(s.ext_dst.field)] =
                            pool_.fresh(w, util::format("reg#%d", fresh_counter_++));
                        continue;
                    }
                    case p4::ir::ExternKind::register_write:
                    case p4::ir::ExternKind::counter_count:
                        continue;  // no observable effect on this packet
                    case p4::ir::ExternKind::meter_execute: {
                        const int w = prog_.field(s.ext_dst).width;
                        const SExpr color =
                            pool_.fresh(w, util::format("meter#%d", fresh_counter_++));
                        // Colors are 0..2.
                        state.condition = sv_land(
                            state.condition, sv_ule(color, sv_const_u(w, 2)));
                        state.headers[static_cast<std::size_t>(s.ext_dst.header)]
                            .fields[static_cast<std::size_t>(s.ext_dst.field)] = color;
                        continue;
                    }
                    case p4::ir::ExternKind::hash: {
                        // Hashes are modeled as uninterpreted values.
                        const int w = prog_.field(s.ext_dst).width;
                        state.headers[static_cast<std::size_t>(s.ext_dst.header)]
                            .fields[static_cast<std::size_t>(s.ext_dst.field)] =
                            pool_.fresh(w, util::format("hash#%d", fresh_counter_++));
                        continue;
                    }
                    case p4::ir::ExternKind::checksum_update: {
                        const SExpr csum =
                            checksum_expr(state, s.hash_header, s.checksum_field);
                        const int w =
                            prog_.headers[static_cast<std::size_t>(s.hash_header)]
                                .fields[static_cast<std::size_t>(s.checksum_field)]
                                .width;
                        state.headers[static_cast<std::size_t>(s.hash_header)]
                            .fields[static_cast<std::size_t>(s.checksum_field)] =
                            sv_resize(csum, w);
                        continue;
                    }
                    case p4::ir::ExternKind::none:
                        continue;
                }
                continue;
            }
            case Stmt::Kind::exit_pipeline:
                state.exited = true;
                continue;
        }
    }
    out.push_back(std::move(state));
}

std::vector<SymPath> SymExec::run() { return explore().paths; }

SymExecResult SymExec::explore() {
    std::vector<SymPath> finished;
    std::vector<State> accepted;
    run_parser(initial_state(), prog_.start_state, 0, accepted, finished);

    const SExpr drop_spec = sv_const_u(9, p4::ir::kDropPort);
    const auto egress_spec_of = [&](const State& st) {
        return st.headers[static_cast<std::size_t>(prog_.f_egress_spec.header)]
            .fields[static_cast<std::size_t>(prog_.f_egress_spec.field)];
    };
    for (auto& st : accepted) {
        st.locals.clear();
        for (const int w : prog_.ingress.local_widths) {
            st.locals.push_back(sv_const(Bitvec(w)));
        }
        std::vector<State> after_ingress;
        exec_body(prog_.ingress.body, 0, std::move(st), after_ingress);

        for (auto& ing : after_ingress) {
            const SExpr spec = egress_spec_of(ing);
            const SExpr is_drop = sv_eq(spec, drop_spec);
            // Drop branch.
            const SExpr drop_cond = sv_land(ing.condition, is_drop);
            if (!sv_is_false(drop_cond)) {
                finished.push_back(
                    finish_path(State(ing), drop_cond, PathEnd::dropped));
            }
            // Forward branch: run egress if present.
            const SExpr fwd_cond = sv_land(ing.condition, sv_lnot(is_drop));
            if (sv_is_false(fwd_cond)) continue;
            State fwd = std::move(ing);
            fwd.condition = fwd_cond;
            // egress_port := egress_spec
            fwd.headers[static_cast<std::size_t>(prog_.f_egress_port.header)]
                .fields[static_cast<std::size_t>(prog_.f_egress_port.field)] = spec;
            std::vector<State> after_egress;
            if (prog_.egress) {
                fwd.exited = false;
                fwd.locals.clear();
                for (const int w : prog_.egress->local_widths) {
                    fwd.locals.push_back(sv_const(Bitvec(w)));
                }
                exec_body(prog_.egress->body, 0, std::move(fwd), after_egress);
            } else {
                after_egress.push_back(std::move(fwd));
            }
            for (auto& eg : after_egress) {
                const SExpr spec2 = egress_spec_of(eg);
                const SExpr drop2 = sv_eq(spec2, drop_spec);
                const SExpr cond_drop2 = sv_land(eg.condition, drop2);
                if (!sv_is_false(cond_drop2)) {
                    finished.push_back(
                        finish_path(State(eg), cond_drop2, PathEnd::dropped));
                }
                const SExpr cond_fwd2 = sv_land(eg.condition, sv_lnot(drop2));
                if (sv_is_false(cond_fwd2)) continue;
                finished.push_back(
                    finish_path(std::move(eg), cond_fwd2, PathEnd::forwarded));
            }
        }
    }
    SymExecResult result;
    result.paths = std::move(finished);
    result.paths_exhausted = truncated_ > 0;
    return result;
}

SExpr SymExec::field(const SymPath& path, FieldRef ref) const {
    return path.headers.at(static_cast<std::size_t>(ref.header))
        .fields.at(static_cast<std::size_t>(ref.field));
}

SExpr SymExec::egress_spec(const SymPath& path) const {
    return path.headers[static_cast<std::size_t>(prog_.f_egress_spec.header)]
        .fields[static_cast<std::size_t>(prog_.f_egress_spec.field)];
}

SExpr SymExec::wire_image(const SymPath& path) const {
    SExpr image = sv_const(Bitvec(0));
    for (const int h : prog_.deparse_order) {
        if (!path.headers[static_cast<std::size_t>(h)].valid) continue;
        for (const auto& f : path.headers[static_cast<std::size_t>(h)].fields) {
            image = sv_concat(image, f);
        }
    }
    return image;
}

}  // namespace ndb::verify
