#include "verify/concolic.h"

#include <algorithm>
#include <utility>

#include "packet/packet.h"
#include "util/strings.h"
#include "verify/solver.h"

namespace ndb::verify {

using coverage::EdgeSite;
using coverage::Site;
using p4::ir::kAccept;
using p4::ir::kReject;

const char* target_status_name(TargetStatus status) {
    switch (status) {
        case TargetStatus::solved: return "solved";
        case TargetStatus::unsat: return "unsat";
        case TargetStatus::unknown: return "unknown";
        case TargetStatus::no_path: return "no_path";
    }
    return "?";
}

ConcolicSynthesizer::ConcolicSynthesizer(const p4::ir::Program& prog,
                                         ConcolicOptions options)
    : prog_(prog), options_(options) {}

void ConcolicSynthesizer::ensure_explored() {
    if (explored_) return;
    explored_ = true;
    SymExecOptions opts;
    opts.max_paths = options_.max_paths;
    // Invalid-read tracking only produces warnings; skip the bookkeeping.
    opts.track_invalid_reads = false;
    SymExec exec(prog_, pool_, opts);
    SymExecResult result = exec.explore();
    paths_ = std::move(result.paths);
    paths_exhausted_ = result.paths_exhausted;

    const auto branch_ids = p4::ir::number_branches(prog_);
    for (const auto& [stmt, id] : branch_ids) {
        if (id >= branch_by_ordinal_.size()) branch_by_ordinal_.resize(id + 1);
        branch_by_ordinal_[id] = stmt;
    }
}

std::vector<const SymPath*> ConcolicSynthesizer::candidates(
    const EdgeSite& site) const {
    std::vector<const SymPath*> out;
    for (const auto& path : paths_) {
        bool match = false;
        switch (site.kind) {
            case Site::parser_edge: {
                const std::pair<int, int> edge{static_cast<int>(site.a),
                                               static_cast<int>(site.b)};
                match = std::find(path.parser_edges.begin(),
                                  path.parser_edges.end(),
                                  edge) != path.parser_edges.end();
                break;
            }
            case Site::parser_finish:
                match = path.final_parser_state == static_cast<int>(site.a);
                break;
            case Site::table:
                // Only the miss side: without installed entries every apply
                // misses concretely, so any path applying the table works.
                match = site.b == 0 &&
                        std::any_of(path.table_choices.begin(),
                                    path.table_choices.end(), [&](const auto& tc) {
                                        return tc.first == static_cast<int>(site.a);
                                    });
                break;
            case Site::action:
                match = std::find(path.actions_run.begin(), path.actions_run.end(),
                                  static_cast<int>(site.a)) !=
                        path.actions_run.end();
                break;
            case Site::branch: {
                const std::size_t ord = static_cast<std::size_t>(site.a);
                const p4::ir::Stmt* stmt =
                    ord < branch_by_ordinal_.size() ? branch_by_ordinal_[ord]
                                                    : nullptr;
                if (!stmt) break;
                const std::pair<const p4::ir::Stmt*, bool> want{stmt, site.b != 0};
                match = std::find(path.branches.begin(), path.branches.end(),
                                  want) != path.branches.end();
                break;
            }
        }
        if (match) out.push_back(&path);
    }
    return out;
}

TargetStatus ConcolicSynthesizer::solve_path(const SymPath& path,
                                             ConcolicSeed& seed,
                                             std::string& detail) {
    // Packet geometry first: the length constraint must name the exact size
    // of the packet we will emit, or length-sensitive paths drift.
    int parsed_bits = 0;
    for (const auto& chunk : path.wire) parsed_bits += chunk.bits;
    const int parsed_bytes = (parsed_bits + 7) / 8;
    const int length = std::max(parsed_bytes + options_.pad_bytes,
                                options_.min_packet_bytes);

    Solver solver;
    solver.add(path.condition);
    // Pin the execution environment to what SimDevice + the generator
    // actually present: otherwise the model picks, say, port 300, and the
    // synthesized seed dies in injection instead of lighting its edge.
    const SExpr port = pool_.get("std.ingress_port", 9);
    solver.add(sv_ult(port, sv_const_u(9, static_cast<std::uint64_t>(
                                              options_.num_ports))));
    solver.add(sv_eq(pool_.get("std.packet_length", 32),
                     sv_const_u(32, static_cast<std::uint64_t>(length))));
    solver.add(sv_eq(pool_.get("std.timestamp", 48),
                     sv_const_u(48, options_.timestamp_us)));
    // Device state at scenario start: registers zeroed, meters unconfigured
    // (= everything green, color 0).  Hash outputs stay free -- they cannot
    // be steered, so hash-dependent seeds may fail the caller's relight
    // check and be discarded there.
    const auto& vars = pool_.vars();
    for (std::size_t id = 0; id < vars.size(); ++id) {
        const auto& [name, width] = vars[id];
        if (util::starts_with(name, "reg#") || util::starts_with(name, "meter#")) {
            solver.add(sv_eq(sv_var(static_cast<int>(id), width, name),
                             sv_const(Bitvec(width))));
        }
    }

    const SatResult verdict = solver.check(options_.max_conflicts);
    if (verdict == SatResult::unsat) {
        detail = "candidate path unsat under concrete environment";
        return TargetStatus::unsat;
    }
    if (verdict == SatResult::unknown) {
        detail = util::format("SAT conflict budget (%llu) exhausted",
                              static_cast<unsigned long long>(
                                  options_.max_conflicts));
        return TargetStatus::unknown;
    }

    // Decode the wire: walk the chunks the parser consumed, depositing each
    // extracted field's model value at its offset (MSB-first, like
    // ParserEngine::run's extract_bits).  Advanced-over and padding bytes
    // stay zero -- unconstrained variables read back as zero from the
    // blaster, so the two agree.
    packet::Packet pkt = packet::Packet::zeros(static_cast<std::size_t>(length));
    std::size_t cursor = 0;
    for (const auto& chunk : path.wire) {
        if (chunk.header < 0) {
            cursor += static_cast<std::size_t>(chunk.bits);
            continue;
        }
        const auto& hdr = prog_.headers[static_cast<std::size_t>(chunk.header)];
        for (const auto& field : hdr.fields) {
            const Bitvec value =
                solver.eval(pool_.get(hdr.name + "." + field.name, field.width));
            pkt.deposit_bits(cursor + static_cast<std::size_t>(field.offset),
                             value);
        }
        cursor += static_cast<std::size_t>(hdr.size_bits);
    }
    seed.packet = pkt.data();
    seed.ingress_port =
        static_cast<std::uint32_t>(solver.eval(port).to_u64());

    // Steer every applied table to the path's chosen action via its default
    // (no entries installed => every lookup misses => default runs).
    seed.defaults.clear();
    for (std::size_t i = 0; i < path.table_choices.size(); ++i) {
        const auto& [table_id, action_id] = path.table_choices[i];
        const auto& table = prog_.tables[static_cast<std::size_t>(table_id)];
        const auto& action = prog_.actions[static_cast<std::size_t>(action_id)];
        ConcolicSeed::Default def;
        def.table = table.name;
        def.action = action.name;
        for (const SExpr& arg : path.table_args[i]) {
            def.args.push_back(solver.eval(arg));
        }
        const auto prev = std::find_if(
            seed.defaults.begin(), seed.defaults.end(),
            [&](const auto& d) { return d.table == def.table; });
        if (prev == seed.defaults.end()) {
            seed.defaults.push_back(std::move(def));
            continue;
        }
        if (prev->action != def.action || prev->args != def.args) {
            // The path applies one table twice with diverging choices; a
            // single default cannot realize it.
            detail = util::format("conflicting defaults for table %s",
                                  table.name.c_str());
            return TargetStatus::no_path;
        }
    }
    detail = util::format("%s path, %d wire bytes, %zu defaults",
                          path_end_name(path.end), length,
                          seed.defaults.size());
    return TargetStatus::solved;
}

ConcolicResult ConcolicSynthesizer::synthesize(
    const std::vector<EdgeSite>& targets) {
    ensure_explored();
    ConcolicResult result;
    result.paths_exhausted = paths_exhausted_;
    for (const EdgeSite& site : targets) {
        TargetOutcome outcome;
        outcome.site = site;
        if (site.kind == Site::table && site.b != 0) {
            outcome.status = TargetStatus::no_path;
            outcome.detail = "table hit needs an installed entry; not synthesized";
            result.outcomes.push_back(std::move(outcome));
            continue;
        }
        const auto paths = candidates(site);
        bool saw_unknown = false;
        bool saw_unsat = false;
        std::string last_detail;
        const int attempts = std::min<int>(options_.max_attempts_per_site,
                                           static_cast<int>(paths.size()));
        for (int i = 0; i < attempts; ++i) {
            ConcolicSeed seed;
            seed.target = site;
            std::string detail;
            const TargetStatus status = solve_path(*paths[static_cast<std::size_t>(i)],
                                                   seed, detail);
            if (status == TargetStatus::solved) {
                outcome.status = TargetStatus::solved;
                outcome.detail = std::move(detail);
                result.seeds.push_back(std::move(seed));
                break;
            }
            saw_unknown = saw_unknown || status == TargetStatus::unknown;
            saw_unsat = saw_unsat || status == TargetStatus::unsat;
            last_detail = std::move(detail);
        }
        if (outcome.status != TargetStatus::solved) {
            if (saw_unknown) {
                outcome.status = TargetStatus::unknown;
            } else if (saw_unsat) {
                outcome.status = TargetStatus::unsat;
            } else {
                outcome.status = TargetStatus::no_path;
                last_detail = paths.empty()
                                  ? (paths_exhausted_
                                         ? "no covering path (exploration "
                                           "truncated at max_paths)"
                                         : "no covering path")
                                  : last_detail;
            }
            outcome.detail = std::move(last_detail);
        }
        result.outcomes.push_back(std::move(outcome));
    }
    return result;
}

}  // namespace ndb::verify
