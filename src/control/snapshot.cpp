#include "control/snapshot.h"

#include "util/strings.h"

namespace ndb::control {

std::string StatusSnapshot::to_string() const {
    std::string s = util::format(
        "status @%llu ns\n"
        "  parser: in=%llu accepted=%llu rejected=%llu errors=%llu\n"
        "  drops: ingress=%llu egress=%llu  forwarded=%llu misdirected=%llu\n",
        static_cast<unsigned long long>(taken_at_ns),
        static_cast<unsigned long long>(stages.parser_in),
        static_cast<unsigned long long>(stages.parser_accepted),
        static_cast<unsigned long long>(stages.parser_rejected),
        static_cast<unsigned long long>(stages.parser_errors),
        static_cast<unsigned long long>(stages.ingress_dropped),
        static_cast<unsigned long long>(stages.egress_dropped),
        static_cast<unsigned long long>(stages.forwarded),
        static_cast<unsigned long long>(misdirected));
    for (std::size_t i = 0; i < ports.size(); ++i) {
        const auto& p = ports[i];
        if (p.rx_packets == 0 && p.tx_packets == 0) continue;
        s += util::format("  port %zu: rx=%llu/%lluB tx=%llu/%lluB\n", i,
                          static_cast<unsigned long long>(p.rx_packets),
                          static_cast<unsigned long long>(p.rx_bytes),
                          static_cast<unsigned long long>(p.tx_packets),
                          static_cast<unsigned long long>(p.tx_bytes));
    }
    for (const auto& t : tables) {
        s += util::format("  table %s: hits=%llu misses=%llu entries=%llu/%llu\n",
                          t.name.c_str(), static_cast<unsigned long long>(t.hits),
                          static_cast<unsigned long long>(t.misses),
                          static_cast<unsigned long long>(t.entries),
                          static_cast<unsigned long long>(t.capacity));
    }
    for (const auto& e : externs) {
        s += util::format("  %s %s: cells=%llu state=%016llx", e.kind.c_str(),
                          e.name.c_str(), static_cast<unsigned long long>(e.cells),
                          static_cast<unsigned long long>(e.state_hash));
        if (e.unconfigured_meters > 0) {
            s += util::format(" unconfigured=%llu", static_cast<unsigned long long>(
                                                        e.unconfigured_meters));
        }
        s += "\n";
    }
    return s;
}

StatusSnapshot StatusSnapshot::delta_since(const StatusSnapshot& older) const {
    StatusSnapshot d = *this;
    d.stages.parser_in -= older.stages.parser_in;
    d.stages.parser_accepted -= older.stages.parser_accepted;
    d.stages.parser_rejected -= older.stages.parser_rejected;
    d.stages.parser_errors -= older.stages.parser_errors;
    d.stages.ingress_dropped -= older.stages.ingress_dropped;
    d.stages.egress_dropped -= older.stages.egress_dropped;
    d.stages.forwarded -= older.stages.forwarded;
    d.misdirected -= older.misdirected;
    for (std::size_t i = 0; i < d.ports.size() && i < older.ports.size(); ++i) {
        d.ports[i].rx_packets -= older.ports[i].rx_packets;
        d.ports[i].rx_bytes -= older.ports[i].rx_bytes;
        d.ports[i].tx_packets -= older.ports[i].tx_packets;
        d.ports[i].tx_bytes -= older.ports[i].tx_bytes;
    }
    for (std::size_t i = 0; i < d.tables.size() && i < older.tables.size(); ++i) {
        d.tables[i].hits -= older.tables[i].hits;
        d.tables[i].misses -= older.tables[i].misses;
    }
    return d;
}

std::int64_t StatusSnapshot::unaccounted_packets() const {
    const auto in = static_cast<std::int64_t>(stages.parser_in);
    // `forwarded` counts misdirected packets too, but they never left on a
    // port, so only forwarded - misdirected are accounted for as delivered.
    const auto accounted = static_cast<std::int64_t>(
        stages.parser_rejected + stages.parser_errors + stages.ingress_dropped +
        stages.egress_dropped + stages.forwarded - misdirected);
    return in - accounted;
}

}  // namespace ndb::control
