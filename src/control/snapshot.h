// Device status snapshots: the periodic internal status information of the
// paper's status-monitoring use-case.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataplane/pipeline.h"

namespace ndb::control {

struct PortCounters {
    std::uint64_t rx_packets = 0;
    std::uint64_t rx_bytes = 0;
    std::uint64_t tx_packets = 0;
    std::uint64_t tx_bytes = 0;
};

struct TableStatus {
    std::string name;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t entries = 0;
    std::uint64_t capacity = 0;
};

// Per-extern state summary: the device's view of its own per-flow state.
// `state_hash` digests register contents / counter values, so two devices
// that processed the same traffic but aged, dropped, or misplaced flow
// entries differently disagree here even when every packet still came out
// identical -- the "state" divergence class.
struct ExternStatus {
    std::string name;
    std::string kind;  // "register" | "counter" | "meter"
    std::uint64_t cells = 0;
    std::uint64_t state_hash = 0;
    // Meters only: cells still coloring everything green because no
    // control-plane configure ever reached them.  A policer with a nonzero
    // value here enforces nothing.
    std::uint64_t unconfigured_meters = 0;
};

struct StatusSnapshot {
    std::uint64_t taken_at_ns = 0;
    dataplane::StageCounters stages;
    std::vector<PortCounters> ports;
    std::vector<TableStatus> tables;
    std::vector<ExternStatus> externs;

    // Forwarded packets whose egress port does not exist on the device: the
    // pipeline counted them as forwarded, but they never reached any queue.
    // Real hardware discards these silently; the counter makes the loss
    // first-class instead of leaving it to observed-vs-injected arithmetic.
    std::uint64_t misdirected = 0;

    std::string to_string() const;

    // Counter deltas between two snapshots (this - older).
    StatusSnapshot delta_since(const StatusSnapshot& older) const;

    // Total packets that entered but neither left on a real port nor were
    // accounted as dropped: nonzero values indicate silent loss inside the
    // device.  Misdirected packets count as lost (the pipeline's `forwarded`
    // includes them, but no port ever saw them).
    std::int64_t unaccounted_packets() const;
};

}  // namespace ndb::control
