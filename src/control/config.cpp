#include "control/config.h"

#include "control/runtime.h"

namespace ndb::control {

Status apply_config_op(RuntimeApi& rt, const ConfigOp& op) {
    switch (op.kind) {
        case ConfigOp::Kind::add_entry:
            return rt.add_entry(rt.resolve_table(op.target), op.entry);
        case ConfigOp::Kind::set_default_action:
            return rt.set_default_action(rt.resolve_table(op.target), op.action,
                                         op.action_args);
        case ConfigOp::Kind::write_register:
            return rt.write_register(rt.resolve_extern(op.target), op.index,
                                     op.value);
        case ConfigOp::Kind::configure_meter:
            return rt.configure_meter(op.target, op.index, op.meter);
    }
    return Status::failure("unknown config op");
}

std::vector<Status> RuntimeApi::apply(std::span<const ConfigOp> ops) {
    std::vector<Status> statuses;
    statuses.reserve(ops.size());
    for (const ConfigOp& op : ops) statuses.push_back(apply_config_op(*this, op));
    return statuses;
}

}  // namespace ndb::control
