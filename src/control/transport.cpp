#include "control/transport.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/strings.h"

namespace ndb::control {

// --- fault plans --------------------------------------------------------------

FaultPlan FaultPlan::parse(const std::string& spec) {
    FaultPlan plan;
    const std::string_view text = util::trim(spec);
    if (text.empty() || text == "none") return plan;
    for (const std::string& field : util::split(text, ',')) {
        const std::string_view entry = util::trim(field);
        if (entry.empty()) continue;
        const std::size_t eq = entry.find('=');
        if (eq == std::string_view::npos) {
            throw std::invalid_argument(util::format(
                "fault plan: '%.*s' is not key=value",
                static_cast<int>(entry.size()), entry.data()));
        }
        const std::string key(util::trim(entry.substr(0, eq)));
        const std::string value(util::trim(entry.substr(eq + 1)));
        if (key == "seed") {
            if (!util::parse_u64(value, plan.seed)) {
                throw std::invalid_argument(
                    util::format("fault plan: bad seed '%s'", value.c_str()));
            }
            continue;
        }
        if (key == "delay_ticks") {
            std::uint64_t ticks = 0;
            if (!util::parse_u64(value, ticks) || ticks == 0 || ticks > 1024) {
                throw std::invalid_argument(util::format(
                    "fault plan: delay_ticks '%s' outside [1, 1024]",
                    value.c_str()));
            }
            plan.delay_ticks = static_cast<std::uint32_t>(ticks);
            continue;
        }
        double* slot = nullptr;
        if (key == "drop") slot = &plan.drop;
        else if (key == "dup" || key == "duplicate") slot = &plan.duplicate;
        else if (key == "reorder") slot = &plan.reorder;
        else if (key == "truncate") slot = &plan.truncate;
        else if (key == "corrupt") slot = &plan.corrupt;
        else if (key == "delay") slot = &plan.delay;
        if (slot == nullptr) {
            throw std::invalid_argument(
                util::format("fault plan: unknown key '%s'", key.c_str()));
        }
        double p = 0.0;
        if (!util::parse_double(value, p) || p < 0.0 || p > 1.0) {
            throw std::invalid_argument(util::format(
                "fault plan: %s probability '%s' outside [0, 1]", key.c_str(),
                value.c_str()));
        }
        *slot = p;
    }
    return plan;
}

std::string FaultPlan::spec() const {
    if (!enabled()) return "none";
    return util::format(
        "seed=%llu,drop=%g,dup=%g,reorder=%g,truncate=%g,corrupt=%g,"
        "delay=%g,delay_ticks=%u",
        static_cast<unsigned long long>(seed), drop, duplicate, reorder,
        truncate, corrupt, delay, delay_ticks);
}

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint64_t seed_salt)
    : plan_(plan), rng_(plan.seed ^ seed_salt * 0x9e3779b97f4a7c15ull) {}

void FaultInjector::send(std::vector<std::uint8_t> frame) {
    if (!plan_.enabled()) {
        ready_.push_back(std::move(frame));
        return;
    }
    if (rng_.next_bool(plan_.drop)) {
        ++faults_;
        return;
    }
    if (rng_.next_bool(plan_.truncate) && frame.size() > 1) {
        frame.resize(1 + rng_.next_below(frame.size() - 1));
        ++faults_;
    }
    if (rng_.next_bool(plan_.corrupt) && !frame.empty()) {
        const std::uint64_t bit = rng_.next_below(frame.size() * 8);
        frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        ++faults_;
    }
    const bool dup = rng_.next_bool(plan_.duplicate);
    if (dup) ++faults_;
    std::uint32_t hold = 0;
    if (rng_.next_bool(plan_.reorder)) {
        hold = 1;  // overtaken by anything sent before the next tick
        ++faults_;
    } else if (rng_.next_bool(plan_.delay)) {
        hold = plan_.delay_ticks;
        ++faults_;
    }
    std::vector<std::uint8_t> copy;
    if (dup) copy = frame;
    if (hold > 0) {
        held_.push_back({hold, std::move(frame)});
        if (dup) held_.push_back({hold + 1, std::move(copy)});
    } else {
        ready_.push_back(std::move(frame));
        if (dup) ready_.push_back(std::move(copy));
    }
}

void FaultInjector::tick(std::vector<std::vector<std::uint8_t>>& out) {
    for (auto& bytes : ready_) out.push_back(std::move(bytes));
    ready_.clear();
    std::vector<Held> still;
    still.reserve(held_.size());
    for (auto& held : held_) {
        if (held.ticks <= 1) {
            out.push_back(std::move(held.bytes));
        } else {
            --held.ticks;
            still.push_back(std::move(held));
        }
    }
    held_ = std::move(still);
}

// --- device-side endpoint -----------------------------------------------------

std::vector<std::uint8_t> ControlServer::handle(const wire::Frame& frame) {
    wire::Frame reply;
    reply.kind = wire::FrameKind::control_response;
    reply.seq = frame.seq;

    if (frame.kind != wire::FrameKind::control_request) {
        ++stats_.decode_errors;
        Response resp;
        resp.status = Status::failure(
            util::format("wire: unexpected %s frame on the control link",
                         wire::frame_kind_name(frame.kind)));
        reply.payload = wire::encode_response(resp);
        return wire::encode_frame(reply);
    }

    // A retried request carries its original seq: answer from cache so the
    // device never executes a non-idempotent op twice.
    for (const auto& [seq, bytes] : cache_) {
        if (seq == frame.seq) {
            ++stats_.dedup_hits;
            return bytes;
        }
    }

    Request request;
    Response resp;
    if (const wire::Decode d = wire::decode_request(frame.payload, request); !d) {
        ++stats_.decode_errors;
        resp.status = Status::failure("wire: " + d.reason);
    } else {
        ++stats_.requests;
        resp = dispatch(*device_, request);
    }
    reply.payload = wire::encode_response(resp);
    std::vector<std::uint8_t> bytes = wire::encode_frame(reply);
    cache_.emplace_back(frame.seq, bytes);
    if (cache_.size() > kDedupCacheEntries) cache_.pop_front();
    return bytes;
}

// --- loopback transport -------------------------------------------------------

void LoopbackTransport::set_fault_plan(const FaultPlan& plan) {
    // Direction-salted seeds: the two links fault independently, yet the
    // whole schedule replays from the one plan seed.
    to_server_ = FaultInjector(plan, util::fnv1a_64("ndb.wire.c2s"));
    to_client_ = FaultInjector(plan, util::fnv1a_64("ndb.wire.s2c"));
}

void LoopbackTransport::send(std::span<const std::uint8_t> bytes) {
    to_server_.send({bytes.begin(), bytes.end()});
}

bool LoopbackTransport::receive(std::vector<std::uint8_t>& out) {
    if (client_rx_.empty()) return false;
    out.insert(out.end(), client_rx_.begin(), client_rx_.end());
    client_rx_.clear();
    return true;
}

void LoopbackTransport::tick() {
    std::vector<std::vector<std::uint8_t>> due;
    to_server_.tick(due);
    for (const auto& chunk : due) server_reader_.feed(chunk);
    wire::Frame frame;
    while (server_reader_.next(frame)) {
        to_client_.send(server_.handle(frame));
    }
    due.clear();
    to_client_.tick(due);
    for (const auto& chunk : due) {
        client_rx_.insert(client_rx_.end(), chunk.begin(), chunk.end());
    }
}

// --- fd transport -------------------------------------------------------------

FdTransport::FdTransport(int fd) : fd_(fd) {
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
}

FdTransport::~FdTransport() { close(); }

void FdTransport::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    alive_ = false;
}

void FdTransport::send(std::span<const std::uint8_t> bytes) {
    std::size_t off = 0;
    while (alive_ && off < bytes.size()) {
        // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not SIGPIPE.
        ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0 && errno == ENOTSOCK) {
            n = ::write(fd_, bytes.data() + off, bytes.size() - off);
        }
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            struct pollfd pfd{fd_, POLLOUT, 0};
            ::poll(&pfd, 1, 50);
            continue;
        }
        alive_ = false;  // EPIPE, ECONNRESET, ...
    }
}

bool FdTransport::receive(std::vector<std::uint8_t>& out) {
    bool any = false;
    std::uint8_t buf[4096];
    while (fd_ >= 0) {
        const ssize_t n = ::read(fd_, buf, sizeof buf);
        if (n > 0) {
            out.insert(out.end(), buf, buf + n);
            any = true;
            continue;
        }
        if (n == 0) {  // orderly close by the peer
            alive_ = false;
            break;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        alive_ = false;
        break;
    }
    return any;
}

void FdTransport::tick() {
    if (fd_ < 0) return;
    struct pollfd pfd{fd_, POLLIN, 0};
    ::poll(&pfd, 1, 1);
}

// --- wire channel -------------------------------------------------------------

bool WireChannel::wait_for(std::uint64_t seq, std::uint32_t ticks,
                           Response& out) {
    for (std::uint32_t t = 0; t < ticks; ++t) {
        transport_->tick();
        std::vector<std::uint8_t> rx;
        if (transport_->receive(rx)) reader_.feed(rx);
        wire::Frame frame;
        while (reader_.next(frame)) {
            if (frame.kind != wire::FrameKind::control_response ||
                frame.seq != seq) {
                continue;  // stale response from an abandoned attempt
            }
            Response resp;
            if (const wire::Decode d = wire::decode_response(frame.payload, resp);
                !d) {
                ++stats_.decode_errors;
                out = Response{};
                out.status = Status::failure("wire: " + d.reason);
                return true;
            }
            out = std::move(resp);
            return true;
        }
    }
    return false;
}

Response WireChannel::transact(const Request& request) {
    ++stats_.requests;
    // Telemetry shadows ChannelStats (which feed the deterministic report);
    // the RAII guard times the whole transact, retries and backoff included.
    struct RttTimer {
        bool on;
        std::uint64_t t0;
        ~RttTimer() {
            if (on) obs::record(obs::Hist::wire_rtt_ns, obs::now_ns() - t0);
        }
    } rtt{obs::metrics_on(), obs::metrics_on() ? obs::now_ns() : 0};
    if (rtt.on) obs::count(obs::Counter::wire_requests);
    const std::uint64_t seq = ++next_seq_;
    wire::Frame frame;
    frame.kind = wire::FrameKind::control_request;
    frame.seq = seq;
    frame.payload = wire::encode_request(request);
    const std::vector<std::uint8_t> bytes = wire::encode_frame(frame);

    const std::uint32_t attempts = std::max<std::uint32_t>(1, policy_.max_attempts);
    Response resp;
    for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0) {
            ++stats_.retries;
            if (obs::metrics_on()) obs::count(obs::Counter::wire_retries);
            if (obs::trace_on()) {
                obs::trace_instant("wire_retry", "seq", seq, "attempt", attempt);
            }
        }
        transport_->send(bytes);
        ++stats_.frames_sent;
        if (wait_for(seq, policy_.timeout_ticks, resp)) return resp;
        if (attempt + 1 < attempts) {
            const std::uint64_t backoff = std::min<std::uint64_t>(
                static_cast<std::uint64_t>(policy_.backoff_base_ticks) << attempt,
                policy_.backoff_cap_ticks);
            // Keep listening during the backoff: the response may just be slow.
            if (backoff > 0 &&
                wait_for(seq, static_cast<std::uint32_t>(backoff), resp)) {
                return resp;
            }
        }
    }
    ++stats_.timeouts;
    if (obs::metrics_on()) obs::count(obs::Counter::wire_timeouts);
    if (obs::trace_on()) {
        obs::trace_instant("wire_timeout", "seq", seq, "attempts", attempts);
    }
    resp = Response{};
    resp.status = Status::failure(
        util::format("wire: request seq %llu timed out after %u attempt(s)",
                     static_cast<unsigned long long>(seq), attempts));
    return resp;
}

}  // namespace ndb::control
