#include "control/channel.h"

#include <stdexcept>

namespace ndb::control {

Response dispatch(RuntimeApi& device, const Request& request) {
    Response resp;
    std::visit(
        [&](const auto& req) {
            using T = std::decay_t<decltype(req)>;
            if constexpr (std::is_same_v<T, AddEntryReq>) {
                resp.status = device.add_entry(req.table, req.entry);
            } else if constexpr (std::is_same_v<T, DeleteEntryReq>) {
                resp.status = device.delete_entry(req.table, req.entry);
            } else if constexpr (std::is_same_v<T, SetDefaultReq>) {
                resp.status = device.set_default_action(req.table, req.action, req.args);
            } else if constexpr (std::is_same_v<T, ClearTableReq>) {
                resp.status = device.clear_table(req.table);
            } else if constexpr (std::is_same_v<T, WriteRegisterReq>) {
                resp.status = device.write_register(req.name, req.index, req.value);
            } else if constexpr (std::is_same_v<T, ReadRegisterReq>) {
                resp.status = device.read_register(req.name, req.index,
                                                   resp.register_value);
            } else if constexpr (std::is_same_v<T, ReadCounterReq>) {
                resp.status = device.read_counter(req.name, req.index,
                                                  resp.counter_value);
            } else if constexpr (std::is_same_v<T, ConfigureMeterReq>) {
                resp.status = device.configure_meter(req.name, req.index, req.config);
            } else if constexpr (std::is_same_v<T, SnapshotReq>) {
                resp.snapshot = device.snapshot();
            } else if constexpr (std::is_same_v<T, ResetReq>) {
                resp.status = device.reset_state();
            }
        },
        request);
    return resp;
}

Response Channel::transact(const Request& request) {
    if (!handler_) {
        Response resp;
        resp.status = Status::failure("control channel not bound to a device");
        return resp;
    }
    ++requests_;
    return handler_(request);
}

Status RuntimeClient::add_entry(const std::string& table, const EntrySpec& entry) {
    return channel_.transact(AddEntryReq{table, entry}).status;
}

Status RuntimeClient::delete_entry(const std::string& table, const EntrySpec& entry) {
    return channel_.transact(DeleteEntryReq{table, entry}).status;
}

Status RuntimeClient::set_default_action(const std::string& table,
                                         const std::string& action,
                                         const std::vector<Bitvec>& args) {
    return channel_.transact(SetDefaultReq{table, action, args}).status;
}

Status RuntimeClient::clear_table(const std::string& table) {
    return channel_.transact(ClearTableReq{table}).status;
}

Status RuntimeClient::write_register(const std::string& name, std::uint64_t index,
                                     const Bitvec& value) {
    return channel_.transact(WriteRegisterReq{name, index, value}).status;
}

Status RuntimeClient::read_register(const std::string& name, std::uint64_t index,
                                    Bitvec& out) {
    Response resp = channel_.transact(ReadRegisterReq{name, index});
    out = resp.register_value;
    return resp.status;
}

Status RuntimeClient::read_counter(const std::string& name, std::uint64_t index,
                                   CounterValue& out) {
    Response resp = channel_.transact(ReadCounterReq{name, index});
    out = resp.counter_value;
    return resp.status;
}

Status RuntimeClient::configure_meter(const std::string& name, std::uint64_t index,
                                      const MeterConfig& config) {
    return channel_.transact(ConfigureMeterReq{name, index, config}).status;
}

StatusSnapshot RuntimeClient::snapshot() {
    return channel_.transact(SnapshotReq{}).snapshot;
}

Status RuntimeClient::reset_state() {
    return channel_.transact(ResetReq{}).status;
}

}  // namespace ndb::control
