#include "control/channel.h"

#include <stdexcept>

#include "control/transport.h"
#include "util/strings.h"

namespace ndb::control {

const char* payload_name(Response::Payload payload) {
    switch (payload) {
        case Response::Payload::none: return "none";
        case Response::Payload::register_value: return "register_value";
        case Response::Payload::counter_value: return "counter_value";
        case Response::Payload::snapshot: return "snapshot";
        case Response::Payload::op_statuses: return "op_statuses";
    }
    return "?";
}

Response dispatch(RuntimeApi& device, const Request& request) {
    Response resp;
    std::visit(
        [&](const auto& req) {
            using T = std::decay_t<decltype(req)>;
            if constexpr (std::is_same_v<T, AddEntryReq>) {
                resp.status = device.add_entry(req.table, req.entry);
            } else if constexpr (std::is_same_v<T, DeleteEntryReq>) {
                resp.status = device.delete_entry(req.table, req.entry);
            } else if constexpr (std::is_same_v<T, SetDefaultReq>) {
                resp.status = device.set_default_action(req.table, req.action, req.args);
            } else if constexpr (std::is_same_v<T, ClearTableReq>) {
                resp.status = device.clear_table(req.table);
            } else if constexpr (std::is_same_v<T, WriteRegisterReq>) {
                resp.status = device.write_register(req.name, req.index, req.value);
            } else if constexpr (std::is_same_v<T, ReadRegisterReq>) {
                resp.status = device.read_register(req.name, req.index,
                                                   resp.register_value);
                if (resp.status.ok) {
                    resp.payload = Response::Payload::register_value;
                }
            } else if constexpr (std::is_same_v<T, ReadCounterReq>) {
                resp.status = device.read_counter(req.name, req.index,
                                                  resp.counter_value);
                if (resp.status.ok) {
                    resp.payload = Response::Payload::counter_value;
                }
            } else if constexpr (std::is_same_v<T, ConfigureMeterReq>) {
                resp.status = device.configure_meter(req.name, req.index, req.config);
            } else if constexpr (std::is_same_v<T, SnapshotReq>) {
                resp.snapshot = device.snapshot();
                resp.payload = Response::Payload::snapshot;
            } else if constexpr (std::is_same_v<T, ResetReq>) {
                resp.status = device.reset_state();
            } else if constexpr (std::is_same_v<T, ApplyConfigReq>) {
                resp.op_statuses = device.apply(req.ops);
                resp.payload = Response::Payload::op_statuses;
            }
        },
        request);
    return resp;
}

Response Channel::transact(const Request& request) {
    // An unbound handler is a caller error, but it must surface as a
    // diagnostic Status -- invoking the empty std::function would throw
    // std::bad_function_call out of every management call site.
    if (!handler_) {
        Response resp;
        resp.status = Status::failure("control channel not bound to a device");
        return resp;
    }
    ++requests_;
    return handler_(request);
}

Response RuntimeClient::transact(const Request& request) {
    return channel_ ? channel_->transact(request) : wire_->transact(request);
}

Status RuntimeClient::expect_payload(const Response& response,
                                     Response::Payload want) {
    if (!response.status.ok) return response.status;
    if (response.payload != want) {
        return Status::failure(
            std::string("response carried payload '") +
            payload_name(response.payload) + "', expected '" +
            payload_name(want) + "'");
    }
    return Status::success();
}

Status RuntimeClient::add_entry(const std::string& table, const EntrySpec& entry) {
    return transact(AddEntryReq{table, entry}).status;
}

Status RuntimeClient::delete_entry(const std::string& table, const EntrySpec& entry) {
    return transact(DeleteEntryReq{table, entry}).status;
}

Status RuntimeClient::set_default_action(const std::string& table,
                                         const std::string& action,
                                         const std::vector<Bitvec>& args) {
    return transact(SetDefaultReq{table, action, args}).status;
}

Status RuntimeClient::clear_table(const std::string& table) {
    return transact(ClearTableReq{table}).status;
}

Status RuntimeClient::write_register(const std::string& name, std::uint64_t index,
                                     const Bitvec& value) {
    return transact(WriteRegisterReq{name, index, value}).status;
}

Status RuntimeClient::read_register(const std::string& name, std::uint64_t index,
                                    Bitvec& out) {
    const Response resp = transact(ReadRegisterReq{name, index});
    const Status st = expect_payload(resp, Response::Payload::register_value);
    if (st.ok) out = resp.register_value;
    return st;
}

Status RuntimeClient::read_counter(const std::string& name, std::uint64_t index,
                                   CounterValue& out) {
    const Response resp = transact(ReadCounterReq{name, index});
    const Status st = expect_payload(resp, Response::Payload::counter_value);
    if (st.ok) out = resp.counter_value;
    return st;
}

Status RuntimeClient::configure_meter(const std::string& name, std::uint64_t index,
                                      const MeterConfig& config) {
    return transact(ConfigureMeterReq{name, index, config}).status;
}

std::vector<Status> RuntimeClient::apply(std::span<const ConfigOp> ops) {
    if (ops.empty()) return {};
    ApplyConfigReq req;
    req.ops.assign(ops.begin(), ops.end());
    const Response resp = transact(req);
    Status st = expect_payload(resp, Response::Payload::op_statuses);
    if (st.ok && resp.op_statuses.size() != ops.size()) {
        st = Status::failure(
            util::format("response carried %zu status(es) for %zu op(s)",
                         resp.op_statuses.size(), ops.size()));
    }
    if (!st.ok) {
        // The whole frame failed (lost on the wire, or a protocol error):
        // report the same failure on every op so callers' per-op accounting
        // -- and the "wire:" message prefix -- is preserved.
        return std::vector<Status>(ops.size(), st);
    }
    return resp.op_statuses;
}

StatusSnapshot RuntimeClient::snapshot() {
    // snapshot() has no Status in its RuntimeApi signature; a response with
    // the wrong payload yields the empty snapshot (all-zero counters), which
    // campaign detection treats like any other observable difference.
    const Response resp = transact(SnapshotReq{});
    if (resp.payload != Response::Payload::snapshot) return StatusSnapshot{};
    return resp.snapshot;
}

Status RuntimeClient::reset_state() {
    return transact(ResetReq{}).status;
}

}  // namespace ndb::control
