// Message-based control channel.
//
// Models the paper's dedicated host<->device management interface: requests
// are explicit messages, a device-side dispatcher executes them against a
// RuntimeApi, and RuntimeClient gives the host tool the same typed API over
// the channel.  Keeping the wire format explicit lets tests fault the link
// and lets the channel be logged.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "control/runtime.h"

namespace ndb::control {

// --- request messages ---------------------------------------------------------

struct AddEntryReq {
    std::string table;
    EntrySpec entry;
};
struct DeleteEntryReq {
    std::string table;
    EntrySpec entry;
};
struct SetDefaultReq {
    std::string table;
    std::string action;
    std::vector<Bitvec> args;
};
struct ClearTableReq {
    std::string table;
};
struct WriteRegisterReq {
    std::string name;
    std::uint64_t index = 0;
    Bitvec value;
};
struct ReadRegisterReq {
    std::string name;
    std::uint64_t index = 0;
};
struct ReadCounterReq {
    std::string name;
    std::uint64_t index = 0;
};
struct ConfigureMeterReq {
    std::string name;
    std::uint64_t index = 0;
    MeterConfig config;
};
struct SnapshotReq {};
struct ResetReq {};
// Batched configuration: every op of a scenario in one frame-level round
// trip instead of one frame per op.  The response carries one Status per op
// (Payload::op_statuses), so callers keep per-op accounting.
struct ApplyConfigReq {
    std::vector<ConfigOp> ops;
};

using Request = std::variant<AddEntryReq, DeleteEntryReq, SetDefaultReq,
                             ClearTableReq, WriteRegisterReq, ReadRegisterReq,
                             ReadCounterReq, ConfigureMeterReq, SnapshotReq,
                             ResetReq, ApplyConfigReq>;

// --- response -------------------------------------------------------------------

struct Response {
    // Which optional field below actually carries data.  Callers used to
    // have to know which field was live from the request they sent; the
    // explicit discriminator makes a mismatched (or corrupted-in-flight)
    // response a detectable protocol error instead of silently-default
    // garbage.
    enum class Payload : std::uint8_t {
        none = 0,
        register_value = 1,
        counter_value = 2,
        snapshot = 3,
        op_statuses = 4,
    };

    Status status;
    Payload payload = Payload::none;
    Bitvec register_value;       // payload == register_value
    CounterValue counter_value;  // payload == counter_value
    StatusSnapshot snapshot;     // payload == snapshot
    std::vector<Status> op_statuses;  // payload == op_statuses
};

const char* payload_name(Response::Payload payload);

// Executes one request against a device runtime.
Response dispatch(RuntimeApi& device, const Request& request);

// In-process request/response channel with observable traffic counters.
class Channel {
public:
    using Handler = std::function<Response(const Request&)>;

    // Binds the device side of the channel.
    void bind(Handler handler) { handler_ = std::move(handler); }

    // Host side: send a request, wait for the response (synchronous model).
    Response transact(const Request& request);

    std::uint64_t requests_sent() const { return requests_; }

private:
    Handler handler_;
    std::uint64_t requests_ = 0;
};

class WireChannel;  // control/transport.h: the faultable wire-protocol channel

// RuntimeApi implementation that tunnels every call through a channel,
// giving the host tool location transparency.  Two bindings exist: the
// in-process Channel above (a direct function call), and WireChannel
// (control/transport.h), which serializes every request into a wire frame,
// survives injected link faults via sequence-numbered retries, and returns
// first-class Status failures -- "wire: request timed out", "wire: response
// carried the wrong payload" -- instead of default-constructed garbage.
class RuntimeClient final : public RuntimeApi {
public:
    explicit RuntimeClient(Channel& channel) : channel_(&channel) {}
    explicit RuntimeClient(WireChannel& channel) : wire_(&channel) {}

    Status add_entry(const std::string& table, const EntrySpec& entry) override;
    Status delete_entry(const std::string& table, const EntrySpec& entry) override;
    Status set_default_action(const std::string& table, const std::string& action,
                              const std::vector<Bitvec>& args) override;
    Status clear_table(const std::string& table) override;
    Status write_register(const std::string& name, std::uint64_t index,
                          const Bitvec& value) override;
    Status read_register(const std::string& name, std::uint64_t index,
                         Bitvec& out) override;
    Status read_counter(const std::string& name, std::uint64_t index,
                        CounterValue& out) override;
    Status configure_meter(const std::string& name, std::uint64_t index,
                           const MeterConfig& config) override;
    // One ApplyConfigReq frame for the whole batch.  A transport-level
    // failure (timeout, wrong payload) is reported on every op, so per-op
    // accounting -- including the "wire:" failure-message convention --
    // survives the batching.
    std::vector<Status> apply(std::span<const ConfigOp> ops) override;
    StatusSnapshot snapshot() override;
    Status reset_state() override;

private:
    // Sends through whichever channel this client was bound to.
    Response transact(const Request& request);
    // Shared guard for the read-style calls: a success response whose
    // payload discriminator does not match `want` is a protocol error.
    static Status expect_payload(const Response& response,
                                 Response::Payload want);

    Channel* channel_ = nullptr;
    WireChannel* wire_ = nullptr;
};

}  // namespace ndb::control
