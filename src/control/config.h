// Control-plane value types and the replayable configuration op.
//
// This header is the bottom of the control-plane layering: the plain value
// types every management surface exchanges (Status, EntrySpec, MeterConfig)
// plus ConfigOp, the single replayable programming step that scenarios,
// campaign recipes, and the batched wire request all carry.  runtime.h
// builds the RuntimeApi interface on top of these; nothing here depends on
// it, so channel codecs and scenario synthesis can share the types without
// dragging in the API surface.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bitvec.h"

namespace ndb::control {

using util::Bitvec;

struct Status {
    bool ok = true;
    std::string message;

    static Status success() { return {}; }
    static Status failure(std::string msg) { return {false, std::move(msg)}; }
    explicit operator bool() const { return ok; }
};

// Control-plane view of a table entry, with names instead of ids.
struct EntrySpec {
    std::vector<Bitvec> key_values;
    std::vector<Bitvec> key_masks;   // ternary
    int prefix_len = -1;             // lpm
    int priority = 0;                // ternary
    std::string action;
    std::vector<Bitvec> action_args;
};

struct CounterValue {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
};

struct MeterConfig {
    double committed_rate_bps = 0;     // bytes per second
    std::uint64_t committed_burst = 0;
    double excess_rate_bps = 0;
    std::uint64_t excess_burst = 0;
};

// One replayable control-plane programming step.  Scenarios carry these
// instead of side effects so the identical configuration can be applied to
// the reference device and every DUT in the sweep -- and shipped as one
// batched wire request (RuntimeApi::apply).
struct ConfigOp {
    enum class Kind { add_entry, set_default_action, write_register, configure_meter };

    Kind kind = Kind::add_entry;
    std::string target;  // table name, or register/meter extern name

    EntrySpec entry;                  // add_entry
    std::string action;               // set_default_action
    std::vector<Bitvec> action_args;  // set_default_action
    std::uint64_t index = 0;          // write_register / configure_meter
    Bitvec value;                     // write_register
    MeterConfig meter;                // configure_meter
};

class RuntimeApi;

// Executes one op against a runtime surface.
Status apply_config_op(RuntimeApi& rt, const ConfigOp& op);

}  // namespace ndb::control
