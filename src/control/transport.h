// Faultable byte-stream transports + the resilient wire client.
//
// Three layers sit between RuntimeClient and the device once the control
// plane leaves the same address space:
//
//   WireChannel          sequence numbers, per-request timeouts, bounded
//                        exponential-backoff retry; surfaces link failures
//                        as first-class Status values ("wire: ...")
//   Transport            one endpoint of a byte-stream link: in-process
//                        LoopbackTransport (deterministic virtual time) or
//                        FdTransport over a pipe/socketpair
//   FaultInjector        seeded, deterministic per-frame fault decisions --
//                        drop, duplicate, reorder, truncate, bit-corrupt,
//                        delay-N-virtual-ticks -- parsed from a FaultPlan
//                        spec string
//
// The device side is ControlServer: it decodes request frames, executes
// them, and keeps a bounded seq->response cache so a retry of a
// non-idempotent op (AddEntryReq) is answered from cache instead of being
// executed twice -- exactly-once effects under at-least-once delivery.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "control/wire.h"
#include "util/random.h"

namespace ndb::control {

// --- fault plans --------------------------------------------------------------

// Per-frame fault probabilities, rolled from a seeded deterministic RNG so
// any faulty run replays exactly.  Parsed from a comma-separated spec:
//
//   "seed=7,drop=0.1,dup=0.05,reorder=0.1,truncate=0.02,corrupt=0.02,
//    delay=0.2,delay_ticks=3"
//
// "none" (or the empty string) is the clean plan.  parse() throws
// std::invalid_argument with a precise reason on junk.
struct FaultPlan {
    std::uint64_t seed = 1;
    double drop = 0.0;      // frame vanishes
    double duplicate = 0.0; // frame delivered twice
    double reorder = 0.0;   // frame held back one tick, overtaken by successors
    double truncate = 0.0;  // random-length prefix delivered
    double corrupt = 0.0;   // one random bit flipped
    double delay = 0.0;     // frame held back delay_ticks virtual ticks
    std::uint32_t delay_ticks = 2;

    bool enabled() const {
        return drop > 0 || duplicate > 0 || reorder > 0 || truncate > 0 ||
               corrupt > 0 || delay > 0;
    }

    static FaultPlan parse(const std::string& spec);
    std::string spec() const;
};

// Applies a FaultPlan to a stream of outbound frames.  Each send() makes
// the per-frame fault decisions; tick() advances virtual time and yields
// the byte chunks that are due for delivery (a truncated or corrupted
// frame is still delivered -- as garbage the receiving FrameReader must
// survive).
class FaultInjector {
public:
    FaultInjector() = default;
    explicit FaultInjector(const FaultPlan& plan, std::uint64_t seed_salt = 0);

    void send(std::vector<std::uint8_t> frame);

    // Advances one virtual tick; appends due byte chunks to `out`.
    void tick(std::vector<std::vector<std::uint8_t>>& out);

    std::size_t pending() const { return held_.size() + ready_.size(); }
    std::uint64_t faults() const { return faults_; }

private:
    struct Held {
        std::uint32_t ticks = 0;
        std::vector<std::uint8_t> bytes;
    };

    FaultPlan plan_;
    util::Rng rng_;
    std::vector<Held> held_;                     // delayed / reordered
    std::vector<std::vector<std::uint8_t>> ready_;  // due next tick
    std::uint64_t faults_ = 0;
};

// --- device-side endpoint -----------------------------------------------------

// Decodes control_request frames, executes them against the device runtime,
// and encodes the response frame.  The seq->response cache (bounded FIFO)
// makes retried non-idempotent requests exactly-once: a seq seen before is
// answered from cache without touching the device.
class ControlServer {
public:
    struct Stats {
        std::uint64_t requests = 0;      // frames executed against the device
        std::uint64_t dedup_hits = 0;    // retries answered from cache
        std::uint64_t decode_errors = 0; // checksum-valid frames with bad payloads
    };

    explicit ControlServer(RuntimeApi& device) : device_(&device) {}

    // Handles one well-formed frame; returns the encoded response frame.
    // Non-request frames and undecodable payloads yield a failure-Status
    // response (same seq), so the client sees a diagnostic, not a timeout.
    std::vector<std::uint8_t> handle(const wire::Frame& frame);

    const Stats& stats() const { return stats_; }

private:
    static constexpr std::size_t kDedupCacheEntries = 64;

    RuntimeApi* device_;
    std::deque<std::pair<std::uint64_t, std::vector<std::uint8_t>>> cache_;
    Stats stats_;
};

// --- transports ---------------------------------------------------------------

// One endpoint of a byte-stream link.
class Transport {
public:
    virtual ~Transport() = default;

    // Queues bytes toward the peer.  Callers send whole encoded frames, so
    // fault injection can treat each send() as one frame.
    virtual void send(std::span<const std::uint8_t> bytes) = 0;

    // Appends newly arrived bytes to `out`; returns whether any arrived.
    virtual bool receive(std::vector<std::uint8_t>& out) = 0;

    // Advances time: one virtual tick (loopback) or a short real-time poll
    // (fd transport).  Delayed frames move closer to delivery.
    virtual void tick() = 0;
};

// In-process transport: the peer is a ControlServer in the same address
// space, reached through two FaultInjector-mediated directions.  Time is
// virtual (ticks), so every fault schedule is deterministic and tests run
// at full speed.
class LoopbackTransport final : public Transport {
public:
    explicit LoopbackTransport(RuntimeApi& device) : server_(device) {}

    // Applies `plan` to both directions (direction-salted seeds, so the
    // request and response links fault independently but reproducibly).
    void set_fault_plan(const FaultPlan& plan);

    void send(std::span<const std::uint8_t> bytes) override;
    bool receive(std::vector<std::uint8_t>& out) override;
    void tick() override;

    const ControlServer::Stats& server_stats() const { return server_.stats(); }
    const wire::FrameReader::Stats& server_reader_stats() const {
        return server_reader_.stats();
    }
    std::uint64_t faults_injected() const {
        return to_server_.faults() + to_client_.faults();
    }

private:
    ControlServer server_;
    FaultInjector to_server_;
    FaultInjector to_client_;
    wire::FrameReader server_reader_;
    std::vector<std::uint8_t> client_rx_;
};

// Transport over an OS file descriptor (socketpair/pipe), used by the
// campaign fabric for parent<->worker links.  Writes use MSG_NOSIGNAL so a
// dead peer surfaces as an error, not SIGPIPE; reads are non-blocking with
// a poll()-based tick.
class FdTransport final : public Transport {
public:
    // Takes ownership of `fd` (closed on destruction).
    explicit FdTransport(int fd);
    ~FdTransport() override;
    FdTransport(const FdTransport&) = delete;
    FdTransport& operator=(const FdTransport&) = delete;

    void send(std::span<const std::uint8_t> bytes) override;
    bool receive(std::vector<std::uint8_t>& out) override;
    void tick() override;  // polls the fd for up to 1ms

    // True until a write fails or the peer closes the stream.
    bool alive() const { return alive_; }
    int fd() const { return fd_; }
    void close();

private:
    int fd_ = -1;
    bool alive_ = true;
};

// --- resilient client channel -------------------------------------------------

// Retry/timeout knobs for WireChannel.  Timeouts and backoff are measured
// in transport ticks (virtual for loopback, ~1ms polls for fd), so the
// same policy is deterministic in-process and sane cross-process.
struct RetryPolicy {
    std::uint32_t max_attempts = 4;       // total tries, including the first
    std::uint32_t timeout_ticks = 16;     // per-attempt response wait
    std::uint32_t backoff_base_ticks = 1; // wait base<<attempt between tries...
    std::uint32_t backoff_cap_ticks = 16; // ...capped here
};

// Client-side channel counters, surfaced in campaign reports.
struct ChannelStats {
    std::uint64_t requests = 0;      // transact() calls
    std::uint64_t frames_sent = 0;   // request frames emitted (incl. retries)
    std::uint64_t retries = 0;       // re-sends after a timed-out attempt
    std::uint64_t timeouts = 0;      // requests that exhausted every attempt
    std::uint64_t decode_errors = 0; // response frames that failed to decode
};

// Sends Requests as sequence-numbered wire frames over a Transport and
// waits for the matching response, retrying with bounded exponential
// backoff.  Retries reuse the original sequence number, so the server's
// dedup cache keeps non-idempotent ops exactly-once.  A request whose
// retry budget is exhausted returns Status::failure("wire: request ...
// timed out ..."), which the campaign engine treats as a management-plane
// observable.
class WireChannel {
public:
    explicit WireChannel(Transport& transport) : transport_(&transport) {}

    void set_retry_policy(const RetryPolicy& policy) { policy_ = policy; }
    const RetryPolicy& retry_policy() const { return policy_; }

    Response transact(const Request& request);

    const ChannelStats& stats() const { return stats_; }
    const wire::FrameReader::Stats& reader_stats() const {
        return reader_.stats();
    }

private:
    // Waits up to `ticks` for the response to `seq`; true on arrival.
    bool wait_for(std::uint64_t seq, std::uint32_t ticks, Response& out);

    Transport* transport_;
    RetryPolicy policy_;
    ChannelStats stats_;
    wire::FrameReader reader_;
    std::uint64_t next_seq_ = 0;
};

}  // namespace ndb::control
