// Control-plane runtime API.
//
// This is the management surface a host tool uses to program and inspect a
// device: table entries, default actions, registers, counters, meters and
// the status snapshot.  Devices implement it directly; RuntimeClient speaks
// it over the message channel (the paper's "dedicated interface").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "control/snapshot.h"
#include "util/bitvec.h"

namespace ndb::control {

using util::Bitvec;

struct Status {
    bool ok = true;
    std::string message;

    static Status success() { return {}; }
    static Status failure(std::string msg) { return {false, std::move(msg)}; }
    explicit operator bool() const { return ok; }
};

// Control-plane view of a table entry, with names instead of ids.
struct EntrySpec {
    std::vector<Bitvec> key_values;
    std::vector<Bitvec> key_masks;   // ternary
    int prefix_len = -1;             // lpm
    int priority = 0;                // ternary
    std::string action;
    std::vector<Bitvec> action_args;
};

struct CounterValue {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
};

struct MeterConfig {
    double committed_rate_bps = 0;     // bytes per second
    std::uint64_t committed_burst = 0;
    double excess_rate_bps = 0;
    std::uint64_t excess_burst = 0;
};

class RuntimeApi {
public:
    virtual ~RuntimeApi() = default;

    virtual Status add_entry(const std::string& table, const EntrySpec& entry) = 0;
    virtual Status delete_entry(const std::string& table, const EntrySpec& entry) = 0;
    virtual Status set_default_action(const std::string& table,
                                      const std::string& action,
                                      const std::vector<Bitvec>& args) = 0;
    virtual Status clear_table(const std::string& table) = 0;

    virtual Status write_register(const std::string& name, std::uint64_t index,
                                  const Bitvec& value) = 0;
    virtual Status read_register(const std::string& name, std::uint64_t index,
                                 Bitvec& out) = 0;
    virtual Status read_counter(const std::string& name, std::uint64_t index,
                                CounterValue& out) = 0;
    virtual Status configure_meter(const std::string& name, std::uint64_t index,
                                   const MeterConfig& config) = 0;

    virtual StatusSnapshot snapshot() = 0;
    virtual Status reset_state() = 0;
};

}  // namespace ndb::control
