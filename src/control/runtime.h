// Control-plane runtime API.
//
// This is the management surface a host tool uses to program and inspect a
// device: table entries, default actions, registers, counters, meters and
// the status snapshot.  Devices implement it directly; RuntimeClient speaks
// it over the message channel (the paper's "dedicated interface").
//
// Two addressing modes coexist.  The string overloads name tables and
// externs the way P4 source does and re-resolve on every call; the handle
// overloads resolve once (resolve_table / resolve_extern) and then address
// by id, which is what a production controller holding thousands of flow
// entries actually does.  Handles are invalidated by load(): backends bump
// a generation counter, and an op presented with a stale handle fails
// loudly instead of poking whatever now owns that id.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "control/config.h"
#include "control/snapshot.h"
#include "util/bitvec.h"

namespace ndb::control {

using util::Bitvec;

// Resolved reference to a table.  `id` < 0 means the backend does not
// support handle addressing (the base-class default); ops on such a handle
// fall back to the carried name.
struct TableHandle {
    int id = -1;
    std::uint64_t generation = 0;
    std::string name;

    bool valid() const { return id >= 0; }
};

// Resolved reference to an extern (register / counter / meter) instance.
struct ExternHandle {
    int id = -1;
    std::uint64_t generation = 0;
    std::string name;

    bool valid() const { return id >= 0; }
};

class RuntimeApi {
public:
    virtual ~RuntimeApi() = default;

    // --- resolution ---------------------------------------------------------
    // The defaults return name-only handles (id -1): every op on them takes
    // the string path below, so backends that never override these still
    // speak the whole handle API correctly, just without the fast path.
    virtual TableHandle resolve_table(const std::string& name) {
        TableHandle h;
        h.name = name;
        return h;
    }
    virtual ExternHandle resolve_extern(const std::string& name) {
        ExternHandle h;
        h.name = name;
        return h;
    }

    // --- string-addressed surface -------------------------------------------
    virtual Status add_entry(const std::string& table, const EntrySpec& entry) = 0;
    virtual Status delete_entry(const std::string& table, const EntrySpec& entry) = 0;
    virtual Status set_default_action(const std::string& table,
                                      const std::string& action,
                                      const std::vector<Bitvec>& args) = 0;
    virtual Status clear_table(const std::string& table) = 0;

    virtual Status write_register(const std::string& name, std::uint64_t index,
                                  const Bitvec& value) = 0;
    virtual Status read_register(const std::string& name, std::uint64_t index,
                                 Bitvec& out) = 0;
    virtual Status read_counter(const std::string& name, std::uint64_t index,
                                CounterValue& out) = 0;
    virtual Status configure_meter(const std::string& name, std::uint64_t index,
                                   const MeterConfig& config) = 0;

    // --- handle-addressed surface -------------------------------------------
    // Defaults delegate to the string overloads via the handle's name, so
    // every RuntimeApi (RuntimeClient included) accepts handles; backends
    // with id-indexed stores override for resolution-free dispatch.
    virtual Status add_entry(const TableHandle& table, const EntrySpec& entry) {
        return add_entry(table.name, entry);
    }
    virtual Status delete_entry(const TableHandle& table, const EntrySpec& entry) {
        return delete_entry(table.name, entry);
    }
    virtual Status set_default_action(const TableHandle& table,
                                      const std::string& action,
                                      const std::vector<Bitvec>& args) {
        return set_default_action(table.name, action, args);
    }
    virtual Status write_register(const ExternHandle& ext, std::uint64_t index,
                                  const Bitvec& value) {
        return write_register(ext.name, index, value);
    }
    virtual Status read_register(const ExternHandle& ext, std::uint64_t index,
                                 Bitvec& out) {
        return read_register(ext.name, index, out);
    }

    // --- batched configuration ----------------------------------------------
    // Applies the ops in order and returns one Status per op (never fewer:
    // a transport-level loss reports per-op failures).  The default loops
    // apply_config_op locally; RuntimeClient overrides it with a single
    // frame-level round trip over the wire.
    virtual std::vector<Status> apply(std::span<const ConfigOp> ops);

    virtual StatusSnapshot snapshot() = 0;
    virtual Status reset_state() = 0;
};

}  // namespace ndb::control
