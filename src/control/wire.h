// Wire-protocol frame codec for the management plane.
//
// Serializes control::Request/Response (and the campaign fabric's job
// traffic) into length-prefixed, versioned, checksummed binary frames, so
// the paper's "dedicated management interface" is a real byte protocol that
// can cross a process boundary -- and, just as importantly, one that a
// fault injector can drop, truncate, corrupt and reorder.  Decoding is
// strict and diagnostic-rich: every malformed input is rejected with a
// human-readable reason, never a crash or a silently-wrong value (the same
// hardening recipe the corpus recipe parsers follow).
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//        0     4  magic      0x4244'4e57 ("WNDB")
//        4     1  version    kVersion
//        5     1  kind       FrameKind
//        6     8  seq        request/response correlation number
//       14     4  len        payload byte count, <= kMaxPayloadBytes
//       18     8  checksum   FNV-1a over bytes [0, 18) plus the payload
//       26   len  payload
//
// The checksum covers the header fields, so a frame whose length field was
// bit-flipped in flight cannot trick the receiver into mis-framing the
// stream: FrameReader rejects it and resynchronizes on the next magic.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "control/channel.h"

namespace ndb::control::wire {

inline constexpr std::uint32_t kMagic = 0x4244'4e57u;  // "WNDB" on the wire
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 26;
inline constexpr std::size_t kMaxPayloadBytes = 1u << 20;

// Inner-payload hard limits: a decoder must never let a hostile length
// field drive an allocation it cannot afford.
inline constexpr std::size_t kMaxStringBytes = 1u << 16;
inline constexpr std::size_t kMaxSequenceItems = 4096;
inline constexpr int kMaxBitvecBits = 1 << 20;

enum class FrameKind : std::uint8_t {
    control_request = 1,   // payload: encoded Request
    control_response = 2,  // payload: encoded Response
    job = 3,               // fabric: shard dispatch (parent -> worker)
    job_result = 4,        // fabric: shard outcomes (worker -> parent)
    heartbeat = 5,         // fabric: liveness probe (parent -> worker)
    heartbeat_ack = 6,     // fabric: liveness answer (worker -> parent)
    shutdown = 7,          // fabric: orderly worker exit
};
const char* frame_kind_name(FrameKind kind);

struct Frame {
    FrameKind kind = FrameKind::control_request;
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> payload;
};

// Outcome of a strict decode: ok(), or a reason a human can act on.
struct Decode {
    bool ok = true;
    std::string reason;

    static Decode good() { return {}; }
    static Decode bad(std::string why) { return {false, std::move(why)}; }
    explicit operator bool() const { return ok; }
};

// --- frame codec --------------------------------------------------------------

std::vector<std::uint8_t> encode_frame(const Frame& frame);

// Decodes exactly one frame occupying the whole buffer; trailing bytes are
// an error (stream consumers use FrameReader instead).
Decode decode_frame(std::span<const std::uint8_t> bytes, Frame& out);

// Incremental frame extraction from an untrusted byte stream.  Bytes that
// do not validate -- garbage between frames, frames with a bad version or
// checksum, truncated tails of corrupted frames -- are skipped by scanning
// forward to the next magic, so one mangled frame never poisons the rest
// of the stream.
class FrameReader {
public:
    struct Stats {
        std::uint64_t frames = 0;           // well-formed frames extracted
        std::uint64_t corrupt_frames = 0;   // headers/checksums rejected
        std::uint64_t resyncs = 0;          // forward scans to a new magic
        std::uint64_t bytes_skipped = 0;    // garbage bytes discarded
        std::string last_error;             // most recent rejection reason
    };

    void feed(std::span<const std::uint8_t> bytes);

    // Extracts the next well-formed frame; false when the buffered bytes
    // hold no complete frame (feed more and try again).
    bool next(Frame& out);

    const Stats& stats() const { return stats_; }
    std::size_t buffered_bytes() const { return buffer_.size() - pos_; }

private:
    std::vector<std::uint8_t> buffer_;
    std::size_t pos_ = 0;
    Stats stats_;
};

// --- payload primitives -------------------------------------------------------

// Bounds-checked little-endian serializer, shared by the Request/Response
// codec and the fabric's job/result messages.
class Writer {
public:
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void f64(double v);  // IEEE-754 bit pattern
    void str(std::string_view s);
    void bitvec(const util::Bitvec& v);
    void bytes(std::span<const std::uint8_t> b);

    std::vector<std::uint8_t> take() { return std::move(buf_); }
    const std::vector<std::uint8_t>& data() const { return buf_; }

private:
    std::vector<std::uint8_t> buf_;
};

// Strict cursor over an untrusted payload.  Every getter returns false and
// records a reason once the input is exhausted or malformed; the first
// failure sticks, so callers can chain reads and check once.
class Reader {
public:
    explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

    bool u8(std::uint8_t& out);
    bool u32(std::uint32_t& out);
    bool u64(std::uint64_t& out);
    bool i32(std::int32_t& out);
    bool f64(double& out);
    bool str(std::string& out);
    bool bitvec(util::Bitvec& out);

    // Sequence header: reads a u32 count and rejects anything above `cap`.
    bool count(std::uint32_t& out, std::size_t cap = kMaxSequenceItems);

    bool ok() const { return error_.empty(); }
    // True when every byte has been consumed (strict decodes require it).
    bool done() const { return ok() && pos_ == bytes_.size(); }
    std::size_t remaining() const { return bytes_.size() - pos_; }
    const std::string& error() const { return error_; }
    bool fail(std::string reason);

private:
    bool need(std::size_t n, const char* what);

    std::span<const std::uint8_t> bytes_;
    std::size_t pos_ = 0;
    std::string error_;
};

// --- request/response payload codec -------------------------------------------

std::vector<std::uint8_t> encode_request(const Request& request);
Decode decode_request(std::span<const std::uint8_t> payload, Request& out);

std::vector<std::uint8_t> encode_response(const Response& response);
Decode decode_response(std::span<const std::uint8_t> payload, Response& out);

}  // namespace ndb::control::wire
