#include "control/wire.h"

#include <cstring>

#include "util/strings.h"

namespace ndb::control::wire {

namespace {

// FNV-1a over raw bytes (util::fnv1a_64 is the string_view flavour; the
// constants are identical so the two can never disagree on common input).
std::uint64_t fnv1a(std::span<const std::uint8_t> bytes,
                    std::uint64_t h = 0xcbf29ce484222325ull) {
    for (const std::uint8_t b : bytes) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    return h;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

bool valid_kind(std::uint8_t k) {
    return k >= static_cast<std::uint8_t>(FrameKind::control_request) &&
           k <= static_cast<std::uint8_t>(FrameKind::shutdown);
}

// Checksum input: header bytes [0, 18) then the payload.
std::uint64_t frame_checksum(std::span<const std::uint8_t> header18,
                             std::span<const std::uint8_t> payload) {
    return fnv1a(payload, fnv1a(header18));
}

// Validates the 26-byte header at `p` (with at least kHeaderBytes
// available).  On success fills kind/seq/len; on failure returns the reason.
Decode parse_header(const std::uint8_t* p, FrameKind& kind, std::uint64_t& seq,
                    std::uint32_t& len) {
    if (get_u32(p) != kMagic) {
        return Decode::bad(util::format("bad magic 0x%08x", get_u32(p)));
    }
    if (p[4] != kVersion) {
        return Decode::bad(util::format("unsupported version %u (speak %u)",
                                        p[4], kVersion));
    }
    if (!valid_kind(p[5])) {
        return Decode::bad(util::format("unknown frame kind %u", p[5]));
    }
    kind = static_cast<FrameKind>(p[5]);
    seq = get_u64(p + 6);
    len = get_u32(p + 14);
    if (len > kMaxPayloadBytes) {
        return Decode::bad(util::format("payload length %u exceeds the %zu-byte cap",
                                        len, kMaxPayloadBytes));
    }
    return Decode::good();
}

}  // namespace

const char* frame_kind_name(FrameKind kind) {
    switch (kind) {
        case FrameKind::control_request: return "control_request";
        case FrameKind::control_response: return "control_response";
        case FrameKind::job: return "job";
        case FrameKind::job_result: return "job_result";
        case FrameKind::heartbeat: return "heartbeat";
        case FrameKind::heartbeat_ack: return "heartbeat_ack";
        case FrameKind::shutdown: return "shutdown";
    }
    return "?";
}

// --- frame codec --------------------------------------------------------------

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
    std::vector<std::uint8_t> out;
    out.reserve(kHeaderBytes + frame.payload.size());
    put_u32(out, kMagic);
    out.push_back(kVersion);
    out.push_back(static_cast<std::uint8_t>(frame.kind));
    put_u64(out, frame.seq);
    put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
    const std::uint64_t sum =
        frame_checksum(std::span(out).first(18), frame.payload);
    put_u64(out, sum);
    out.insert(out.end(), frame.payload.begin(), frame.payload.end());
    return out;
}

Decode decode_frame(std::span<const std::uint8_t> bytes, Frame& out) {
    if (bytes.size() < kHeaderBytes) {
        return Decode::bad(util::format("frame needs at least %zu header bytes, got %zu",
                                        kHeaderBytes, bytes.size()));
    }
    FrameKind kind;
    std::uint64_t seq;
    std::uint32_t len;
    if (const Decode d = parse_header(bytes.data(), kind, seq, len); !d) return d;
    if (bytes.size() < kHeaderBytes + len) {
        return Decode::bad(util::format("frame truncated: header promises %u payload "
                                        "bytes, %zu present",
                                        len, bytes.size() - kHeaderBytes));
    }
    if (bytes.size() > kHeaderBytes + len) {
        return Decode::bad(util::format("trailing %zu byte(s) after the frame",
                                        bytes.size() - kHeaderBytes - len));
    }
    const auto payload = bytes.subspan(kHeaderBytes, len);
    const std::uint64_t want = get_u64(bytes.data() + 18);
    const std::uint64_t got = frame_checksum(bytes.first(18), payload);
    if (want != got) {
        return Decode::bad(util::format("checksum mismatch: frame says 0x%016llx, "
                                        "bytes hash to 0x%016llx",
                                        static_cast<unsigned long long>(want),
                                        static_cast<unsigned long long>(got)));
    }
    out.kind = kind;
    out.seq = seq;
    out.payload.assign(payload.begin(), payload.end());
    return Decode::good();
}

void FrameReader::feed(std::span<const std::uint8_t> bytes) {
    // Compact once the consumed prefix dominates, so a long-lived stream
    // does not grow without bound.
    if (pos_ > 4096 && pos_ * 2 > buffer_.size()) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
        pos_ = 0;
    }
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

bool FrameReader::next(Frame& out) {
    for (;;) {
        // Scan forward to the next magic; everything before it is garbage.
        std::size_t start = pos_;
        bool synced = false;
        while (start + 4 <= buffer_.size()) {
            if (get_u32(buffer_.data() + start) == kMagic) {
                synced = true;
                break;
            }
            ++start;
        }
        if (start != pos_) {
            // Bytes we can prove are not a frame start.  (The <4 tail bytes
            // of an unsynced buffer stay pending: they may be a split magic.)
            const std::size_t limit = synced ? start : buffer_.size() - std::min<std::size_t>(3, buffer_.size());
            if (limit > pos_) {
                stats_.bytes_skipped += limit - pos_;
                ++stats_.resyncs;
                pos_ = limit;
            }
        }
        if (!synced || buffer_.size() - pos_ < kHeaderBytes) return false;

        const std::uint8_t* p = buffer_.data() + pos_;
        FrameKind kind;
        std::uint64_t seq;
        std::uint32_t len;
        if (const Decode d = parse_header(p, kind, seq, len); !d) {
            // Corrupt header: skip this magic and rescan (the real frame
            // may start inside what we thought was the header).
            ++stats_.corrupt_frames;
            stats_.last_error = d.reason;
            ++pos_;
            continue;
        }
        if (buffer_.size() - pos_ < kHeaderBytes + len) return false;  // partial
        const auto payload =
            std::span(buffer_).subspan(pos_ + kHeaderBytes, len);
        const std::uint64_t want = get_u64(p + 18);
        if (want != frame_checksum(std::span(p, 18), payload)) {
            ++stats_.corrupt_frames;
            stats_.last_error = "checksum mismatch";
            ++pos_;
            continue;
        }
        out.kind = kind;
        out.seq = seq;
        out.payload.assign(payload.begin(), payload.end());
        pos_ += kHeaderBytes + len;
        ++stats_.frames;
        return true;
    }
}

// --- payload primitives -------------------------------------------------------

void Writer::u32(std::uint32_t v) { put_u32(buf_, v); }
void Writer::u64(std::uint64_t v) { put_u64(buf_, v); }

void Writer::f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
}

void Writer::str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
}

void Writer::bitvec(const util::Bitvec& v) {
    i32(v.width());
    const std::size_t base = buf_.size();
    buf_.resize(base + (static_cast<std::size_t>(v.width()) + 7) / 8);
    v.write_bytes(std::span(buf_).subspan(base));
}

void Writer::bytes(std::span<const std::uint8_t> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
}

bool Reader::fail(std::string reason) {
    if (error_.empty()) error_ = std::move(reason);
    return false;
}

bool Reader::need(std::size_t n, const char* what) {
    if (!ok()) return false;
    if (bytes_.size() - pos_ < n) {
        return fail(util::format("truncated payload: %s needs %zu byte(s), %zu left",
                                 what, n, bytes_.size() - pos_));
    }
    return true;
}

bool Reader::u8(std::uint8_t& out) {
    if (!need(1, "u8")) return false;
    out = bytes_[pos_++];
    return true;
}

bool Reader::u32(std::uint32_t& out) {
    if (!need(4, "u32")) return false;
    out = get_u32(bytes_.data() + pos_);
    pos_ += 4;
    return true;
}

bool Reader::u64(std::uint64_t& out) {
    if (!need(8, "u64")) return false;
    out = get_u64(bytes_.data() + pos_);
    pos_ += 8;
    return true;
}

bool Reader::i32(std::int32_t& out) {
    std::uint32_t v;
    if (!u32(v)) return false;
    out = static_cast<std::int32_t>(v);
    return true;
}

bool Reader::f64(double& out) {
    std::uint64_t bits;
    if (!u64(bits)) return false;
    std::memcpy(&out, &bits, sizeof out);
    return true;
}

bool Reader::str(std::string& out) {
    std::uint32_t n;
    if (!u32(n)) return false;
    if (n > kMaxStringBytes) {
        return fail(util::format("string length %u exceeds the %zu-byte cap", n,
                                 kMaxStringBytes));
    }
    if (!need(n, "string body")) return false;
    out.assign(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return true;
}

bool Reader::bitvec(util::Bitvec& out) {
    std::int32_t width;
    if (!i32(width)) return false;
    if (width < 0 || width > kMaxBitvecBits) {
        return fail(util::format("bitvec width %d outside [0, %d]", width,
                                 kMaxBitvecBits));
    }
    const std::size_t nbytes = (static_cast<std::size_t>(width) + 7) / 8;
    if (!need(nbytes, "bitvec body")) return false;
    const auto body = bytes_.subspan(pos_, nbytes);
    // Excess high-order bits of the leading byte must be zero, or
    // Bitvec::from_bytes would throw on what is attacker-controlled input.
    const int excess = static_cast<int>(nbytes * 8) - width;
    if (excess > 0 && (body[0] >> (8 - excess)) != 0) {
        return fail(util::format("bitvec value exceeds its %d-bit width", width));
    }
    out = util::Bitvec::from_bytes(body, width);
    pos_ += nbytes;
    return true;
}

bool Reader::count(std::uint32_t& out, std::size_t cap) {
    if (!u32(out)) return false;
    if (out > cap) {
        return fail(util::format("sequence count %u exceeds the %zu-item cap", out,
                                 cap));
    }
    return true;
}

// --- request/response payload codec -------------------------------------------

namespace {

void write_bitvec_seq(Writer& w, const std::vector<util::Bitvec>& seq) {
    w.u32(static_cast<std::uint32_t>(seq.size()));
    for (const auto& v : seq) w.bitvec(v);
}

bool read_bitvec_seq(Reader& r, std::vector<util::Bitvec>& out) {
    std::uint32_t n;
    if (!r.count(n)) return false;
    out.resize(n);
    for (auto& v : out) {
        if (!r.bitvec(v)) return false;
    }
    return true;
}

void write_entry(Writer& w, const EntrySpec& e) {
    write_bitvec_seq(w, e.key_values);
    write_bitvec_seq(w, e.key_masks);
    w.i32(e.prefix_len);
    w.i32(e.priority);
    w.str(e.action);
    write_bitvec_seq(w, e.action_args);
}

bool read_entry(Reader& r, EntrySpec& e) {
    return read_bitvec_seq(r, e.key_values) && read_bitvec_seq(r, e.key_masks) &&
           r.i32(e.prefix_len) && r.i32(e.priority) && r.str(e.action) &&
           read_bitvec_seq(r, e.action_args);
}

void write_meter(Writer& w, const MeterConfig& m) {
    w.f64(m.committed_rate_bps);
    w.u64(m.committed_burst);
    w.f64(m.excess_rate_bps);
    w.u64(m.excess_burst);
}

bool read_meter(Reader& r, MeterConfig& m) {
    return r.f64(m.committed_rate_bps) && r.u64(m.committed_burst) &&
           r.f64(m.excess_rate_bps) && r.u64(m.excess_burst);
}

void write_config_op(Writer& w, const ConfigOp& op) {
    w.u8(static_cast<std::uint8_t>(op.kind));
    w.str(op.target);
    switch (op.kind) {
        case ConfigOp::Kind::add_entry:
            write_entry(w, op.entry);
            break;
        case ConfigOp::Kind::set_default_action:
            w.str(op.action);
            write_bitvec_seq(w, op.action_args);
            break;
        case ConfigOp::Kind::write_register:
            w.u64(op.index);
            w.bitvec(op.value);
            break;
        case ConfigOp::Kind::configure_meter:
            w.u64(op.index);
            write_meter(w, op.meter);
            break;
    }
}

bool read_config_op(Reader& r, ConfigOp& op) {
    std::uint8_t kind;
    if (!(r.u8(kind) && r.str(op.target))) return false;
    if (kind > static_cast<std::uint8_t>(ConfigOp::Kind::configure_meter)) {
        return r.fail(util::format("unknown config op kind %u", kind));
    }
    op.kind = static_cast<ConfigOp::Kind>(kind);
    switch (op.kind) {
        case ConfigOp::Kind::add_entry:
            return read_entry(r, op.entry);
        case ConfigOp::Kind::set_default_action:
            return r.str(op.action) && read_bitvec_seq(r, op.action_args);
        case ConfigOp::Kind::write_register:
            return r.u64(op.index) && r.bitvec(op.value);
        case ConfigOp::Kind::configure_meter:
            return r.u64(op.index) && read_meter(r, op.meter);
    }
    return false;
}

void write_status_seq(Writer& w, const std::vector<Status>& statuses) {
    w.u32(static_cast<std::uint32_t>(statuses.size()));
    for (const Status& st : statuses) {
        w.u8(st.ok ? 1 : 0);
        w.str(st.message);
    }
}

bool read_status_seq(Reader& r, std::vector<Status>& statuses) {
    std::uint32_t n;
    if (!r.count(n)) return false;
    statuses.resize(n);
    for (Status& st : statuses) {
        std::uint8_t ok_flag;
        if (!(r.u8(ok_flag) && r.str(st.message))) return false;
        if (ok_flag > 1) return r.fail("status flag is neither 0 nor 1");
        st.ok = ok_flag == 1;
    }
    return true;
}

void write_snapshot(Writer& w, const StatusSnapshot& s) {
    w.u64(s.taken_at_ns);
    w.u64(s.stages.parser_in);
    w.u64(s.stages.parser_accepted);
    w.u64(s.stages.parser_rejected);
    w.u64(s.stages.parser_errors);
    w.u64(s.stages.ingress_dropped);
    w.u64(s.stages.egress_dropped);
    w.u64(s.stages.forwarded);
    w.u64(s.misdirected);
    w.u32(static_cast<std::uint32_t>(s.ports.size()));
    for (const auto& p : s.ports) {
        w.u64(p.rx_packets);
        w.u64(p.rx_bytes);
        w.u64(p.tx_packets);
        w.u64(p.tx_bytes);
    }
    w.u32(static_cast<std::uint32_t>(s.tables.size()));
    for (const auto& t : s.tables) {
        w.str(t.name);
        w.u64(t.hits);
        w.u64(t.misses);
        w.u64(t.entries);
        w.u64(t.capacity);
    }
    w.u32(static_cast<std::uint32_t>(s.externs.size()));
    for (const auto& e : s.externs) {
        w.str(e.name);
        w.str(e.kind);
        w.u64(e.cells);
        w.u64(e.state_hash);
        w.u64(e.unconfigured_meters);
    }
}

bool read_snapshot(Reader& r, StatusSnapshot& s) {
    std::uint32_t n;
    if (!(r.u64(s.taken_at_ns) && r.u64(s.stages.parser_in) &&
          r.u64(s.stages.parser_accepted) && r.u64(s.stages.parser_rejected) &&
          r.u64(s.stages.parser_errors) && r.u64(s.stages.ingress_dropped) &&
          r.u64(s.stages.egress_dropped) && r.u64(s.stages.forwarded) &&
          r.u64(s.misdirected) && r.count(n))) {
        return false;
    }
    s.ports.resize(n);
    for (auto& p : s.ports) {
        if (!(r.u64(p.rx_packets) && r.u64(p.rx_bytes) && r.u64(p.tx_packets) &&
              r.u64(p.tx_bytes))) {
            return false;
        }
    }
    if (!r.count(n)) return false;
    s.tables.resize(n);
    for (auto& t : s.tables) {
        if (!(r.str(t.name) && r.u64(t.hits) && r.u64(t.misses) &&
              r.u64(t.entries) && r.u64(t.capacity))) {
            return false;
        }
    }
    if (!r.count(n)) return false;
    s.externs.resize(n);
    for (auto& e : s.externs) {
        if (!(r.str(e.name) && r.str(e.kind) && r.u64(e.cells) &&
              r.u64(e.state_hash) && r.u64(e.unconfigured_meters))) {
            return false;
        }
    }
    return true;
}

}  // namespace

std::vector<std::uint8_t> encode_request(const Request& request) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(request.index()));
    std::visit(
        [&](const auto& req) {
            using T = std::decay_t<decltype(req)>;
            if constexpr (std::is_same_v<T, AddEntryReq> ||
                          std::is_same_v<T, DeleteEntryReq>) {
                w.str(req.table);
                write_entry(w, req.entry);
            } else if constexpr (std::is_same_v<T, SetDefaultReq>) {
                w.str(req.table);
                w.str(req.action);
                write_bitvec_seq(w, req.args);
            } else if constexpr (std::is_same_v<T, ClearTableReq>) {
                w.str(req.table);
            } else if constexpr (std::is_same_v<T, WriteRegisterReq>) {
                w.str(req.name);
                w.u64(req.index);
                w.bitvec(req.value);
            } else if constexpr (std::is_same_v<T, ReadRegisterReq> ||
                                 std::is_same_v<T, ReadCounterReq>) {
                w.str(req.name);
                w.u64(req.index);
            } else if constexpr (std::is_same_v<T, ConfigureMeterReq>) {
                w.str(req.name);
                w.u64(req.index);
                write_meter(w, req.config);
            } else if constexpr (std::is_same_v<T, ApplyConfigReq>) {
                w.u32(static_cast<std::uint32_t>(req.ops.size()));
                for (const ConfigOp& op : req.ops) write_config_op(w, op);
            }
            // SnapshotReq / ResetReq carry no fields beyond the tag.
        },
        request);
    return w.take();
}

Decode decode_request(std::span<const std::uint8_t> payload, Request& out) {
    Reader r(payload);
    std::uint8_t tag;
    if (!r.u8(tag)) return Decode::bad("request payload is empty: " + r.error());
    bool ok = true;
    switch (tag) {
        case 0: {
            AddEntryReq req;
            ok = r.str(req.table) && read_entry(r, req.entry);
            out = std::move(req);
            break;
        }
        case 1: {
            DeleteEntryReq req;
            ok = r.str(req.table) && read_entry(r, req.entry);
            out = std::move(req);
            break;
        }
        case 2: {
            SetDefaultReq req;
            ok = r.str(req.table) && r.str(req.action) &&
                 read_bitvec_seq(r, req.args);
            out = std::move(req);
            break;
        }
        case 3: {
            ClearTableReq req;
            ok = r.str(req.table);
            out = std::move(req);
            break;
        }
        case 4: {
            WriteRegisterReq req;
            ok = r.str(req.name) && r.u64(req.index) && r.bitvec(req.value);
            out = std::move(req);
            break;
        }
        case 5: {
            ReadRegisterReq req;
            ok = r.str(req.name) && r.u64(req.index);
            out = std::move(req);
            break;
        }
        case 6: {
            ReadCounterReq req;
            ok = r.str(req.name) && r.u64(req.index);
            out = std::move(req);
            break;
        }
        case 7: {
            ConfigureMeterReq req;
            ok = r.str(req.name) && r.u64(req.index) && read_meter(r, req.config);
            out = std::move(req);
            break;
        }
        case 8: out = SnapshotReq{}; break;
        case 9: out = ResetReq{}; break;
        case 10: {
            ApplyConfigReq req;
            std::uint32_t n = 0;
            ok = r.count(n);
            if (ok) {
                req.ops.resize(n);
                for (ConfigOp& op : req.ops) {
                    if (!read_config_op(r, op)) {
                        ok = false;
                        break;
                    }
                }
            }
            out = std::move(req);
            break;
        }
        default:
            return Decode::bad(util::format("unknown request tag %u", tag));
    }
    if (!ok) return Decode::bad("malformed request: " + r.error());
    if (!r.done()) {
        return Decode::bad(util::format("trailing %zu byte(s) after the request",
                                        r.remaining()));
    }
    return Decode::good();
}

std::vector<std::uint8_t> encode_response(const Response& response) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(response.payload));
    w.u8(response.status.ok ? 1 : 0);
    w.str(response.status.message);
    switch (response.payload) {
        case Response::Payload::none: break;
        case Response::Payload::register_value:
            w.bitvec(response.register_value);
            break;
        case Response::Payload::counter_value:
            w.u64(response.counter_value.packets);
            w.u64(response.counter_value.bytes);
            break;
        case Response::Payload::snapshot:
            write_snapshot(w, response.snapshot);
            break;
        case Response::Payload::op_statuses:
            write_status_seq(w, response.op_statuses);
            break;
    }
    return w.take();
}

Decode decode_response(std::span<const std::uint8_t> payload, Response& out) {
    Reader r(payload);
    std::uint8_t kind, ok_flag;
    if (!r.u8(kind)) return Decode::bad("response payload is empty: " + r.error());
    if (kind > static_cast<std::uint8_t>(Response::Payload::op_statuses)) {
        return Decode::bad(util::format("unknown response payload kind %u", kind));
    }
    out = Response{};
    out.payload = static_cast<Response::Payload>(kind);
    bool ok = r.u8(ok_flag) && r.str(out.status.message);
    if (ok && ok_flag > 1) return Decode::bad("status flag is neither 0 nor 1");
    out.status.ok = ok_flag == 1;
    if (ok) {
        switch (out.payload) {
            case Response::Payload::none: break;
            case Response::Payload::register_value:
                ok = r.bitvec(out.register_value);
                break;
            case Response::Payload::counter_value:
                ok = r.u64(out.counter_value.packets) &&
                     r.u64(out.counter_value.bytes);
                break;
            case Response::Payload::snapshot:
                ok = read_snapshot(r, out.snapshot);
                break;
            case Response::Payload::op_statuses:
                ok = read_status_seq(r, out.op_statuses);
                break;
        }
    }
    if (!ok) return Decode::bad("malformed response: " + r.error());
    if (!r.done()) {
        return Decode::bad(util::format("trailing %zu byte(s) after the response",
                                        r.remaining()));
    }
    return Decode::good();
}

}  // namespace ndb::control::wire
