// Scenario execution core, shared by CampaignEngine (threads) and
// FabricEngine (forked worker processes).
//
// Everything here is a pure function of (scenario, backend set, options):
// run one scenario on a device pool, diff each DUT run against the
// reference run in causal order (control-plane acceptance -> table shape ->
// stage taps -> output stream -> status counters), and triage divergences
// (minimize, localize, fingerprint).  Keeping this in one place is what
// lets a multi-process fabric promise reports byte-identical to the
// single-process sweep: both sides call execute_scenario() and fold the
// outcomes through the same ReportBuilder in the same deterministic order.
//
// Management-plane fault injection (ExecOptions::mgmt): DUT configuration
// is delivered through a control::WireChannel over a fault-injected
// loopback transport while the reference's channel stays clean.  A config
// op that exhausts its retry budget fails with a "wire: ..." Status; the
// acceptance diff then classifies the divergence as kind "mgmt" -- the
// management plane itself as a divergence surface.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "control/transport.h"
#include "core/campaign.h"
#include "coverage/coverage.h"
#include "dataplane/digest.h"
#include "packet/packet.h"
#include "target/device.h"

namespace ndb::core {

// Injection timeline: fixed epoch + one 84-byte wire slot per packet, the
// same on every device.  Pinning rx_time explicitly (instead of letting each
// device stamp its own clock) keeps scenario behaviour independent of how
// many scenarios a worker's reused devices have already processed -- the
// determinism-under-sharding contract depends on it.
inline constexpr std::uint64_t kEpochNs = 1'000'000;
inline constexpr std::uint64_t kSlotNs = 672;

struct StreamItem {
    std::uint32_t port = 0;
    packet::Packet pkt;
};

// Everything observable from running one scenario on one device.
struct DeviceRun {
    std::vector<bool> config_ok;
    // Parallel to config_ok: the op failed at the wire layer (timeout or
    // decode error on the management channel), not in the device runtime.
    std::vector<bool> config_wire_fail;
    std::vector<StreamItem> observed;
    std::vector<dataplane::TapDigest> taps;  // empty when the device cannot record
    control::StatusSnapshot snapshot;
    std::uint64_t injected = 0;
};

// The pre-triage core of a finding.
struct RawDivergence {
    std::string kind;
    std::string detail;
    std::uint64_t first_diverging_packet = 0;
};

struct ScenarioOutcome {
    std::uint64_t packets = 0;  // inject() calls issued, triage included
    std::vector<DivergenceRecord> findings;
    // Management-channel traffic of this scenario's DUT runs (zero when
    // mgmt fault injection is off).
    ChannelAccounting mgmt;
    // Reference-device coverage of the detection run (guided mode only;
    // heap-held so uniform sweeps don't pay 16 KiB per outcome slot).
    std::unique_ptr<coverage::CoverageMap> coverage;
    // Per-DUT coverage of the same detection run, parallel to the sweep's
    // backend list.  Each device salts its edges by backend identity, so a
    // quirk that bends execution onto a different path lights slots no
    // reference run can -- DUT-side novelty the scheduler can reward.
    std::vector<std::unique_ptr<coverage::CoverageMap>> dut_coverage;
};

// Per-worker device pool: one reference instance plus one instance per DUT
// backend, reused across every scenario the worker claims (load() replaces
// the image and all dynamic state).
struct WorkerContext {
    std::unique_ptr<target::Device> reference;
    std::vector<std::unique_ptr<target::Device>> duts;  // parallel to specs

    WorkerContext(const std::string& reference_backend,
                  const std::vector<BackendSpec>& specs,
                  dataplane::Engine engine);
};

// A DUT's management-channel configuration: the fault plan applied to its
// config delivery plus the client's retry budget.
struct MgmtLink {
    bool enabled = false;
    control::FaultPlan plan;
    control::RetryPolicy retry;
};

// The scenario's packet stream on the fixed kEpochNs/kSlotNs timeline.
std::vector<packet::Packet> scenario_packets(const Scenario& sc);

// Runs one scenario on one device.  When `mgmt` is non-null and enabled,
// configuration is applied through a faulted wire channel (accounting
// accumulated into `acct` when non-null); otherwise config ops hit the
// device runtime directly.
DeviceRun run_scenario_on(target::Device& dev, const Scenario& sc,
                          const std::vector<packet::Packet>& packets,
                          std::size_t batch_size,
                          const MgmtLink* mgmt = nullptr,
                          ChannelAccounting* acct = nullptr);

// First observable difference between a DUT run and the reference run, in
// causal order: control-plane acceptance, then the output stream, then the
// internal status counters.
std::optional<RawDivergence> diff_runs(const DeviceRun& dut,
                                       const DeviceRun& ref);

// Knobs execute_scenario() needs from CampaignConfig (kept separate so the
// fabric worker ships options, not the whole config).
struct ExecOptions {
    std::size_t batch_size = 8;
    bool minimize = true;
    bool localize = true;
    bool coverage = false;
    // Base management link; execute_scenario derives the per-(scenario,
    // DUT) plan seed from it, so the schedule is identical no matter which
    // thread, worker or process runs the slot.
    MgmtLink mgmt;
};

// Runs `sc` on the pool and appends triaged findings to `outcome` --
// detection, minimization, localization, fingerprinting.  `recipe` is the
// slot's mutation parentage ("" = fresh seed).
void execute_scenario(WorkerContext& ctx, const Scenario& sc,
                      const std::vector<BackendSpec>& duts,
                      const ExecOptions& options, ScenarioOutcome& outcome,
                      const std::string& recipe);

// Folds outcomes into a CampaignReport in call order.  Callers feed
// outcomes in deterministic scenario order; dedup keeps the first finding
// per fingerprint and counts the rest, so the resulting report is
// byte-identical no matter how the outcomes were produced.
class ReportBuilder {
public:
    explicit ReportBuilder(CampaignReport& report) : report_(&report) {}

    // Returns whether the outcome contributed a previously unseen
    // fingerprint (the guided scheduler's freshness bonus).
    bool fold(ScenarioOutcome& outcome);

private:
    CampaignReport* report_;
    std::map<std::string, std::size_t> seen_;
    std::uint64_t merge_ordinal_ = 0;
};

}  // namespace ndb::core
