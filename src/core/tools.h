// Shared scenario toolkit for use-case drivers, examples and benchmarks:
// canonical packets, canonical table programming, and small helpers that
// keep the experiment code readable.
#pragma once

#include <memory>
#include <string>

#include "control/runtime.h"
#include "core/testspec.h"
#include "p4/ir.h"
#include "packet/protocols.h"
#include "target/device.h"

namespace ndb::core::scenario {

// Canonical test endpoints.
packet::Mac host_mac(int n);           // 02:00:00:00:00:0n
std::uint32_t host_ip(int n);          // 10.0.0.n

// A UDP/IPv4 packet from host 1 to host 2 with `payload` bytes.
packet::Packet ipv4_udp_packet(std::size_t payload = 64, std::uint8_t ttl = 64);

// A broadcast ARP request (the paper's "packet that must be rejected").
packet::Packet arp_packet();

// An 8-deep label-stack packet for the deep_parser program (bottom-of-stack
// set on the last label).
packet::Packet label_stack_packet(int depth = 8);

// Compiled copies of the sample programs (cached per call site).
std::shared_ptr<const p4::ir::Program> compile(std::string_view source,
                                               std::string name);

// Canonical routes / entries.
control::Status add_default_route(control::RuntimeApi& rt, std::uint32_t port);
control::Status add_l2_entry(control::RuntimeApi& rt, const packet::Mac& dst,
                             std::uint32_t port);
control::Status add_acl_allow_udp(control::RuntimeApi& rt, std::uint16_t dst_port,
                                  std::uint32_t egress_port);

// Bit offsets of well-known IPv4 fields in an Ethernet+IPv4 frame.
inline constexpr std::size_t kIpv4TtlBit = (14 + 8) * 8;
inline constexpr std::size_t kIpv4ChecksumBit = (14 + 10) * 8;
inline constexpr std::size_t kIpv4DstBit = (14 + 16) * 8;

}  // namespace ndb::core::scenario
