#include "core/localize.h"

#include "util/strings.h"

namespace ndb::core {

using dataplane::Stage;

std::string LocalizeResult::to_string() const {
    if (!diverged) {
        return util::format("%s (probes=%d replays=%llu)",
                            description.empty() ? "no divergence"
                                                : description.c_str(),
                            probes,
                            static_cast<unsigned long long>(packets_replayed));
    }
    return util::format("fault localized to %s stage: %s (probes=%d replays=%llu)",
                        dataplane::stage_name(stage), description.c_str(), probes,
                        static_cast<unsigned long long>(packets_replayed));
}

FaultLocalizer::FaultLocalizer(target::Device& dut, target::Device& golden,
                               std::uint64_t trigger_period)
    : dut_(dut), golden_(golden), trigger_period_(std::max<std::uint64_t>(1, trigger_period)) {}

namespace {

// Compares two tap states of the same program; returns a human-readable
// difference, if any.
std::optional<std::string> diff_states(const p4::ir::Program& prog,
                                       const dataplane::PacketState& a,
                                       const dataplane::PacketState& b) {
    for (std::size_t h = 0; h < prog.headers.size(); ++h) {
        const auto& hdr = prog.headers[h];
        if (a.headers[h].valid != b.headers[h].valid) {
            return "validity of header '" + hdr.name + "' differs";
        }
        if (!a.headers[h].valid && !hdr.is_metadata) continue;
        for (std::size_t f = 0; f < hdr.fields.size(); ++f) {
            if (a.headers[h].fields[f] != b.headers[h].fields[f]) {
                return util::format("field %s.%s: dut=%s golden=%s", hdr.name.c_str(),
                                    hdr.fields[f].name.c_str(),
                                    a.headers[h].fields[f].to_hex().c_str(),
                                    b.headers[h].fields[f].to_hex().c_str());
            }
        }
    }
    return std::nullopt;
}

const std::optional<dataplane::PacketState>* tap_of(
    const dataplane::PipelineResult& r, Stage stage) {
    switch (stage) {
        case Stage::parser: return &r.tap_after_parser;
        case Stage::ingress: return &r.tap_after_ingress;
        case Stage::egress:
        case Stage::deparser: return &r.tap_after_egress;
    }
    return nullptr;
}

// Final description for a run in which no probe reported a divergence.
const char* settled_description(bool conclusive) {
    return conclusive ? "no stage diverged"
                      : "inconclusive: no tap records captured "
                        "(tap ring disabled on a device?)";
}

}  // namespace

std::optional<std::string> FaultLocalizer::probe(Stage stage,
                                                 const packet::Packet& stimulus,
                                                 LocalizeResult& accounting) {
    ++accounting.probes;
    const bool dut_taps_before = dut_.taps_enabled();
    const bool golden_taps_before = golden_.taps_enabled();
    dut_.set_taps_enabled(true);
    golden_.set_taps_enabled(true);
    dut_.clear_tap_records();
    golden_.clear_tap_records();

    std::optional<std::string> divergence;
    for (std::uint64_t i = 0; i < trigger_period_; ++i) {
        packet::Packet p1 = stimulus;
        packet::Packet p2 = stimulus;
        dut_.inject(std::move(p1));
        golden_.inject(std::move(p2));
        accounting.packets_replayed += 2;
        dut_.flush();
        golden_.flush();
        const auto& taps_dut = dut_.tap_records();
        const auto& taps_gold = golden_.tap_records();
        if (taps_dut.empty() || taps_gold.empty()) {
            // Recording is deterministic per device: an empty ring right
            // after an injection means it cannot record, so further
            // replays of this probe cannot become observable either.
            break;
        }
        accounting.conclusive = true;
        const auto& rd = taps_dut.back().result;
        const auto& rg = taps_gold.back().result;

        // A packet that vanished on the DUT before this stage is the
        // strongest possible divergence signal.
        if (rd.silent_drop && static_cast<int>(rd.silent_drop_stage) <=
                                  static_cast<int>(stage)) {
            divergence = util::format("packet silently vanished after %s",
                                      dataplane::stage_name(rd.silent_drop_stage));
            break;
        }
        // Header states can agree while the verdicts do not (the SDNet
        // reject bug extracts identical headers and then mis-accepts).
        // The parser precedes every probed stage, so this check runs
        // unconditionally: probe() must report divergence at-or-before the
        // probed stage or localize_binary's bisection loses monotonicity.
        if (rd.parser_verdict != rg.parser_verdict) {
            divergence = util::format(
                "parser verdict differs: dut=%s golden=%s",
                dataplane::parser_verdict_name(rd.parser_verdict),
                dataplane::parser_verdict_name(rg.parser_verdict));
            break;
        }
        // Compare every tap at-or-before the probed stage, front to back:
        // a divergence confined to an early tap may be overwritten by later
        // stages, and reporting the earliest observable one is what keeps
        // the bisection monotone.
        for (int s = 0; s <= static_cast<int>(stage) && !divergence; ++s) {
            const Stage at = static_cast<Stage>(s);
            const auto* tap_d = tap_of(rd, at);
            const auto* tap_g = tap_of(rg, at);
            if (!tap_d || !tap_g) continue;
            if (tap_d->has_value() != tap_g->has_value()) {
                divergence = util::format("packet reached %s on only one device",
                                          dataplane::stage_name(at));
            } else if (tap_d->has_value()) {
                divergence = diff_states(dut_.program(), **tap_d, **tap_g);
            }
        }
        if (divergence) break;
        // No tap divergence up to the probed stage; when neither pipeline
        // reached it, the dispositions are the remaining signal.
        const auto* probed = tap_of(rd, stage);
        if (probed && !probed->has_value() && rd.disposition != rg.disposition) {
            divergence = util::format("disposition differs: dut=%s golden=%s",
                                      dataplane::disposition_name(rd.disposition),
                                      dataplane::disposition_name(rg.disposition));
            break;
        }
    }
    dut_.set_taps_enabled(dut_taps_before);
    golden_.set_taps_enabled(golden_taps_before);
    return divergence;
}

LocalizeResult FaultLocalizer::localize_linear(const packet::Packet& stimulus) {
    LocalizeResult result;
    for (const Stage stage : {Stage::parser, Stage::ingress, Stage::egress}) {
        if (auto diff = probe(stage, stimulus, result)) {
            result.diverged = true;
            result.stage = stage;
            result.description = std::move(*diff);
            return result;
        }
        // A blind probe stays blind: recording does not depend on the stage.
        if (!result.conclusive) break;
    }
    // A probe that captured no taps on either device cannot tell a clean
    // device from a broken one; say so instead of claiming a clean bill.
    result.description = settled_description(result.conclusive);
    return result;
}

LocalizeResult FaultLocalizer::localize_binary(const packet::Packet& stimulus) {
    LocalizeResult result;
    // Tap points ordered front to back; find the FIRST diverging one by
    // bisection (divergence is monotone: once state differs it stays
    // different or the packet disappears).
    const Stage stages[] = {Stage::parser, Stage::ingress, Stage::egress};
    int lo = 0, hi = 2;
    int first_bad = -1;
    std::string description;
    while (lo <= hi) {
        const int mid = (lo + hi) / 2;
        if (auto diff = probe(stages[mid], stimulus, result)) {
            first_bad = mid;
            description = std::move(*diff);
            hi = mid - 1;
        } else {
            // A blind probe stays blind: recording does not depend on the
            // stage, so further bisection cannot become observable.
            if (!result.conclusive) break;
            lo = mid + 1;
        }
    }
    if (first_bad >= 0) {
        result.diverged = true;
        result.stage = stages[first_bad];
        result.description = std::move(description);
    } else {
        result.description = settled_description(result.conclusive);
    }
    return result;
}

}  // namespace ndb::core
