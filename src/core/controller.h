// NetDebug controller: the software tool on the host (paper Figure 1).
//
// Owns the dedicated control channel to the device, programs the DUT and
// the two in-device modules (generator + checker), runs validation
// campaigns, and gathers results: check reports, status snapshots and the
// derived silent-loss accounting.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "control/channel.h"
#include "core/checker.h"
#include "core/generator.h"
#include "core/testspec.h"
#include "target/device.h"

namespace ndb::core {

struct CampaignResult {
    GeneratorStats generator;
    CheckReport check;
    control::StatusSnapshot before;
    control::StatusSnapshot after;
    std::int64_t unaccounted_packets = 0;  // in-device silent losses
    std::int64_t misdirected = 0;          // forwarded to a nonexistent port
    bool passed = false;
    std::string summary;
};

class Controller {
public:
    explicit Controller(target::Device& device);

    // Compiles P4 source on the host and installs it through the backend.
    control::Status load_program(std::string_view source, std::string name);

    // Management-plane access over the dedicated interface.
    control::RuntimeApi& runtime() { return client_; }

    // Runs one validation campaign: configure generator + checker, stream
    // the packets, collect everything.
    CampaignResult run(const TestSpec& spec);

    // NetDebug sits inside the device; expose the internal surface.
    target::Device& device() { return device_; }

private:
    target::Device& device_;
    control::Channel channel_;
    control::RuntimeClient client_;
};

}  // namespace ndb::core
