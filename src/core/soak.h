// Soak mode: long-running campaigns that grow the regression corpus.
//
// A soak run is an ordinary (usually coverage-guided) campaign whose
// divergence records are compared against the `.corpus` recipes already
// committed under tests/corpus/; every finding with a *new unique*
// fingerprint is appended as a fresh recipe file that corpus_replay_test
// will replay forever after.  File names are a pure function of the
// fingerprint, so re-running a soak never duplicates entries and two
// machines discovering the same bug write the same file.  Divergences that
// came out of the mutation engine additionally carry a `mutate=` line (the
// encoded MutationRecipe), so soak-discovered mutants replay exactly; files
// without one replay as plain fresh seeds, keeping the format
// backward-compatible.
#pragma once

#include <string>
#include <vector>

#include "core/campaign.h"

namespace ndb::core {

struct SoakResult {
    std::vector<std::string> written;  // file names created this run
    std::size_t skipped_known = 0;     // findings already in the corpus
};

// Deterministic corpus file name for a divergence record:
//   soak_<backend>_<stage>_<fnv64(fingerprint) hex>.corpus
std::string soak_corpus_filename(const DivergenceRecord& rec);

// Appends every record of `report` whose (backend, quirk-signature, stage)
// fingerprint is not yet represented in `corpus_dir` (existing `.corpus`
// files are parsed for their backend/quirks/stage keys).  The record's
// backend label must be a registry name for the written recipe to replay --
// true for every sweep ndb_campaign builds.  Creates the directory when
// missing.
SoakResult append_unique_corpus_entries(const CampaignReport& report,
                                        const std::string& corpus_dir);

}  // namespace ndb::core
