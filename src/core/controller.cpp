#include "core/controller.h"

#include "p4/compiler.h"
#include "util/strings.h"

namespace ndb::core {

Controller::Controller(target::Device& device)
    : device_(device), client_(channel_) {
    channel_.bind([this](const control::Request& req) {
        return control::dispatch(device_, req);
    });
}

control::Status Controller::load_program(std::string_view source, std::string name) {
    try {
        const auto prog = p4::compile_source(source, std::move(name));
        return device_.load(*prog);
    } catch (const util::CompileError& e) {
        return control::Status::failure(e.what());
    }
}

CampaignResult Controller::run(const TestSpec& spec) {
    CampaignResult result;
    result.before = client_.snapshot();

    TestPacketGenerator generator(spec);
    OutputPacketChecker checker(spec);

    result.generator = generator.run(device_);

    // Drain every port and feed the checker in observation order.
    for (int port = 0; port < device_.config().num_ports; ++port) {
        for (const auto& pkt : device_.drain_port(static_cast<std::uint32_t>(port))) {
            checker.observe(pkt, static_cast<std::uint32_t>(port));
        }
    }
    result.check = checker.finalize(result.generator.injected);
    result.after = client_.snapshot();

    const auto delta = result.after.delta_since(result.before);
    result.unaccounted_packets = delta.unaccounted_packets();
    result.misdirected = static_cast<std::int64_t>(delta.misdirected);

    result.passed = result.check.passed;
    result.summary = util::format(
        "%s: %s | injected=%llu observed=%llu violations=%llu unaccounted=%lld "
        "misdirected=%lld",
        spec.name.c_str(), result.passed ? "PASS" : "FAIL",
        static_cast<unsigned long long>(result.generator.injected),
        static_cast<unsigned long long>(result.check.observed),
        static_cast<unsigned long long>(result.check.violations),
        static_cast<long long>(result.unaccounted_packets),
        static_cast<long long>(result.misdirected));
    return result;
}

}  // namespace ndb::core
