// Test packet generator: the first of NetDebug's two in-device hardware
// modules (paper Figure 1).
//
// Generates a deterministic packet stream from a TestSpec -- template field
// mutations, optional P4 mutator program, sequence/timestamp stamps -- and
// injects it directly into the data plane under test, bypassing the
// external interfaces.  Generation runs at a configured rate up to line
// rate; the injected timeline is what the device's timing model sees.
#pragma once

#include <cstdint>
#include <memory>

#include "core/testspec.h"
#include "dataplane/pipeline.h"
#include "dataplane/stateful.h"
#include "dataplane/tables.h"
#include "target/device.h"

namespace ndb::core {

// Payload stamp layout (from the packet tail): 8-byte seq, 8-byte timestamp.
inline constexpr std::size_t kStampBytes = 16;

struct GeneratorStats {
    std::uint64_t injected = 0;
    std::uint64_t first_inject_ns = 0;
    std::uint64_t last_inject_ns = 0;
    double offered_pps = 0.0;

    std::string to_string() const;
};

class TestPacketGenerator {
public:
    explicit TestPacketGenerator(const TestSpec& spec);
    ~TestPacketGenerator();

    // Builds packet number `seq` (without injecting it).
    packet::Packet make_packet(std::uint64_t seq, std::uint64_t inject_ns);

    // Runs the whole stream into the device.
    GeneratorStats run(target::Device& device);

    static void write_stamp(packet::Packet& pkt, std::uint64_t seq,
                            std::uint64_t t_ns);
    static bool read_stamp(const packet::Packet& pkt, std::uint64_t& seq,
                           std::uint64_t& t_ns);

private:
    const TestSpec& spec_;

    // P4 mutator execution state (reference semantics, no quirks).
    std::unique_ptr<dataplane::TableSet> mut_tables_;
    std::unique_ptr<dataplane::StatefulSet> mut_stateful_;
    std::unique_ptr<dataplane::Pipeline> mut_pipeline_;
    p4::ir::FieldRef mut_seq_field_;
    std::uint64_t current_seq_ = 0;
};

}  // namespace ndb::core
