// Seeded scenario synthesis for differential fuzzing campaigns.
//
// A Scenario is everything one campaign iteration needs: a catalogue
// program, a replayable control-plane configuration, and a TestSpec whose
// template + field-mutation plan drives the packet stream.  Scenarios are a
// pure function of the seed, so any divergence a sweep finds is reproduced
// by re-running its seed -- the corpus under tests/corpus/ is just a list
// of such seeds.  Ground truth is not encoded here: the campaign engine
// derives expectations by running the same scenario on the reference
// backend (the paper's "golden device").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "control/runtime.h"
#include "core/testspec.h"
#include "p4/ir.h"
#include "util/bitvec.h"
#include "util/random.h"

namespace ndb::core {

// The replayable programming step lives with the control-plane value types
// (control/config.h) so the wire codec can batch it; these aliases keep the
// campaign-side spelling that scenario synthesis and the corpus grew up on.
using ConfigOp = control::ConfigOp;
using control::apply_config_op;

struct Scenario {
    std::uint64_t seed = 0;
    std::string program;  // catalogue name
    std::shared_ptr<const p4::ir::Program> compiled;
    std::vector<ConfigOp> config;
    TestSpec spec;
};

class SpecGenerator {
public:
    // `programs` restricts synthesis to those catalogue entries (all must
    // exist); empty selects the default fuzzable subset.
    explicit SpecGenerator(std::vector<std::string> programs = {});

    const std::vector<std::string>& programs() const { return programs_; }

    // The catalogue subset a default-constructed generator sweeps.
    static std::vector<std::string> default_programs();

    // Builds the scenario for `seed`.  Deterministic and const: safe to call
    // concurrently from every campaign worker.
    Scenario make(std::uint64_t seed) const;

    // Like make(), but the program is chosen by the caller instead of by
    // the seed -- the coverage-guided scheduler's entry point.  Consumes
    // exactly one RNG draw in place of the program pick, so
    // make_for(i, seed) on any generator equals make(seed) on a generator
    // restricted to that single program: a guided finding's (program, seed)
    // pair replays through the ordinary corpus path.
    Scenario make_for(std::size_t program_index, std::uint64_t seed) const;

private:
    Scenario build(util::Rng& rng, std::size_t which, std::uint64_t seed) const;

    std::vector<std::string> programs_;
    // Parallel to programs_; compiled once so the per-scenario hot path
    // never re-runs the P4 frontend.
    std::vector<std::shared_ptr<const p4::ir::Program>> compiled_;
};

}  // namespace ndb::core
