// Crash-tolerant multi-process campaign fabric.
//
// FabricEngine runs the uniform campaign sweep across forked worker
// subprocesses that speak the wire protocol (control/wire.h) over
// socketpairs: the parent dispatches shards of scenario indices as `job`
// frames, workers execute them through the same execute_scenario() core
// the in-process engine uses and stream back `job_result` frames, and a
// heartbeat watchdog detects hung or killed workers.  A worker that dies
// mid-shard is respawned and its shard re-dispatched, so a SIGKILL costs
// latency, never correctness: outcomes are folded in scenario order at the
// end, which keeps the CampaignReport byte-identical to the single-process
// run (the fabric's own accounting block is the one timing-dependent
// addition, and it is excluded from byte-identity by construction).
//
// The parent<->worker links are themselves faultable (FabricConfig::
// link_fault_plan): dropped/corrupted/delayed frames are absorbed by frame
// resync, job retransmission and, in the limit, the watchdog's
// kill-and-re-dispatch path -- the same degradation ladder a real
// distributed test harness needs.
#pragma once

#include <string>

#include "core/campaign.h"

namespace ndb::core {

struct FabricConfig {
    // The sweep to run.  Fabric supports the uniform sweep only: guided
    // coverage, mutation, concolic and single-recipe modes keep their
    // feedback loops at round barriers inside one process.
    CampaignConfig campaign;

    int workers = 2;
    std::uint64_t shard_size = 4;  // scenarios per job frame

    // control::FaultPlan spec applied to every parent<->worker link (both
    // directions, per-endpoint salted seeds).  Empty or "none" = clean.
    std::string link_fault_plan;

    std::uint32_t heartbeat_interval_ms = 50;
    // A worker with a shard in flight and no frame for this long is
    // declared hung, SIGKILLed and replaced.  Must exceed the worst-case
    // shard execution time.
    std::uint32_t heartbeat_timeout_ms = 10'000;
    // A worker that answers heartbeats *after* its job was sent but returns
    // no result is idle -- the job or result frame was lost on a faulty
    // link; the job is retransmitted at this cadence.
    std::uint32_t job_resend_ms = 200;

    // A worker slot that keeps dying past this many respawns aborts the
    // campaign (it is failing deterministically, not crashing by injection).
    int max_restarts_per_worker = 3;

    // Test/CI hook: SIGKILL worker 0 once, after this many job results have
    // been received (-1 = never).  Exercises the respawn + re-dispatch path
    // deterministically enough for assertions on worker_restarts.
    int kill_worker_after_results = -1;
};

class FabricEngine {
public:
    explicit FabricEngine(FabricConfig config);

    // Forks the workers, runs the sweep, reaps everything.  Throws
    // std::invalid_argument for unsupported campaign modes and
    // std::runtime_error when a worker slot exceeds its respawn budget.
    CampaignReport run();

    const CampaignStats& stats() const { return stats_; }

private:
    FabricConfig config_;
    CampaignStats stats_;
};

}  // namespace ndb::core
