#include "core/campaign.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/generator.h"
#include "core/mutate.h"
#include "coverage/coverage.h"
#include "coverage/edge_index.h"
#include "coverage/scheduler.h"
#include "target/device.h"
#include "util/random.h"
#include "util/strings.h"
#include "verify/concolic.h"

namespace ndb::core {

namespace {

// Injection timeline: fixed epoch + one 84-byte wire slot per packet, the
// same on every device.  Pinning rx_time explicitly (instead of letting each
// device stamp its own clock) keeps scenario behaviour independent of how
// many scenarios a worker's reused devices have already processed -- the
// determinism-under-sharding contract depends on it.
constexpr std::uint64_t kEpochNs = 1'000'000;
constexpr std::uint64_t kSlotNs = 672;

// Decorrelates the fresh-vs-mutant coin (and parent pick) from both the
// scenario seed stream and the mutation-derivation stream.
constexpr std::uint64_t kMutateCoinSalt = 0x636f696e666c6970ull;  // "coinflip"

struct StreamItem {
    std::uint32_t port = 0;
    packet::Packet pkt;
};

// The per-packet view of the internal stage taps is dataplane::TapDigest,
// hashed in place by the pipeline's streaming digest mode.  This is the
// paper's visibility advantage made part of *detection*: bugs like a
// depth-limited parser leave the output bytes untouched (unparsed headers
// ride through as payload) and only the in-device state betrays them.
using dataplane::TapDigest;

// Everything observable from running one scenario on one device.
struct DeviceRun {
    std::vector<bool> config_ok;
    std::vector<StreamItem> observed;
    std::vector<TapDigest> taps;  // empty when the device cannot record
    control::StatusSnapshot snapshot;
    std::uint64_t injected = 0;
};

// The pre-triage core of a finding.
struct RawDivergence {
    std::string kind;
    std::string detail;
    std::uint64_t first_diverging_packet = 0;
};

struct ScenarioOutcome {
    std::uint64_t packets = 0;  // inject() calls issued, triage included
    std::vector<DivergenceRecord> findings;
    // Reference-device coverage of the detection run (guided mode only;
    // heap-held so uniform sweeps don't pay 16 KiB per outcome slot).
    std::unique_ptr<coverage::CoverageMap> coverage;
    // Per-DUT coverage of the same detection run, parallel to the sweep's
    // backend list.  Each device salts its edges by backend identity, so a
    // quirk that bends execution onto a different path lights slots no
    // reference run can -- DUT-side novelty the scheduler can reward.
    std::vector<std::unique_ptr<coverage::CoverageMap>> dut_coverage;
};

std::uint64_t stamp_seq(const packet::Packet& pkt) {
    std::uint64_t seq = 0, t = 0;
    return TestPacketGenerator::read_stamp(pkt, seq, t) ? seq : 0;
}

DeviceRun run_scenario_on(target::Device& dev, const Scenario& sc,
                          const std::vector<packet::Packet>& packets,
                          std::size_t batch_size) {
    DeviceRun run;
    if (!dev.load(*sc.compiled)) {
        throw std::runtime_error("campaign: device refused catalogue program " +
                                 sc.program);
    }
    run.config_ok.reserve(sc.config.size());
    for (const auto& op : sc.config) {
        run.config_ok.push_back(static_cast<bool>(apply_config_op(dev, op)));
    }
    // Streaming digest mode: the pipeline hashes each stage's state in
    // place, so detection gets the tap signal without a single PacketState
    // copy (full taps stay reserved for FaultLocalizer replay).
    dev.set_digests_enabled(true);
    const std::size_t batch = std::max<std::size_t>(1, batch_size);
    std::vector<packet::Packet> drained;  // reused across every drain round
    std::size_t i = 0;
    while (i < packets.size()) {
        const std::size_t end = std::min(i + batch, packets.size());
        for (; i < end; ++i) {
            dev.inject(packets[i]);
            ++run.injected;
        }
        // One queue sweep per batch amortizes the drain round-trip.
        for (int p = 0; p < dev.config().num_ports; ++p) {
            drained.clear();
            dev.drain_port_into(static_cast<std::uint32_t>(p), drained);
            for (auto& out : drained) {
                run.observed.push_back({static_cast<std::uint32_t>(p), std::move(out)});
            }
        }
    }
    // Collect the digest ring (synchronous recording: one record per
    // injection when the device can record at all).
    std::vector<TapDigest> records = dev.take_digest_records();
    if (records.size() == packets.size()) {
        run.taps = std::move(records);
    }
    dev.set_digests_enabled(false);
    run.snapshot = dev.snapshot();
    return run;
}

// First observable difference between a DUT run and the reference run, in
// causal order: control-plane acceptance, then the output stream, then the
// internal status counters.
std::optional<RawDivergence> diff_runs(const DeviceRun& dut, const DeviceRun& ref) {
    for (std::size_t i = 0; i < dut.config_ok.size() && i < ref.config_ok.size();
         ++i) {
        if (dut.config_ok[i] != ref.config_ok[i]) {
            return RawDivergence{
                "config",
                util::format("config op #%zu: dut=%s golden=%s", i,
                             dut.config_ok[i] ? "ok" : "rejected",
                             ref.config_ok[i] ? "ok" : "rejected"),
                0};
        }
    }

    // Static table shape is control-plane visible before any packet flows:
    // a clamped capacity or a rejected insert shows up here.
    for (std::size_t i = 0;
         i < dut.snapshot.tables.size() && i < ref.snapshot.tables.size(); ++i) {
        const auto& dt = dut.snapshot.tables[i];
        const auto& gt = ref.snapshot.tables[i];
        if (dt.capacity != gt.capacity || dt.entries != gt.entries) {
            return RawDivergence{
                "config",
                util::format("table %s shape: dut entries=%llu/%llu golden "
                             "entries=%llu/%llu",
                             dt.name.c_str(),
                             static_cast<unsigned long long>(dt.entries),
                             static_cast<unsigned long long>(dt.capacity),
                             static_cast<unsigned long long>(gt.entries),
                             static_cast<unsigned long long>(gt.capacity)),
                0};
        }
    }

    // Internal visibility first: the taps see divergences (wrong parser
    // verdict, clobbered state) that output bytes can hide entirely.  Only
    // comparable when both devices recorded the full stream.
    if (!dut.taps.empty() && dut.taps.size() == ref.taps.size()) {
        for (std::size_t i = 0; i < dut.taps.size(); ++i) {
            const TapDigest& d = dut.taps[i];
            const TapDigest& g = ref.taps[i];
            if (d == g) continue;
            std::string what;
            if (d.verdict != g.verdict) {
                what = util::format("parser verdict dut=%s golden=%s",
                                    dataplane::parser_verdict_name(d.verdict),
                                    dataplane::parser_verdict_name(g.verdict));
            } else if (d.stage_hash[0] != g.stage_hash[0]) {
                what = "state differs at the parser tap";
            } else if (d.stage_hash[1] != g.stage_hash[1]) {
                what = "state differs at the ingress tap";
            } else if (d.stage_hash[2] != g.stage_hash[2]) {
                what = "state differs at the egress tap";
            } else if (d.disposition != g.disposition) {
                what = util::format("disposition dut=%s golden=%s",
                                    dataplane::disposition_name(d.disposition),
                                    dataplane::disposition_name(g.disposition));
            } else {
                what = util::format("egress port dut=%u golden=%u", d.egress_port,
                                    g.egress_port);
            }
            return RawDivergence{
                "internal",
                util::format("packet #%zu: %s", i + 1, what.c_str()),
                static_cast<std::uint64_t>(i + 1)};
        }
    }

    const std::size_t n = std::min(dut.observed.size(), ref.observed.size());
    for (std::size_t i = 0; i < n; ++i) {
        const StreamItem& d = dut.observed[i];
        const StreamItem& g = ref.observed[i];
        if (d.port != g.port) {
            return RawDivergence{
                "output",
                util::format("output #%zu egress port: dut=%u golden=%u", i, d.port,
                             g.port),
                stamp_seq(g.pkt)};
        }
        if (!d.pkt.same_bytes(g.pkt)) {
            return RawDivergence{
                "output",
                util::format("output #%zu bytes differ on port %u (%zuB vs %zuB)",
                             i, d.port, d.pkt.size(), g.pkt.size()),
                stamp_seq(g.pkt)};
        }
    }
    if (dut.observed.size() != ref.observed.size()) {
        const bool dut_longer = dut.observed.size() > ref.observed.size();
        const StreamItem& extra =
            dut_longer ? dut.observed[n] : ref.observed[n];
        return RawDivergence{
            "output",
            util::format("output stream length: dut=%zu golden=%zu",
                         dut.observed.size(), ref.observed.size()),
            stamp_seq(extra.pkt)};
    }

    const auto& ds = dut.snapshot.stages;
    const auto& gs = ref.snapshot.stages;
    const struct {
        const char* name;
        std::uint64_t d, g;
    } counters[] = {
        {"parser_in", ds.parser_in, gs.parser_in},
        {"parser_accepted", ds.parser_accepted, gs.parser_accepted},
        {"parser_rejected", ds.parser_rejected, gs.parser_rejected},
        {"parser_errors", ds.parser_errors, gs.parser_errors},
        {"ingress_dropped", ds.ingress_dropped, gs.ingress_dropped},
        {"egress_dropped", ds.egress_dropped, gs.egress_dropped},
        {"forwarded", ds.forwarded, gs.forwarded},
        {"misdirected", dut.snapshot.misdirected, ref.snapshot.misdirected},
    };
    for (const auto& c : counters) {
        if (c.d != c.g) {
            return RawDivergence{
                "snapshot",
                util::format("stage counter %s: dut=%llu golden=%llu", c.name,
                             static_cast<unsigned long long>(c.d),
                             static_cast<unsigned long long>(c.g)),
                0};
        }
    }
    for (std::size_t i = 0;
         i < dut.snapshot.tables.size() && i < ref.snapshot.tables.size(); ++i) {
        const auto& dt = dut.snapshot.tables[i];
        const auto& gt = ref.snapshot.tables[i];
        if (dt.hits != gt.hits || dt.misses != gt.misses) {
            return RawDivergence{
                "snapshot",
                util::format("table %s: dut hits=%llu misses=%llu, golden "
                             "hits=%llu misses=%llu",
                             dt.name.c_str(),
                             static_cast<unsigned long long>(dt.hits),
                             static_cast<unsigned long long>(dt.misses),
                             static_cast<unsigned long long>(gt.hits),
                             static_cast<unsigned long long>(gt.misses)),
                0};
        }
    }
    return std::nullopt;
}

// Per-worker device pool: one reference instance plus one instance per DUT
// backend, reused across every scenario the worker claims (load() replaces
// the image and all dynamic state).
struct WorkerContext {
    std::unique_ptr<target::Device> reference;
    std::vector<std::unique_ptr<target::Device>> duts;  // parallel to specs

    WorkerContext(const std::string& reference_backend,
                  const std::vector<BackendSpec>& specs,
                  dataplane::Engine engine) {
        reference = target::make_device(reference_backend);
        if (!reference) {
            throw std::invalid_argument("campaign: unknown reference backend '" +
                                        reference_backend + "'");
        }
        reference->set_engine(engine);
        for (const auto& spec : specs) {
            auto dev = target::make_device(spec.name, spec.quirks);
            if (!dev) {
                throw std::invalid_argument("campaign: unknown backend '" +
                                            spec.name + "'");
            }
            dev->set_engine(engine);
            duts.push_back(std::move(dev));
        }
    }
};

// --- JSON helpers -------------------------------------------------------------

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    out += util::format("\\u%04x", c);
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string json_string_array(const std::vector<std::string>& items) {
    std::string out = "[";
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i) out += ", ";
        out += '"';
        out += json_escape(items[i]);
        out += '"';
    }
    return out + "]";
}

}  // namespace

// --- engine -------------------------------------------------------------------

CampaignEngine::CampaignEngine(CampaignConfig config)
    : config_(std::move(config)) {}

CampaignReport CampaignEngine::run() {
    std::vector<BackendSpec> duts = config_.duts;
    if (duts.empty()) {
        for (const auto& name : target::registered_backends()) {
            if (name == config_.reference_backend) continue;
            duts.push_back(BackendSpec{name, std::nullopt, name});
        }
    }
    for (auto& d : duts) {
        if (d.label.empty()) d.label = d.name;
    }

    if (config_.mutate) config_.coverage = true;    // mutants need the scheduler
    if (config_.concolic) config_.coverage = true;  // synthesis needs the map

    const SpecGenerator gen(config_.programs);

    CampaignReport report;
    report.base_seed = config_.base_seed;
    report.scenarios = config_.scenarios;
    report.programs = gen.programs();
    report.engine = dataplane::engine_name(config_.engine);
    for (const auto& d : duts) report.backends.push_back(d.label);
    report.coverage_enabled = config_.coverage;
    report.concolic_enabled = config_.concolic;
    if (config_.coverage) {
        report.coverage_map_slots = coverage::CoverageMap::kSlots;
        report.coverage_edges_dut.assign(duts.size(), 0);
    }

    // `recipe` is the slot's mutation parentage ("" = fresh seed); it rides
    // into every DivergenceRecord so reports stay replayable.
    const auto run_one = [&](WorkerContext& ctx, const Scenario& sc,
                             ScenarioOutcome& outcome,
                             const std::string& recipe) {
        // Build the stream once; every backend sees byte-identical stimuli
        // on an identical timeline.
        TestPacketGenerator pgen(sc.spec);
        std::vector<packet::Packet> packets;
        packets.reserve(sc.spec.count);
        for (std::uint64_t seq = 1; seq <= sc.spec.count; ++seq) {
            packets.push_back(pgen.make_packet(seq, kEpochNs + (seq - 1) * kSlotNs));
        }

        // Guided mode: the reference detection run streams its execution
        // edges into a per-scenario map (set before run_scenario_on so the
        // load() inside re-applies it).  Triage replays below run with
        // coverage off again -- they revisit the same behaviour and would
        // only re-count edges.
        if (config_.coverage) {
            outcome.coverage = std::make_unique<coverage::CoverageMap>();
            ctx.reference->set_coverage(outcome.coverage.get());
            outcome.dut_coverage.resize(duts.size());
        }
        const DeviceRun ref_run = run_scenario_on(*ctx.reference, sc, packets,
                                                  config_.batch_size);
        if (config_.coverage) ctx.reference->set_coverage(nullptr);
        outcome.packets += ref_run.injected;

        for (std::size_t d = 0; d < duts.size(); ++d) {
            target::Device& dut = *ctx.duts[d];
            // The DUT's detection run streams into its own per-scenario map
            // (backend-salted inside the device); triage replays below run
            // with coverage detached, like the reference's.
            if (config_.coverage) {
                outcome.dut_coverage[d] =
                    std::make_unique<coverage::CoverageMap>();
                dut.set_coverage(outcome.dut_coverage[d].get());
            }
            const DeviceRun dut_run =
                run_scenario_on(dut, sc, packets, config_.batch_size);
            if (config_.coverage) dut.set_coverage(nullptr);
            outcome.packets += dut_run.injected;

            const auto raw = diff_runs(dut_run, ref_run);
            if (!raw) continue;

            DivergenceRecord rec;
            rec.seed = sc.seed;
            rec.recipe = recipe;
            rec.backend = duts[d].label;
            rec.program = sc.program;
            rec.quirk_signature = dut.config().quirks.signature();
            rec.kind = raw->kind;
            rec.detail = raw->detail;
            rec.first_diverging_packet = raw->first_diverging_packet;

            // Minimize: the shortest stimulus prefix that still diverges.
            if (config_.minimize) {
                for (std::size_t k = 1; k <= packets.size(); ++k) {
                    const std::vector<packet::Packet> prefix(packets.begin(),
                                                             packets.begin() + k);
                    const DeviceRun r = run_scenario_on(*ctx.reference, sc, prefix,
                                                        config_.batch_size);
                    const DeviceRun u =
                        run_scenario_on(dut, sc, prefix, config_.batch_size);
                    outcome.packets += r.injected + u.injected;
                    if (diff_runs(u, r)) {
                        rec.minimized_count = k;
                        rec.minimized_reproduces = true;
                        break;
                    }
                }
            }

            // Localize: replay the minimized trigger through the stage taps.
            const std::uint64_t trigger =
                rec.minimized_count ? rec.minimized_count : packets.size();
            if (config_.localize && trigger > 0) {
                const std::vector<packet::Packet> warmup(
                    packets.begin(), packets.begin() + (trigger - 1));
                const DeviceRun r = run_scenario_on(*ctx.reference, sc, warmup,
                                                    config_.batch_size);
                const DeviceRun u =
                    run_scenario_on(dut, sc, warmup, config_.batch_size);
                outcome.packets += r.injected + u.injected;
                FaultLocalizer localizer(dut, *ctx.reference);
                rec.localized = localizer.localize_binary(packets[trigger - 1]);
                outcome.packets += rec.localized.packets_replayed;
            }

            const std::string stage =
                rec.localized.diverged
                    ? dataplane::stage_name(rec.localized.stage)
                    : (rec.kind == "config" ? "control" : "unlocalized");
            rec.fingerprint = rec.backend + "|" + rec.quirk_signature + "|" + stage;
            outcome.findings.push_back(std::move(rec));
        }
    };

    // An exception anywhere in a worker (unknown backend, a device refusing
    // an image) must surface to the caller, not std::terminate the process:
    // capture the first one, stop the pool, rethrow after the join.
    const int threads = std::clamp(config_.threads, 1, 64);
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    // One device pool per worker slot, created on first use and reused
    // across every scheduling round (load() replaces image + state).
    std::vector<std::unique_ptr<WorkerContext>> contexts(
        static_cast<std::size_t>(threads));

    // Runs `jobs` indexed work items over the worker pool.  Guided mode
    // calls this once per scheduler round; the job body only writes its own
    // outcome slot, so results are mergeable in index order afterwards.
    const auto run_pool =
        [&](std::uint64_t jobs,
            const std::function<void(WorkerContext&, std::uint64_t)>& job) {
            std::atomic<std::uint64_t> next{0};
            const auto worker = [&](std::size_t slot) {
                try {
                    if (!contexts[slot]) {
                        contexts[slot] = std::make_unique<WorkerContext>(
                            config_.reference_backend, duts, config_.engine);
                    }
                    while (!failed.load(std::memory_order_relaxed)) {
                        const std::uint64_t index = next.fetch_add(1);
                        if (index >= jobs) break;
                        job(*contexts[slot], index);
                    }
                } catch (...) {
                    const std::lock_guard<std::mutex> lock(error_mutex);
                    if (!first_error) first_error = std::current_exception();
                    failed.store(true, std::memory_order_relaxed);
                }
            };
            if (threads <= 1) {
                worker(0);
            } else {
                std::vector<std::thread> pool;
                pool.reserve(static_cast<std::size_t>(threads));
                for (int i = 0; i < threads; ++i) {
                    pool.emplace_back(worker, static_cast<std::size_t>(i));
                }
                for (auto& t : pool) t.join();
            }
            if (first_error) std::rethrow_exception(first_error);
        };

    // Merge in scenario order so the report never depends on scheduling;
    // dedup keeps the first finding per fingerprint and counts the rest.
    // Returns whether the outcome contributed a previously unseen
    // fingerprint (the scheduler's freshness bonus).
    std::map<std::string, std::size_t> seen;
    std::uint64_t merge_ordinal = 0;
    const auto fold_outcome = [&](ScenarioOutcome& outcome) {
        ++merge_ordinal;
        report.packets_injected += outcome.packets;
        bool fresh = false;
        for (auto& rec : outcome.findings) {
            ++report.findings_total;
            const auto it = seen.find(rec.fingerprint);
            if (it == seen.end()) {
                rec.discovered_at = merge_ordinal;
                seen.emplace(rec.fingerprint, report.divergences.size());
                report.divergences.push_back(std::move(rec));
                fresh = true;
            } else {
                ++report.divergences[it->second].duplicates;
            }
        }
        return fresh;
    };

    const auto t0 = std::chrono::steady_clock::now();
    if (!config_.mutation_recipe.empty()) {
        // Single-recipe replay: run exactly the recorded scenario through
        // the ordinary detection/triage path.  This is how a mutated or
        // concolically synthesized corpus entry (or a report's parentage
        // recipe) reproduces its divergence.  The two recipe grammars are
        // mutually unparseable ('#' vs '@' head), so trying concolic first
        // can never misread a mutation recipe.
        const Mutator mutator(gen);
        Scenario sc;
        if (const auto conc = ConcolicRecipe::parse(config_.mutation_recipe)) {
            sc = mutator.apply_concolic(*conc);
            report.scenarios_concolic = 1;
        } else if (const auto parsed =
                       MutationRecipe::parse(config_.mutation_recipe)) {
            sc = mutator.apply(*parsed);
            report.scenarios_mutated = 1;
        } else {
            throw std::invalid_argument("campaign: unparseable recipe '" +
                                        config_.mutation_recipe + "'");
        }
        report.scenarios = 1;
        std::vector<ScenarioOutcome> outcomes(1);
        run_pool(1, [&](WorkerContext& ctx, std::uint64_t) {
            run_one(ctx, sc, outcomes[0], config_.mutation_recipe);
        });
        fold_outcome(outcomes[0]);
        if (config_.coverage) {
            coverage::CoverageMap global;
            if (outcomes[0].coverage) {
                report.coverage_edges_reference +=
                    global.merge_new_from(*outcomes[0].coverage);
            }
            for (std::size_t d = 0; d < outcomes[0].dut_coverage.size(); ++d) {
                if (!outcomes[0].dut_coverage[d]) continue;
                report.coverage_edges_dut[d] +=
                    global.merge_new_from(*outcomes[0].dut_coverage[d]);
            }
            report.coverage_edges =
                static_cast<std::uint64_t>(global.edges_covered());
            report.coverage_series.push_back({1, report.coverage_edges});
            if (config_.coverage_map_out) *config_.coverage_map_out = global;
        }
    } else if (!config_.coverage) {
        // Uniform sweep: every seed in [base, base + scenarios) once.
        std::vector<ScenarioOutcome> outcomes(config_.scenarios);
        run_pool(config_.scenarios,
                 [&](WorkerContext& ctx, std::uint64_t index) {
                     const Scenario sc = gen.make(config_.base_seed + index);
                     run_one(ctx, sc, outcomes[index], std::string());
                 });
        for (auto& outcome : outcomes) fold_outcome(outcome);
    } else {
        // Guided mode: deterministic rounds.  Each round the scheduler
        // apportions the budget across programs from the feedback merged so
        // far; slots -- (program, fresh seed) or a fully derived mutation
        // recipe -- are fixed before any worker starts, so thread count
        // never changes what runs or how it merges.
        coverage::CorpusScheduler scheduler(gen.programs().size());
        coverage::CoverageMap global;
        const Mutator mutator(gen);
        ScenarioCorpus corpus;
        if (config_.mutate && !config_.corpus_dir.empty()) {
            corpus.load_dir(config_.corpus_dir, gen.programs());
        }
        struct GuidedSlot {
            std::size_t program = 0;
            std::uint64_t seed = 0;
            std::string recipe_text;  // empty = fresh seed
            MutationRecipe recipe;    // valid when recipe_text is non-empty
            bool is_concolic = false;
            ConcolicRecipe concolic;  // valid when is_concolic
        };
        // Concolic synthesis state, per catalogue program, built lazily the
        // first time a program's dark sites are attempted.  `attempted`
        // remembers every slot ever handed to the solver so a hard target
        // is not re-solved at each barrier.
        struct ConcolicState {
            std::shared_ptr<const p4::ir::Program> compiled;
            std::unique_ptr<coverage::EdgeIndex> index;
            std::unique_ptr<verify::ConcolicSynthesizer> synth;
            std::set<std::uint32_t> attempted;
        };
        std::vector<ConcolicState> concolic_states(
            config_.concolic ? gen.programs().size() : 0);
        // Seeds synthesized at one barrier, scheduled ahead of the next
        // round's plan.
        struct PendingSeed {
            std::size_t program = 0;
            ConcolicRecipe recipe;
        };
        std::vector<PendingSeed> pending;
        // Relight oracle: a dedicated reference instance pinned to the
        // interpreter (the engine whose semantics the verify layer models).
        // Its salt is what EdgeIndex must be built with -- the campaign's
        // own reference devices fold the identical salt into their maps, so
        // "dark in `global`" and "dark for this oracle" agree.
        std::unique_ptr<target::Device> oracle;
        std::uint64_t ref_salt = 0;
        if (config_.concolic) {
            oracle = target::make_device(config_.reference_backend);
            if (!oracle) {
                throw std::invalid_argument(
                    "campaign: unknown reference backend '" +
                    config_.reference_backend + "'");
            }
            oracle->set_engine(dataplane::Engine::interpreter);
            ref_salt = oracle->coverage_salt();
        }
        const std::uint64_t round_cap =
            std::max<std::uint64_t>(8, 2 * gen.programs().size());
        std::uint64_t done = 0;
        std::uint64_t seed_cursor = 0;
        while (done < config_.scenarios) {
            const std::uint64_t round =
                std::min(config_.scenarios - done, round_cap);
            std::vector<GuidedSlot> slots;
            slots.reserve(static_cast<std::size_t>(round));
            // Synthesized seeds first: they were solved specifically to
            // light still-dark slots, so they outrank anything the
            // scheduler would plan.  Each consumes one slot of the round's
            // budget; its "seed" is the target slot id (that is what
            // replays it via the corpus).
            const std::size_t take = static_cast<std::size_t>(
                std::min<std::uint64_t>(pending.size(), round));
            for (std::size_t i = 0; i < take; ++i) {
                GuidedSlot slot;
                slot.program = pending[i].program;
                slot.seed = pending[i].recipe.slot;
                slot.is_concolic = true;
                slot.concolic = std::move(pending[i].recipe);
                slot.recipe_text = slot.concolic.encode();
                slots.push_back(std::move(slot));
            }
            pending.erase(pending.begin(),
                          pending.begin() + static_cast<std::ptrdiff_t>(take));
            report.scenarios_concolic += take;
            const std::vector<std::uint64_t> plan =
                scheduler.plan_round(round - take);
            for (std::size_t p = 0; p < plan.size(); ++p) {
                for (std::uint64_t k = 0; k < plan[p]; ++k) {
                    GuidedSlot slot;
                    slot.program = p;
                    slot.seed = config_.base_seed + seed_cursor++;
                    // Fresh-vs-mutant draw: corpus membership only changes
                    // at round barriers, and the coin is a pure function of
                    // the slot seed, so the mix is schedule-independent.
                    if (config_.mutate) {
                        const auto& pool = corpus.entries(gen.programs()[p]);
                        // Concolic entries replay whole, never as mutation
                        // parents: their packet is a solver model with no
                        // field plan for havoc ops to perturb (and their
                        // recipe text is not a MutationRecipe chain).
                        std::vector<const CorpusEntry*> parents;
                        parents.reserve(pool.size());
                        for (const CorpusEntry& e : pool) {
                            if (!e.concolic) parents.push_back(&e);
                        }
                        if (!parents.empty()) {
                            util::Rng coin(slot.seed ^ kMutateCoinSalt);
                            if (coin.next_double() < config_.mutation_rate) {
                                const CorpusEntry& parent =
                                    *parents[coin.next_below(parents.size())];
                                slot.recipe =
                                    mutator.derive(corpus, parent, slot.seed);
                                slot.recipe_text = slot.recipe.encode();
                                ++report.scenarios_mutated;
                            }
                        }
                    }
                    slots.push_back(std::move(slot));
                }
            }
            std::vector<ScenarioOutcome> outcomes(slots.size());
            run_pool(slots.size(), [&](WorkerContext& ctx, std::uint64_t i) {
                const Scenario sc =
                    slots[i].is_concolic ? mutator.apply_concolic(slots[i].concolic)
                    : slots[i].recipe_text.empty()
                        ? gen.make_for(slots[i].program, slots[i].seed)
                        : mutator.apply(slots[i].recipe);
                run_one(ctx, sc, outcomes[i], slots[i].recipe_text);
            });
            // Round barrier: fold outcomes in slot order, then reward each
            // program with its per-scenario energy gain (new reference and
            // DUT coverage edges plus a bonus per fresh divergence
            // fingerprint), and retain every interesting scenario in the
            // mutation corpus.
            std::vector<double> gain(plan.size(), 0.0);
            for (std::size_t i = 0; i < slots.size(); ++i) {
                const bool fresh = fold_outcome(outcomes[i]);
                std::size_t ref_edges = 0;
                std::size_t dut_edges = 0;
                if (outcomes[i].coverage) {
                    ref_edges = global.merge_new_from(*outcomes[i].coverage);
                    report.coverage_edges_reference += ref_edges;
                }
                for (std::size_t d = 0; d < outcomes[i].dut_coverage.size();
                     ++d) {
                    if (!outcomes[i].dut_coverage[d]) continue;
                    const std::size_t fresh_dut =
                        global.merge_new_from(*outcomes[i].dut_coverage[d]);
                    report.coverage_edges_dut[d] += fresh_dut;
                    dut_edges += fresh_dut;
                }
                gain[slots[i].program] +=
                    static_cast<double>(ref_edges) / 8.0 +
                    static_cast<double>(dut_edges) / 16.0 + (fresh ? 1.0 : 0.0);
                if (config_.mutate && !slots[i].is_concolic &&
                    (fresh || ref_edges > 0 || dut_edges > 0)) {
                    // (Concolic slots are already corpus entries: they were
                    // added when their seed passed the relight check.)
                    if (slots[i].recipe_text.empty()) {
                        corpus.add(gen.programs()[slots[i].program],
                                   slots[i].seed);
                    } else {
                        corpus.add(gen.programs()[slots[i].program],
                                   slots[i].recipe.parent_seed,
                                   slots[i].recipe_text);
                    }
                }
            }
            // Per-program slot counts include concolic slots, so their edge
            // gains reward the program at the same per-scenario scale as
            // planned slots.
            std::vector<std::uint64_t> ran(plan.size(), 0);
            for (const GuidedSlot& slot : slots) ++ran[slot.program];
            for (std::size_t p = 0; p < plan.size(); ++p) {
                if (ran[p] == 0) continue;
                scheduler.reward(p, gain[p] / static_cast<double>(ran[p]));
            }

            // Concolic synthesis at the barrier: map still-dark reference
            // slots back to IR sites, solve for covering seeds, verify each
            // actually lights its slot on the oracle, and queue the
            // survivors for the next round.  Sequential and driven by
            // barrier-merged state only -- thread count cannot change what
            // gets synthesized.
            if (config_.concolic) {
                std::uint64_t budget = config_.concolic_per_round;
                for (std::size_t p = 0;
                     p < gen.programs().size() && budget > 0; ++p) {
                    ConcolicState& st = concolic_states[p];
                    if (!st.index) {
                        st.compiled =
                            gen.make_for(p, config_.base_seed).compiled;
                        st.index = std::make_unique<coverage::EdgeIndex>(
                            *st.compiled, ref_salt);
                        st.synth =
                            std::make_unique<verify::ConcolicSynthesizer>(
                                *st.compiled);
                    }
                    std::vector<coverage::EdgeSite> targets;
                    for (const coverage::EdgeSite& site :
                         st.index->dark_sites(global)) {
                        if (targets.size() >= budget) break;
                        if (!st.attempted.insert(site.slot).second) continue;
                        targets.push_back(site);
                    }
                    if (targets.empty()) continue;
                    budget -= targets.size();
                    const verify::ConcolicResult result =
                        st.synth->synthesize(targets);
                    if (result.paths_exhausted) {
                        report.concolic_paths_exhausted = true;
                    }
                    for (const verify::TargetOutcome& out : result.outcomes) {
                        switch (out.status) {
                            case verify::TargetStatus::solved:
                                ++report.concolic_solved;
                                break;
                            case verify::TargetStatus::unsat:
                                ++report.concolic_unsat;
                                break;
                            case verify::TargetStatus::unknown:
                                ++report.concolic_unknown;
                                break;
                            case verify::TargetStatus::no_path:
                                ++report.concolic_no_path;
                                break;
                        }
                    }
                    for (const verify::ConcolicSeed& seed : result.seeds) {
                        ConcolicRecipe recipe;
                        recipe.program = gen.programs()[p];
                        recipe.slot = seed.target.slot;
                        recipe.ingress_port = seed.ingress_port;
                        recipe.packet = seed.packet;
                        for (const auto& def : seed.defaults) {
                            ConcolicRecipe::Default d;
                            d.table = def.table;
                            d.action = def.action;
                            for (const util::Bitvec& arg : def.args) {
                                d.args.push_back(arg.to_bytes());
                            }
                            recipe.defaults.push_back(std::move(d));
                        }
                        // Relight check: inject the synthesized scenario on
                        // the oracle exactly the way run_one will and
                        // require the target slot to light.  A model the
                        // interpreter disagrees with is a verify-layer bug
                        // and must not pollute the corpus.
                        const Scenario sc = mutator.apply_concolic(recipe);
                        TestPacketGenerator pgen(sc.spec);
                        std::vector<packet::Packet> packets;
                        packets.reserve(sc.spec.count);
                        for (std::uint64_t seq = 1; seq <= sc.spec.count;
                             ++seq) {
                            packets.push_back(pgen.make_packet(
                                seq, kEpochNs + (seq - 1) * kSlotNs));
                        }
                        coverage::CoverageMap scratch;
                        oracle->set_coverage(&scratch);
                        run_scenario_on(*oracle, sc, packets,
                                        config_.batch_size);
                        oracle->set_coverage(nullptr);
                        if (scratch.count(seed.target.slot) == 0) {
                            ++report.concolic_mismatched;
                            continue;
                        }
                        const std::string text = recipe.encode();
                        if (!corpus.add(recipe.program, recipe.slot, text,
                                        /*concolic=*/true)) {
                            continue;  // slot-colliding duplicate
                        }
                        ++report.concolic_injected;
                        report.concolic_recipes.push_back(text);
                        pending.push_back({p, std::move(recipe)});
                    }
                }
            }
            done += round;
            report.coverage_series.push_back(
                {done, static_cast<std::uint64_t>(global.edges_covered())});
        }
        report.coverage_edges =
            static_cast<std::uint64_t>(global.edges_covered());
        if (config_.coverage_map_out) *config_.coverage_map_out = global;
    }
    const auto t1 = std::chrono::steady_clock::now();

    stats_.wall_seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
    if (stats_.wall_seconds > 0) {
        stats_.scenarios_per_sec =
            static_cast<double>(config_.scenarios) / stats_.wall_seconds;
        stats_.packets_per_sec =
            static_cast<double>(report.packets_injected) / stats_.wall_seconds;
    }
    return report;
}

// --- report rendering ---------------------------------------------------------

std::string CampaignReport::to_string() const {
    std::string s = util::format(
        "campaign: %llu scenario(s) from seed %llu, %llu packet(s), "
        "%llu finding(s) -> %zu unique (dedup x%.1f)\n",
        static_cast<unsigned long long>(scenarios),
        static_cast<unsigned long long>(base_seed),
        static_cast<unsigned long long>(packets_injected),
        static_cast<unsigned long long>(findings_total), divergences.size(),
        dedup_ratio());
    if (!engine.empty()) {
        s += util::format("  engine: %s\n", engine.c_str());
    }
    if (coverage_enabled) {
        std::uint64_t dut_total = 0;
        for (const auto e : coverage_edges_dut) dut_total += e;
        s += util::format(
            "  coverage: %llu/%llu edges (%.1f%%: %llu reference + %llu dut) "
            "over %zu round(s)\n",
            static_cast<unsigned long long>(coverage_edges),
            static_cast<unsigned long long>(coverage_map_slots),
            coverage_map_slots
                ? 100.0 * static_cast<double>(coverage_edges) /
                      static_cast<double>(coverage_map_slots)
                : 0.0,
            static_cast<unsigned long long>(coverage_edges_reference),
            static_cast<unsigned long long>(dut_total),
            coverage_series.size());
    }
    if (scenarios_mutated) {
        s += util::format("  mutated: %llu of %llu scenario(s) drawn from the "
                          "corpus\n",
                          static_cast<unsigned long long>(scenarios_mutated),
                          static_cast<unsigned long long>(scenarios));
    }
    if (concolic_enabled) {
        s += util::format(
            "  concolic: %llu seed(s) injected, %llu scenario(s) run "
            "(targets: %llu solved, %llu unsat, %llu unknown, %llu no-path, "
            "%llu mismatched)%s\n",
            static_cast<unsigned long long>(concolic_injected),
            static_cast<unsigned long long>(scenarios_concolic),
            static_cast<unsigned long long>(concolic_solved),
            static_cast<unsigned long long>(concolic_unsat),
            static_cast<unsigned long long>(concolic_unknown),
            static_cast<unsigned long long>(concolic_no_path),
            static_cast<unsigned long long>(concolic_mismatched),
            concolic_paths_exhausted ? "; paths exhausted" : "");
        for (const auto& r : concolic_recipes) {
            s += util::format("  concolic+ %s\n", r.c_str());
        }
    }
    for (const auto& d : divergences) {
        s += util::format(
            "  [%s] seed=%llu %s: %s (min=%llu pkt, +%llu dup) %s\n",
            d.fingerprint.c_str(), static_cast<unsigned long long>(d.seed),
            d.kind.c_str(), d.detail.c_str(),
            static_cast<unsigned long long>(d.minimized_count),
            static_cast<unsigned long long>(d.duplicates),
            d.localized.diverged ? d.localized.to_string().c_str() : "");
        if (!d.recipe.empty()) {
            s += util::format("    parentage: %s\n", d.recipe.c_str());
        }
    }
    return s;
}

std::string CampaignReport::to_json() const {
    std::string s = "{\n";
    s += util::format("  \"base_seed\": %llu,\n",
                      static_cast<unsigned long long>(base_seed));
    s += util::format("  \"scenarios\": %llu,\n",
                      static_cast<unsigned long long>(scenarios));
    s += "  \"programs\": " + json_string_array(programs) + ",\n";
    s += "  \"backends\": " + json_string_array(backends) + ",\n";
    s += "  \"engine\": \"" + json_escape(engine) + "\",\n";
    s += util::format("  \"packets_injected\": %llu,\n",
                      static_cast<unsigned long long>(packets_injected));
    s += util::format("  \"findings_total\": %llu,\n",
                      static_cast<unsigned long long>(findings_total));
    s += util::format("  \"divergences_unique\": %zu,\n", divergences.size());
    s += util::format("  \"dedup_ratio\": %.3f,\n", dedup_ratio());
    s += util::format("  \"scenarios_mutated\": %llu,\n",
                      static_cast<unsigned long long>(scenarios_mutated));
    if (concolic_enabled) {
        s += "  \"concolic\": {";
        s += util::format("\"scenarios\": %llu, ",
                          static_cast<unsigned long long>(scenarios_concolic));
        s += util::format("\"injected\": %llu, ",
                          static_cast<unsigned long long>(concolic_injected));
        s += util::format("\"solved\": %llu, ",
                          static_cast<unsigned long long>(concolic_solved));
        s += util::format("\"unsat\": %llu, ",
                          static_cast<unsigned long long>(concolic_unsat));
        s += util::format("\"unknown\": %llu, ",
                          static_cast<unsigned long long>(concolic_unknown));
        s += util::format("\"no_path\": %llu, ",
                          static_cast<unsigned long long>(concolic_no_path));
        s += util::format("\"mismatched\": %llu, ",
                          static_cast<unsigned long long>(concolic_mismatched));
        s += util::format("\"paths_exhausted\": %s, ",
                          concolic_paths_exhausted ? "true" : "false");
        s += "\"recipes\": " + json_string_array(concolic_recipes);
        s += "},\n";
    }
    if (coverage_enabled) {
        // Edges-discovered over scenarios: the guided campaign's trajectory,
        // one sample per scheduler round.  Deterministic like the rest.
        s += "  \"coverage\": {";
        s += util::format("\"map_slots\": %llu, ",
                          static_cast<unsigned long long>(coverage_map_slots));
        s += util::format("\"edges_discovered\": %llu, ",
                          static_cast<unsigned long long>(coverage_edges));
        s += util::format("\"edges_reference\": %llu, ",
                          static_cast<unsigned long long>(coverage_edges_reference));
        s += "\"edges_dut\": [";
        for (std::size_t i = 0; i < coverage_edges_dut.size(); ++i) {
            if (i) s += ", ";
            s += util::format(
                "{\"backend\": \"%s\", \"edges\": %llu}",
                json_escape(i < backends.size() ? backends[i] : "").c_str(),
                static_cast<unsigned long long>(coverage_edges_dut[i]));
        }
        s += "], ";
        s += util::format(
            "\"coverage_pct\": %.2f, ",
            coverage_map_slots
                ? 100.0 * static_cast<double>(coverage_edges) /
                      static_cast<double>(coverage_map_slots)
                : 0.0);
        s += "\"series\": [";
        for (std::size_t i = 0; i < coverage_series.size(); ++i) {
            const CoveragePoint& p = coverage_series[i];
            if (i) s += ", ";
            s += util::format(
                "{\"scenarios\": %llu, \"edges\": %llu, \"pct\": %.2f}",
                static_cast<unsigned long long>(p.scenarios),
                static_cast<unsigned long long>(p.edges),
                coverage_map_slots
                    ? 100.0 * static_cast<double>(p.edges) /
                          static_cast<double>(coverage_map_slots)
                    : 0.0);
        }
        s += "]},\n";
    }
    s += "  \"divergences\": [";
    for (std::size_t i = 0; i < divergences.size(); ++i) {
        const auto& d = divergences[i];
        s += i ? ",\n    {" : "\n    {";
        s += util::format("\"seed\": %llu, ",
                          static_cast<unsigned long long>(d.seed));
        s += "\"recipe\": \"" + json_escape(d.recipe) + "\", ";
        s += "\"backend\": \"" + json_escape(d.backend) + "\", ";
        s += "\"program\": \"" + json_escape(d.program) + "\", ";
        s += "\"quirks\": \"" + json_escape(d.quirk_signature) + "\", ";
        s += "\"kind\": \"" + json_escape(d.kind) + "\", ";
        s += "\"detail\": \"" + json_escape(d.detail) + "\", ";
        s += "\"fingerprint\": \"" + json_escape(d.fingerprint) + "\", ";
        s += util::format("\"discovered_at\": %llu, ",
                          static_cast<unsigned long long>(d.discovered_at));
        s += util::format("\"first_diverging_packet\": %llu, ",
                          static_cast<unsigned long long>(d.first_diverging_packet));
        s += util::format("\"minimized_count\": %llu, ",
                          static_cast<unsigned long long>(d.minimized_count));
        s += util::format("\"minimized_reproduces\": %s, ",
                          d.minimized_reproduces ? "true" : "false");
        s += util::format("\"duplicates\": %llu, ",
                          static_cast<unsigned long long>(d.duplicates));
        s += "\"localized\": {";
        s += util::format("\"diverged\": %s, ",
                          d.localized.diverged ? "true" : "false");
        s += util::format(
            "\"stage\": \"%s\", ",
            d.localized.diverged ? dataplane::stage_name(d.localized.stage) : "");
        s += "\"description\": \"" + json_escape(d.localized.description) + "\", ";
        s += util::format("\"probes\": %d, ", d.localized.probes);
        s += util::format("\"conclusive\": %s}",
                          d.localized.conclusive ? "true" : "false");
        s += "}";
    }
    s += divergences.empty() ? "]\n" : "\n  ]\n";
    s += "}\n";
    return s;
}

}  // namespace ndb::core
