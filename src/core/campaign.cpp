#include "core/campaign.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/generator.h"
#include "core/mutate.h"
#include "core/scenario_exec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "coverage/coverage.h"
#include "coverage/edge_index.h"
#include "coverage/scheduler.h"
#include "target/device.h"
#include "util/random.h"
#include "util/strings.h"
#include "verify/concolic.h"

namespace ndb::core {

namespace {

// Decorrelates the fresh-vs-mutant coin (and parent pick) from both the
// scenario seed stream and the mutation-derivation stream.
constexpr std::uint64_t kMutateCoinSalt = 0x636f696e666c6970ull;  // "coinflip"

// --- JSON helpers -------------------------------------------------------------

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    out += util::format("\\u%04x", c);
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string json_string_array(const std::vector<std::string>& items) {
    std::string out = "[";
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i) out += ", ";
        out += '"';
        out += json_escape(items[i]);
        out += '"';
    }
    return out + "]";
}

}  // namespace

// --- engine -------------------------------------------------------------------

std::vector<BackendSpec> resolve_duts(const CampaignConfig& config) {
    std::vector<BackendSpec> duts = config.duts;
    if (duts.empty()) {
        for (const auto& name : target::registered_backends()) {
            if (name == config.reference_backend) continue;
            duts.push_back(BackendSpec{name, std::nullopt, name});
        }
    }
    for (auto& d : duts) {
        if (d.label.empty()) d.label = d.name;
    }
    return duts;
}

CampaignEngine::CampaignEngine(CampaignConfig config)
    : config_(std::move(config)) {}

CampaignReport CampaignEngine::run() {
    const std::vector<BackendSpec> duts = resolve_duts(config_);

    if (config_.mutate) config_.coverage = true;    // mutants need the scheduler
    if (config_.concolic) config_.coverage = true;  // synthesis needs the map

    const SpecGenerator gen(config_.programs);

    ExecOptions exec;
    exec.batch_size = config_.batch_size;
    exec.minimize = config_.minimize;
    exec.localize = config_.localize;
    exec.coverage = config_.coverage;
    // throws std::invalid_argument on a malformed spec, before any work
    exec.mgmt.plan = control::FaultPlan::parse(config_.mgmt_fault_plan);
    exec.mgmt.enabled = exec.mgmt.plan.enabled();

    CampaignReport report;
    report.base_seed = config_.base_seed;
    report.scenarios = config_.scenarios;
    report.programs = gen.programs();
    report.engine = dataplane::engine_name(config_.engine);
    for (const auto& d : duts) report.backends.push_back(d.label);
    report.coverage_enabled = config_.coverage;
    report.concolic_enabled = config_.concolic;
    report.mgmt_enabled = exec.mgmt.enabled;
    if (config_.coverage) {
        report.coverage_map_slots = coverage::CoverageMap::kSlots;
        report.coverage_edges_dut.assign(duts.size(), 0);
    }

    // `recipe` is the slot's mutation parentage ("" = fresh seed); it rides
    // into every DivergenceRecord so reports stay replayable.
    const auto run_one = [&](WorkerContext& ctx, const Scenario& sc,
                             ScenarioOutcome& outcome,
                             const std::string& recipe) {
        execute_scenario(ctx, sc, duts, exec, outcome, recipe);
    };

    // An exception anywhere in a worker (unknown backend, a device refusing
    // an image) must surface to the caller, not std::terminate the process:
    // capture the first one, stop the pool, rethrow after the join.
    const int threads = std::clamp(config_.threads, 1, 64);
    if (obs::metrics_on()) {
        obs::Metrics::instance().gauge_set(obs::Gauge::campaign_threads, threads);
    }
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    // One device pool per worker slot, created on first use and reused
    // across every scheduling round (load() replaces image + state).
    std::vector<std::unique_ptr<WorkerContext>> contexts(
        static_cast<std::size_t>(threads));

    // Runs `jobs` indexed work items over the worker pool.  Guided mode
    // calls this once per scheduler round; the job body only writes its own
    // outcome slot, so results are mergeable in index order afterwards.
    const auto run_pool =
        [&](std::uint64_t jobs,
            const std::function<void(WorkerContext&, std::uint64_t)>& job) {
            std::atomic<std::uint64_t> next{0};
            const auto worker = [&](std::size_t slot) {
                try {
                    if (!contexts[slot]) {
                        contexts[slot] = std::make_unique<WorkerContext>(
                            config_.reference_backend, duts, config_.engine);
                    }
                    while (!failed.load(std::memory_order_relaxed)) {
                        const std::uint64_t index = next.fetch_add(1);
                        if (index >= jobs) break;
                        job(*contexts[slot], index);
                    }
                } catch (...) {
                    const std::lock_guard<std::mutex> lock(error_mutex);
                    if (!first_error) first_error = std::current_exception();
                    failed.store(true, std::memory_order_relaxed);
                }
            };
            if (threads <= 1) {
                worker(0);
            } else {
                std::vector<std::thread> pool;
                pool.reserve(static_cast<std::size_t>(threads));
                for (int i = 0; i < threads; ++i) {
                    pool.emplace_back(worker, static_cast<std::size_t>(i));
                }
                for (auto& t : pool) t.join();
            }
            if (first_error) std::rethrow_exception(first_error);
        };

    // Merge in scenario order so the report never depends on scheduling
    // (see ReportBuilder::fold).
    ReportBuilder builder(report);
    const auto fold_outcome = [&](ScenarioOutcome& outcome) {
        return builder.fold(outcome);
    };

    const auto t0 = std::chrono::steady_clock::now();
    if (!config_.mutation_recipe.empty()) {
        // Single-recipe replay: run exactly the recorded scenario through
        // the ordinary detection/triage path.  This is how a mutated or
        // concolically synthesized corpus entry (or a report's parentage
        // recipe) reproduces its divergence.  The two recipe grammars are
        // mutually unparseable ('#' vs '@' head), so trying concolic first
        // can never misread a mutation recipe.
        const Mutator mutator(gen);
        Scenario sc;
        if (const auto conc = ConcolicRecipe::parse(config_.mutation_recipe)) {
            sc = mutator.apply_concolic(*conc);
            report.scenarios_concolic = 1;
        } else if (const auto parsed =
                       MutationRecipe::parse(config_.mutation_recipe)) {
            sc = mutator.apply(*parsed);
            report.scenarios_mutated = 1;
        } else {
            throw std::invalid_argument("campaign: unparseable recipe '" +
                                        config_.mutation_recipe + "'");
        }
        report.scenarios = 1;
        std::vector<ScenarioOutcome> outcomes(1);
        run_pool(1, [&](WorkerContext& ctx, std::uint64_t) {
            run_one(ctx, sc, outcomes[0], config_.mutation_recipe);
        });
        fold_outcome(outcomes[0]);
        if (config_.coverage) {
            coverage::CoverageMap global;
            if (outcomes[0].coverage) {
                report.coverage_edges_reference +=
                    global.merge_new_from(*outcomes[0].coverage);
            }
            for (std::size_t d = 0; d < outcomes[0].dut_coverage.size(); ++d) {
                if (!outcomes[0].dut_coverage[d]) continue;
                report.coverage_edges_dut[d] +=
                    global.merge_new_from(*outcomes[0].dut_coverage[d]);
            }
            report.coverage_edges =
                static_cast<std::uint64_t>(global.edges_covered());
            report.coverage_series.push_back({1, report.coverage_edges});
            if (config_.coverage_map_out) *config_.coverage_map_out = global;
        }
    } else if (!config_.coverage) {
        // Uniform sweep: every seed in [base, base + scenarios) once.
        std::vector<ScenarioOutcome> outcomes(config_.scenarios);
        run_pool(config_.scenarios,
                 [&](WorkerContext& ctx, std::uint64_t index) {
                     const Scenario sc = gen.make(config_.base_seed + index);
                     run_one(ctx, sc, outcomes[index], std::string());
                 });
        for (auto& outcome : outcomes) fold_outcome(outcome);
    } else {
        // Guided mode: deterministic rounds.  Each round the scheduler
        // apportions the budget across programs from the feedback merged so
        // far; slots -- (program, fresh seed) or a fully derived mutation
        // recipe -- are fixed before any worker starts, so thread count
        // never changes what runs or how it merges.
        coverage::CorpusScheduler scheduler(gen.programs().size());
        coverage::CoverageMap global;
        const Mutator mutator(gen);
        ScenarioCorpus corpus;
        if (config_.mutate && !config_.corpus_dir.empty()) {
            corpus.load_dir(config_.corpus_dir, gen.programs());
        }
        struct GuidedSlot {
            std::size_t program = 0;
            std::uint64_t seed = 0;
            std::string recipe_text;  // empty = fresh seed
            MutationRecipe recipe;    // valid when recipe_text is non-empty
            bool is_concolic = false;
            ConcolicRecipe concolic;  // valid when is_concolic
        };
        // Concolic synthesis state, per catalogue program, built lazily the
        // first time a program's dark sites are attempted.  `attempted`
        // remembers every slot ever handed to the solver so a hard target
        // is not re-solved at each barrier.
        struct ConcolicState {
            std::shared_ptr<const p4::ir::Program> compiled;
            std::unique_ptr<coverage::EdgeIndex> index;
            std::unique_ptr<verify::ConcolicSynthesizer> synth;
            std::set<std::uint32_t> attempted;
        };
        std::vector<ConcolicState> concolic_states(
            config_.concolic ? gen.programs().size() : 0);
        // Seeds synthesized at one barrier, scheduled ahead of the next
        // round's plan.
        struct PendingSeed {
            std::size_t program = 0;
            ConcolicRecipe recipe;
        };
        std::vector<PendingSeed> pending;
        // Relight oracle: a dedicated reference instance pinned to the
        // interpreter (the engine whose semantics the verify layer models).
        // Its salt is what EdgeIndex must be built with -- the campaign's
        // own reference devices fold the identical salt into their maps, so
        // "dark in `global`" and "dark for this oracle" agree.
        std::unique_ptr<target::Device> oracle;
        std::uint64_t ref_salt = 0;
        if (config_.concolic) {
            oracle = target::make_device(config_.reference_backend);
            if (!oracle) {
                throw std::invalid_argument(
                    "campaign: unknown reference backend '" +
                    config_.reference_backend + "'");
            }
            oracle->set_engine(dataplane::Engine::interpreter);
            ref_salt = oracle->coverage_salt();
        }
        const std::uint64_t round_cap =
            std::max<std::uint64_t>(8, 2 * gen.programs().size());
        std::uint64_t done = 0;
        std::uint64_t seed_cursor = 0;
        std::uint64_t round_index = 0;
        while (done < config_.scenarios) {
            const std::uint64_t round_t0 =
                obs::trace_on() ? obs::now_ns() : 0;
            const std::uint64_t round =
                std::min(config_.scenarios - done, round_cap);
            std::vector<GuidedSlot> slots;
            slots.reserve(static_cast<std::size_t>(round));
            // Synthesized seeds first: they were solved specifically to
            // light still-dark slots, so they outrank anything the
            // scheduler would plan.  Each consumes one slot of the round's
            // budget; its "seed" is the target slot id (that is what
            // replays it via the corpus).
            const std::size_t take = static_cast<std::size_t>(
                std::min<std::uint64_t>(pending.size(), round));
            for (std::size_t i = 0; i < take; ++i) {
                GuidedSlot slot;
                slot.program = pending[i].program;
                slot.seed = pending[i].recipe.slot;
                slot.is_concolic = true;
                slot.concolic = std::move(pending[i].recipe);
                slot.recipe_text = slot.concolic.encode();
                slots.push_back(std::move(slot));
            }
            pending.erase(pending.begin(),
                          pending.begin() + static_cast<std::ptrdiff_t>(take));
            report.scenarios_concolic += take;
            const std::vector<std::uint64_t> plan =
                scheduler.plan_round(round - take);
            for (std::size_t p = 0; p < plan.size(); ++p) {
                for (std::uint64_t k = 0; k < plan[p]; ++k) {
                    GuidedSlot slot;
                    slot.program = p;
                    slot.seed = config_.base_seed + seed_cursor++;
                    // Fresh-vs-mutant draw: corpus membership only changes
                    // at round barriers, and the coin is a pure function of
                    // the slot seed, so the mix is schedule-independent.
                    if (config_.mutate) {
                        const auto& pool = corpus.entries(gen.programs()[p]);
                        // Concolic entries replay whole, never as mutation
                        // parents: their packet is a solver model with no
                        // field plan for havoc ops to perturb (and their
                        // recipe text is not a MutationRecipe chain).
                        std::vector<const CorpusEntry*> parents;
                        parents.reserve(pool.size());
                        for (const CorpusEntry& e : pool) {
                            if (!e.concolic) parents.push_back(&e);
                        }
                        if (!parents.empty()) {
                            util::Rng coin(slot.seed ^ kMutateCoinSalt);
                            if (coin.next_double() < config_.mutation_rate) {
                                const CorpusEntry& parent =
                                    *parents[coin.next_below(parents.size())];
                                slot.recipe =
                                    mutator.derive(corpus, parent, slot.seed);
                                slot.recipe_text = slot.recipe.encode();
                                ++report.scenarios_mutated;
                            }
                        }
                    }
                    slots.push_back(std::move(slot));
                }
            }
            std::vector<ScenarioOutcome> outcomes(slots.size());
            run_pool(slots.size(), [&](WorkerContext& ctx, std::uint64_t i) {
                const Scenario sc =
                    slots[i].is_concolic ? mutator.apply_concolic(slots[i].concolic)
                    : slots[i].recipe_text.empty()
                        ? gen.make_for(slots[i].program, slots[i].seed)
                        : mutator.apply(slots[i].recipe);
                run_one(ctx, sc, outcomes[i], slots[i].recipe_text);
            });
            // Round barrier: fold outcomes in slot order, then reward each
            // program with its per-scenario energy gain (new reference and
            // DUT coverage edges plus a bonus per fresh divergence
            // fingerprint), and retain every interesting scenario in the
            // mutation corpus.
            std::vector<double> gain(plan.size(), 0.0);
            for (std::size_t i = 0; i < slots.size(); ++i) {
                const bool fresh = fold_outcome(outcomes[i]);
                std::size_t ref_edges = 0;
                std::size_t dut_edges = 0;
                if (outcomes[i].coverage) {
                    ref_edges = global.merge_new_from(*outcomes[i].coverage);
                    report.coverage_edges_reference += ref_edges;
                }
                for (std::size_t d = 0; d < outcomes[i].dut_coverage.size();
                     ++d) {
                    if (!outcomes[i].dut_coverage[d]) continue;
                    const std::size_t fresh_dut =
                        global.merge_new_from(*outcomes[i].dut_coverage[d]);
                    report.coverage_edges_dut[d] += fresh_dut;
                    dut_edges += fresh_dut;
                }
                gain[slots[i].program] +=
                    static_cast<double>(ref_edges) / 8.0 +
                    static_cast<double>(dut_edges) / 16.0 + (fresh ? 1.0 : 0.0);
                if (config_.mutate && !slots[i].is_concolic &&
                    (fresh || ref_edges > 0 || dut_edges > 0)) {
                    // (Concolic slots are already corpus entries: they were
                    // added when their seed passed the relight check.)
                    if (slots[i].recipe_text.empty()) {
                        corpus.add(gen.programs()[slots[i].program],
                                   slots[i].seed);
                    } else {
                        corpus.add(gen.programs()[slots[i].program],
                                   slots[i].recipe.parent_seed,
                                   slots[i].recipe_text);
                    }
                }
            }
            // Per-program slot counts include concolic slots, so their edge
            // gains reward the program at the same per-scenario scale as
            // planned slots.
            std::vector<std::uint64_t> ran(plan.size(), 0);
            for (const GuidedSlot& slot : slots) ++ran[slot.program];
            for (std::size_t p = 0; p < plan.size(); ++p) {
                if (ran[p] == 0) continue;
                const double energy = gain[p] / static_cast<double>(ran[p]);
                scheduler.reward(p, energy);
                if (obs::trace_on()) {
                    obs::trace_instant(
                        "energy", "program", p, "gain_milli",
                        static_cast<std::uint64_t>(1000.0 * energy));
                }
            }

            // Concolic synthesis at the barrier: map still-dark reference
            // slots back to IR sites, solve for covering seeds, verify each
            // actually lights its slot on the oracle, and queue the
            // survivors for the next round.  Sequential and driven by
            // barrier-merged state only -- thread count cannot change what
            // gets synthesized.
            if (config_.concolic) {
                std::uint64_t budget = config_.concolic_per_round;
                for (std::size_t p = 0;
                     p < gen.programs().size() && budget > 0; ++p) {
                    ConcolicState& st = concolic_states[p];
                    if (!st.index) {
                        st.compiled =
                            gen.make_for(p, config_.base_seed).compiled;
                        st.index = std::make_unique<coverage::EdgeIndex>(
                            *st.compiled, ref_salt);
                        st.synth =
                            std::make_unique<verify::ConcolicSynthesizer>(
                                *st.compiled);
                    }
                    std::vector<coverage::EdgeSite> targets;
                    for (const coverage::EdgeSite& site :
                         st.index->dark_sites(global)) {
                        if (targets.size() >= budget) break;
                        if (!st.attempted.insert(site.slot).second) continue;
                        targets.push_back(site);
                    }
                    if (targets.empty()) continue;
                    budget -= targets.size();
                    const verify::ConcolicResult result =
                        st.synth->synthesize(targets);
                    if (result.paths_exhausted) {
                        report.concolic_paths_exhausted = true;
                    }
                    for (const verify::TargetOutcome& out : result.outcomes) {
                        switch (out.status) {
                            case verify::TargetStatus::solved:
                                ++report.concolic_solved;
                                break;
                            case verify::TargetStatus::unsat:
                                ++report.concolic_unsat;
                                break;
                            case verify::TargetStatus::unknown:
                                ++report.concolic_unknown;
                                break;
                            case verify::TargetStatus::no_path:
                                ++report.concolic_no_path;
                                break;
                        }
                    }
                    for (const verify::ConcolicSeed& seed : result.seeds) {
                        ConcolicRecipe recipe;
                        recipe.program = gen.programs()[p];
                        recipe.slot = seed.target.slot;
                        recipe.ingress_port = seed.ingress_port;
                        recipe.packet = seed.packet;
                        for (const auto& def : seed.defaults) {
                            ConcolicRecipe::Default d;
                            d.table = def.table;
                            d.action = def.action;
                            for (const util::Bitvec& arg : def.args) {
                                d.args.push_back(arg.to_bytes());
                            }
                            recipe.defaults.push_back(std::move(d));
                        }
                        // Relight check: inject the synthesized scenario on
                        // the oracle exactly the way run_one will and
                        // require the target slot to light.  A model the
                        // interpreter disagrees with is a verify-layer bug
                        // and must not pollute the corpus.
                        const Scenario sc = mutator.apply_concolic(recipe);
                        const std::vector<packet::Packet> packets =
                            scenario_packets(sc);
                        coverage::CoverageMap scratch;
                        oracle->set_coverage(&scratch);
                        run_scenario_on(*oracle, sc, packets,
                                        config_.batch_size);
                        oracle->set_coverage(nullptr);
                        if (scratch.count(seed.target.slot) == 0) {
                            ++report.concolic_mismatched;
                            continue;
                        }
                        const std::string text = recipe.encode();
                        if (!corpus.add(recipe.program, recipe.slot, text,
                                        /*concolic=*/true)) {
                            continue;  // slot-colliding duplicate
                        }
                        ++report.concolic_injected;
                        if (obs::metrics_on()) {
                            obs::count(obs::Counter::concolic_injected);
                        }
                        if (obs::trace_on()) {
                            obs::trace_instant("concolic_inject", "program", p,
                                               "slot", recipe.slot);
                        }
                        report.concolic_recipes.push_back(text);
                        pending.push_back({p, std::move(recipe)});
                    }
                }
            }
            done += round;
            report.coverage_series.push_back(
                {done, static_cast<std::uint64_t>(global.edges_covered())});
            if (obs::metrics_on()) obs::count(obs::Counter::rounds);
            if (obs::trace_on()) {
                obs::trace_complete("round", round_t0, obs::now_ns() - round_t0,
                                    "round", round_index, "slots", round);
            }
            ++round_index;
        }
        report.coverage_edges =
            static_cast<std::uint64_t>(global.edges_covered());
        if (config_.coverage_map_out) *config_.coverage_map_out = global;
    }
    const auto t1 = std::chrono::steady_clock::now();

    stats_.wall_seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
    if (stats_.wall_seconds > 0) {
        stats_.scenarios_per_sec =
            static_cast<double>(config_.scenarios) / stats_.wall_seconds;
        stats_.packets_per_sec =
            static_cast<double>(report.packets_injected) / stats_.wall_seconds;
    }
    return report;
}

// --- report rendering ---------------------------------------------------------

std::string CampaignReport::to_string() const {
    std::string s = util::format(
        "campaign: %llu scenario(s) from seed %llu, %llu packet(s), "
        "%llu finding(s) -> %zu unique (dedup x%.1f)\n",
        static_cast<unsigned long long>(scenarios),
        static_cast<unsigned long long>(base_seed),
        static_cast<unsigned long long>(packets_injected),
        static_cast<unsigned long long>(findings_total), divergences.size(),
        dedup_ratio());
    if (!engine.empty()) {
        s += util::format("  engine: %s\n", engine.c_str());
    }
    if (coverage_enabled) {
        std::uint64_t dut_total = 0;
        for (const auto e : coverage_edges_dut) dut_total += e;
        s += util::format(
            "  coverage: %llu/%llu edges (%.1f%%: %llu reference + %llu dut) "
            "over %zu round(s)\n",
            static_cast<unsigned long long>(coverage_edges),
            static_cast<unsigned long long>(coverage_map_slots),
            coverage_map_slots
                ? 100.0 * static_cast<double>(coverage_edges) /
                      static_cast<double>(coverage_map_slots)
                : 0.0,
            static_cast<unsigned long long>(coverage_edges_reference),
            static_cast<unsigned long long>(dut_total),
            coverage_series.size());
    }
    if (scenarios_mutated) {
        s += util::format("  mutated: %llu of %llu scenario(s) drawn from the "
                          "corpus\n",
                          static_cast<unsigned long long>(scenarios_mutated),
                          static_cast<unsigned long long>(scenarios));
    }
    if (concolic_enabled) {
        s += util::format(
            "  concolic: %llu seed(s) injected, %llu scenario(s) run "
            "(targets: %llu solved, %llu unsat, %llu unknown, %llu no-path, "
            "%llu mismatched)%s\n",
            static_cast<unsigned long long>(concolic_injected),
            static_cast<unsigned long long>(scenarios_concolic),
            static_cast<unsigned long long>(concolic_solved),
            static_cast<unsigned long long>(concolic_unsat),
            static_cast<unsigned long long>(concolic_unknown),
            static_cast<unsigned long long>(concolic_no_path),
            static_cast<unsigned long long>(concolic_mismatched),
            concolic_paths_exhausted ? "; paths exhausted" : "");
        for (const auto& r : concolic_recipes) {
            s += util::format("  concolic+ %s\n", r.c_str());
        }
    }
    if (mgmt_enabled) {
        s += util::format(
            "  mgmt wire: %llu request(s), %llu frame(s), %llu retrie(s), "
            "%llu timeout(s), %llu fault(s) injected, %llu dedup hit(s)\n",
            static_cast<unsigned long long>(mgmt.requests),
            static_cast<unsigned long long>(mgmt.frames_sent),
            static_cast<unsigned long long>(mgmt.retries),
            static_cast<unsigned long long>(mgmt.timeouts),
            static_cast<unsigned long long>(mgmt.faults_injected),
            static_cast<unsigned long long>(mgmt.dedup_hits));
    }
    if (fabric_enabled) {
        s += util::format(
            "  fabric: %llu worker(s), %llu restart(s), %llu shard(s) "
            "re-dispatched, %llu job(s) resent, %llu link frame(s) "
            "(%llu corrupt, %llu fault(s) injected)\n",
            static_cast<unsigned long long>(fabric.workers),
            static_cast<unsigned long long>(fabric.worker_restarts),
            static_cast<unsigned long long>(fabric.shards_redispatched),
            static_cast<unsigned long long>(fabric.jobs_resent),
            static_cast<unsigned long long>(fabric.link_frames),
            static_cast<unsigned long long>(fabric.link_corrupt),
            static_cast<unsigned long long>(fabric.link_faults));
    }
    for (const auto& d : divergences) {
        s += util::format(
            "  [%s] seed=%llu %s: %s (min=%llu pkt, +%llu dup) %s\n",
            d.fingerprint.c_str(), static_cast<unsigned long long>(d.seed),
            d.kind.c_str(), d.detail.c_str(),
            static_cast<unsigned long long>(d.minimized_count),
            static_cast<unsigned long long>(d.duplicates),
            d.localized.diverged ? d.localized.to_string().c_str() : "");
        if (!d.recipe.empty()) {
            s += util::format("    parentage: %s\n", d.recipe.c_str());
        }
    }
    return s;
}

std::string CampaignReport::to_json() const {
    std::string s = "{\n";
    s += util::format("  \"base_seed\": %llu,\n",
                      static_cast<unsigned long long>(base_seed));
    s += util::format("  \"scenarios\": %llu,\n",
                      static_cast<unsigned long long>(scenarios));
    s += "  \"programs\": " + json_string_array(programs) + ",\n";
    s += "  \"backends\": " + json_string_array(backends) + ",\n";
    s += "  \"engine\": \"" + json_escape(engine) + "\",\n";
    s += util::format("  \"packets_injected\": %llu,\n",
                      static_cast<unsigned long long>(packets_injected));
    s += util::format("  \"findings_total\": %llu,\n",
                      static_cast<unsigned long long>(findings_total));
    s += util::format("  \"divergences_unique\": %zu,\n", divergences.size());
    s += util::format("  \"dedup_ratio\": %.3f,\n", dedup_ratio());
    s += util::format("  \"scenarios_mutated\": %llu,\n",
                      static_cast<unsigned long long>(scenarios_mutated));
    if (concolic_enabled) {
        s += "  \"concolic\": {";
        s += util::format("\"scenarios\": %llu, ",
                          static_cast<unsigned long long>(scenarios_concolic));
        s += util::format("\"injected\": %llu, ",
                          static_cast<unsigned long long>(concolic_injected));
        s += util::format("\"solved\": %llu, ",
                          static_cast<unsigned long long>(concolic_solved));
        s += util::format("\"unsat\": %llu, ",
                          static_cast<unsigned long long>(concolic_unsat));
        s += util::format("\"unknown\": %llu, ",
                          static_cast<unsigned long long>(concolic_unknown));
        s += util::format("\"no_path\": %llu, ",
                          static_cast<unsigned long long>(concolic_no_path));
        s += util::format("\"mismatched\": %llu, ",
                          static_cast<unsigned long long>(concolic_mismatched));
        s += util::format("\"paths_exhausted\": %s, ",
                          concolic_paths_exhausted ? "true" : "false");
        s += "\"recipes\": " + json_string_array(concolic_recipes);
        s += "},\n";
    }
    if (coverage_enabled) {
        // Edges-discovered over scenarios: the guided campaign's trajectory,
        // one sample per scheduler round.  Deterministic like the rest.
        s += "  \"coverage\": {";
        s += util::format("\"map_slots\": %llu, ",
                          static_cast<unsigned long long>(coverage_map_slots));
        s += util::format("\"edges_discovered\": %llu, ",
                          static_cast<unsigned long long>(coverage_edges));
        s += util::format("\"edges_reference\": %llu, ",
                          static_cast<unsigned long long>(coverage_edges_reference));
        s += "\"edges_dut\": [";
        for (std::size_t i = 0; i < coverage_edges_dut.size(); ++i) {
            if (i) s += ", ";
            s += util::format(
                "{\"backend\": \"%s\", \"edges\": %llu}",
                json_escape(i < backends.size() ? backends[i] : "").c_str(),
                static_cast<unsigned long long>(coverage_edges_dut[i]));
        }
        s += "], ";
        s += util::format(
            "\"coverage_pct\": %.2f, ",
            coverage_map_slots
                ? 100.0 * static_cast<double>(coverage_edges) /
                      static_cast<double>(coverage_map_slots)
                : 0.0);
        s += "\"series\": [";
        for (std::size_t i = 0; i < coverage_series.size(); ++i) {
            const CoveragePoint& p = coverage_series[i];
            if (i) s += ", ";
            s += util::format(
                "{\"scenarios\": %llu, \"edges\": %llu, \"pct\": %.2f}",
                static_cast<unsigned long long>(p.scenarios),
                static_cast<unsigned long long>(p.edges),
                coverage_map_slots
                    ? 100.0 * static_cast<double>(p.edges) /
                          static_cast<double>(coverage_map_slots)
                    : 0.0);
        }
        s += "]},\n";
    }
    if (mgmt_enabled || fabric_enabled) {
        // Byte-identity consumers: "mgmt" is deterministic like the rest of
        // the report; "fabric" is timing-dependent (which worker dies with
        // which shard in flight) and must be excluded from comparisons.
        s += "  \"robustness\": {";
        s += util::format(
            "\"mgmt\": {\"requests\": %llu, \"frames_sent\": %llu, "
            "\"retries\": %llu, \"timeouts\": %llu, \"decode_errors\": %llu, "
            "\"faults_injected\": %llu, \"dedup_hits\": %llu}",
            static_cast<unsigned long long>(mgmt.requests),
            static_cast<unsigned long long>(mgmt.frames_sent),
            static_cast<unsigned long long>(mgmt.retries),
            static_cast<unsigned long long>(mgmt.timeouts),
            static_cast<unsigned long long>(mgmt.decode_errors),
            static_cast<unsigned long long>(mgmt.faults_injected),
            static_cast<unsigned long long>(mgmt.dedup_hits));
        if (fabric_enabled) {
            s += util::format(
                ", \"fabric\": {\"workers\": %llu, \"worker_restarts\": %llu, "
                "\"shards_redispatched\": %llu, \"jobs_resent\": %llu, "
                "\"link_frames\": %llu, \"link_corrupt\": %llu, "
                "\"link_faults\": %llu}",
                static_cast<unsigned long long>(fabric.workers),
                static_cast<unsigned long long>(fabric.worker_restarts),
                static_cast<unsigned long long>(fabric.shards_redispatched),
                static_cast<unsigned long long>(fabric.jobs_resent),
                static_cast<unsigned long long>(fabric.link_frames),
                static_cast<unsigned long long>(fabric.link_corrupt),
                static_cast<unsigned long long>(fabric.link_faults));
        }
        s += "},\n";
    }
    s += "  \"divergences\": [";
    for (std::size_t i = 0; i < divergences.size(); ++i) {
        const auto& d = divergences[i];
        s += i ? ",\n    {" : "\n    {";
        s += util::format("\"seed\": %llu, ",
                          static_cast<unsigned long long>(d.seed));
        s += "\"recipe\": \"" + json_escape(d.recipe) + "\", ";
        s += "\"backend\": \"" + json_escape(d.backend) + "\", ";
        s += "\"program\": \"" + json_escape(d.program) + "\", ";
        s += "\"quirks\": \"" + json_escape(d.quirk_signature) + "\", ";
        s += "\"kind\": \"" + json_escape(d.kind) + "\", ";
        s += "\"detail\": \"" + json_escape(d.detail) + "\", ";
        s += "\"fingerprint\": \"" + json_escape(d.fingerprint) + "\", ";
        s += util::format("\"discovered_at\": %llu, ",
                          static_cast<unsigned long long>(d.discovered_at));
        s += util::format("\"first_diverging_packet\": %llu, ",
                          static_cast<unsigned long long>(d.first_diverging_packet));
        s += util::format("\"minimized_count\": %llu, ",
                          static_cast<unsigned long long>(d.minimized_count));
        s += util::format("\"minimized_reproduces\": %s, ",
                          d.minimized_reproduces ? "true" : "false");
        s += util::format("\"duplicates\": %llu, ",
                          static_cast<unsigned long long>(d.duplicates));
        s += "\"localized\": {";
        s += util::format("\"diverged\": %s, ",
                          d.localized.diverged ? "true" : "false");
        s += util::format(
            "\"stage\": \"%s\", ",
            d.localized.diverged ? dataplane::stage_name(d.localized.stage) : "");
        s += "\"description\": \"" + json_escape(d.localized.description) + "\", ";
        s += util::format("\"probes\": %d, ", d.localized.probes);
        s += util::format("\"conclusive\": %s}",
                          d.localized.conclusive ? "true" : "false");
        s += "}";
    }
    s += divergences.empty() ? "]\n" : "\n  ]\n";
    s += "}\n";
    return s;
}

}  // namespace ndb::core
