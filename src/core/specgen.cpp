#include "core/specgen.h"

#include <span>
#include <stdexcept>

#include "core/tools.h"
#include "p4/programs.h"
#include "packet/protocols.h"
#include "util/random.h"
#include "util/strings.h"

namespace ndb::core {

using util::Bitvec;
using util::Rng;

namespace {

// Field bit offsets in an Ethernet(+IPv4(+UDP)) frame.
constexpr std::size_t kEthDstBit = 0;
constexpr std::size_t kEthSrcBit = 48;
constexpr std::size_t kEthTypeBit = 96;
constexpr std::size_t kIpv4ProtoBit = (14 + 9) * 8;
constexpr std::size_t kIpv4SrcBit = (14 + 12) * 8;
constexpr std::size_t kUdpSrcPortBit = (14 + 20) * 8;
constexpr std::size_t kUdpDstPortBit = (14 + 20 + 2) * 8;

Bitvec mac_bits(const packet::Mac& mac) {
    return Bitvec::from_bytes(
        std::span<const std::uint8_t>(mac.data(), mac.size()), 48);
}

ConfigOp entry_op(std::string table, control::EntrySpec entry) {
    ConfigOp op;
    op.kind = ConfigOp::Kind::add_entry;
    op.target = std::move(table);
    op.entry = std::move(entry);
    return op;
}

ConfigOp register_op(std::string name, std::uint64_t index, Bitvec value) {
    ConfigOp op;
    op.kind = ConfigOp::Kind::write_register;
    op.target = std::move(name);
    op.index = index;
    op.value = std::move(value);
    return op;
}

FieldMutation mutation(std::size_t bit_offset, int width, FieldMutation::Mode mode,
                       std::uint64_t value, std::uint64_t step = 1,
                       std::uint64_t range = 0) {
    FieldMutation m;
    m.bit_offset = bit_offset;
    m.width = width;
    m.mode = mode;
    m.value = Bitvec(width, value);
    m.step = step;
    m.range = range;
    return m;
}

std::uint32_t pick_port(Rng& rng) { return static_cast<std::uint32_t>(rng.next_range(1, 3)); }

// An Ethernet + tunnel_t + IPv4/UDP frame for the tunnel program's decap path.
packet::Packet tunnel_packet(std::uint16_t dst_id) {
    const packet::Packet inner = scenario::ipv4_udp_packet();
    std::vector<std::uint8_t> bytes(inner.data().begin(), inner.data().begin() + 14);
    bytes[12] = 0x12;  // TYPE_TUNNEL
    bytes[13] = 0x12;
    bytes.push_back(0x08);  // proto_id: the encapsulated etherType
    bytes.push_back(0x00);
    bytes.push_back(static_cast<std::uint8_t>(dst_id >> 8));
    bytes.push_back(static_cast<std::uint8_t>(dst_id & 0xff));
    bytes.insert(bytes.end(), inner.data().begin() + 14, inner.data().end());
    return packet::Packet(std::move(bytes));
}

// --- per-program synthesis ----------------------------------------------------
//
// Each builder fills the scenario's config ops and packet plan.  The guiding
// rule: every plan must (a) stay deterministic in `rng` alone and (b) steer
// some packets through the program's interesting paths (misses, rejects,
// deep stacks, overlapping ternary entries) so backend deviations have
// something to diverge on.

void build_passthrough(Rng& rng, Scenario& s) {
    s.spec.tmpl.base = rng.next_bool(0.75) ? scenario::ipv4_udp_packet()
                                           : scenario::arp_packet();
    s.spec.tmpl.mutations.push_back(
        mutation(kEthSrcBit + 32, 16, FieldMutation::Mode::random, 0));
}

void build_l2_switch(Rng& rng, Scenario& s) {
    // Entries for a subset of hosts 1..8; the template's destination MAC
    // sweeps the full range, so some packets hit and some miss (drop).
    const std::uint64_t installed = rng.next_range(2, 6);
    for (std::uint64_t i = 0; i < installed; ++i) {
        const int host = static_cast<int>(rng.next_range(1, 8));
        control::EntrySpec e;
        e.key_values = {mac_bits(scenario::host_mac(host))};
        e.action = "forward";
        e.action_args = {Bitvec(9, pick_port(rng))};
        s.config.push_back(entry_op("dmac", std::move(e)));
    }
    s.spec.tmpl.base = scenario::ipv4_udp_packet();
    s.spec.tmpl.mutations.push_back(
        mutation(kEthDstBit + 40, 8, FieldMutation::Mode::sweep, 1, 1, 8));
}

void build_ipv4_router(Rng& rng, Scenario& s) {
    {  // default route, so most packets forward (and update the checksum)
        control::EntrySpec e;
        e.key_values = {Bitvec(32, 0)};
        e.prefix_len = 0;
        e.action = "ipv4_forward";
        e.action_args = {mac_bits(scenario::host_mac(2)), Bitvec(9, pick_port(rng))};
        s.config.push_back(entry_op("ipv4_lpm", std::move(e)));
    }
    const std::uint64_t routes = rng.next_range(0, 2);
    for (std::uint64_t i = 0; i < routes; ++i) {
        control::EntrySpec e;
        e.key_values = {Bitvec(32, scenario::host_ip(0) |
                                       (rng.next_range(0, 3) << 8))};
        e.prefix_len = 24;
        e.action = "ipv4_forward";
        e.action_args = {mac_bits(scenario::host_mac(3)), Bitvec(9, pick_port(rng))};
        s.config.push_back(entry_op("ipv4_lpm", std::move(e)));
    }
    s.spec.tmpl.base =
        scenario::ipv4_udp_packet(64, static_cast<std::uint8_t>(rng.next_range(2, 64)));
    // Third byte of the destination sweeps across the installed /24s; the
    // TTL sweep reaches 0 now and then to exercise the drop branch.
    s.spec.tmpl.mutations.push_back(
        mutation(scenario::kIpv4DstBit + 16, 8, FieldMutation::Mode::sweep, 0, 1, 4));
    if (rng.next_bool(0.5)) {
        s.spec.tmpl.mutations.push_back(
            mutation(scenario::kIpv4TtlBit, 8, FieldMutation::Mode::sweep, 0, 1, 3));
    }
}

void build_reject_filter(Rng& rng, Scenario& s) {
    s.spec.tmpl.base = scenario::ipv4_udp_packet();
    // Alternate IPv4 (accepted) and ARP (must be rejected) etherTypes: the
    // paper's Section-4 scenario, where reject_as_accept backends forward
    // what the program says to drop.
    s.spec.tmpl.mutations.push_back(
        mutation(kEthTypeBit, 16, FieldMutation::Mode::sweep, 0x0800, 6, 2));
    if (rng.next_bool(0.5)) {
        s.spec.tmpl.mutations.push_back(
            mutation(kEthSrcBit + 32, 16, FieldMutation::Mode::random, 0));
    }
}

void build_acl_firewall(Rng& rng, Scenario& s) {
    // One low-priority wildcard allow and one high-priority specific entry
    // with a different egress: packets matching both expose a backwards
    // priority encoder.  Extra random entries thicken the overlap.
    const std::uint32_t wildcard_port = pick_port(rng);
    {
        control::EntrySpec e;
        e.key_values = {Bitvec(32, 0), Bitvec(32, 0), Bitvec(8, 0), Bitvec(16, 0)};
        e.key_masks = {Bitvec(32, 0), Bitvec(32, 0), Bitvec(8, 0), Bitvec(16, 0)};
        e.priority = 1;
        e.action = "allow";
        e.action_args = {Bitvec(9, wildcard_port)};
        s.config.push_back(entry_op("acl", std::move(e)));
    }
    {
        control::EntrySpec e;
        e.key_values = {Bitvec(32, 0), Bitvec(32, 0), Bitvec(8, packet::kIpProtoUdp),
                        Bitvec(16, 7000)};
        e.key_masks = {Bitvec(32, 0), Bitvec(32, 0), Bitvec(8, 0xff),
                       Bitvec(16, 0xffff)};
        e.priority = static_cast<int>(rng.next_range(5, 15));
        e.action = rng.next_bool(0.8) ? "allow" : "deny";
        e.action_args = e.action == "allow"
                            ? std::vector<Bitvec>{Bitvec(9, (wildcard_port % 3) + 1)}
                            : std::vector<Bitvec>{};
        s.config.push_back(entry_op("acl", std::move(e)));
    }
    const std::uint64_t extra = rng.next_range(0, 3);
    for (std::uint64_t i = 0; i < extra; ++i) {
        control::EntrySpec e;
        e.key_values = {Bitvec(32, 0), Bitvec(32, 0), Bitvec(8, 0),
                        Bitvec(16, 7000 + rng.next_range(0, 3))};
        e.key_masks = {Bitvec(32, 0), Bitvec(32, 0), Bitvec(8, 0),
                       Bitvec(16, 0xffff)};
        e.priority = static_cast<int>(rng.next_range(2, 12));
        e.action = rng.next_bool(0.7) ? "allow" : "deny";
        e.action_args = e.action == "allow"
                            ? std::vector<Bitvec>{Bitvec(9, pick_port(rng))}
                            : std::vector<Bitvec>{};
        s.config.push_back(entry_op("acl", std::move(e)));
    }
    s.spec.tmpl.base = scenario::ipv4_udp_packet();
    s.spec.tmpl.mutations.push_back(
        mutation(kUdpDstPortBit, 16, FieldMutation::Mode::sweep, 7000, 1, 4));
    if (rng.next_bool(0.4)) {
        // 16 -> reject path, 17 -> UDP: exercises the parser's protocol gate.
        s.spec.tmpl.mutations.push_back(
            mutation(kIpv4ProtoBit, 8, FieldMutation::Mode::sweep, 16, 1, 2));
    }
}

void build_tunnel(Rng& rng, Scenario& s) {
    if (rng.next_bool(0.5)) {
        // Encap direction: plain IPv4 in, tunnel header pushed on a hit.
        for (int host = 2; host <= 3; ++host) {
            control::EntrySpec e;
            e.key_values = {Bitvec(32, scenario::host_ip(host))};
            e.action = "tunnel_encap";
            e.action_args = {Bitvec(16, rng.next_range(1, 500)),
                             Bitvec(9, pick_port(rng))};
            s.config.push_back(entry_op("encap_map", std::move(e)));
        }
        s.spec.tmpl.base = scenario::ipv4_udp_packet();
        s.spec.tmpl.mutations.push_back(mutation(
            scenario::kIpv4DstBit + 24, 8, FieldMutation::Mode::sweep, 2, 1, 3));
    } else {
        // Decap direction: tunnel-headed packets, ids partially installed.
        const std::uint16_t base_id = static_cast<std::uint16_t>(rng.next_range(10, 40));
        const std::uint64_t installed = rng.next_range(1, 3);
        for (std::uint64_t i = 0; i < installed; ++i) {
            control::EntrySpec e;
            e.key_values = {Bitvec(16, base_id + i)};
            e.action = rng.next_bool(0.5) ? "tunnel_decap" : "tunnel_forward";
            e.action_args = {Bitvec(9, pick_port(rng))};
            s.config.push_back(entry_op("tunnel_exact", std::move(e)));
        }
        s.spec.tmpl.base = tunnel_packet(base_id);
        s.spec.tmpl.mutations.push_back(
            mutation((14 + 2) * 8, 16, FieldMutation::Mode::sweep, base_id, 1, 4));
    }
}

void build_deep_parser(Rng& rng, Scenario& s) {
    const int depth = static_cast<int>(rng.next_range(1, 8));
    const std::uint64_t installed = rng.next_range(1, 4);
    for (std::uint64_t i = 0; i < installed; ++i) {
        control::EntrySpec e;
        e.key_values = {Bitvec(20, 100 + rng.next_range(0, 7))};
        e.action = "pop_forward";
        e.action_args = {Bitvec(9, pick_port(rng))};
        s.config.push_back(entry_op("label_fib", std::move(e)));
    }
    s.spec.tmpl.base = scenario::label_stack_packet(depth);
    // Low byte of the top label sweeps the installed range (labels 100+).
    s.spec.tmpl.mutations.push_back(
        mutation(14 * 8 + 12, 8, FieldMutation::Mode::sweep, 100, 1, 8));
}

void build_stats_monitor(Rng& rng, Scenario& s) {
    ConfigOp op;
    op.kind = ConfigOp::Kind::write_register;
    op.target = "port_pkts";
    op.index = s.spec.inject_port;
    op.value = Bitvec(48, rng.next_range(0, 1u << 20));
    s.config.push_back(std::move(op));
    s.spec.tmpl.base = scenario::ipv4_udp_packet();
    s.spec.tmpl.mutations.push_back(
        mutation(kEthSrcBit, 32, FieldMutation::Mode::random, 0));
}

void build_wide_match(Rng& rng, Scenario& s) {
    const packet::Packet base = scenario::ipv4_udp_packet();
    // flow_wide entries for a couple of the swept destination addresses;
    // non-installed tuples drop at the wide table.
    const std::uint64_t installed = rng.next_range(1, 3);
    for (std::uint64_t i = 0; i < installed; ++i) {
        control::EntrySpec e;
        e.key_values = {mac_bits(scenario::host_mac(2)), mac_bits(scenario::host_mac(1)),
                        Bitvec(32, scenario::host_ip(1)),
                        Bitvec(32, scenario::host_ip(static_cast<int>(2 + i))),
                        Bitvec(8, packet::kIpProtoUdp)};
        e.action = "set_port";
        e.action_args = {Bitvec(9, pick_port(rng))};
        s.config.push_back(entry_op("flow_wide", std::move(e)));
    }
    {  // backup wildcard: survivors of flow_wide keep a port
        control::EntrySpec e;
        e.key_values = {Bitvec(32, 0)};
        e.key_masks = {Bitvec(32, 0)};
        e.priority = 1;
        e.action = "set_port";
        e.action_args = {Bitvec(9, pick_port(rng))};
        s.config.push_back(entry_op("backup", std::move(e)));
    }
    {  // overlapping higher-priority backup entry with its own egress
        control::EntrySpec e;
        e.key_values = {Bitvec(32, scenario::host_ip(2))};
        e.key_masks = {Bitvec(32, 0xffffffffu)};
        e.priority = static_cast<int>(rng.next_range(2, 9));
        e.action = "set_port";
        e.action_args = {Bitvec(9, pick_port(rng))};
        s.config.push_back(entry_op("backup", std::move(e)));
    }
    s.spec.tmpl.base = base;
    s.spec.tmpl.mutations.push_back(
        mutation(scenario::kIpv4DstBit + 24, 8, FieldMutation::Mode::sweep, 2, 1, 4));
}

void build_variant(Rng& rng, Scenario& s) {
    s.spec.tmpl.base =
        scenario::ipv4_udp_packet(64, static_cast<std::uint8_t>(rng.next_range(0, 64)));
    s.spec.tmpl.mutations.push_back(
        mutation(scenario::kIpv4TtlBit, 8, FieldMutation::Mode::increment, 0, 1));
    if (rng.next_bool(0.3)) {
        s.spec.tmpl.mutations.push_back(
            mutation(kEthTypeBit, 16, FieldMutation::Mode::sweep, 0x0800, 6, 2));
    }
}

void build_shift_mangler(Rng& rng, Scenario& s) {
    s.spec.tmpl.base = scenario::ipv4_udp_packet();
    // The program right-shifts etherType and dstAddr; randomized inputs make
    // shift direction observable on nearly every packet.
    s.spec.tmpl.mutations.push_back(
        mutation(kEthDstBit, 48, FieldMutation::Mode::random, 0));
    if (rng.next_bool(0.5)) {
        s.spec.tmpl.mutations.push_back(
            mutation(kEthTypeBit, 16, FieldMutation::Mode::random, 0));
    }
}

void build_metered_policer(Rng& rng, Scenario& s) {
    // Rate-limit the inject port so the 672ns-per-packet timeline outruns
    // the committed bucket partway through the stream: the meter walks
    // green -> yellow -> red within one scenario, and red packets drop.
    ConfigOp op;
    op.kind = ConfigOp::Kind::configure_meter;
    op.target = "port_meter";
    op.index = s.spec.inject_port;
    op.meter.committed_rate_bps = 1e6 * static_cast<double>(rng.next_range(1, 32));
    op.meter.committed_burst = 64 + rng.next_range(0, 3) * 96;
    op.meter.excess_rate_bps = op.meter.committed_rate_bps * 2;
    op.meter.excess_burst = op.meter.committed_burst + rng.next_range(64, 256);
    s.config.push_back(std::move(op));
    s.spec.tmpl.base = scenario::ipv4_udp_packet();
    s.spec.tmpl.mutations.push_back(
        mutation(kEthSrcBit + 32, 16, FieldMutation::Mode::random, 0));
}

void build_meta_echo(Rng& rng, Scenario& s) {
    s.spec.tmpl.base = scenario::ipv4_udp_packet();
    s.spec.tmpl.mutations.push_back(
        mutation(kEthSrcBit, 48,
                 rng.next_bool(0.5) ? FieldMutation::Mode::random
                                    : FieldMutation::Mode::increment,
                 0));
}

// --- stateful network functions ----------------------------------------------
//
// The flow-oriented plans below stretch one scenario across production-style
// flow dynamics: many concurrent flows (sweeping 5-tuple fields), connection
// churn (flows recurring with a fixed period so register buckets are
// revisited, refreshed, and stolen), and state expiry (rate_pps slows the
// virtual clock so inter-visit gaps straddle the programs' aging timeouts of
// 64us / 128us).  kNfFlowRate's 31.25us slot puts a same-flow revisit at
// ~62.5us -- just inside the NAT timeout, so one lost refresh or a +-1us
// clock skew flips the aging decision.

constexpr double kNfFlowRate = 32000.0;  // 31.25us between packets

void build_nat_gateway(Rng& rng, Scenario& s) {
    // A couple of statically-mapped sources bypass the dynamic binding table.
    const std::uint64_t statics = rng.next_range(0, 2);
    for (std::uint64_t i = 0; i < statics; ++i) {
        control::EntrySpec e;
        e.key_values = {Bitvec(32, scenario::host_ip(static_cast<int>(1 + i)))};
        e.action = "static_map";
        e.action_args = {Bitvec(32, 0xc0a800f0u + static_cast<std::uint32_t>(i)),
                         Bitvec(9, pick_port(rng))};
        s.config.push_back(entry_op("nat_static", std::move(e)));
    }
    // `flows` concurrent sources share the 64-bucket binding table; each
    // recurs every `flows` slots, so refreshes race the 64us timeout.
    const std::uint64_t flows = rng.next_range(2, 5);
    s.spec.count = rng.next_range(12, 24);
    s.spec.rate_pps = kNfFlowRate;
    s.spec.tmpl.base = scenario::ipv4_udp_packet();
    s.spec.tmpl.mutations.push_back(mutation(
        kIpv4SrcBit + 24, 8, FieldMutation::Mode::sweep, 1, 1, flows));
    if (rng.next_bool(0.5)) {
        // Vary the destination too: more (src, dst) pairs, more buckets.
        s.spec.tmpl.mutations.push_back(mutation(
            scenario::kIpv4DstBit + 24, 8, FieldMutation::Mode::sweep, 8, 1, 2));
    }
}

void build_flow_firewall(Rng& rng, Scenario& s) {
    {  // host .1 is inside; its outbound packets open pinholes
        control::EntrySpec e;
        e.key_values = {Bitvec(32, scenario::host_ip(1))};
        e.action = "mark_outbound";
        s.config.push_back(entry_op("internal_hosts", std::move(e)));
    }
    if (rng.next_bool(0.4)) {  // occasionally a second inside host
        control::EntrySpec e;
        e.key_values = {Bitvec(32, scenario::host_ip(3))};
        e.action = "mark_outbound";
        s.config.push_back(entry_op("internal_hosts", std::move(e)));
    }
    // Alternate the two directions of one connection: odd packets are the
    // .2 -> .1 reply (dropped until a pinhole exists), even packets are the
    // .1 -> .2 outbound that installs/refreshes it.  The direction-symmetric
    // flow key makes both sides land in one bucket.
    s.spec.count = rng.next_range(12, 24);
    s.spec.rate_pps = kNfFlowRate;
    s.spec.tmpl.base = scenario::ipv4_udp_packet();
    s.spec.tmpl.mutations.push_back(
        mutation(kIpv4SrcBit + 24, 8, FieldMutation::Mode::sweep, 1, 1, 2));
    s.spec.tmpl.mutations.push_back(
        mutation(scenario::kIpv4DstBit + 24, 8, FieldMutation::Mode::sweep, 2, 255, 2));
}

void build_maglev_lb(Rng& rng, Scenario& s) {
    {  // the VIP every client targets
        control::EntrySpec e;
        e.key_values = {Bitvec(32, scenario::host_ip(2))};
        e.action = "vip_select";
        e.action_args = {Bitvec(9, pick_port(rng))};
        s.config.push_back(entry_op("vip", std::move(e)));
    }
    // Populate a subset of the 64 consistent-hash buckets with backend
    // addresses; flows hashing into unpopulated buckets hit the drop path.
    const std::uint64_t populated = rng.next_range(10, 24);
    for (std::uint64_t i = 0; i < populated; ++i) {
        s.config.push_back(register_op(
            "backend_map", rng.next_below(64),
            Bitvec(32, 0x0a000100u +
                           static_cast<std::uint32_t>(rng.next_range(1, 250)))));
    }
    s.spec.count = rng.next_range(8, 16);
    s.spec.tmpl.base = scenario::ipv4_udp_packet();
    // Random source port: each packet is its own 5-tuple, spreading flows
    // across the bucket space.
    s.spec.tmpl.mutations.push_back(
        mutation(kUdpSrcPortBit, 16, FieldMutation::Mode::random, 0));
    if (rng.next_bool(0.3)) {
        s.spec.tmpl.mutations.push_back(
            mutation(kIpv4SrcBit + 24, 8, FieldMutation::Mode::sweep, 1, 1, 3));
    }
}

void build_learning_bridge(Rng& rng, Scenario& s) {
    // Source and destination MACs cycle with co-prime periods, so over the
    // stream every (src, dst) pairing occurs: stations are learned, later
    // addressed (forward on the learned port), and unknown destinations
    // flood.  No control-plane config: the MAC table is pure datapath state.
    const std::uint64_t talkers = rng.next_range(3, 4);
    s.spec.count = rng.next_range(12, 20);
    s.spec.tmpl.base = scenario::ipv4_udp_packet();
    s.spec.tmpl.mutations.push_back(mutation(
        kEthSrcBit + 40, 8, FieldMutation::Mode::sweep, 1, 1, talkers));
    s.spec.tmpl.mutations.push_back(mutation(
        kEthDstBit + 40, 8, FieldMutation::Mode::sweep, 1, 1, talkers + 1));
}

}  // namespace

std::vector<std::string> SpecGenerator::default_programs() {
    // The whole catalogue: ConfigOp::configure_meter gives metered_policer
    // a meaningful rate configuration, so it fuzzes like everything else.
    // New samples join the sweep automatically (programs without a tailored
    // plan get the passthrough-style mutation plan).
    return p4::programs::sample_names();
}

SpecGenerator::SpecGenerator(std::vector<std::string> programs)
    : programs_(programs.empty() ? default_programs() : std::move(programs)) {
    compiled_.reserve(programs_.size());
    for (const auto& name : programs_) {
        const std::string_view source = p4::programs::sample_by_name(name);
        if (source.empty()) {
            throw std::invalid_argument("specgen: unknown catalogue program '" +
                                        name + "'");
        }
        compiled_.push_back(scenario::compile(source, name));
    }
}

Scenario SpecGenerator::make(std::uint64_t seed) const {
    Rng rng(seed);
    const std::size_t which = rng.next_below(programs_.size());
    return build(rng, which, seed);
}

Scenario SpecGenerator::make_for(std::size_t program_index,
                                 std::uint64_t seed) const {
    if (program_index >= programs_.size()) {
        throw std::invalid_argument("specgen: program index out of range");
    }
    Rng rng(seed);
    // One draw replaces the program pick; next_below(1) in a single-program
    // generator also consumes exactly one, so the streams line up and the
    // (program, seed) pair replays identically through make().
    rng.next_u64();
    return build(rng, program_index, seed);
}

Scenario SpecGenerator::build(Rng& rng, std::size_t which,
                              std::uint64_t seed) const {
    Scenario s;
    s.seed = seed;
    s.program = programs_[which];
    s.compiled = compiled_[which];
    s.spec.name = util::format("%s#%llu", s.program.c_str(),
                               static_cast<unsigned long long>(seed));
    s.spec.inject_port = static_cast<std::uint32_t>(rng.next_range(0, 3));
    s.spec.count = rng.next_range(4, 12);
    s.spec.tmpl.seed = rng.next_u64();

    if (s.program == "passthrough") build_passthrough(rng, s);
    else if (s.program == "l2_switch") build_l2_switch(rng, s);
    else if (s.program == "ipv4_router") build_ipv4_router(rng, s);
    else if (s.program == "reject_filter") build_reject_filter(rng, s);
    else if (s.program == "acl_firewall") build_acl_firewall(rng, s);
    else if (s.program == "tunnel") build_tunnel(rng, s);
    else if (s.program == "deep_parser") build_deep_parser(rng, s);
    else if (s.program == "stats_monitor") build_stats_monitor(rng, s);
    else if (s.program == "wide_match") build_wide_match(rng, s);
    else if (s.program == "variant_a" || s.program == "variant_b") build_variant(rng, s);
    else if (s.program == "shift_mangler") build_shift_mangler(rng, s);
    else if (s.program == "metered_policer") build_metered_policer(rng, s);
    else if (s.program == "meta_echo") build_meta_echo(rng, s);
    else if (s.program == "nat_gateway") build_nat_gateway(rng, s);
    else if (s.program == "flow_firewall") build_flow_firewall(rng, s);
    else if (s.program == "maglev_lb") build_maglev_lb(rng, s);
    else if (s.program == "learning_bridge") build_learning_bridge(rng, s);
    else build_passthrough(rng, s);  // catalogue entry without a tailored plan

    return s;
}

}  // namespace ndb::core
