// Fault localization via internal stage taps.
//
// "If a bug prevents packets from being correctly forwarded ... users can
// find where the fault occurred, even inside the data plane" (paper,
// Section 2).  The localizer replays a stimulus through the device under
// test and a golden reference, compares the tap snapshots stage by stage,
// and names the first diverging stage.  Two probe strategies model the
// hardware cost of arming taps: linear scan and binary search (the
// ablation measured by bench/xloc_localization).
#pragma once

#include <optional>
#include <string>

#include "dataplane/pipeline.h"
#include "packet/packet.h"
#include "target/device.h"

namespace ndb::core {

struct LocalizeResult {
    bool diverged = false;
    dataplane::Stage stage = dataplane::Stage::parser;
    std::string description;
    int probes = 0;              // tap-arm/replay rounds
    std::uint64_t packets_replayed = 0;

    // False when no probe captured tap records on both devices (e.g. a tap
    // ring is disabled): the comparison saw nothing, so a non-diverged
    // result is NOT a clean bill of health.
    bool conclusive = false;

    std::string to_string() const;
};

class FaultLocalizer {
public:
    // Both devices must run the same source program (the backends may
    // differ; header layouts are identical by construction).
    // `trigger_period`: replay this many packets per probe so that
    // every-Nth faults fire at least once.
    //
    // Probing restores each device's taps-enabled flag on exit, but the
    // tap RINGS are working storage: any records the caller collected
    // before localization are cleared by the replays.
    FaultLocalizer(target::Device& dut, target::Device& golden,
                   std::uint64_t trigger_period = 1);

    // Probe every stage front to back.
    LocalizeResult localize_linear(const packet::Packet& stimulus);

    // Binary search over the tap points (fewer armed-tap rounds).
    LocalizeResult localize_binary(const packet::Packet& stimulus);

private:
    // Replays the stimulus on both devices and reports whether the states
    // at `stage` differ (or the packet already vanished on the DUT).
    // Marks `accounting.conclusive` once a replay produced tap records on
    // both devices, i.e. the comparison actually saw something.
    std::optional<std::string> probe(dataplane::Stage stage,
                                     const packet::Packet& stimulus,
                                     LocalizeResult& accounting);

    target::Device& dut_;
    target::Device& golden_;
    std::uint64_t trigger_period_;
};

}  // namespace ndb::core
