#include "core/fabric.h"

#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "control/transport.h"
#include "control/wire.h"
#include "core/scenario_exec.h"
#include "obs/telemetry.h"
#include "util/strings.h"

namespace ndb::core {
namespace {

namespace wire = control::wire;
using Clock = std::chrono::steady_clock;

// --- outcome serialization ----------------------------------------------------
//
// A job_result payload carries the shard's ScenarioOutcomes: everything the
// parent's ReportBuilder needs to fold findings exactly as the in-process
// engine would.  duplicates/discovered_at are fold outputs, not worker
// observations, so they do not cross the wire.

void write_localize(wire::Writer& w, const LocalizeResult& l) {
    w.u8(l.diverged ? 1 : 0);
    w.u8(static_cast<std::uint8_t>(l.stage));
    w.str(l.description);
    w.i32(l.probes);
    w.u64(l.packets_replayed);
    w.u8(l.conclusive ? 1 : 0);
}

bool read_localize(wire::Reader& r, LocalizeResult& out) {
    std::uint8_t diverged = 0;
    std::uint8_t stage = 0;
    std::uint8_t conclusive = 0;
    r.u8(diverged);
    r.u8(stage);
    r.str(out.description);
    r.i32(out.probes);
    r.u64(out.packets_replayed);
    if (!r.u8(conclusive)) return false;
    out.diverged = diverged != 0;
    out.stage = static_cast<dataplane::Stage>(stage);
    out.conclusive = conclusive != 0;
    return true;
}

void write_record(wire::Writer& w, const DivergenceRecord& rec) {
    w.u64(rec.seed);
    w.str(rec.backend);
    w.str(rec.program);
    w.str(rec.quirk_signature);
    w.str(rec.kind);
    w.str(rec.detail);
    w.u64(rec.first_diverging_packet);
    w.u64(rec.minimized_count);
    w.u8(rec.minimized_reproduces ? 1 : 0);
    write_localize(w, rec.localized);
    w.str(rec.recipe);
    w.str(rec.fingerprint);
}

bool read_record(wire::Reader& r, DivergenceRecord& out) {
    std::uint8_t reproduces = 0;
    r.u64(out.seed);
    r.str(out.backend);
    r.str(out.program);
    r.str(out.quirk_signature);
    r.str(out.kind);
    r.str(out.detail);
    r.u64(out.first_diverging_packet);
    r.u64(out.minimized_count);
    if (!r.u8(reproduces)) return false;
    out.minimized_reproduces = reproduces != 0;
    if (!read_localize(r, out.localized)) return false;
    r.str(out.recipe);
    return r.str(out.fingerprint);
}

void write_outcome(wire::Writer& w, const ScenarioOutcome& o) {
    w.u64(o.packets);
    w.u64(o.mgmt.requests);
    w.u64(o.mgmt.frames_sent);
    w.u64(o.mgmt.retries);
    w.u64(o.mgmt.timeouts);
    w.u64(o.mgmt.decode_errors);
    w.u64(o.mgmt.faults_injected);
    w.u64(o.mgmt.dedup_hits);
    w.u32(static_cast<std::uint32_t>(o.findings.size()));
    for (const auto& rec : o.findings) write_record(w, rec);
}

bool read_outcome(wire::Reader& r, ScenarioOutcome& out) {
    r.u64(out.packets);
    r.u64(out.mgmt.requests);
    r.u64(out.mgmt.frames_sent);
    r.u64(out.mgmt.retries);
    r.u64(out.mgmt.timeouts);
    r.u64(out.mgmt.decode_errors);
    r.u64(out.mgmt.faults_injected);
    std::uint32_t findings = 0;
    if (!r.u64(out.mgmt.dedup_hits) || !r.count(findings)) return false;
    out.findings.resize(findings);
    for (auto& rec : out.findings) {
        if (!read_record(r, rec)) return false;
    }
    return r.ok();
}

// --- worker process -----------------------------------------------------------

// Event loop of one forked worker: answer heartbeats, execute job shards
// through the shared execute_scenario() core, stream results back.  Exits
// via _Exit (never returns into the parent's stack): the forked child must
// not run the parent's atexit/static-destructor chain.
[[noreturn]] void worker_main(int fd, const FabricConfig& cfg,
                              const std::vector<BackendSpec>& duts,
                              const ExecOptions& exec,
                              const control::FaultPlan& link_plan,
                              std::uint64_t link_salt) {
    try {
        // Telemetry enable flags and the trace epoch were inherited across
        // the fork; zero the inherited samples so this worker's deltas
        // cover only what it records itself.
        if (obs::Telemetry::any_enabled()) obs::Telemetry::reset();
        control::FdTransport transport(fd);
        control::FaultInjector out(link_plan, link_salt);
        wire::FrameReader reader;
        const SpecGenerator gen(cfg.campaign.programs);
        std::unique_ptr<WorkerContext> ctx;
        // Injector decisions already reported to the parent (each result
        // frame carries the delta, so the parent can aggregate link faults
        // it never directly observed).
        std::uint64_t faults_reported = 0;

        const auto pump = [&] {
            std::vector<std::vector<std::uint8_t>> due;
            out.tick(due);
            for (const auto& chunk : due) transport.send(chunk);
        };
        const auto send_frame = [&](const wire::Frame& f) {
            out.send(wire::encode_frame(f));
            pump();
        };

        for (;;) {
            transport.tick();  // ~1ms poll
            std::vector<std::uint8_t> rx;
            if (transport.receive(rx)) reader.feed(rx);
            if (!transport.alive()) std::_Exit(0);  // parent is gone
            pump();  // delayed frames drain even while idle

            wire::Frame frame;
            while (reader.next(frame)) {
                switch (frame.kind) {
                    case wire::FrameKind::heartbeat: {
                        // The ack doubles as the telemetry ship: its payload
                        // is the delta since the last ack (empty payload =
                        // nothing new).  It rides the injected link, so a
                        // dropped ack loses that delta -- acceptable for
                        // observe-only cargo.
                        wire::Frame ack;
                        ack.kind = wire::FrameKind::heartbeat_ack;
                        ack.seq = frame.seq;
                        if (obs::Telemetry::any_enabled()) {
                            const obs::TelemetryDelta delta =
                                obs::Telemetry::take_delta();
                            if (!delta.empty()) {
                                ack.payload = obs::Telemetry::encode_delta(delta);
                            }
                        }
                        send_frame(ack);
                        break;
                    }
                    case wire::FrameKind::shutdown:
                        // Last telemetry delta goes out on the raw transport:
                        // like the shutdown frame itself, teardown
                        // housekeeping bypasses fault injection.
                        if (obs::Telemetry::any_enabled()) {
                            const obs::TelemetryDelta delta =
                                obs::Telemetry::take_delta();
                            if (!delta.empty()) {
                                wire::Frame fin;
                                fin.kind = wire::FrameKind::heartbeat_ack;
                                fin.seq = frame.seq;
                                fin.payload = obs::Telemetry::encode_delta(delta);
                                transport.send(wire::encode_frame(fin));
                            }
                        }
                        std::_Exit(0);
                    case wire::FrameKind::job: {
                        wire::Reader r(frame.payload);
                        std::uint64_t start = 0;
                        std::uint32_t count = 0;
                        // A malformed job is dropped; the parent's
                        // retransmit path recovers it.
                        if (!r.u64(start) || !r.u32(count) || !r.done()) break;
                        if (!ctx) {
                            ctx = std::make_unique<WorkerContext>(
                                cfg.campaign.reference_backend, duts,
                                cfg.campaign.engine);
                        }
                        wire::Writer w;
                        w.u64(frame.seq);  // shard id
                        w.u64(out.faults() - faults_reported);
                        faults_reported = out.faults();
                        w.u32(count);
                        for (std::uint32_t k = 0; k < count; ++k) {
                            const Scenario sc =
                                gen.make(cfg.campaign.base_seed + start + k);
                            ScenarioOutcome outcome;
                            execute_scenario(*ctx, sc, duts, exec, outcome,
                                             std::string());
                            write_outcome(w, outcome);
                        }
                        wire::Frame res;
                        res.kind = wire::FrameKind::job_result;
                        res.seq = frame.seq;
                        res.payload = w.take();
                        send_frame(res);
                        break;
                    }
                    default:
                        break;  // not worker-bound traffic; ignore
                }
            }
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "ndb fabric worker: %s\n", e.what());
        std::_Exit(2);
    } catch (...) {
        std::_Exit(2);
    }
}

// --- parent-side bookkeeping --------------------------------------------------

struct Shard {
    std::uint64_t id = 0;     // ordinal; doubles as the job frame seq
    std::uint64_t start = 0;  // first scenario index
    std::uint32_t count = 0;
};

struct WorkerSlot {
    pid_t pid = -1;
    std::unique_ptr<control::FdTransport> transport;
    wire::FrameReader reader;
    control::FaultInjector out;
    std::optional<Shard> inflight;
    Clock::time_point job_sent{};
    Clock::time_point last_frame{};  // any well-formed frame received
    Clock::time_point last_ack{};    // heartbeat_ack specifically
    Clock::time_point last_hb{};     // heartbeat emitted
    int restarts = 0;                // respawn generation
};

}  // namespace

FabricEngine::FabricEngine(FabricConfig config)
    : config_(std::move(config)) {}

CampaignReport FabricEngine::run() {
    CampaignConfig& cc = config_.campaign;

    if (config_.workers < 1 || config_.workers > 64) {
        throw std::invalid_argument("fabric: workers must be in [1, 64]");
    }
    if (config_.shard_size < 1 ||
        config_.shard_size > wire::kMaxSequenceItems) {
        throw std::invalid_argument(util::format(
            "fabric: shard size must be in [1, %zu]", wire::kMaxSequenceItems));
    }
    if (cc.coverage || cc.mutate || cc.concolic || !cc.mutation_recipe.empty()) {
        throw std::invalid_argument(
            "fabric: only the uniform sweep shards across processes "
            "(coverage/mutation/concolic modes keep their feedback loops at "
            "round barriers inside one process)");
    }

    const std::vector<BackendSpec> duts = resolve_duts(cc);
    const SpecGenerator gen(cc.programs);

    ExecOptions exec;
    exec.batch_size = cc.batch_size;
    exec.minimize = cc.minimize;
    exec.localize = cc.localize;
    exec.coverage = false;
    // Both plans parse up front, before any fork: a malformed spec must be
    // a clean invalid_argument, not a worker crash loop.
    exec.mgmt.plan = control::FaultPlan::parse(cc.mgmt_fault_plan);
    exec.mgmt.enabled = exec.mgmt.plan.enabled();
    const control::FaultPlan link_plan =
        control::FaultPlan::parse(config_.link_fault_plan);

    CampaignReport report;
    report.base_seed = cc.base_seed;
    report.scenarios = cc.scenarios;
    report.programs = gen.programs();
    report.engine = dataplane::engine_name(cc.engine);
    for (const auto& d : duts) report.backends.push_back(d.label);
    report.mgmt_enabled = exec.mgmt.enabled;
    report.fabric_enabled = true;
    report.fabric.workers = static_cast<std::uint64_t>(config_.workers);
    if (obs::metrics_on()) {
        obs::Metrics::instance().gauge_set(obs::Gauge::fabric_workers,
                                           config_.workers);
    }

    // The shard plan: fixed up front, so a shard id names the same scenario
    // range no matter which worker (or respawn generation) runs it.
    std::deque<Shard> pending;
    const std::uint64_t total_shards =
        (cc.scenarios + config_.shard_size - 1) / config_.shard_size;
    for (std::uint64_t sid = 0; sid < total_shards; ++sid) {
        const std::uint64_t start = sid * config_.shard_size;
        pending.push_back(
            {sid, start,
             static_cast<std::uint32_t>(std::min<std::uint64_t>(
                 config_.shard_size, cc.scenarios - start))});
    }
    std::vector<std::unique_ptr<ScenarioOutcome>> outcomes(cc.scenarios);
    std::vector<bool> shard_done(total_shards, false);
    std::uint64_t shards_left = total_shards;
    std::uint64_t results_received = 0;
    std::uint64_t hb_seq = 0;
    bool kill_fired = false;

    const auto hb_interval =
        std::chrono::milliseconds(config_.heartbeat_interval_ms);
    const auto hb_timeout =
        std::chrono::milliseconds(config_.heartbeat_timeout_ms);
    const auto resend_after = std::chrono::milliseconds(config_.job_resend_ms);

    std::vector<WorkerSlot> slots(static_cast<std::size_t>(config_.workers));

    // Link-layer accounting survives a slot's respawn by folding the dying
    // incarnation's reader/injector stats into the report first.
    const auto retire_link = [&](WorkerSlot& s) {
        report.fabric.link_frames += s.reader.stats().frames;
        report.fabric.link_corrupt += s.reader.stats().corrupt_frames;
        report.fabric.link_faults += s.out.faults();
    };

    const auto spawn = [&](std::size_t slot_index) {
        int sv[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
            throw std::runtime_error("fabric: socketpair failed");
        }
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(sv[0]);
            ::close(sv[1]);
            throw std::runtime_error("fabric: fork failed");
        }
        WorkerSlot& s = slots[slot_index];
        if (pid == 0) {
            // Child: drop every parent-side fd, ours included -- a sibling
            // holding a dead worker's socket open would mask its death.
            ::close(sv[0]);
            for (auto& other : slots) {
                if (other.transport) other.transport->close();
            }
            // Salt by slot and respawn generation: a respawned worker must
            // not replay its predecessor's exact fault schedule, or a
            // deterministically-dropped result frame could live-lock the
            // shard into the restart cap.
            const std::uint64_t salt =
                util::fnv1a_64("ndb.fabric.worker") ^
                (slot_index + 1) * 0x9e3779b97f4a7c15ull ^
                static_cast<std::uint64_t>(s.restarts) * 0xc2b2ae3d27d4eb4full;
            worker_main(sv[1], config_, duts, exec, link_plan, salt);
        }
        ::close(sv[1]);
        if (obs::metrics_on()) obs::count(obs::Counter::worker_spawns);
        if (obs::trace_on()) {
            obs::trace_instant(s.restarts > 0 ? "worker_respawn" : "worker_spawn",
                               "slot", slot_index,
                               "pid", static_cast<std::uint64_t>(pid));
        }
        s.pid = pid;
        s.transport = std::make_unique<control::FdTransport>(sv[0]);
        s.reader = wire::FrameReader();
        s.out = control::FaultInjector(
            link_plan, util::fnv1a_64("ndb.fabric.parent") ^
                           (slot_index + 1) * 0x9e3779b97f4a7c15ull ^
                           static_cast<std::uint64_t>(s.restarts) *
                               0xc2b2ae3d27d4eb4full);
        s.inflight.reset();
        const auto now = Clock::now();
        s.job_sent = s.last_frame = s.last_ack = s.last_hb = now;
    };

    const auto send_frame = [&](WorkerSlot& s, const wire::Frame& f) {
        s.out.send(wire::encode_frame(f));
    };
    // Heartbeat acks carry the worker's telemetry delta as payload; fold it
    // into the parent's imported accumulators (a bad payload is dropped
    // whole -- telemetry never poisons the run).
    const auto import_telemetry = [](const wire::Frame& frame) {
        if (frame.payload.empty() || !obs::Telemetry::any_enabled()) return;
        obs::TelemetryDelta delta;
        if (obs::Telemetry::decode_delta(frame.payload, delta)) {
            obs::Telemetry::import_delta(std::move(delta));
        }
    };
    const auto send_job = [&](WorkerSlot& s) {
        wire::Frame job;
        job.kind = wire::FrameKind::job;
        job.seq = s.inflight->id;
        wire::Writer w;
        w.u64(s.inflight->start);
        w.u32(s.inflight->count);
        job.payload = w.take();
        send_frame(s, job);
        s.job_sent = Clock::now();
    };

    const auto handle_result = [&](WorkerSlot& s, const wire::Frame& frame) {
        wire::Reader r(frame.payload);
        std::uint64_t shard_id = 0;
        std::uint64_t faults_delta = 0;
        std::uint32_t count = 0;
        if (!r.u64(shard_id) || !r.u64(faults_delta) || !r.count(count)) return;
        if (shard_id >= total_shards) return;
        const std::uint64_t start = shard_id * config_.shard_size;
        const auto expected = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(config_.shard_size, cc.scenarios - start));
        if (count != expected) return;
        // Decode the whole payload before committing anything: a result
        // that goes bad half-way is treated as lost, not half-applied.
        std::vector<ScenarioOutcome> decoded(count);
        for (auto& o : decoded) {
            if (!read_outcome(r, o)) return;
        }
        if (!r.done()) return;

        report.fabric.link_faults += faults_delta;
        ++results_received;
        if (s.inflight && s.inflight->id == shard_id) s.inflight.reset();
        // A retransmitted job or a re-dispatched shard can complete twice;
        // first result wins, duplicates are dropped whole.
        if (shard_done[shard_id]) return;
        shard_done[shard_id] = true;
        --shards_left;
        for (std::uint32_t k = 0; k < count; ++k) {
            outcomes[start + k] =
                std::make_unique<ScenarioOutcome>(std::move(decoded[k]));
        }
    };

    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < slots.size(); ++i) spawn(i);

    while (shards_left > 0) {
        const auto now = Clock::now();
        for (auto& s : slots) {
            if (!s.inflight && !pending.empty()) {
                s.inflight = pending.front();
                pending.pop_front();
                send_job(s);
            }
            if (now - s.last_hb >= hb_interval) {
                send_frame(s, {wire::FrameKind::heartbeat, ++hb_seq, {}});
                s.last_hb = now;
            }
            // The worker answered a heartbeat sent after its job went out,
            // yet no result: it is alive and idle, so the job or the result
            // frame died on the link -- retransmit (execution is safe to
            // repeat; shard dedup keeps the first result).
            if (s.inflight && s.last_ack > s.job_sent &&
                now - s.job_sent >= resend_after) {
                ++report.fabric.jobs_resent;
                send_job(s);
            }
            // Flush injector-held frames, then collect inbound traffic.
            std::vector<std::vector<std::uint8_t>> due;
            s.out.tick(due);
            for (const auto& chunk : due) s.transport->send(chunk);
            s.transport->tick();
            std::vector<std::uint8_t> rx;
            if (s.transport->receive(rx)) s.reader.feed(rx);
            wire::Frame frame;
            while (s.reader.next(frame)) {
                s.last_frame = now;
                if (frame.kind == wire::FrameKind::heartbeat_ack) {
                    s.last_ack = now;
                    import_telemetry(frame);
                } else if (frame.kind == wire::FrameKind::job_result) {
                    handle_result(s, frame);
                }
            }
        }

        if (!kill_fired && config_.kill_worker_after_results >= 0 &&
            results_received >=
                static_cast<std::uint64_t>(config_.kill_worker_after_results)) {
            kill_fired = true;
            if (slots[0].pid > 0) ::kill(slots[0].pid, SIGKILL);
        }

        // Watchdog: a slot is dead when its process was reaped, its stream
        // closed, or it sat silent past the heartbeat timeout with a shard
        // in flight (hung).  Death costs a respawn and a shard re-dispatch,
        // never a lost scenario.
        for (std::size_t i = 0; i < slots.size(); ++i) {
            WorkerSlot& s = slots[i];
            bool dead = false;
            if (s.pid > 0 && ::waitpid(s.pid, nullptr, WNOHANG) == s.pid) {
                s.pid = -1;
                dead = true;
            }
            if (!dead && !s.transport->alive()) dead = true;
            if (!dead && s.inflight && now - s.last_frame > hb_timeout) {
                dead = true;
            }
            if (!dead) continue;
            if (s.pid > 0) {
                ::kill(s.pid, SIGKILL);
                ::waitpid(s.pid, nullptr, 0);
                s.pid = -1;
            }
            retire_link(s);
            ++report.fabric.worker_restarts;
            if (obs::metrics_on()) obs::count(obs::Counter::worker_restarts);
            if (obs::trace_on()) {
                obs::trace_instant("worker_kill", "slot", i, "restarts",
                                   static_cast<std::uint64_t>(s.restarts));
            }
            if (s.inflight) {
                pending.push_front(*s.inflight);
                s.inflight.reset();
                ++report.fabric.shards_redispatched;
            }
            if (++s.restarts > config_.max_restarts_per_worker) {
                throw std::runtime_error(util::format(
                    "fabric: worker slot %zu died %d times; a worker that "
                    "keeps dying is failing deterministically, not crashing "
                    "by injection",
                    i, s.restarts));
            }
            spawn(i);
        }
    }

    // Orderly teardown: shutdown frames bypass the fault injector (this is
    // housekeeping, not the experiment), stragglers get SIGKILL.
    for (auto& s : slots) {
        if (s.pid <= 0) continue;
        wire::Frame bye;
        bye.kind = wire::FrameKind::shutdown;
        s.transport->send(wire::encode_frame(bye));
    }
    // Each worker's final telemetry delta lands on its link right before
    // exit; pump the transport while waiting to reap (no-op when telemetry
    // is off, so the untelemetered teardown is unchanged).
    const auto drain_telemetry = [&](WorkerSlot& s) {
        if (!s.transport || !obs::Telemetry::any_enabled()) return;
        s.transport->tick();
        std::vector<std::uint8_t> rx;
        if (s.transport->receive(rx)) s.reader.feed(rx);
        wire::Frame frame;
        while (s.reader.next(frame)) {
            if (frame.kind == wire::FrameKind::heartbeat_ack) {
                import_telemetry(frame);
            }
        }
    };
    for (auto& s : slots) {
        if (s.pid > 0) {
            bool reaped = false;
            for (int i = 0; i < 250 && !reaped; ++i) {
                drain_telemetry(s);
                if (::waitpid(s.pid, nullptr, WNOHANG) == s.pid) {
                    reaped = true;
                } else {
                    std::this_thread::sleep_for(std::chrono::milliseconds(2));
                }
            }
            if (!reaped) {
                ::kill(s.pid, SIGKILL);
                ::waitpid(s.pid, nullptr, 0);
            }
            s.pid = -1;
        }
        drain_telemetry(s);
        retire_link(s);
        s.transport.reset();
    }

    // Fold in scenario-index order -- the exact order the single-process
    // uniform sweep folds -- so the report comes out byte-identical.
    ReportBuilder builder(report);
    for (std::uint64_t i = 0; i < cc.scenarios; ++i) {
        if (!outcomes[i]) {
            throw std::runtime_error(
                util::format("fabric: scenario %llu completed no outcome",
                             static_cast<unsigned long long>(i)));
        }
        builder.fold(*outcomes[i]);
    }

    const auto t1 = Clock::now();
    stats_.wall_seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
            .count();
    if (stats_.wall_seconds > 0) {
        stats_.scenarios_per_sec =
            static_cast<double>(cc.scenarios) / stats_.wall_seconds;
        stats_.packets_per_sec =
            static_cast<double>(report.packets_injected) / stats_.wall_seconds;
    }
    return report;
}

}  // namespace ndb::core
