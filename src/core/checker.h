// Output packet checker: the second of NetDebug's in-device modules.
//
// A streaming, constant-memory verifier: every output packet is checked
// against the spec's expectations the moment it leaves the pipeline, which
// is what lets the hardware version run at line rate.  Aggregate
// expectations (drop-all, delivery fraction, sequence continuity) are
// settled in finalize().  Optionally each packet also traverses a P4
// checker program; a drop by that program flags a violation, so the checks
// themselves are programmable in P4 as the paper requires.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/testspec.h"
#include "dataplane/pipeline.h"
#include "dataplane/stateful.h"
#include "dataplane/tables.h"
#include "util/stats.h"

namespace ndb::core {

struct RuleStats {
    std::string description;
    std::uint64_t checked = 0;
    std::uint64_t violations = 0;
};

struct FailureSample {
    std::uint64_t seq = 0;
    std::uint32_t port = 0;
    std::string reason;
};

struct CheckReport {
    std::uint64_t observed = 0;
    std::uint64_t violations = 0;        // total across rules
    std::vector<RuleStats> rules;
    std::vector<FailureSample> samples;  // bounded
    util::LatencyHistogram latency_ns;
    std::uint64_t seq_gaps = 0;
    std::uint64_t seq_dups_or_reorder = 0;
    bool passed = false;

    std::string to_string() const;
};

class OutputPacketChecker {
public:
    explicit OutputPacketChecker(const TestSpec& spec,
                                 std::size_t max_failure_samples = 16);
    ~OutputPacketChecker();

    // Streaming observation of one output packet on `port`.
    void observe(const packet::Packet& pkt, std::uint32_t port);

    // Settles aggregate expectations given how many packets were injected.
    CheckReport finalize(std::uint64_t injected_count);

private:
    void record_violation(std::size_t rule, const packet::Packet& pkt,
                          std::uint32_t port, std::string reason);

    const TestSpec& spec_;
    std::size_t max_samples_;
    CheckReport report_;

    std::uint64_t next_expected_seq_ = 1;
    std::uint64_t max_seq_seen_ = 0;

    // P4 checker program state.
    std::unique_ptr<dataplane::TableSet> chk_tables_;
    std::unique_ptr<dataplane::StatefulSet> chk_stateful_;
    std::unique_ptr<dataplane::Pipeline> chk_pipeline_;
    std::size_t p4_rule_index_ = static_cast<std::size_t>(-1);
};

}  // namespace ndb::core
