// Differential fuzzing campaign engine.
//
// Turns the one-spec/one-backend validation loop into a throughput-oriented
// sweep (FP4-style greybox fuzzing, arXiv:2207.13147): seeded scenarios from
// SpecGenerator run on the reference backend and on every DUT backend, the
// reference's behaviour is the ground truth, and any observable difference
// (output stream, internal status counters, control-plane acceptance) is a
// divergence.  Scenarios shard across a worker-thread pool -- each worker
// owns its own device instances and injects/drains in batches -- and every
// divergence is triaged: minimized to the shortest reproducing packet
// prefix, replayed through FaultLocalizer to name the first diverging
// stage, and deduplicated by (backend, quirk-signature, stage) fingerprint.
//
// Determinism contract: CampaignReport (including its JSON form) depends
// only on the config, never on thread count or timing.  Wall-clock derived
// rates live in CampaignStats, which the ndb_campaign CLI writes to
// BENCH_campaign.json.
//
// Coverage-guided mode (config.coverage): instead of the uniform sweep,
// scenarios are scheduled in deterministic rounds by a
// coverage::CorpusScheduler -- programs whose recent scenarios lit fresh
// coverage edges (reference-device CoverageMap) or produced fresh
// divergence fingerprints earn more of the next round's budget.  Rounds
// are planned from config + already-merged feedback only, and feedback is
// merged in scenario order at a round barrier, so the report (coverage
// series included) keeps the byte-identical-across-thread-counts contract.
//
// Mutation mode (config.mutate, implies coverage): the full greybox loop.
// Interesting scenarios -- fresh coverage edges or a fresh fingerprint --
// are retained in a ScenarioCorpus (optionally preloaded from `.corpus`
// recipes), and subsequent rounds draw a scheduler-controlled mix of fresh
// seeds and splice/havoc mutants over that corpus (src/core/mutate.h).
// Coverage feedback now includes per-backend-salted *DUT* edge maps, so
// quirk-divergent paths -- not just reference-side novelty -- earn energy.
// Every divergence records its parentage: a bare seed for fresh scenarios,
// an encoded mutation recipe (replayable via config.mutation_recipe) for
// mutants.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/localize.h"
#include "core/specgen.h"
#include "dataplane/engine.h"
#include "dataplane/quirks.h"

namespace ndb::coverage {
class CoverageMap;
}  // namespace ndb::coverage

namespace ndb::core {

// One backend in the sweep, instantiated per worker via the target registry.
struct BackendSpec {
    std::string name;                              // registry name
    std::optional<dataplane::Quirks> quirks;       // override; nullopt = catalogue
    std::string label;                             // report key; defaults to name
};

struct CampaignConfig {
    std::uint64_t base_seed = 1;
    std::uint64_t scenarios = 64;
    int threads = 1;
    // Packets injected per inject/drain round-trip: the hot loop touches the
    // egress queues once per batch instead of once per packet.
    std::size_t batch_size = 8;
    // Catalogue programs to sweep; empty = SpecGenerator::default_programs().
    std::vector<std::string> programs;
    // DUT backends; empty = every registered backend except the reference.
    std::vector<BackendSpec> duts;
    std::string reference_backend = "reference";
    bool localize = true;  // replay divergences through FaultLocalizer
    bool minimize = true;  // reduce to the shortest reproducing prefix

    // Execution engine applied to every device (reference and DUTs).  The
    // report is byte-identical across engines apart from its provenance
    // field; the compiled engine is simply faster.
    dataplane::Engine engine = dataplane::default_engine();

    // Coverage-guided adaptive seed scheduling (see file header).  Off by
    // default: the uniform sweep remains the corpus-replay contract.
    bool coverage = false;

    // Greybox mutation over the stored corpus (src/core/mutate.h).  Implies
    // coverage: guided rounds draw a scheduler-controlled mix of fresh
    // seeds and corpus mutants (splice/havoc recipes over retained
    // scenarios), planned at round barriers so the report keeps the
    // byte-identical-across-thread-counts contract.
    bool mutate = false;
    // Probability that a slot whose program already has corpus entries is
    // drawn as a mutant instead of a fresh seed.
    double mutation_rate = 0.5;
    // Directory of .corpus recipes preloaded into the mutation corpus
    // (empty = the corpus grows from this run's own retained scenarios).
    std::string corpus_dir;
    // Single-scenario replay of one encoded recipe: when non-empty the
    // engine runs exactly that scenario (`scenarios` is ignored).  A '#'
    // head parses as a MutationRecipe, an '@' head as a ConcolicRecipe --
    // this is how a mutated or synthesized divergence replays through the
    // ordinary detection path.
    std::string mutation_recipe;

    // Concolic seed synthesis (src/verify/concolic.h; implies coverage).
    // At every guided round barrier the engine maps the reference device's
    // never-lit coverage slots back to IR sites (coverage::EdgeIndex), asks
    // the symbolic layer to solve a packet + default-action programming
    // reaching each, verifies that every solved seed actually lights its
    // target slot on an interpreter-engine reference device, and schedules
    // the survivors ahead of the next round's plan as high-energy corpus
    // entries.  Synthesis consumes only barrier-merged state, so the report
    // keeps the byte-identical-across-thread-counts contract.
    bool concolic = false;
    // Dark sites attempted per round barrier (bounds solver time per round).
    std::uint64_t concolic_per_round = 8;

    // When set, receives a copy of the final merged coverage map (guided
    // and single-recipe-replay modes; the uniform sweep has no map).  Not
    // owned; must outlive run().
    coverage::CoverageMap* coverage_map_out = nullptr;

    // Management-plane fault injection (control::FaultPlan spec string;
    // empty or "none" = clean).  When set, every DUT's configuration is
    // delivered through a fault-injected wire channel while the reference's
    // stays clean -- a config op that exhausts its retry budget surfaces as
    // a "mgmt" divergence, a new class the data path cannot produce.  The
    // per-run schedule is a pure function of (plan seed, program, scenario
    // seed, DUT index), so reports keep the determinism contract.
    std::string mgmt_fault_plan;
};

// The per-DUT backend list with defaults applied: empty `duts` expands to
// every registered backend except the reference, and empty labels default
// to the backend name.  Shared by CampaignEngine and FabricEngine so both
// sweep the identical backend set in the identical order.
std::vector<BackendSpec> resolve_duts(const CampaignConfig& config);

struct DivergenceRecord {
    std::uint64_t seed = 0;
    std::string backend;   // BackendSpec label
    std::string program;
    std::string quirk_signature;
    std::string kind;  // "output"|"snapshot"|"config"|"internal"|"mgmt"|"state"
    std::string detail;    // first observed difference, human-readable

    // Triage results.
    std::uint64_t first_diverging_packet = 0;  // 1-based seq; 0 = unknown
    std::uint64_t minimized_count = 0;         // shortest reproducing prefix
    bool minimized_reproduces = false;
    LocalizeResult localized;

    // Parentage: empty for a fresh seed (the seed field alone replays it),
    // otherwise the encoded MutationRecipe whose replay -- through
    // CampaignConfig::mutation_recipe -- reproduces this divergence.
    std::string recipe;

    // backend|quirk-signature|first-diverging-stage: the dedup key.
    std::string fingerprint;
    std::uint64_t duplicates = 0;  // later findings folded into this record
    // 1-based ordinal (in deterministic merge order) of the scenario that
    // first produced this fingerprint: "how much budget until discovery".
    std::uint64_t discovered_at = 0;
};

// One sample of the guided campaign's coverage trajectory, taken at every
// scheduler round barrier.
struct CoveragePoint {
    std::uint64_t scenarios = 0;  // scenarios completed so far
    std::uint64_t edges = 0;      // distinct coverage-map slots lit so far
};

// Aggregated wire-channel traffic counters (management plane), summed over
// every scenario in deterministic merge order.  Deterministic: the loopback
// transport runs on virtual ticks.
struct ChannelAccounting {
    std::uint64_t requests = 0;
    std::uint64_t frames_sent = 0;
    std::uint64_t retries = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t decode_errors = 0;
    std::uint64_t faults_injected = 0;
    std::uint64_t dedup_hits = 0;

    void add(const ChannelAccounting& o) {
        requests += o.requests;
        frames_sent += o.frames_sent;
        retries += o.retries;
        timeouts += o.timeouts;
        decode_errors += o.decode_errors;
        faults_injected += o.faults_injected;
        dedup_hits += o.dedup_hits;
    }
};

// Multi-process fabric accounting (FabricEngine only).  Unlike the rest of
// the report these counters are timing-dependent -- which worker dies with
// which shard in flight depends on the OS scheduler -- so byte-identity
// comparisons must exclude them (see CampaignReport::to_json's
// "robustness" block).
struct FabricAccounting {
    std::uint64_t workers = 0;
    std::uint64_t worker_restarts = 0;      // killed/hung workers respawned
    std::uint64_t shards_redispatched = 0;  // shards re-run after a death
    std::uint64_t jobs_resent = 0;          // job frames retransmitted
    std::uint64_t link_frames = 0;          // well-formed frames parent saw
    std::uint64_t link_corrupt = 0;         // frames the parent reader rejected
    std::uint64_t link_faults = 0;          // injector decisions on both ends
};

struct CampaignReport {
    std::uint64_t base_seed = 0;
    std::uint64_t scenarios = 0;
    std::vector<std::string> programs;
    std::vector<std::string> backends;        // labels, sweep order
    std::string engine;                       // execution engine (provenance)
    std::uint64_t packets_injected = 0;       // every inject() the engine issued
    std::uint64_t findings_total = 0;         // divergent scenarios before dedup
    std::vector<DivergenceRecord> divergences;  // deduplicated, discovery order

    // Coverage-guided mode outputs (empty when coverage is off).
    bool coverage_enabled = false;
    std::uint64_t coverage_map_slots = 0;  // CoverageMap::kSlots
    std::uint64_t coverage_edges = 0;      // final edges_covered()
    std::vector<CoveragePoint> coverage_series;
    // Split of coverage_edges by which device's map lit them first, merged
    // in slot order (reference before DUTs): the DUT maps are salted per
    // backend, so quirk-divergent execution earns its own novelty.
    std::uint64_t coverage_edges_reference = 0;
    std::vector<std::uint64_t> coverage_edges_dut;  // parallel to `backends`

    // Mutation-mode output: slots drawn as corpus mutants (0 when mutate
    // was off or the corpus never produced a parent).
    std::uint64_t scenarios_mutated = 0;

    // Concolic-mode outputs (config.concolic).  The per-target counters sum
    // over every dark site attempted; `unknown` means the SAT conflict
    // budget ran out -- explicitly NOT a proof of unreachability, unlike
    // `unsat`.
    bool concolic_enabled = false;
    std::uint64_t scenarios_concolic = 0;   // slots run from synthesized seeds
    std::uint64_t concolic_injected = 0;    // seeds verified + added to corpus
    std::uint64_t concolic_solved = 0;      // targets the solver modeled
    std::uint64_t concolic_unsat = 0;       // targets with no satisfiable path
    std::uint64_t concolic_unknown = 0;     // SAT budget exhausted (skipped)
    std::uint64_t concolic_no_path = 0;     // no symexec path covers the site
    std::uint64_t concolic_mismatched = 0;  // solved but failed the relight check
    // True when symexec truncated exploration at its max_paths budget for
    // at least one program: a no_path target then means "not found within
    // budget", never "unreachable".
    bool concolic_paths_exhausted = false;
    // Encoded ConcolicRecipe text of every injected seed, injection order;
    // each is a replayable `concolic=` corpus line.
    std::vector<std::string> concolic_recipes;

    // Robustness outputs.  mgmt sums the DUT management-channel traffic
    // (deterministic); fabric is filled by FabricEngine only and is the one
    // timing-dependent part of the report.  Neither block is rendered when
    // its mode is off, so pre-existing report bytes are unchanged.
    bool mgmt_enabled = false;
    ChannelAccounting mgmt;
    bool fabric_enabled = false;
    FabricAccounting fabric;

    double dedup_ratio() const {
        return divergences.empty()
                   ? 1.0
                   : static_cast<double>(findings_total) /
                         static_cast<double>(divergences.size());
    }

    std::string to_string() const;
    // Machine-readable form; deterministic for a given config (no wall time).
    std::string to_json() const;
};

// Wall-clock throughput of one run; NOT part of the deterministic report.
struct CampaignStats {
    double wall_seconds = 0;
    double scenarios_per_sec = 0;
    double packets_per_sec = 0;
};

class CampaignEngine {
public:
    explicit CampaignEngine(CampaignConfig config);

    // Runs the whole sweep; safe to call once per engine.
    CampaignReport run();

    // Throughput of the last run().
    const CampaignStats& stats() const { return stats_; }

private:
    CampaignConfig config_;
    CampaignStats stats_;
};

}  // namespace ndb::core
