// Differential fuzzing campaign engine.
//
// Turns the one-spec/one-backend validation loop into a throughput-oriented
// sweep (FP4-style greybox fuzzing, arXiv:2207.13147): seeded scenarios from
// SpecGenerator run on the reference backend and on every DUT backend, the
// reference's behaviour is the ground truth, and any observable difference
// (output stream, internal status counters, control-plane acceptance) is a
// divergence.  Scenarios shard across a worker-thread pool -- each worker
// owns its own device instances and injects/drains in batches -- and every
// divergence is triaged: minimized to the shortest reproducing packet
// prefix, replayed through FaultLocalizer to name the first diverging
// stage, and deduplicated by (backend, quirk-signature, stage) fingerprint.
//
// Determinism contract: CampaignReport (including its JSON form) depends
// only on the config, never on thread count or timing.  Wall-clock derived
// rates live in CampaignStats, which the ndb_campaign CLI writes to
// BENCH_campaign.json.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/localize.h"
#include "core/specgen.h"
#include "dataplane/quirks.h"

namespace ndb::core {

// One backend in the sweep, instantiated per worker via the target registry.
struct BackendSpec {
    std::string name;                              // registry name
    std::optional<dataplane::Quirks> quirks;       // override; nullopt = catalogue
    std::string label;                             // report key; defaults to name
};

struct CampaignConfig {
    std::uint64_t base_seed = 1;
    std::uint64_t scenarios = 64;
    int threads = 1;
    // Packets injected per inject/drain round-trip: the hot loop touches the
    // egress queues once per batch instead of once per packet.
    std::size_t batch_size = 8;
    // Catalogue programs to sweep; empty = SpecGenerator::default_programs().
    std::vector<std::string> programs;
    // DUT backends; empty = every registered backend except the reference.
    std::vector<BackendSpec> duts;
    std::string reference_backend = "reference";
    bool localize = true;  // replay divergences through FaultLocalizer
    bool minimize = true;  // reduce to the shortest reproducing prefix
};

struct DivergenceRecord {
    std::uint64_t seed = 0;
    std::string backend;   // BackendSpec label
    std::string program;
    std::string quirk_signature;
    std::string kind;      // "output" | "snapshot" | "config"
    std::string detail;    // first observed difference, human-readable

    // Triage results.
    std::uint64_t first_diverging_packet = 0;  // 1-based seq; 0 = unknown
    std::uint64_t minimized_count = 0;         // shortest reproducing prefix
    bool minimized_reproduces = false;
    LocalizeResult localized;

    // backend|quirk-signature|first-diverging-stage: the dedup key.
    std::string fingerprint;
    std::uint64_t duplicates = 0;  // later findings folded into this record
};

struct CampaignReport {
    std::uint64_t base_seed = 0;
    std::uint64_t scenarios = 0;
    std::vector<std::string> programs;
    std::vector<std::string> backends;        // labels, sweep order
    std::uint64_t packets_injected = 0;       // every inject() the engine issued
    std::uint64_t findings_total = 0;         // divergent scenarios before dedup
    std::vector<DivergenceRecord> divergences;  // deduplicated, discovery order

    double dedup_ratio() const {
        return divergences.empty()
                   ? 1.0
                   : static_cast<double>(findings_total) /
                         static_cast<double>(divergences.size());
    }

    std::string to_string() const;
    // Machine-readable form; deterministic for a given config (no wall time).
    std::string to_json() const;
};

// Wall-clock throughput of one run; NOT part of the deterministic report.
struct CampaignStats {
    double wall_seconds = 0;
    double scenarios_per_sec = 0;
    double packets_per_sec = 0;
};

class CampaignEngine {
public:
    explicit CampaignEngine(CampaignConfig config);

    // Runs the whole sweep; safe to call once per engine.
    CampaignReport run();

    // Throughput of the last run().
    const CampaignStats& stats() const { return stats_; }

private:
    CampaignConfig config_;
    CampaignStats stats_;
};

}  // namespace ndb::core
