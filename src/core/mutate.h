// Greybox mutation engine: splice/havoc over the stored scenario corpus.
//
// PR 4 closed half of the greybox loop -- coverage feedback reweights how
// much energy each catalogue program gets -- but every scenario was still
// synthesized from scratch.  This file closes the other half (FP4-style,
// arXiv:2207.13147): interesting scenarios are *kept* and *mutated*.
//
// The moving parts:
//
//   * MutationRecipe -- a compact, fully replayable description of one
//     mutant: the parent's (program, seed) pair plus an ordered op list.
//     Ops are havoc perturbations (field-plan value flips and boundary
//     values, packet-template byte flips, ConfigOp drop/duplicate/reorder)
//     or a splice (the config prefix of the parent crossed with the packet
//     plan of a same-program donor, referenced by its seed).  A recipe is
//     self-contained text (`program#seed|op:a:b|...`), so it rides in
//     divergence reports and `.corpus` files and replays anywhere.
//
//   * ScenarioCorpus -- the stored corpus: `.corpus` recipe files plus the
//     (program, seed[, recipe]) pairs a guided campaign retains when a
//     scenario lights fresh coverage or a fresh fingerprint.  Deterministic
//     iteration order, deduplicated.
//
//   * Mutator -- derives recipes (seeded, deterministic: the same corpus
//     and seed always derive the same recipe, chains included) and applies
//     them (`apply` rebuilds the parent through SpecGenerator::make_for,
//     then replays the op list; operands are clamped by modulo against the
//     live scenario so every recorded op stays runtime-legal on replay).
//
// Nothing here consults wall clock or global state: mutation planning in
// the campaign engine happens at round barriers from merged feedback only,
// which is how mutate-mode reports keep the byte-identical-across-thread-
// counts contract.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/specgen.h"

namespace ndb::core {

// One replayable mutation step.  Operand semantics depend on the kind; all
// indices are reduced modulo the live scenario's sizes at apply time, so an
// op derived against one parent state stays legal after earlier ops in the
// same recipe reshaped the scenario.
struct MutationOp {
    enum class Kind {
        field_flip,      // a = mutation-plan index, b = XOR mask for its value
        field_boundary,  // a = mutation-plan index, b selects {0, ones, 1}
        packet_byte,     // a = template byte offset, b = XOR byte (forced != 0)
        config_drop,     // a = config-op index to delete
        config_dup,      // a = config-op index to copy, b = insertion position
        config_swap,     // a, b = config-op indices to exchange
        splice,          // a = parent config prefix length kept,
                         // b = donor seed (same program; donor's packet plan)
    };

    Kind kind = Kind::field_flip;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
};

const char* mutation_op_name(MutationOp::Kind kind);

// The full parentage of one mutant: parent (program, seed) + op list.
struct MutationRecipe {
    std::string program;            // parent catalogue program
    std::uint64_t parent_seed = 0;  // replays via SpecGenerator::make_for
    std::vector<MutationOp> ops;

    bool empty() const { return ops.empty(); }

    // Compact text form: "program#seed|op:a:b|op:a:b".  Stable, and safe
    // for `.corpus` key=value lines (no '=' or whitespace).
    std::string encode() const;
    static std::optional<MutationRecipe> parse(std::string_view text);
};

// A concolically synthesized corpus seed: the exact packet, ingress port
// and table default-action programming the verify layer solved for, plus
// the coverage slot it was synthesized to light.  Unlike a MutationRecipe
// (which replays by re-deriving from a parent seed), this is fully concrete
// -- the solver's model IS the scenario.
//
// Text form: "program@slot|port:P|pkt:HEX|def:table:action[:ARGHEX...]...".
// The '@' head separator makes concolic and mutation recipe text mutually
// unparseable, so a line can never be silently misread as the other kind.
struct ConcolicRecipe {
    std::string program;
    std::uint64_t slot = 0;          // target coverage slot; doubles as seed
    std::uint32_t ingress_port = 0;
    std::vector<std::uint8_t> packet;

    struct Default {
        std::string table;
        std::string action;
        // Big-endian action-argument images, exactly ceil(width/8) bytes
        // each (validated against the program at apply time).
        std::vector<std::vector<std::uint8_t>> args;
    };
    std::vector<Default> defaults;

    std::string encode() const;
    // Strict: every structural defect (bad slot/port, odd or non-hex
    // digits, empty sections, unknown section keys) rejects the whole text.
    static std::optional<ConcolicRecipe> parse(std::string_view text);
};

// One stored corpus entry: a fresh (program, seed) pair, a mutant whose
// full parentage `recipe` holds (encoded MutationRecipe), or -- when
// `concolic` is set -- a solver-synthesized seed (`recipe` then holds an
// encoded ConcolicRecipe and `seed` its target slot).
struct CorpusEntry {
    std::string program;
    std::uint64_t seed = 0;
    std::string recipe;  // encoded recipe; empty = fresh seed
    bool concolic = false;
};

// The stored scenario corpus the mutation engine draws parents and donors
// from.  Entries come from `.corpus` recipe files (load_dir) and from the
// campaign's own guided rounds (add).  Iteration order is deterministic:
// per-program vectors in insertion order, programs by name.
class ScenarioCorpus {
public:
    // Loads every `.corpus` file under `dir` (sorted by file name) whose
    // `program=` is in `programs`; a `mutate=` line makes the entry a
    // mutant, a `concolic=` line a synthesized seed.  Missing directory is
    // fine (returns 0).  Every malformed file or line is rejected with a
    // message appended to diagnostics() -- never a crash, never a silent
    // skip.  (Out-of-catalogue programs are the one silent case: they are
    // valid files that simply belong to another campaign slice.)
    std::size_t load_dir(const std::string& dir,
                         const std::vector<std::string>& programs);

    // Human-readable reasons for everything load_dir rejected or flagged,
    // in file order.  Cleared by each load_dir call.
    const std::vector<std::string>& diagnostics() const { return diagnostics_; }

    // Adds one entry; returns false when an identical (program, seed,
    // recipe) triple is already stored.
    bool add(const std::string& program, std::uint64_t seed,
             const std::string& recipe = {}, bool concolic = false);

    // Entries for one program; a stable empty vector when none.
    const std::vector<CorpusEntry>& entries(const std::string& program) const;

    std::size_t size() const { return total_; }
    bool empty() const { return total_ == 0; }

private:
    std::map<std::string, std::vector<CorpusEntry>> by_program_;
    std::set<std::string> keys_;  // dedup over program#seed#recipe
    std::size_t total_ = 0;
    std::vector<std::string> diagnostics_;
};

// Derives and applies mutation recipes over a SpecGenerator's catalogue.
// The generator must outlive the mutator and contain every program a
// recipe names.
class Mutator {
public:
    // Hard ceiling on a recipe's op count, bounding recipe text and replay
    // cost.  One derivation appends at most kMaxOpsPerDerive ops; chains
    // that could no longer fit restart from the root parent instead.
    static constexpr std::size_t kMaxChainOps = 12;
    static constexpr std::size_t kMaxOpsPerDerive = 5;  // 1 splice + 4 havoc

    explicit Mutator(const SpecGenerator& gen) : gen_(&gen) {}

    // Deterministically derives a recipe for `seed`: inherits (chains) the
    // parent's own ops when the parent is a mutant, optionally prepends a
    // splice against a fresh same-program donor from `corpus`, then appends
    // 1..4 havoc ops.  Same (corpus, parent, seed) => same recipe.
    MutationRecipe derive(const ScenarioCorpus& corpus, const CorpusEntry& parent,
                          std::uint64_t seed) const;

    // Replays a recipe into a concrete Scenario.  Throws
    // std::invalid_argument when the recipe names a program the generator
    // does not carry.  Deterministic: apply(r) is a pure function of r and
    // the generator's program list.
    Scenario apply(const MutationRecipe& recipe) const;

    // Materializes a concolic recipe: the scenario injects exactly the
    // synthesized packet on the synthesized port, with the control plane
    // reduced to the recipe's set_default_action ops.  Throws
    // std::invalid_argument when the recipe is inconsistent with the
    // program (unknown table/action, action not allowed on the table, or
    // argument count/width mismatch).
    Scenario apply_concolic(const ConcolicRecipe& recipe) const;

private:
    std::size_t program_index(const std::string& program) const;

    const SpecGenerator* gen_;
};

}  // namespace ndb::core
