// The seven use-cases of paper Figure 2, evaluated experimentally.
//
// Each (tool, use-case) cell is an actual experiment: the tool attempts the
// scenario, and the cell records what it could and could not observe.  The
// capability grade follows the paper's criteria -- FULL needs the complete
// use-case including internal visibility; PARTIAL means only the externally
// visible (or specification-level) portion; NONE means the tool has no
// handle on the use-case at all.
#pragma once

#include <array>
#include <string>

namespace ndb::core {

enum class UseCase {
    functional = 0,
    performance = 1,
    compiler_check = 2,
    architecture_check = 3,
    resources = 4,
    status_monitoring = 5,
    comparison = 6,
};
inline constexpr int kUseCaseCount = 7;
const char* use_case_name(UseCase use_case);

enum class ToolKind {
    formal_verification = 0,  // p4v-style, spec-level (src/verify)
    external_tester = 1,      // OSNT-style, ports only (src/tester)
    netdebug = 2,             // this paper's framework (src/core)
};
inline constexpr int kToolCount = 3;
const char* tool_kind_name(ToolKind tool);

enum class Capability { none = 0, partial = 1, full = 2 };
const char* capability_name(Capability capability);

struct CellResult {
    Capability capability = Capability::none;
    std::string evidence;  // what actually happened in the experiment
};

// Runs the experiment behind one matrix cell.
CellResult evaluate_cell(ToolKind tool, UseCase use_case);

struct Figure2 {
    std::array<std::array<CellResult, kUseCaseCount>, kToolCount> cells;

    // Paper-style capability matrix plus the per-cell evidence lines.
    std::string to_table(bool with_evidence = false) const;
};

// Runs all 21 experiments.
Figure2 build_figure2();

}  // namespace ndb::core
