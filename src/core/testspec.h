// Test specifications: packet templates, field mutations and expectations.
//
// A TestSpec describes one validation campaign: what the generator injects
// (template + per-sequence mutations, optionally refined by a P4 mutator
// program) and what the checker must observe on the way out.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "p4/ir.h"
#include "packet/packet.h"
#include "util/bitvec.h"

namespace ndb::core {

// How one field of the template evolves over the generated sequence.
struct FieldMutation {
    enum class Mode {
        fixed,      // value
        increment,  // value + seq * step
        sweep,      // value + (seq % range) * step
        random,     // uniform random (deterministic per seed + seq)
    };

    std::size_t bit_offset = 0;
    int width = 0;
    Mode mode = Mode::fixed;
    util::Bitvec value;
    std::uint64_t step = 1;
    std::uint64_t range = 0;  // sweep period (0 disables wrap)
};

struct PacketTemplate {
    packet::Packet base;
    std::vector<FieldMutation> mutations;
    std::uint64_t seed = 0x5eed;
};

// One per-packet or aggregate expectation the checker enforces.
struct Expectation {
    enum class Kind {
        forwarded_on_port,  // every observed packet leaves on `port`
        all_dropped,        // nothing may come out at all
        field_equals,       // output field at (bit_offset,width) == value
        field_preserved,    // output field equals the injected packet's field
        latency_below_ns,   // per-packet latency bound (needs stamps)
        seq_contiguous,     // no sequence gaps/duplicates (needs stamps)
        min_delivery,       // at least `fraction` of injected packets observed
    };

    Kind kind = Kind::forwarded_on_port;
    std::uint32_t port = 0;
    std::size_t bit_offset = 0;
    int width = 0;
    util::Bitvec value;
    std::uint64_t latency_ns = 0;
    double fraction = 1.0;

    std::string describe() const;
};

struct TestSpec {
    std::string name;
    PacketTemplate tmpl;
    std::uint32_t inject_port = 0;
    std::uint64_t count = 1;
    double rate_pps = 0;  // 0 = back-to-back
    std::vector<Expectation> expectations;

    // Optional P4 mutator: a compiled NdpSwitch program the generator runs
    // on each template packet; the user metadata field named `seq` (when
    // present) receives the sequence number, so test-packet generation is
    // itself programmable in P4, as the paper requires.
    std::shared_ptr<const p4::ir::Program> mutator;

    // Optional P4 checker: output packets are run through this program; a
    // program that DROPS the packet flags a violation.
    std::shared_ptr<const p4::ir::Program> checker;
};

// Builds the generated packet for sequence number `seq` (mutations applied;
// stamps are the generator's job).
packet::Packet instantiate(const PacketTemplate& tmpl, std::uint64_t seq);

}  // namespace ndb::core
