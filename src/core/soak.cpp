#include "core/soak.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>

#include "core/mutate.h"
#include "util/strings.h"

namespace ndb::core {

namespace {

// [a-z0-9_] survive; everything else becomes '-'.
std::string sanitize(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        const bool keep = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                          c == '_';
        out += keep ? c : '-';
    }
    return out;
}

// The stage is the suffix of the fingerprint (backend|quirks|stage).
std::string fingerprint_stage(const DivergenceRecord& rec) {
    const std::size_t bar = rec.fingerprint.rfind('|');
    return bar == std::string::npos ? std::string("unlocalized")
                                    : rec.fingerprint.substr(bar + 1);
}

// The uniqueness key an existing corpus file encodes.
std::string entry_key(const std::string& backend, const std::string& quirks,
                      const std::string& stage) {
    return backend + "|" + quirks + "|" + stage;
}

std::set<std::string> known_fingerprints(const std::string& corpus_dir) {
    std::set<std::string> known;
    if (!std::filesystem::is_directory(corpus_dir)) return known;
    for (const auto& file : std::filesystem::directory_iterator(corpus_dir)) {
        if (file.path().extension() != ".corpus") continue;
        std::ifstream in(file.path());
        std::string line, backend, quirks, stage;
        while (std::getline(in, line)) {
            if (line.empty() || line[0] == '#') continue;
            const std::size_t eq = line.find('=');
            if (eq == std::string::npos) continue;
            const std::string key = line.substr(0, eq);
            const std::string value = line.substr(eq + 1);
            if (key == "backend") backend = value;
            else if (key == "quirks") quirks = value;
            else if (key == "stage") stage = value;
        }
        if (!backend.empty()) known.insert(entry_key(backend, quirks, stage));
    }
    return known;
}

}  // namespace

std::string soak_corpus_filename(const DivergenceRecord& rec) {
    return util::format(
        "soak_%s_%s_%016llx.corpus", sanitize(rec.backend).c_str(),
        sanitize(fingerprint_stage(rec)).c_str(),
        static_cast<unsigned long long>(util::fnv1a_64(rec.fingerprint)));
}

SoakResult append_unique_corpus_entries(const CampaignReport& report,
                                        const std::string& corpus_dir) {
    SoakResult result;
    std::filesystem::create_directories(corpus_dir);
    std::set<std::string> known = known_fingerprints(corpus_dir);

    for (const auto& rec : report.divergences) {
        const std::string stage = fingerprint_stage(rec);
        const std::string key = entry_key(rec.backend, rec.quirk_signature, stage);
        if (!known.insert(key).second) {
            ++result.skipped_known;
            continue;
        }
        const std::string name = soak_corpus_filename(rec);
        const std::filesystem::path path =
            std::filesystem::path(corpus_dir) / name;
        std::ofstream out(path);
        if (!out) continue;  // unwritable dir: skip rather than abort the soak
        out << "# discovered by campaign soak mode; replayed by corpus_replay_test\n";
        out << "# detail: " << rec.detail << "\n";
        out << "seed=" << rec.seed << "\n";
        out << "program=" << rec.program << "\n";
        out << "backend=" << rec.backend << "\n";
        out << "quirks=" << rec.quirk_signature << "\n";
        out << "stage=" << stage << "\n";
        // Parentage: the encoded recipe replays the exact scenario
        // (CampaignConfig::mutation_recipe); absent for fresh seeds, so
        // pre-mutation corpus files keep parsing unchanged.  A concolic
        // recipe ('@' head; never parseable as a MutationRecipe) gets its
        // own key so the corpus loader applies the right grammar.
        if (!rec.recipe.empty()) {
            const bool concolic = ConcolicRecipe::parse(rec.recipe).has_value();
            out << (concolic ? "concolic=" : "mutate=") << rec.recipe << "\n";
        }
        result.written.push_back(name);
    }
    std::sort(result.written.begin(), result.written.end());
    return result;
}

}  // namespace ndb::core
