#include "core/tools.h"

#include "p4/compiler.h"

namespace ndb::core::scenario {

packet::Mac host_mac(int n) {
    return {0x02, 0x00, 0x00, 0x00, 0x00, static_cast<std::uint8_t>(n)};
}

std::uint32_t host_ip(int n) {
    return (10u << 24) | static_cast<std::uint32_t>(n);
}

packet::Packet ipv4_udp_packet(std::size_t payload, std::uint8_t ttl) {
    return packet::PacketBuilder()
        .ethernet(host_mac(2), host_mac(1))
        .ipv4_raw(host_ip(1), host_ip(2), packet::kIpProtoUdp, ttl)
        .udp(5000, 7000)
        .payload_size(payload)
        .build();
}

packet::Packet arp_packet() {
    packet::ArpMessage arp;
    arp.opcode = 1;
    arp.sender_mac = host_mac(1);
    arp.sender_ip = host_ip(1);
    arp.target_ip = host_ip(2);
    return packet::PacketBuilder()
        .ethernet(packet::mac_from_string("ff:ff:ff:ff:ff:ff"), host_mac(1))
        .arp(arp)
        .payload_size(18)
        .build();
}

packet::Packet label_stack_packet(int depth) {
    // ethernet(etherType=0x8847) + `depth` 32-bit labels + payload
    const std::size_t size = 14 + static_cast<std::size_t>(depth) * 4 + 32;
    packet::Packet pkt = packet::Packet::zeros(size);
    packet::EthernetHeader eth;
    eth.dst = host_mac(2);
    eth.src = host_mac(1);
    eth.ethertype = 0x8847;
    eth.write(pkt, 0);
    for (int i = 0; i < depth; ++i) {
        const std::size_t base = 14 + static_cast<std::size_t>(i) * 4;
        pkt.set_u(base * 8, 20, static_cast<std::uint64_t>(100 + i));  // label
        pkt.set_u(base * 8 + 20, 3, 0);                                // tc
        pkt.set_u(base * 8 + 23, 1, i == depth - 1 ? 1 : 0);           // bos
        pkt.set_u(base * 8 + 24, 8, 64);                               // ttl
    }
    return pkt;
}

std::shared_ptr<const p4::ir::Program> compile(std::string_view source,
                                               std::string name) {
    return std::shared_ptr<const p4::ir::Program>(
        p4::compile_source(source, std::move(name)));
}

control::Status add_default_route(control::RuntimeApi& rt, std::uint32_t port) {
    const packet::Mac next_hop = host_mac(2);
    control::EntrySpec entry;
    entry.key_values = {util::Bitvec(32, 0)};
    entry.prefix_len = 0;
    entry.action = "ipv4_forward";
    entry.action_args = {
        util::Bitvec::from_bytes(
            std::span<const std::uint8_t>(next_hop.data(), next_hop.size()), 48),
        util::Bitvec(9, port)};
    return rt.add_entry("ipv4_lpm", entry);
}

control::Status add_l2_entry(control::RuntimeApi& rt, const packet::Mac& dst,
                             std::uint32_t port) {
    control::EntrySpec entry;
    entry.key_values = {
        util::Bitvec::from_bytes(std::span<const std::uint8_t>(dst.data(), 6), 48)};
    entry.action = "forward";
    entry.action_args = {util::Bitvec(9, port)};
    return rt.add_entry("dmac", entry);
}

control::Status add_acl_allow_udp(control::RuntimeApi& rt, std::uint16_t dst_port,
                                  std::uint32_t egress_port) {
    control::EntrySpec entry;
    entry.key_values = {util::Bitvec(32, 0), util::Bitvec(32, 0),
                        util::Bitvec(8, packet::kIpProtoUdp),
                        util::Bitvec(16, dst_port)};
    entry.key_masks = {util::Bitvec(32, 0), util::Bitvec(32, 0),
                       util::Bitvec(8, 0xff), util::Bitvec(16, 0xffff)};
    entry.priority = 10;
    entry.action = "allow";
    entry.action_args = {util::Bitvec(9, egress_port)};
    return rt.add_entry("acl", entry);
}

}  // namespace ndb::core::scenario
