#include "core/testspec.h"

#include "util/random.h"
#include "util/strings.h"

namespace ndb::core {

std::string Expectation::describe() const {
    switch (kind) {
        case Kind::forwarded_on_port:
            return util::format("forwarded on port %u", port);
        case Kind::all_dropped:
            return "all packets dropped";
        case Kind::field_equals:
            return util::format("field@%zu:%d == %s", bit_offset, width,
                                value.to_hex().c_str());
        case Kind::field_preserved:
            return util::format("field@%zu:%d preserved", bit_offset, width);
        case Kind::latency_below_ns:
            return util::format("latency < %llu ns",
                                static_cast<unsigned long long>(latency_ns));
        case Kind::seq_contiguous:
            return "sequence numbers contiguous";
        case Kind::min_delivery:
            return util::format("delivery >= %.0f%%", fraction * 100.0);
    }
    return "?";
}

packet::Packet instantiate(const PacketTemplate& tmpl, std::uint64_t seq) {
    packet::Packet pkt = tmpl.base;
    for (const auto& m : tmpl.mutations) {
        util::Bitvec v(m.width);
        switch (m.mode) {
            case FieldMutation::Mode::fixed:
                v = m.value.resize(m.width);
                break;
            case FieldMutation::Mode::increment:
                v = m.value.resize(m.width)
                        .add(util::Bitvec(m.width, seq * m.step));
                break;
            case FieldMutation::Mode::sweep: {
                const std::uint64_t idx = m.range ? seq % m.range : seq;
                v = m.value.resize(m.width)
                        .add(util::Bitvec(m.width, idx * m.step));
                break;
            }
            case FieldMutation::Mode::random: {
                util::Rng rng(tmpl.seed ^ (seq * 0x9e3779b97f4a7c15ull) ^
                              (m.bit_offset << 16));
                for (int i = 0; i < m.width; i += 64) {
                    const std::uint64_t bits = rng.next_u64();
                    for (int b = 0; b < 64 && i + b < m.width; ++b) {
                        v.set_bit(i + b, (bits >> b) & 1);
                    }
                }
                break;
            }
        }
        pkt.deposit_bits(m.bit_offset, v);
    }
    return pkt;
}

}  // namespace ndb::core
