#include "core/scenario_exec.h"

#include <algorithm>
#include <stdexcept>

#include "core/generator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/strings.h"

namespace ndb::core {

namespace {

using dataplane::TapDigest;

std::uint64_t stamp_seq(const packet::Packet& pkt) {
    std::uint64_t seq = 0, t = 0;
    return TestPacketGenerator::read_stamp(pkt, seq, t) ? seq : 0;
}

// Mixes (plan seed, program, scenario seed, DUT index) into the per-run
// fault-schedule seed.  Pure, so the identical schedule replays in any
// thread, worker process, or standalone reproduction of the scenario.
std::uint64_t derive_mgmt_seed(const MgmtLink& base, const Scenario& sc,
                               std::size_t dut_index) {
    std::uint64_t h = base.plan.seed;
    h ^= util::fnv1a_64(sc.program);
    h ^= sc.seed * 0x9e3779b97f4a7c15ull;
    h ^= (dut_index + 1) * 0xc2b2ae3d27d4eb4full;
    return h;
}

}  // namespace

WorkerContext::WorkerContext(const std::string& reference_backend,
                             const std::vector<BackendSpec>& specs,
                             dataplane::Engine engine) {
    reference = target::make_device(reference_backend);
    if (!reference) {
        throw std::invalid_argument("campaign: unknown reference backend '" +
                                    reference_backend + "'");
    }
    reference->set_engine(engine);
    for (const auto& spec : specs) {
        auto dev = target::make_device(spec.name, spec.quirks);
        if (!dev) {
            throw std::invalid_argument("campaign: unknown backend '" +
                                        spec.name + "'");
        }
        dev->set_engine(engine);
        duts.push_back(std::move(dev));
    }
}

std::vector<packet::Packet> scenario_packets(const Scenario& sc) {
    // Build the stream once; every backend sees byte-identical stimuli on
    // an identical timeline.  A spec-level rate stretches the slot so
    // stateful scenarios can straddle aging timeouts within one stream;
    // the integer slot keeps the timeline exactly reproducible.
    const std::uint64_t slot_ns =
        sc.spec.rate_pps > 0
            ? static_cast<std::uint64_t>(1e9 / sc.spec.rate_pps + 0.5)
            : kSlotNs;
    TestPacketGenerator pgen(sc.spec);
    std::vector<packet::Packet> packets;
    packets.reserve(sc.spec.count);
    for (std::uint64_t seq = 1; seq <= sc.spec.count; ++seq) {
        packets.push_back(pgen.make_packet(seq, kEpochNs + (seq - 1) * slot_ns));
    }
    return packets;
}

DeviceRun run_scenario_on(target::Device& dev, const Scenario& sc,
                          const std::vector<packet::Packet>& packets,
                          std::size_t batch_size, const MgmtLink* mgmt,
                          ChannelAccounting* acct) {
    DeviceRun run;
    if (!dev.load(*sc.compiled)) {
        throw std::runtime_error("campaign: device refused catalogue program " +
                                 sc.program);
    }
    run.config_ok.reserve(sc.config.size());
    run.config_wire_fail.reserve(sc.config.size());
    if (mgmt != nullptr && mgmt->enabled) {
        // Deliver the configuration the way the paper's management
        // interface would: serialized frames over a (faultable) link, with
        // the resilient client retrying under its budget.
        control::LoopbackTransport transport(dev.runtime());
        transport.set_fault_plan(mgmt->plan);
        control::WireChannel channel(transport);
        channel.set_retry_policy(mgmt->retry);
        control::RuntimeClient client(channel);
        // The whole scenario's configuration rides one ApplyConfigReq frame;
        // per-op Status comes back in the response, so the accounting below
        // is unchanged from the one-frame-per-op protocol.
        const std::vector<control::Status> statuses = client.apply(sc.config);
        for (const control::Status& st : statuses) {
            run.config_ok.push_back(st.ok);
            run.config_wire_fail.push_back(
                !st.ok && util::starts_with(st.message, "wire:"));
        }
        if (acct != nullptr) {
            const control::ChannelStats& cs = channel.stats();
            acct->requests += cs.requests;
            acct->frames_sent += cs.frames_sent;
            acct->retries += cs.retries;
            acct->timeouts += cs.timeouts;
            acct->decode_errors += cs.decode_errors;
            acct->faults_injected += transport.faults_injected();
            acct->dedup_hits += transport.server_stats().dedup_hits;
        }
    } else {
        for (const control::Status& st : dev.apply(sc.config)) {
            run.config_ok.push_back(st.ok);
            run.config_wire_fail.push_back(false);
        }
    }
    // Streaming digest mode: the pipeline hashes each stage's state in
    // place, so detection gets the tap signal without a single PacketState
    // copy (full taps stay reserved for FaultLocalizer replay).
    dev.set_digests_enabled(true);
    const std::size_t batch = std::max<std::size_t>(1, batch_size);
    std::vector<packet::Packet> drained;  // reused across every drain round
    std::size_t i = 0;
    while (i < packets.size()) {
        const std::size_t end = std::min(i + batch, packets.size());
        for (; i < end; ++i) {
            dev.inject(packets[i]);
            ++run.injected;
        }
        // One queue sweep per batch amortizes the drain round-trip.
        for (int p = 0; p < dev.config().num_ports; ++p) {
            drained.clear();
            dev.drain_port_into(static_cast<std::uint32_t>(p), drained);
            for (auto& out : drained) {
                run.observed.push_back(
                    {static_cast<std::uint32_t>(p), std::move(out)});
            }
        }
    }
    // Collect the digest ring (synchronous recording: one record per
    // injection when the device can record at all).
    std::vector<TapDigest> records = dev.take_digest_records();
    if (records.size() == packets.size()) {
        run.taps = std::move(records);
    }
    dev.set_digests_enabled(false);
    run.snapshot = dev.snapshot();
    return run;
}

std::optional<RawDivergence> diff_runs(const DeviceRun& dut,
                                       const DeviceRun& ref) {
    for (std::size_t i = 0; i < dut.config_ok.size() && i < ref.config_ok.size();
         ++i) {
        if (dut.config_ok[i] != ref.config_ok[i]) {
            // A wire-layer loss on the DUT's (faulted) management channel
            // where the reference's clean channel delivered: the management
            // plane itself diverged, not the device runtime.
            if (i < dut.config_wire_fail.size() && dut.config_wire_fail[i]) {
                return RawDivergence{
                    "mgmt",
                    util::format("config op #%zu lost on the management wire: "
                                 "dut=timed-out golden=%s",
                                 i, ref.config_ok[i] ? "ok" : "rejected"),
                    0};
            }
            return RawDivergence{
                "config",
                util::format("config op #%zu: dut=%s golden=%s", i,
                             dut.config_ok[i] ? "ok" : "rejected",
                             ref.config_ok[i] ? "ok" : "rejected"),
                0};
        }
    }

    // Static table shape is control-plane visible before any packet flows:
    // a clamped capacity or a rejected insert shows up here.
    for (std::size_t i = 0;
         i < dut.snapshot.tables.size() && i < ref.snapshot.tables.size(); ++i) {
        const auto& dt = dut.snapshot.tables[i];
        const auto& gt = ref.snapshot.tables[i];
        if (dt.capacity != gt.capacity || dt.entries != gt.entries) {
            return RawDivergence{
                "config",
                util::format("table %s shape: dut entries=%llu/%llu golden "
                             "entries=%llu/%llu",
                             dt.name.c_str(),
                             static_cast<unsigned long long>(dt.entries),
                             static_cast<unsigned long long>(dt.capacity),
                             static_cast<unsigned long long>(gt.entries),
                             static_cast<unsigned long long>(gt.capacity)),
                0};
        }
    }

    // Per-flow state next: register/counter contents diverge when a target
    // ages, drops, or misplaces flow entries even while every output byte
    // matches (a stale NAT binding forwards correctly right up to the
    // packet where it does not).  The snapshot hashes make the disagreement
    // first-class instead of waiting for a packet to expose it.
    for (std::size_t i = 0;
         i < dut.snapshot.externs.size() && i < ref.snapshot.externs.size();
         ++i) {
        const auto& de = dut.snapshot.externs[i];
        const auto& ge = ref.snapshot.externs[i];
        if (de.state_hash != ge.state_hash) {
            return RawDivergence{
                "state",
                util::format("%s %s state hash: dut=%016llx golden=%016llx",
                             de.kind.c_str(), de.name.c_str(),
                             static_cast<unsigned long long>(de.state_hash),
                             static_cast<unsigned long long>(ge.state_hash)),
                0};
        }
        if (de.unconfigured_meters != ge.unconfigured_meters) {
            return RawDivergence{
                "state",
                util::format("meter %s unconfigured cells: dut=%llu golden=%llu",
                             de.name.c_str(),
                             static_cast<unsigned long long>(
                                 de.unconfigured_meters),
                             static_cast<unsigned long long>(
                                 ge.unconfigured_meters)),
                0};
        }
    }

    // Internal visibility next: the taps see divergences (wrong parser
    // verdict, clobbered metadata) that output bytes can hide entirely.
    // Only comparable when both devices recorded the full stream.
    if (!dut.taps.empty() && dut.taps.size() == ref.taps.size()) {
        for (std::size_t i = 0; i < dut.taps.size(); ++i) {
            const TapDigest& d = dut.taps[i];
            const TapDigest& g = ref.taps[i];
            if (d == g) continue;
            std::string what;
            if (d.verdict != g.verdict) {
                what = util::format("parser verdict dut=%s golden=%s",
                                    dataplane::parser_verdict_name(d.verdict),
                                    dataplane::parser_verdict_name(g.verdict));
            } else if (d.stage_hash[0] != g.stage_hash[0]) {
                what = "state differs at the parser tap";
            } else if (d.stage_hash[1] != g.stage_hash[1]) {
                what = "state differs at the ingress tap";
            } else if (d.stage_hash[2] != g.stage_hash[2]) {
                what = "state differs at the egress tap";
            } else if (d.disposition != g.disposition) {
                what = util::format("disposition dut=%s golden=%s",
                                    dataplane::disposition_name(d.disposition),
                                    dataplane::disposition_name(g.disposition));
            } else {
                what = util::format("egress port dut=%u golden=%u", d.egress_port,
                                    g.egress_port);
            }
            return RawDivergence{
                "internal",
                util::format("packet #%zu: %s", i + 1, what.c_str()),
                static_cast<std::uint64_t>(i + 1)};
        }
    }

    const std::size_t n = std::min(dut.observed.size(), ref.observed.size());
    for (std::size_t i = 0; i < n; ++i) {
        const StreamItem& d = dut.observed[i];
        const StreamItem& g = ref.observed[i];
        if (d.port != g.port) {
            return RawDivergence{
                "output",
                util::format("output #%zu egress port: dut=%u golden=%u", i,
                             d.port, g.port),
                stamp_seq(g.pkt)};
        }
        if (!d.pkt.same_bytes(g.pkt)) {
            return RawDivergence{
                "output",
                util::format("output #%zu bytes differ on port %u (%zuB vs %zuB)",
                             i, d.port, d.pkt.size(), g.pkt.size()),
                stamp_seq(g.pkt)};
        }
    }
    if (dut.observed.size() != ref.observed.size()) {
        const bool dut_longer = dut.observed.size() > ref.observed.size();
        const StreamItem& extra = dut_longer ? dut.observed[n] : ref.observed[n];
        return RawDivergence{
            "output",
            util::format("output stream length: dut=%zu golden=%zu",
                         dut.observed.size(), ref.observed.size()),
            stamp_seq(extra.pkt)};
    }

    const auto& ds = dut.snapshot.stages;
    const auto& gs = ref.snapshot.stages;
    const struct {
        const char* name;
        std::uint64_t d, g;
    } counters[] = {
        {"parser_in", ds.parser_in, gs.parser_in},
        {"parser_accepted", ds.parser_accepted, gs.parser_accepted},
        {"parser_rejected", ds.parser_rejected, gs.parser_rejected},
        {"parser_errors", ds.parser_errors, gs.parser_errors},
        {"ingress_dropped", ds.ingress_dropped, gs.ingress_dropped},
        {"egress_dropped", ds.egress_dropped, gs.egress_dropped},
        {"forwarded", ds.forwarded, gs.forwarded},
        {"misdirected", dut.snapshot.misdirected, ref.snapshot.misdirected},
    };
    for (const auto& c : counters) {
        if (c.d != c.g) {
            return RawDivergence{
                "snapshot",
                util::format("stage counter %s: dut=%llu golden=%llu", c.name,
                             static_cast<unsigned long long>(c.d),
                             static_cast<unsigned long long>(c.g)),
                0};
        }
    }
    for (std::size_t i = 0;
         i < dut.snapshot.tables.size() && i < ref.snapshot.tables.size(); ++i) {
        const auto& dt = dut.snapshot.tables[i];
        const auto& gt = ref.snapshot.tables[i];
        if (dt.hits != gt.hits || dt.misses != gt.misses) {
            return RawDivergence{
                "snapshot",
                util::format("table %s: dut hits=%llu misses=%llu, golden "
                             "hits=%llu misses=%llu",
                             dt.name.c_str(),
                             static_cast<unsigned long long>(dt.hits),
                             static_cast<unsigned long long>(dt.misses),
                             static_cast<unsigned long long>(gt.hits),
                             static_cast<unsigned long long>(gt.misses)),
                0};
        }
    }
    return std::nullopt;
}

void execute_scenario(WorkerContext& ctx, const Scenario& sc,
                      const std::vector<BackendSpec>& duts,
                      const ExecOptions& options, ScenarioOutcome& outcome,
                      const std::string& recipe) {
    const std::uint64_t obs_t0 =
        (obs::metrics_on() || obs::trace_on()) ? obs::now_ns() : 0;
    const std::vector<packet::Packet> packets = scenario_packets(sc);

    // Guided mode: the reference detection run streams its execution
    // edges into a per-scenario map (set before run_scenario_on so the
    // load() inside re-applies it).  Triage replays below run with
    // coverage off again -- they revisit the same behaviour and would
    // only re-count edges.
    if (options.coverage) {
        outcome.coverage = std::make_unique<coverage::CoverageMap>();
        ctx.reference->set_coverage(outcome.coverage.get());
        outcome.dut_coverage.resize(duts.size());
    }
    const DeviceRun ref_run =
        run_scenario_on(*ctx.reference, sc, packets, options.batch_size);
    if (options.coverage) ctx.reference->set_coverage(nullptr);
    outcome.packets += ref_run.injected;

    for (std::size_t d = 0; d < duts.size(); ++d) {
        target::Device& dut = *ctx.duts[d];
        // The DUT's management link: the base plan with a per-(scenario,
        // DUT) derived schedule seed.  Triage replays below reuse the same
        // link, so they see the identical fault schedule the detection run
        // did -- the divergence reproduces, deterministically.
        MgmtLink link = options.mgmt;
        const MgmtLink* mgmt = nullptr;
        if (link.enabled) {
            link.plan.seed = derive_mgmt_seed(options.mgmt, sc, d);
            mgmt = &link;
        }
        // The DUT's detection run streams into its own per-scenario map
        // (backend-salted inside the device); triage replays below run
        // with coverage detached, like the reference's.
        if (options.coverage) {
            outcome.dut_coverage[d] = std::make_unique<coverage::CoverageMap>();
            dut.set_coverage(outcome.dut_coverage[d].get());
        }
        const DeviceRun dut_run = run_scenario_on(
            dut, sc, packets, options.batch_size, mgmt, &outcome.mgmt);
        if (options.coverage) dut.set_coverage(nullptr);
        outcome.packets += dut_run.injected;

        const auto raw = diff_runs(dut_run, ref_run);
        if (!raw) continue;

        DivergenceRecord rec;
        rec.seed = sc.seed;
        rec.recipe = recipe;
        rec.backend = duts[d].label;
        rec.program = sc.program;
        rec.quirk_signature = dut.config().quirks.signature();
        rec.kind = raw->kind;
        rec.detail = raw->detail;
        rec.first_diverging_packet = raw->first_diverging_packet;

        // Minimize: the shortest stimulus prefix that still diverges.
        if (options.minimize) {
            for (std::size_t k = 1; k <= packets.size(); ++k) {
                const std::vector<packet::Packet> prefix(packets.begin(),
                                                         packets.begin() + k);
                const DeviceRun r = run_scenario_on(*ctx.reference, sc, prefix,
                                                    options.batch_size);
                const DeviceRun u = run_scenario_on(
                    dut, sc, prefix, options.batch_size, mgmt, &outcome.mgmt);
                outcome.packets += r.injected + u.injected;
                if (diff_runs(u, r)) {
                    rec.minimized_count = k;
                    rec.minimized_reproduces = true;
                    break;
                }
            }
        }

        // Localize: replay the minimized trigger through the stage taps.
        const std::uint64_t trigger =
            rec.minimized_count ? rec.minimized_count : packets.size();
        if (options.localize && trigger > 0) {
            const std::vector<packet::Packet> warmup(
                packets.begin(), packets.begin() + (trigger - 1));
            const DeviceRun r = run_scenario_on(*ctx.reference, sc, warmup,
                                                options.batch_size);
            const DeviceRun u = run_scenario_on(
                dut, sc, warmup, options.batch_size, mgmt, &outcome.mgmt);
            outcome.packets += r.injected + u.injected;
            FaultLocalizer localizer(dut, *ctx.reference);
            rec.localized = localizer.localize_binary(packets[trigger - 1]);
            outcome.packets += rec.localized.packets_replayed;
        }

        const std::string stage =
            rec.localized.diverged
                ? dataplane::stage_name(rec.localized.stage)
                : (rec.kind == "config"  ? "control"
                   : rec.kind == "mgmt"  ? "mgmt"
                   : rec.kind == "state" ? "state"
                                         : "unlocalized");
        rec.fingerprint = rec.backend + "|" + rec.quirk_signature + "|" + stage;
        outcome.findings.push_back(std::move(rec));
    }

    // Telemetry: scenario counters are exact (divergences counted here, once
    // per raw finding; fold() only traces the post-dedup fresh ones).
    if (obs::metrics_on()) {
        obs::count(obs::Counter::scenarios);
        obs::count(obs::Counter::divergences, outcome.findings.size());
        obs::record(obs::Hist::scenario_ns, obs::now_ns() - obs_t0);
    }
    if (obs::trace_on()) {
        obs::trace_complete("scenario", obs_t0, obs::now_ns() - obs_t0, "seed",
                            sc.seed, "findings", outcome.findings.size());
    }
}

bool ReportBuilder::fold(ScenarioOutcome& outcome) {
    // Merge in scenario order so the report never depends on scheduling;
    // dedup keeps the first finding per fingerprint and counts the rest.
    ++merge_ordinal_;
    report_->packets_injected += outcome.packets;
    report_->mgmt.add(outcome.mgmt);
    bool fresh = false;
    for (auto& rec : outcome.findings) {
        ++report_->findings_total;
        const auto it = seen_.find(rec.fingerprint);
        if (it == seen_.end()) {
            rec.discovered_at = merge_ordinal_;
            if (obs::trace_on()) {
                obs::trace_instant("divergence", "seed", rec.seed, "ordinal",
                                   merge_ordinal_);
            }
            seen_.emplace(rec.fingerprint, report_->divergences.size());
            report_->divergences.push_back(std::move(rec));
            fresh = true;
        } else {
            ++report_->divergences[it->second].duplicates;
        }
    }
    return fresh;
}

}  // namespace ndb::core
