#include "core/generator.h"

#include "util/strings.h"

namespace ndb::core {

std::string GeneratorStats::to_string() const {
    return util::format("injected=%llu span=[%llu..%llu]ns offered=%.0f pps",
                        static_cast<unsigned long long>(injected),
                        static_cast<unsigned long long>(first_inject_ns),
                        static_cast<unsigned long long>(last_inject_ns),
                        offered_pps);
}

TestPacketGenerator::TestPacketGenerator(const TestSpec& spec) : spec_(spec) {
    if (spec_.mutator) {
        const auto& prog = *spec_.mutator;
        mut_tables_ = std::make_unique<dataplane::TableSet>(prog, 0, false);
        mut_stateful_ = std::make_unique<dataplane::StatefulSet>(prog);
        if (prog.usermeta >= 0) {
            const int f =
                prog.headers[static_cast<std::size_t>(prog.usermeta)].field_index(
                    "seq");
            if (f >= 0) mut_seq_field_ = {prog.usermeta, f};
        }
        dataplane::PipelineOptions options;
        // Deliver the sequence number into the mutator's `meta.seq` right
        // after its parser ran, so the P4 program can compute fields from it.
        options.stage_hook = [this, &prog](dataplane::Stage stage,
                                           dataplane::PacketState& state) {
            if (stage == dataplane::Stage::parser && mut_seq_field_.valid()) {
                const int w = prog.field(mut_seq_field_).width;
                state.set(mut_seq_field_, util::Bitvec(w, current_seq_));
            }
        };
        mut_pipeline_ = std::make_unique<dataplane::Pipeline>(
            prog, *mut_tables_, *mut_stateful_, options);
    }
}

TestPacketGenerator::~TestPacketGenerator() = default;

void TestPacketGenerator::write_stamp(packet::Packet& pkt, std::uint64_t seq,
                                      std::uint64_t t_ns) {
    if (pkt.size() < kStampBytes + 14) pkt.resize(kStampBytes + 14);
    const std::size_t base = pkt.size() - kStampBytes;
    for (int i = 0; i < 8; ++i) {
        pkt.set_byte(base + static_cast<std::size_t>(i),
                     static_cast<std::uint8_t>(seq >> (56 - 8 * i)));
        pkt.set_byte(base + 8 + static_cast<std::size_t>(i),
                     static_cast<std::uint8_t>(t_ns >> (56 - 8 * i)));
    }
}

bool TestPacketGenerator::read_stamp(const packet::Packet& pkt, std::uint64_t& seq,
                                     std::uint64_t& t_ns) {
    if (pkt.size() < kStampBytes) return false;
    const std::size_t base = pkt.size() - kStampBytes;
    seq = 0;
    t_ns = 0;
    for (int i = 0; i < 8; ++i) {
        seq = (seq << 8) | pkt.byte(base + static_cast<std::size_t>(i));
        t_ns = (t_ns << 8) | pkt.byte(base + 8 + static_cast<std::size_t>(i));
    }
    return true;
}

packet::Packet TestPacketGenerator::make_packet(std::uint64_t seq,
                                                std::uint64_t inject_ns) {
    packet::Packet pkt = instantiate(spec_.tmpl, seq);

    if (mut_pipeline_) {
        // Run the P4 mutator on the candidate packet.  The convention: the
        // mutator's user metadata field `seq` receives the sequence number;
        // the generated packet is whatever the program forwards.  A mutator
        // that drops is a configuration error; the template packet is used.
        packet::Packet staged = pkt;
        staged.meta.ingress_port = 0;
        staged.meta.rx_time_ns = inject_ns;
        current_seq_ = seq;
        dataplane::PipelineResult result = mut_pipeline_->process(staged);
        if (result.disposition == dataplane::Disposition::forwarded &&
            !result.output.empty()) {
            pkt = result.output;
        }
    }

    pkt.meta.id = seq;
    pkt.meta.ingress_port = spec_.inject_port;
    pkt.meta.rx_time_ns = inject_ns;
    write_stamp(pkt, seq, inject_ns);
    return pkt;
}

GeneratorStats TestPacketGenerator::run(target::Device& device) {
    GeneratorStats stats;
    const double interval_ns = spec_.rate_pps > 0 ? 1e9 / spec_.rate_pps : 0.0;
    const std::uint64_t base_ns = device.now_ns();
    for (std::uint64_t seq = 1; seq <= spec_.count; ++seq) {
        const std::uint64_t t =
            base_ns + static_cast<std::uint64_t>(interval_ns *
                                                 static_cast<double>(seq - 1));
        packet::Packet pkt = make_packet(seq, t);
        if (stats.injected == 0) stats.first_inject_ns = t;
        stats.last_inject_ns = t;
        ++stats.injected;
        device.inject(std::move(pkt));
    }
    const double span =
        static_cast<double>(stats.last_inject_ns - stats.first_inject_ns) + 1.0;
    stats.offered_pps = static_cast<double>(stats.injected) * 1e9 / span;
    return stats;
}

}  // namespace ndb::core
