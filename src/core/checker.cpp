#include "core/checker.h"

#include "core/generator.h"
#include "util/strings.h"

namespace ndb::core {

std::string CheckReport::to_string() const {
    std::string s = util::format(
        "observed=%llu violations=%llu gaps=%llu dup/reorder=%llu -> %s\n",
        static_cast<unsigned long long>(observed),
        static_cast<unsigned long long>(violations),
        static_cast<unsigned long long>(seq_gaps),
        static_cast<unsigned long long>(seq_dups_or_reorder),
        passed ? "PASS" : "FAIL");
    for (const auto& r : rules) {
        s += util::format("  rule [%s]: checked=%llu violations=%llu\n",
                          r.description.c_str(),
                          static_cast<unsigned long long>(r.checked),
                          static_cast<unsigned long long>(r.violations));
    }
    for (const auto& f : samples) {
        s += util::format("  sample: seq=%llu port=%u %s\n",
                          static_cast<unsigned long long>(f.seq), f.port,
                          f.reason.c_str());
    }
    return s;
}

OutputPacketChecker::OutputPacketChecker(const TestSpec& spec,
                                         std::size_t max_failure_samples)
    : spec_(spec), max_samples_(max_failure_samples) {
    for (const auto& e : spec_.expectations) {
        report_.rules.push_back({e.describe(), 0, 0});
    }
    if (spec_.checker) {
        const auto& prog = *spec_.checker;
        chk_tables_ = std::make_unique<dataplane::TableSet>(prog, 0, false);
        chk_stateful_ = std::make_unique<dataplane::StatefulSet>(prog);
        chk_pipeline_ = std::make_unique<dataplane::Pipeline>(
            prog, *chk_tables_, *chk_stateful_, dataplane::PipelineOptions{});
        p4_rule_index_ = report_.rules.size();
        report_.rules.push_back({"P4 checker program accepts packet", 0, 0});
    }
}

OutputPacketChecker::~OutputPacketChecker() = default;

void OutputPacketChecker::record_violation(std::size_t rule,
                                           const packet::Packet& pkt,
                                           std::uint32_t port, std::string reason) {
    ++report_.rules[rule].violations;
    ++report_.violations;
    if (report_.samples.size() < max_samples_) {
        std::uint64_t seq = 0, t = 0;
        TestPacketGenerator::read_stamp(pkt, seq, t);
        report_.samples.push_back({seq, port, std::move(reason)});
    }
}

void OutputPacketChecker::observe(const packet::Packet& pkt, std::uint32_t port) {
    ++report_.observed;

    std::uint64_t seq = 0, stamp_ns = 0;
    const bool stamped = TestPacketGenerator::read_stamp(pkt, seq, stamp_ns);
    if (stamped && pkt.meta.tx_time_ns >= stamp_ns) {
        report_.latency_ns.add(pkt.meta.tx_time_ns - stamp_ns);
    }
    if (stamped) {
        if (seq == next_expected_seq_) {
            ++next_expected_seq_;
        } else if (seq > next_expected_seq_) {
            report_.seq_gaps += seq - next_expected_seq_;
            next_expected_seq_ = seq + 1;
        } else {
            ++report_.seq_dups_or_reorder;
        }
        max_seq_seen_ = std::max(max_seq_seen_, seq);
    }

    for (std::size_t i = 0; i < spec_.expectations.size(); ++i) {
        const Expectation& e = spec_.expectations[i];
        auto& rule = report_.rules[i];
        switch (e.kind) {
            case Expectation::Kind::forwarded_on_port: {
                ++rule.checked;
                if (port != e.port) {
                    record_violation(i, pkt, port,
                                     util::format("expected port %u, saw port %u",
                                                  e.port, port));
                }
                break;
            }
            case Expectation::Kind::all_dropped: {
                ++rule.checked;
                record_violation(i, pkt, port,
                                 "packet observed although all must be dropped");
                break;
            }
            case Expectation::Kind::field_equals: {
                ++rule.checked;
                if (pkt.size() * 8 < e.bit_offset + static_cast<std::size_t>(e.width)) {
                    record_violation(i, pkt, port, "packet too short for field");
                    break;
                }
                const util::Bitvec got = pkt.extract_bits(e.bit_offset, e.width);
                if (!got.eq(e.value.resize(e.width))) {
                    record_violation(
                        i, pkt, port,
                        util::format("field@%zu:%d = %s, expected %s", e.bit_offset,
                                     e.width, got.to_hex().c_str(),
                                     e.value.resize(e.width).to_hex().c_str()));
                }
                break;
            }
            case Expectation::Kind::field_preserved: {
                ++rule.checked;
                // Compare against the regenerated input for this sequence.
                if (!stamped) break;
                const packet::Packet original = instantiate(spec_.tmpl, seq);
                if (original.size() * 8 <
                        e.bit_offset + static_cast<std::size_t>(e.width) ||
                    pkt.size() * 8 <
                        e.bit_offset + static_cast<std::size_t>(e.width)) {
                    record_violation(i, pkt, port, "packet too short for field");
                    break;
                }
                const util::Bitvec want = original.extract_bits(e.bit_offset, e.width);
                const util::Bitvec got = pkt.extract_bits(e.bit_offset, e.width);
                if (!got.eq(want)) {
                    record_violation(
                        i, pkt, port,
                        util::format("field@%zu:%d changed: %s -> %s", e.bit_offset,
                                     e.width, want.to_hex().c_str(),
                                     got.to_hex().c_str()));
                }
                break;
            }
            case Expectation::Kind::latency_below_ns: {
                if (!stamped) break;
                ++rule.checked;
                const std::uint64_t lat =
                    pkt.meta.tx_time_ns >= stamp_ns ? pkt.meta.tx_time_ns - stamp_ns
                                                    : 0;
                if (lat > e.latency_ns) {
                    record_violation(i, pkt, port,
                                     util::format("latency %llu ns > bound %llu ns",
                                                  static_cast<unsigned long long>(lat),
                                                  static_cast<unsigned long long>(
                                                      e.latency_ns)));
                }
                break;
            }
            case Expectation::Kind::seq_contiguous:
            case Expectation::Kind::min_delivery:
                break;  // settled in finalize()
        }
    }

    if (chk_pipeline_) {
        auto& rule = report_.rules[p4_rule_index_];
        ++rule.checked;
        packet::Packet staged = pkt;
        staged.meta.ingress_port = 0;
        const dataplane::PipelineResult result = chk_pipeline_->process(staged);
        if (result.disposition != dataplane::Disposition::forwarded) {
            record_violation(p4_rule_index_, pkt, port,
                             "P4 checker program rejected the packet");
        }
    }
}

CheckReport OutputPacketChecker::finalize(std::uint64_t injected_count) {
    for (std::size_t i = 0; i < spec_.expectations.size(); ++i) {
        const Expectation& e = spec_.expectations[i];
        auto& rule = report_.rules[i];
        switch (e.kind) {
            case Expectation::Kind::seq_contiguous: {
                ++rule.checked;
                if (report_.seq_gaps || report_.seq_dups_or_reorder) {
                    ++rule.violations;
                    ++report_.violations;
                }
                break;
            }
            case Expectation::Kind::min_delivery: {
                ++rule.checked;
                const double delivered =
                    injected_count ? static_cast<double>(report_.observed) /
                                         static_cast<double>(injected_count)
                                   : 1.0;
                if (delivered + 1e-12 < e.fraction) {
                    ++rule.violations;
                    ++report_.violations;
                    if (report_.samples.size() < max_samples_) {
                        report_.samples.push_back(
                            {0, 0,
                             util::format("delivery %.1f%% below %.1f%%",
                                          delivered * 100.0, e.fraction * 100.0)});
                    }
                }
                break;
            }
            default:
                break;
        }
    }
    report_.passed = report_.violations == 0;
    return report_;
}

}  // namespace ndb::core
