#include "core/mutate.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/random.h"
#include "util/strings.h"

namespace ndb::core {

using util::Bitvec;
using util::Rng;

namespace {

// Decorrelates the mutation-derivation RNG stream from the scenario seed
// stream (both are fed the same slot seeds by the campaign engine).
constexpr std::uint64_t kDeriveSalt = 0x6d75746174652121ull;  // "mutate!!"

struct OpNameEntry {
    MutationOp::Kind kind;
    const char* name;
};

constexpr OpNameEntry kOpNames[] = {
    {MutationOp::Kind::field_flip, "flip"},
    {MutationOp::Kind::field_boundary, "bound"},
    {MutationOp::Kind::packet_byte, "byte"},
    {MutationOp::Kind::config_drop, "cfgdrop"},
    {MutationOp::Kind::config_dup, "cfgdup"},
    {MutationOp::Kind::config_swap, "cfgswap"},
    {MutationOp::Kind::splice, "splice"},
};

bool parse_u64(std::string_view text, std::uint64_t& out) {
    if (text.empty()) return false;
    std::uint64_t value = 0;
    for (const char c : text) {
        if (c < '0' || c > '9') return false;
        const auto digit = static_cast<std::uint64_t>(c - '0');
        // Overflow is damage, not a value: wrapping would silently replay
        // a different mutation.
        if (value > (UINT64_MAX - digit) / 10) return false;
        value = value * 10 + digit;
    }
    out = value;
    return true;
}

}  // namespace

const char* mutation_op_name(MutationOp::Kind kind) {
    for (const auto& e : kOpNames) {
        if (e.kind == kind) return e.name;
    }
    return "?";
}

// --- recipe text form ---------------------------------------------------------

std::string MutationRecipe::encode() const {
    std::string out = util::format(
        "%s#%llu", program.c_str(),
        static_cast<unsigned long long>(parent_seed));
    for (const MutationOp& op : ops) {
        out += util::format("|%s:%llu:%llu", mutation_op_name(op.kind),
                            static_cast<unsigned long long>(op.a),
                            static_cast<unsigned long long>(op.b));
    }
    return out;
}

std::optional<MutationRecipe> MutationRecipe::parse(std::string_view text) {
    MutationRecipe recipe;
    std::size_t start = 0;
    bool first = true;
    while (start <= text.size()) {
        const std::size_t bar = text.find('|', start);
        const std::string_view item = text.substr(
            start, bar == std::string_view::npos ? std::string_view::npos
                                                 : bar - start);
        if (first) {
            const std::size_t hash = item.find('#');
            if (hash == std::string_view::npos || hash == 0) return std::nullopt;
            recipe.program = std::string(item.substr(0, hash));
            if (!parse_u64(item.substr(hash + 1), recipe.parent_seed)) {
                return std::nullopt;
            }
            first = false;
        } else {
            // Strictly name:a:b -- the encoder always writes both operands,
            // so a missing one means truncation or hand-editing damage and
            // must fail loudly rather than replay a different mutation.
            const std::size_t c1 = item.find(':');
            if (c1 == std::string_view::npos) return std::nullopt;
            const std::size_t c2 = item.find(':', c1 + 1);
            if (c2 == std::string_view::npos) return std::nullopt;
            MutationOp op;
            const std::string_view name = item.substr(0, c1);
            bool known = false;
            for (const auto& e : kOpNames) {
                if (name == e.name) {
                    op.kind = e.kind;
                    known = true;
                    break;
                }
            }
            if (!known) return std::nullopt;
            if (!parse_u64(item.substr(c1 + 1, c2 - c1 - 1), op.a)) {
                return std::nullopt;
            }
            if (!parse_u64(item.substr(c2 + 1), op.b)) return std::nullopt;
            recipe.ops.push_back(op);
        }
        if (bar == std::string_view::npos) break;
        start = bar + 1;
    }
    if (first) return std::nullopt;  // empty input
    return recipe;
}

// --- corpus -------------------------------------------------------------------

std::size_t ScenarioCorpus::load_dir(const std::string& dir,
                                     const std::vector<std::string>& programs) {
    if (!std::filesystem::is_directory(dir)) return 0;
    std::vector<std::filesystem::path> files;
    for (const auto& file : std::filesystem::directory_iterator(dir)) {
        if (file.path().extension() == ".corpus") files.push_back(file.path());
    }
    std::sort(files.begin(), files.end());

    std::size_t loaded = 0;
    for (const auto& path : files) {
        std::ifstream in(path);
        std::string line, program, recipe;
        std::uint64_t seed = 0;
        bool seed_ok = false;
        while (std::getline(in, line)) {
            if (line.empty() || line[0] == '#') continue;
            const std::size_t eq = line.find('=');
            if (eq == std::string::npos) continue;
            const std::string key = line.substr(0, eq);
            const std::string value = line.substr(eq + 1);
            // seed= gets the same strict parse as recipe operands: a
            // damaged line must skip the entry, not load a different seed.
            if (key == "seed") seed_ok = parse_u64(value, seed);
            else if (key == "program") program = value;
            else if (key == "mutate") recipe = value;
        }
        if (program.empty() || !seed_ok) continue;
        if (std::find(programs.begin(), programs.end(), program) ==
            programs.end()) {
            continue;  // outside this campaign's catalogue slice
        }
        if (!recipe.empty()) {
            // The recipe must both parse and name the entry's own program:
            // an inconsistent file would otherwise smuggle an out-of-
            // catalogue (or misfiled) parent past the filter above and blow
            // up a worker at apply() time.
            const auto parsed = MutationRecipe::parse(recipe);
            if (!parsed || parsed->program != program) continue;
        }
        if (add(program, seed, recipe)) ++loaded;
    }
    return loaded;
}

bool ScenarioCorpus::add(const std::string& program, std::uint64_t seed,
                         const std::string& recipe) {
    const std::string key = util::format(
        "%s#%llu#%s", program.c_str(), static_cast<unsigned long long>(seed),
        recipe.c_str());
    if (!keys_.insert(key).second) return false;
    by_program_[program].push_back(CorpusEntry{program, seed, recipe});
    ++total_;
    return true;
}

const std::vector<CorpusEntry>& ScenarioCorpus::entries(
    const std::string& program) const {
    static const std::vector<CorpusEntry> kEmpty;
    const auto it = by_program_.find(program);
    return it == by_program_.end() ? kEmpty : it->second;
}

// --- mutator ------------------------------------------------------------------

std::size_t Mutator::program_index(const std::string& program) const {
    const auto& programs = gen_->programs();
    const auto it = std::find(programs.begin(), programs.end(), program);
    if (it == programs.end()) {
        throw std::invalid_argument("mutate: recipe names program '" + program +
                                    "' outside the generator's catalogue");
    }
    return static_cast<std::size_t>(it - programs.begin());
}

MutationRecipe Mutator::derive(const ScenarioCorpus& corpus,
                               const CorpusEntry& parent,
                               std::uint64_t seed) const {
    MutationRecipe recipe;
    if (!parent.recipe.empty()) {
        // Chain: extend the mutant parent's own op list, unless this
        // derivation's worst case (one splice + four havoc ops) would push
        // past the cap -- then restart from its root seed so a recipe
        // never exceeds kMaxChainOps ops.
        if (auto parsed = MutationRecipe::parse(parent.recipe)) {
            if (parsed->ops.size() + kMaxOpsPerDerive <= kMaxChainOps) {
                recipe = std::move(*parsed);
            } else {
                recipe.program = parsed->program;
                recipe.parent_seed = parsed->parent_seed;
            }
        }
    }
    if (recipe.program.empty()) {
        recipe.program = parent.program;
        recipe.parent_seed = parent.seed;
    }

    Rng rng(seed ^ kDeriveSalt);

    // Splice goes to the *front* of the whole chain, and a chain carries at
    // most one: a splice replaces the packet plan wholesale, so anywhere
    // later it would wipe exactly the perturbations (or an earlier donor's
    // plan) that earned the parent its corpus slot.  Applied first, the
    // inherited (and new) havoc ops perturb the spliced result instead.
    // Donors are fresh same-program corpus entries -- a donor seed is all
    // the recipe needs to rebuild the donor's packet plan on replay.
    const std::vector<CorpusEntry>& pool = corpus.entries(recipe.program);
    std::vector<const CorpusEntry*> donors;
    for (const CorpusEntry& e : pool) {
        if (e.recipe.empty() && e.seed != recipe.parent_seed) {
            donors.push_back(&e);
        }
    }
    const bool chain_has_splice = std::any_of(
        recipe.ops.begin(), recipe.ops.end(), [](const MutationOp& op) {
            return op.kind == MutationOp::Kind::splice;
        });
    if (!donors.empty() && !chain_has_splice && rng.next_bool(0.3)) {
        MutationOp op;
        op.kind = MutationOp::Kind::splice;
        op.a = rng.next_below(9);  // config prefix kept (mod at apply)
        op.b = donors[rng.next_below(donors.size())]->seed;
        recipe.ops.insert(recipe.ops.begin(), op);
    }

    const std::uint64_t havoc = rng.next_range(1, 4);
    for (std::uint64_t i = 0; i < havoc; ++i) {
        static constexpr MutationOp::Kind kHavoc[] = {
            MutationOp::Kind::field_flip,    MutationOp::Kind::field_flip,
            MutationOp::Kind::field_boundary, MutationOp::Kind::packet_byte,
            MutationOp::Kind::packet_byte,   MutationOp::Kind::config_drop,
            MutationOp::Kind::config_dup,    MutationOp::Kind::config_swap,
        };
        MutationOp op;
        op.kind = kHavoc[rng.next_below(std::size(kHavoc))];
        op.a = rng.next_u64();
        op.b = rng.next_u64();
        recipe.ops.push_back(op);
    }
    return recipe;
}

Scenario Mutator::apply(const MutationRecipe& recipe) const {
    const std::size_t idx = program_index(recipe.program);
    Scenario s = gen_->make_for(idx, recipe.parent_seed);

    for (const MutationOp& op : recipe.ops) {
        switch (op.kind) {
            case MutationOp::Kind::field_flip: {
                auto& muts = s.spec.tmpl.mutations;
                if (muts.empty()) break;
                FieldMutation& m = muts[op.a % muts.size()];
                if (m.width <= 0) break;
                Bitvec mask(m.width, op.b);
                if (mask.is_zero()) mask = Bitvec(m.width, 1);
                m.value = m.value.bxor(mask);
                break;
            }
            case MutationOp::Kind::field_boundary: {
                auto& muts = s.spec.tmpl.mutations;
                if (muts.empty()) break;
                FieldMutation& m = muts[op.a % muts.size()];
                if (m.width <= 0) break;
                switch (op.b % 3) {
                    case 0: m.value = Bitvec(m.width); break;
                    case 1: m.value = Bitvec::ones(m.width); break;
                    default: m.value = Bitvec(m.width, 1); break;
                }
                break;
            }
            case MutationOp::Kind::packet_byte: {
                packet::Packet& base = s.spec.tmpl.base;
                if (base.empty()) break;
                const std::size_t off = op.a % base.size();
                const auto mask = static_cast<std::uint8_t>(op.b % 255 + 1);
                base.set_byte(off, base.byte(off) ^ mask);
                break;
            }
            case MutationOp::Kind::config_drop: {
                if (s.config.empty()) break;
                s.config.erase(s.config.begin() +
                               static_cast<std::ptrdiff_t>(op.a % s.config.size()));
                break;
            }
            case MutationOp::Kind::config_dup: {
                if (s.config.empty()) break;
                ConfigOp copy = s.config[op.a % s.config.size()];
                s.config.insert(
                    s.config.begin() +
                        static_cast<std::ptrdiff_t>(op.b % (s.config.size() + 1)),
                    std::move(copy));
                break;
            }
            case MutationOp::Kind::config_swap: {
                if (s.config.size() < 2) break;
                std::size_t i = op.a % s.config.size();
                std::size_t j = op.b % s.config.size();
                if (i == j) j = (j + 1) % s.config.size();
                std::swap(s.config[i], s.config[j]);
                break;
            }
            case MutationOp::Kind::splice: {
                // Parent's control-plane prefix crossed with the donor's
                // packet plan: the donor is the same catalogue program, so
                // its stimulus stays meaningful against the kept config.
                const Scenario donor = gen_->make_for(idx, op.b);
                const std::size_t prefix = op.a % (s.config.size() + 1);
                s.config.resize(prefix);
                const std::string name = s.spec.name;
                s.spec = donor.spec;
                s.spec.name = name;
                break;
            }
        }
    }
    s.spec.name += util::format("~m%zu", recipe.ops.size());
    return s;
}

}  // namespace ndb::core
