#include "core/mutate.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <span>
#include <stdexcept>

#include "coverage/coverage.h"
#include "util/random.h"
#include "util/strings.h"

namespace ndb::core {

using util::Bitvec;
using util::Rng;

namespace {

// Decorrelates the mutation-derivation RNG stream from the scenario seed
// stream (both are fed the same slot seeds by the campaign engine).
constexpr std::uint64_t kDeriveSalt = 0x6d75746174652121ull;  // "mutate!!"

struct OpNameEntry {
    MutationOp::Kind kind;
    const char* name;
};

constexpr OpNameEntry kOpNames[] = {
    {MutationOp::Kind::field_flip, "flip"},
    {MutationOp::Kind::field_boundary, "bound"},
    {MutationOp::Kind::packet_byte, "byte"},
    {MutationOp::Kind::config_drop, "cfgdrop"},
    {MutationOp::Kind::config_dup, "cfgdup"},
    {MutationOp::Kind::config_swap, "cfgswap"},
    {MutationOp::Kind::splice, "splice"},
};

using util::parse_u64;

// Lowercase hex image of a byte string (two digits per byte).
std::string hex_encode(std::span<const std::uint8_t> bytes) {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (const std::uint8_t b : bytes) {
        out += kDigits[b >> 4];
        out += kDigits[b & 0xf];
    }
    return out;
}

// Strict inverse of hex_encode: non-empty, even length, hex digits only
// (either case).  Anything else is damage and must fail, not round down.
bool hex_decode(std::string_view text, std::vector<std::uint8_t>& out) {
    if (text.empty() || text.size() % 2 != 0) return false;
    out.clear();
    out.reserve(text.size() / 2);
    int acc = 0;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        int digit = 0;
        if (c >= '0' && c <= '9') digit = c - '0';
        else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
        else return false;
        acc = (acc << 4) | digit;
        if (i % 2 == 1) {
            out.push_back(static_cast<std::uint8_t>(acc));
            acc = 0;
        }
    }
    return true;
}

// Adversarial .corpus files must not allocate unboundedly: cap the decoded
// packet at jumbo-frame scale.
constexpr std::size_t kMaxConcolicPacketBytes = 9216;

}  // namespace

const char* mutation_op_name(MutationOp::Kind kind) {
    for (const auto& e : kOpNames) {
        if (e.kind == kind) return e.name;
    }
    return "?";
}

// --- recipe text form ---------------------------------------------------------

std::string MutationRecipe::encode() const {
    std::string out = util::format(
        "%s#%llu", program.c_str(),
        static_cast<unsigned long long>(parent_seed));
    for (const MutationOp& op : ops) {
        out += util::format("|%s:%llu:%llu", mutation_op_name(op.kind),
                            static_cast<unsigned long long>(op.a),
                            static_cast<unsigned long long>(op.b));
    }
    return out;
}

std::optional<MutationRecipe> MutationRecipe::parse(std::string_view text) {
    MutationRecipe recipe;
    std::size_t start = 0;
    bool first = true;
    while (start <= text.size()) {
        const std::size_t bar = text.find('|', start);
        const std::string_view item = text.substr(
            start, bar == std::string_view::npos ? std::string_view::npos
                                                 : bar - start);
        if (first) {
            const std::size_t hash = item.find('#');
            if (hash == std::string_view::npos || hash == 0) return std::nullopt;
            recipe.program = std::string(item.substr(0, hash));
            if (!parse_u64(item.substr(hash + 1), recipe.parent_seed)) {
                return std::nullopt;
            }
            first = false;
        } else {
            // Strictly name:a:b -- the encoder always writes both operands,
            // so a missing one means truncation or hand-editing damage and
            // must fail loudly rather than replay a different mutation.
            const std::size_t c1 = item.find(':');
            if (c1 == std::string_view::npos) return std::nullopt;
            const std::size_t c2 = item.find(':', c1 + 1);
            if (c2 == std::string_view::npos) return std::nullopt;
            MutationOp op;
            const std::string_view name = item.substr(0, c1);
            bool known = false;
            for (const auto& e : kOpNames) {
                if (name == e.name) {
                    op.kind = e.kind;
                    known = true;
                    break;
                }
            }
            if (!known) return std::nullopt;
            if (!parse_u64(item.substr(c1 + 1, c2 - c1 - 1), op.a)) {
                return std::nullopt;
            }
            if (!parse_u64(item.substr(c2 + 1), op.b)) return std::nullopt;
            recipe.ops.push_back(op);
        }
        if (bar == std::string_view::npos) break;
        start = bar + 1;
    }
    if (first) return std::nullopt;  // empty input
    return recipe;
}

// --- concolic recipe text form ------------------------------------------------

std::string ConcolicRecipe::encode() const {
    std::string out = util::format("%s@%llu|port:%u|pkt:%s", program.c_str(),
                                   static_cast<unsigned long long>(slot),
                                   ingress_port, hex_encode(packet).c_str());
    for (const Default& def : defaults) {
        out += util::format("|def:%s:%s", def.table.c_str(), def.action.c_str());
        for (const auto& arg : def.args) out += ":" + hex_encode(arg);
    }
    return out;
}

std::optional<ConcolicRecipe> ConcolicRecipe::parse(std::string_view text) {
    ConcolicRecipe recipe;
    const auto items = util::split(text, '|');
    if (items.empty()) return std::nullopt;

    // Head: "program@slot".  '@' is never part of a MutationRecipe head, so
    // the two parsers reject each other's text by construction.
    const std::string_view head = items[0];
    const std::size_t at = head.find('@');
    if (at == std::string_view::npos || at == 0) return std::nullopt;
    recipe.program = std::string(head.substr(0, at));
    if (!parse_u64(head.substr(at + 1), recipe.slot)) return std::nullopt;
    if (recipe.slot >= coverage::CoverageMap::kSlots) return std::nullopt;

    bool have_port = false;
    bool have_packet = false;
    for (std::size_t i = 1; i < items.size(); ++i) {
        const std::string_view item = items[i];
        const std::size_t colon = item.find(':');
        if (colon == std::string_view::npos) return std::nullopt;
        const std::string_view key = item.substr(0, colon);
        const std::string_view value = item.substr(colon + 1);
        if (key == "port") {
            std::uint64_t port = 0;
            if (have_port || !parse_u64(value, port)) return std::nullopt;
            // kDropPort is the widest legal 9-bit port value.
            if (port > p4::ir::kDropPort) return std::nullopt;
            recipe.ingress_port = static_cast<std::uint32_t>(port);
            have_port = true;
        } else if (key == "pkt") {
            if (have_packet || !hex_decode(value, recipe.packet)) {
                return std::nullopt;
            }
            if (recipe.packet.empty() ||
                recipe.packet.size() > kMaxConcolicPacketBytes) {
                return std::nullopt;
            }
            have_packet = true;
        } else if (key == "def") {
            const auto parts = util::split(value, ':');
            if (parts.size() < 2 || parts[0].empty() || parts[1].empty()) {
                return std::nullopt;
            }
            Default def;
            def.table = parts[0];
            def.action = parts[1];
            for (std::size_t p = 2; p < parts.size(); ++p) {
                std::vector<std::uint8_t> arg;
                if (!hex_decode(parts[p], arg)) return std::nullopt;
                def.args.push_back(std::move(arg));
            }
            // One default per table: two would be a self-contradictory
            // control plane, not a replayable scenario.
            for (const Default& prev : recipe.defaults) {
                if (prev.table == def.table) return std::nullopt;
            }
            recipe.defaults.push_back(std::move(def));
        } else {
            return std::nullopt;  // unknown section key
        }
    }
    if (!have_port || !have_packet) return std::nullopt;
    return recipe;
}

// --- corpus -------------------------------------------------------------------

std::size_t ScenarioCorpus::load_dir(const std::string& dir,
                                     const std::vector<std::string>& programs) {
    diagnostics_.clear();
    if (!std::filesystem::is_directory(dir)) return 0;
    std::vector<std::filesystem::path> files;
    for (const auto& file : std::filesystem::directory_iterator(dir)) {
        if (file.path().extension() == ".corpus") files.push_back(file.path());
    }
    std::sort(files.begin(), files.end());

    std::size_t loaded = 0;
    for (const auto& path : files) {
        const std::string fname = path.filename().string();
        const auto reject = [&](const std::string& why) {
            diagnostics_.push_back(fname + ": " + why);
        };
        std::ifstream in(path);
        std::string line, program, mutate_recipe, concolic_recipe;
        std::uint64_t seed = 0;
        bool seed_ok = false;
        bool damaged = false;
        int lineno = 0;
        while (std::getline(in, line)) {
            ++lineno;
            if (line.empty() || line[0] == '#') continue;
            const std::size_t eq = line.find('=');
            if (eq == std::string::npos) {
                reject(util::format("line %d: no '=' separator", lineno));
                damaged = true;
                break;
            }
            const std::string key = line.substr(0, eq);
            const std::string value = line.substr(eq + 1);
            // seed= gets the same strict parse as recipe operands: a
            // damaged line must reject the entry, not load a different seed.
            if (key == "seed") {
                seed_ok = parse_u64(value, seed);
                if (!seed_ok) {
                    reject(util::format("line %d: unparseable seed '%s'",
                                        lineno, value.c_str()));
                    damaged = true;
                    break;
                }
            } else if (key == "program") {
                program = value;
            } else if (key == "mutate") {
                mutate_recipe = value;
            } else if (key == "concolic") {
                concolic_recipe = value;
            } else if (key == "backend" || key == "quirks" || key == "stage") {
                // Soak-mode provenance; informational only.
            } else {
                reject(util::format("line %d: unknown key '%s'", lineno,
                                    key.c_str()));
                damaged = true;
                break;
            }
        }
        if (damaged) continue;
        if (program.empty() || !seed_ok) {
            reject("missing program= or seed= line");
            continue;
        }
        if (!mutate_recipe.empty() && !concolic_recipe.empty()) {
            reject("both mutate= and concolic= present; an entry is one kind");
            continue;
        }
        if (std::find(programs.begin(), programs.end(), program) ==
            programs.end()) {
            continue;  // outside this campaign's catalogue slice
        }
        if (!mutate_recipe.empty()) {
            // The recipe must both parse and name the entry's own program:
            // an inconsistent file would otherwise smuggle an out-of-
            // catalogue (or misfiled) parent past the filter above and blow
            // up a worker at apply() time.
            const auto parsed = MutationRecipe::parse(mutate_recipe);
            if (!parsed) {
                reject("malformed mutate= recipe: " + mutate_recipe);
                continue;
            }
            if (parsed->program != program) {
                reject("mutate= recipe names program '" + parsed->program +
                       "' but entry is for '" + program + "'");
                continue;
            }
        }
        if (!concolic_recipe.empty()) {
            const auto parsed = ConcolicRecipe::parse(concolic_recipe);
            if (!parsed) {
                reject("malformed concolic= recipe: " + concolic_recipe);
                continue;
            }
            if (parsed->program != program) {
                reject("concolic= recipe names program '" + parsed->program +
                       "' but entry is for '" + program + "'");
                continue;
            }
            if (parsed->slot != seed) {
                reject(util::format(
                    "concolic= slot %llu disagrees with seed=%llu",
                    static_cast<unsigned long long>(parsed->slot),
                    static_cast<unsigned long long>(seed)));
                continue;
            }
        }
        const bool concolic = !concolic_recipe.empty();
        const std::string& recipe = concolic ? concolic_recipe : mutate_recipe;
        if (add(program, seed, recipe, concolic)) ++loaded;
    }
    return loaded;
}

bool ScenarioCorpus::add(const std::string& program, std::uint64_t seed,
                         const std::string& recipe, bool concolic) {
    const std::string key = util::format(
        "%s#%llu#%s%s", program.c_str(), static_cast<unsigned long long>(seed),
        concolic ? "c!" : "", recipe.c_str());
    if (!keys_.insert(key).second) return false;
    by_program_[program].push_back(CorpusEntry{program, seed, recipe, concolic});
    ++total_;
    return true;
}

const std::vector<CorpusEntry>& ScenarioCorpus::entries(
    const std::string& program) const {
    static const std::vector<CorpusEntry> kEmpty;
    const auto it = by_program_.find(program);
    return it == by_program_.end() ? kEmpty : it->second;
}

// --- mutator ------------------------------------------------------------------

std::size_t Mutator::program_index(const std::string& program) const {
    const auto& programs = gen_->programs();
    const auto it = std::find(programs.begin(), programs.end(), program);
    if (it == programs.end()) {
        throw std::invalid_argument("mutate: recipe names program '" + program +
                                    "' outside the generator's catalogue");
    }
    return static_cast<std::size_t>(it - programs.begin());
}

MutationRecipe Mutator::derive(const ScenarioCorpus& corpus,
                               const CorpusEntry& parent,
                               std::uint64_t seed) const {
    MutationRecipe recipe;
    if (!parent.recipe.empty()) {
        // Chain: extend the mutant parent's own op list, unless this
        // derivation's worst case (one splice + four havoc ops) would push
        // past the cap -- then restart from its root seed so a recipe
        // never exceeds kMaxChainOps ops.
        if (auto parsed = MutationRecipe::parse(parent.recipe)) {
            if (parsed->ops.size() + kMaxOpsPerDerive <= kMaxChainOps) {
                recipe = std::move(*parsed);
            } else {
                recipe.program = parsed->program;
                recipe.parent_seed = parsed->parent_seed;
            }
        }
    }
    if (recipe.program.empty()) {
        recipe.program = parent.program;
        recipe.parent_seed = parent.seed;
    }

    Rng rng(seed ^ kDeriveSalt);

    // Splice goes to the *front* of the whole chain, and a chain carries at
    // most one: a splice replaces the packet plan wholesale, so anywhere
    // later it would wipe exactly the perturbations (or an earlier donor's
    // plan) that earned the parent its corpus slot.  Applied first, the
    // inherited (and new) havoc ops perturb the spliced result instead.
    // Donors are fresh same-program corpus entries -- a donor seed is all
    // the recipe needs to rebuild the donor's packet plan on replay.
    const std::vector<CorpusEntry>& pool = corpus.entries(recipe.program);
    std::vector<const CorpusEntry*> donors;
    for (const CorpusEntry& e : pool) {
        if (e.recipe.empty() && e.seed != recipe.parent_seed) {
            donors.push_back(&e);
        }
    }
    const bool chain_has_splice = std::any_of(
        recipe.ops.begin(), recipe.ops.end(), [](const MutationOp& op) {
            return op.kind == MutationOp::Kind::splice;
        });
    if (!donors.empty() && !chain_has_splice && rng.next_bool(0.3)) {
        MutationOp op;
        op.kind = MutationOp::Kind::splice;
        op.a = rng.next_below(9);  // config prefix kept (mod at apply)
        op.b = donors[rng.next_below(donors.size())]->seed;
        recipe.ops.insert(recipe.ops.begin(), op);
    }

    const std::uint64_t havoc = rng.next_range(1, 4);
    for (std::uint64_t i = 0; i < havoc; ++i) {
        static constexpr MutationOp::Kind kHavoc[] = {
            MutationOp::Kind::field_flip,    MutationOp::Kind::field_flip,
            MutationOp::Kind::field_boundary, MutationOp::Kind::packet_byte,
            MutationOp::Kind::packet_byte,   MutationOp::Kind::config_drop,
            MutationOp::Kind::config_dup,    MutationOp::Kind::config_swap,
        };
        MutationOp op;
        op.kind = kHavoc[rng.next_below(std::size(kHavoc))];
        op.a = rng.next_u64();
        op.b = rng.next_u64();
        recipe.ops.push_back(op);
    }
    return recipe;
}

Scenario Mutator::apply(const MutationRecipe& recipe) const {
    const std::size_t idx = program_index(recipe.program);
    Scenario s = gen_->make_for(idx, recipe.parent_seed);

    for (const MutationOp& op : recipe.ops) {
        switch (op.kind) {
            case MutationOp::Kind::field_flip: {
                auto& muts = s.spec.tmpl.mutations;
                if (muts.empty()) break;
                FieldMutation& m = muts[op.a % muts.size()];
                if (m.width <= 0) break;
                Bitvec mask(m.width, op.b);
                if (mask.is_zero()) mask = Bitvec(m.width, 1);
                m.value = m.value.bxor(mask);
                break;
            }
            case MutationOp::Kind::field_boundary: {
                auto& muts = s.spec.tmpl.mutations;
                if (muts.empty()) break;
                FieldMutation& m = muts[op.a % muts.size()];
                if (m.width <= 0) break;
                switch (op.b % 3) {
                    case 0: m.value = Bitvec(m.width); break;
                    case 1: m.value = Bitvec::ones(m.width); break;
                    default: m.value = Bitvec(m.width, 1); break;
                }
                break;
            }
            case MutationOp::Kind::packet_byte: {
                packet::Packet& base = s.spec.tmpl.base;
                if (base.empty()) break;
                const std::size_t off = op.a % base.size();
                const auto mask = static_cast<std::uint8_t>(op.b % 255 + 1);
                base.set_byte(off, base.byte(off) ^ mask);
                break;
            }
            case MutationOp::Kind::config_drop: {
                if (s.config.empty()) break;
                s.config.erase(s.config.begin() +
                               static_cast<std::ptrdiff_t>(op.a % s.config.size()));
                break;
            }
            case MutationOp::Kind::config_dup: {
                if (s.config.empty()) break;
                ConfigOp copy = s.config[op.a % s.config.size()];
                s.config.insert(
                    s.config.begin() +
                        static_cast<std::ptrdiff_t>(op.b % (s.config.size() + 1)),
                    std::move(copy));
                break;
            }
            case MutationOp::Kind::config_swap: {
                if (s.config.size() < 2) break;
                std::size_t i = op.a % s.config.size();
                std::size_t j = op.b % s.config.size();
                if (i == j) j = (j + 1) % s.config.size();
                std::swap(s.config[i], s.config[j]);
                break;
            }
            case MutationOp::Kind::splice: {
                // Parent's control-plane prefix crossed with the donor's
                // packet plan: the donor is the same catalogue program, so
                // its stimulus stays meaningful against the kept config.
                const Scenario donor = gen_->make_for(idx, op.b);
                const std::size_t prefix = op.a % (s.config.size() + 1);
                s.config.resize(prefix);
                const std::string name = s.spec.name;
                s.spec = donor.spec;
                s.spec.name = name;
                break;
            }
        }
    }
    s.spec.name += util::format("~m%zu", recipe.ops.size());
    return s;
}

Scenario Mutator::apply_concolic(const ConcolicRecipe& recipe) const {
    const std::size_t idx = program_index(recipe.program);
    // make_for supplies the compiled program handle; everything else -- the
    // control plane and the packet plan -- is replaced by the solver's
    // model, so the scenario is a pure function of the recipe text.
    Scenario s = gen_->make_for(idx, recipe.slot);
    s.seed = recipe.slot;
    const p4::ir::Program& prog = *s.compiled;

    const auto bad = [&](const std::string& why) {
        throw std::invalid_argument("concolic: " + why + " (program " +
                                    recipe.program + ")");
    };

    s.config.clear();
    for (const ConcolicRecipe::Default& def : recipe.defaults) {
        const p4::ir::Table* table = prog.table_by_name(def.table);
        if (!table) bad("unknown table '" + def.table + "'");
        const p4::ir::Action* action = prog.action_by_name(def.action);
        if (!action) bad("unknown action '" + def.action + "'");
        if (std::find(table->actions.begin(), table->actions.end(),
                      action->id) == table->actions.end()) {
            bad("action '" + def.action + "' not allowed on table '" +
                def.table + "'");
        }
        if (def.args.size() != action->param_widths.size()) {
            bad(util::format("action '%s' takes %zu args, recipe has %zu",
                             def.action.c_str(), action->param_widths.size(),
                             def.args.size()));
        }
        ConfigOp op;
        op.kind = ConfigOp::Kind::set_default_action;
        op.target = def.table;
        op.action = def.action;
        for (std::size_t i = 0; i < def.args.size(); ++i) {
            const int width = action->param_widths[i];
            const auto& bytes = def.args[i];
            if (bytes.size() != static_cast<std::size_t>((width + 7) / 8)) {
                bad(util::format("arg %zu of '%s' must be %d bytes, got %zu",
                                 i, def.action.c_str(), (width + 7) / 8,
                                 bytes.size()));
            }
            const int excess = static_cast<int>(bytes.size()) * 8 - width;
            if (excess > 0 && (bytes[0] >> (8 - excess)) != 0) {
                bad(util::format("arg %zu of '%s' overflows its %d-bit width",
                                 i, def.action.c_str(), width));
            }
            op.action_args.push_back(Bitvec::from_bytes(bytes, width));
        }
        s.config.push_back(std::move(op));
    }

    TestSpec spec;
    spec.name = util::format("%s~c%llu", recipe.program.c_str(),
                             static_cast<unsigned long long>(recipe.slot));
    spec.tmpl.base = packet::Packet(recipe.packet);
    spec.inject_port = recipe.ingress_port;
    spec.count = 1;
    s.spec = std::move(spec);
    return s;
}

}  // namespace ndb::core
