// Reverse index from coverage slots back to the IR sites that light them.
//
// The instrumented engines (parser_engine.cpp, interp.cpp) hash dynamic
// events into CoverageMap slots; that direction is lossy on purpose.  For
// concolic seed synthesis we need the other direction: given a slot that
// never lit during a campaign, which parser transition / branch / table /
// action does it correspond to?  EdgeIndex statically enumerates every
// site the engines can emit for one program -- with the identical salting
// and integer casts the instrumentation uses -- so "dark slot" becomes
// "dark IR site" and symexec can be pointed at it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coverage/coverage.h"
#include "p4/ir.h"

namespace ndb::coverage {

// One statically known instrumentation site and the slot it hashes to.
// `a`/`b` are the raw operands BEFORE salting (state ids may be kAccept/
// kReject, i.e. negative -- the instrumentation sign-extends them through
// static_cast<uint64_t>, and slot computation here does the same).
struct EdgeSite {
    Site kind = Site::parser_edge;
    std::int64_t a = 0;
    std::int64_t b = 0;
    std::uint32_t slot = 0;

    std::string describe(const p4::ir::Program& prog) const;
};

class EdgeIndex {
public:
    // `device_salt` must be the same salt the device passed to
    // set_coverage() (Device::coverage_salt()), or the slots won't line up.
    EdgeIndex(const p4::ir::Program& prog, std::uint64_t device_salt);

    const std::vector<EdgeSite>& sites() const { return sites_; }

    // Sites whose slot was never hit in `map`.  Distinct sites can collide
    // into one slot (AFL-style); a collision merely makes a dark site drop
    // off this list once its twin lights, which only loses work, never
    // correctness.
    std::vector<EdgeSite> dark_sites(const CoverageMap& map) const;

private:
    void add(Site kind, std::int64_t a, std::int64_t b);

    std::uint64_t cov_salt_ = 0;
    std::vector<EdgeSite> sites_;
};

}  // namespace ndb::coverage
