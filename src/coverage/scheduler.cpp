#include "coverage/scheduler.h"

#include <algorithm>
#include <cmath>

namespace ndb::coverage {

namespace {
// Caps one round's gain so a single explosive scenario cannot permanently
// monopolize the budget; renormalization keeps the weights in a stable
// floating-point range forever.
constexpr double kGainCap = 8.0;
}  // namespace

CorpusScheduler::CorpusScheduler(std::size_t arms, double eta, double explore)
    : weights_(std::max<std::size_t>(arms, 1), 1.0),
      eta_(std::clamp(eta, 0.0, 4.0)),
      explore_(std::clamp(explore, 0.0, 1.0)) {}

void CorpusScheduler::reward(std::size_t arm, double gain) {
    if (arm >= weights_.size()) return;
    if (!(gain > 0.0)) return;  // zero/negative/NaN gain leaves weights alone
    weights_[arm] *= 1.0 + eta_ * std::min(gain, kGainCap);
    // Renormalize to sum == arms: shares are scale-invariant, so this only
    // prevents unbounded growth across thousands of rounds.
    double sum = 0.0;
    for (const double w : weights_) sum += w;
    const double scale = static_cast<double>(weights_.size()) / sum;
    for (double& w : weights_) w *= scale;
}

double CorpusScheduler::share(std::size_t arm) const {
    if (arm >= weights_.size()) return 0.0;
    double sum = 0.0;
    for (const double w : weights_) sum += w;
    const double n = static_cast<double>(weights_.size());
    return (1.0 - explore_) * weights_[arm] / sum + explore_ / n;
}

std::vector<std::uint64_t> CorpusScheduler::plan_round(
    std::uint64_t budget) const {
    const std::size_t n = weights_.size();
    std::vector<std::uint64_t> plan(n, 0);
    if (budget == 0) return plan;

    std::uint64_t remaining = budget;
    if (budget >= n) {
        // Exploration guarantee: every program probes at least once per round.
        for (auto& p : plan) p = 1;
        remaining -= n;
    }

    // Largest-remainder apportionment of the rest.
    std::vector<double> quota(n, 0.0);
    std::uint64_t assigned = 0;
    for (std::size_t i = 0; i < n; ++i) {
        quota[i] = static_cast<double>(remaining) * share(i);
        const auto base = static_cast<std::uint64_t>(quota[i]);
        plan[i] += base;
        assigned += base;
    }
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         const double fa = quota[a] - std::floor(quota[a]);
                         const double fb = quota[b] - std::floor(quota[b]);
                         if (fa != fb) return fa > fb;
                         return a < b;
                     });
    for (std::size_t k = 0; assigned < remaining; ++k) {
        ++plan[order[k % n]];
        ++assigned;
    }
    return plan;
}

}  // namespace ndb::coverage
