// Coverage-guided campaign feedback: the edge map.
//
// An AFL-style fixed-size coverage map (greybox fuzzing feedback in the
// FP4 mold, arXiv:2207.13147): every interesting execution event in the
// data plane -- a parser state transition, a table hit or miss, an action
// invocation, a taken/not-taken branch edge -- hashes to one of kSlots
// counters.  The map is a plain array, so recording a hit is one masked
// index and one increment: allocation-free, branch-light, and cheap enough
// to leave compiled into the hot path behind a null-pointer check (coverage
// off = one predictable-untaken branch per site).
//
// Slot ids are a pure function of the site kind and its operands, so the
// same program exercising the same behaviour fills the same slots on every
// run, every thread count, and every machine -- the determinism the
// campaign report's byte-identical contract needs.  Collisions between
// distinct sites are possible (as in AFL) and harmless: the scheduler only
// consumes coverage *deltas*, and a collision merely under-counts novelty.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "util/strings.h"

namespace ndb::coverage {

// Stable per-program salt, folded into every slot operand by the
// instrumented engines: program A's table #0 and program B's table #0 are
// different behaviour and must light different slots, or a multi-program
// campaign's novelty signal collapses onto whichever program ran first.
inline std::uint64_t program_salt(std::string_view program_name) {
    return util::fnv1a_64(program_name);
}

// Instrumentation site kinds; the slot hash folds the kind in so that e.g.
// table #3 and action #3 never alias by construction of the operands alone.
enum class Site : std::uint64_t {
    parser_edge = 1,    // a = from-state, b = to-state (kAccept/kReject incl.)
    parser_finish = 2,  // a = final state, b = verdict ordinal
    table = 3,          // a = table id, b = hit (1) / miss (0)
    action = 4,         // a = action id
    branch = 5,         // a = static branch ordinal, b = taken (1) / not (0)
};

class CoverageMap {
public:
    // Power of two: slot masking is a single AND.
    static constexpr std::size_t kSlots = 4096;

    // Deterministic slot for a site event (SplitMix64-style finalizer).
    static std::uint32_t slot(Site site, std::uint64_t a, std::uint64_t b = 0) {
        std::uint64_t x = (static_cast<std::uint64_t>(site) << 56) ^
                          (a * 0x9e3779b97f4a7c15ull) ^
                          (b * 0xff51afd7ed558ccdull);
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ull;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebull;
        x ^= x >> 31;
        return static_cast<std::uint32_t>(x & (kSlots - 1));
    }

    void hit(std::uint32_t slot_id) { ++counts_[slot_id & (kSlots - 1)]; }
    void record(Site site, std::uint64_t a, std::uint64_t b = 0) {
        hit(slot(site, a, b));
    }

    std::uint32_t count(std::size_t slot_id) const {
        return counts_[slot_id & (kSlots - 1)];
    }

    // Number of distinct slots ever hit ("edges covered").
    std::size_t edges_covered() const;

    std::uint64_t total_hits() const;

    // Folds `fresh` into this accumulated map and returns how many of its
    // slots were previously unseen here -- the scheduler's coverage delta.
    std::size_t merge_new_from(const CoverageMap& fresh);

    void clear() { counts_.fill(0); }

    bool operator==(const CoverageMap&) const = default;

private:
    std::array<std::uint32_t, kSlots> counts_{};
};

}  // namespace ndb::coverage
