#include "coverage/edge_index.h"

#include <algorithm>
#include <set>
#include <utility>

#include "util/strings.h"

namespace ndb::coverage {

namespace {

std::string state_name(const p4::ir::Program& prog, std::int64_t id) {
    if (id == p4::ir::kAccept) return "accept";
    if (id == p4::ir::kReject) return "reject";
    if (id >= 0 && id < static_cast<std::int64_t>(prog.parser_states.size())) {
        return prog.parser_states[static_cast<std::size_t>(id)].name;
    }
    return util::format("state#%lld", static_cast<long long>(id));
}

}  // namespace

std::string EdgeSite::describe(const p4::ir::Program& prog) const {
    switch (kind) {
        case Site::parser_edge:
            return util::format("parser_edge %s->%s", state_name(prog, a).c_str(),
                                state_name(prog, b).c_str());
        case Site::parser_finish:
            return util::format("parser_finish %s", state_name(prog, a).c_str());
        case Site::table: {
            const auto& name = prog.tables.at(static_cast<std::size_t>(a)).name;
            return util::format("table %s %s", name.c_str(), b ? "hit" : "miss");
        }
        case Site::action:
            return util::format(
                "action %s",
                prog.actions.at(static_cast<std::size_t>(a)).name.c_str());
        case Site::branch:
            return util::format("branch #%lld %s", static_cast<long long>(a),
                                b ? "taken" : "not-taken");
    }
    return "?";
}

EdgeIndex::EdgeIndex(const p4::ir::Program& prog, std::uint64_t device_salt)
    : cov_salt_(program_salt(prog.name) ^ device_salt) {
    // Parser transitions: direct targets, select-case targets, and the
    // implicit no-case-matched fall-through to reject.  Deduplicate -- two
    // cases jumping to the same state are one dynamic edge.
    std::set<std::pair<int, int>> edges;
    for (std::size_t s = 0; s < prog.parser_states.size(); ++s) {
        const int from = static_cast<int>(s);
        const auto& t = prog.parser_states[s].transition;
        if (t.kind == p4::ir::Transition::Kind::direct) {
            edges.emplace(from, t.next_state);
            continue;
        }
        for (const auto& c : t.cases) edges.emplace(from, c.next_state);
        edges.emplace(from, p4::ir::kReject);
    }
    for (const auto& [from, to] : edges) add(Site::parser_edge, from, to);

    // Terminal parser sites.  Verdict ordinals follow ParserVerdict:
    // accept = 0 at state kAccept, reject = 1 at state kReject.  Truncation
    // and loop-guard verdicts fire at arbitrary states and are not modeled
    // by symexec, so they are not enumerated as targets.
    add(Site::parser_finish, p4::ir::kAccept, 0);
    add(Site::parser_finish, p4::ir::kReject, 1);

    for (const auto& table : prog.tables) {
        add(Site::table, table.id, 1);  // hit
        add(Site::table, table.id, 0);  // miss
    }
    for (const auto& action : prog.actions) add(Site::action, action.id, 0);

    // Branch ordinals from the same walk both engines instrument with.
    const auto branch_ids = p4::ir::number_branches(prog);
    std::vector<std::uint32_t> ordinals;
    ordinals.reserve(branch_ids.size());
    for (const auto& [stmt, id] : branch_ids) ordinals.push_back(id);
    std::sort(ordinals.begin(), ordinals.end());
    for (const std::uint32_t id : ordinals) {
        add(Site::branch, id, 0);
        add(Site::branch, id, 1);
    }
}

void EdgeIndex::add(Site kind, std::int64_t a, std::int64_t b) {
    EdgeSite site;
    site.kind = kind;
    site.a = a;
    site.b = b;
    // Mirror the instrumentation exactly: salt folded into the first
    // operand, both operands sign-extended through uint64_t.
    site.slot = CoverageMap::slot(kind, cov_salt_ ^ static_cast<std::uint64_t>(a),
                                  static_cast<std::uint64_t>(b));
    sites_.push_back(site);
}

std::vector<EdgeSite> EdgeIndex::dark_sites(const CoverageMap& map) const {
    std::vector<EdgeSite> dark;
    for (const auto& site : sites_) {
        if (map.count(site.slot) == 0) dark.push_back(site);
    }
    return dark;
}

}  // namespace ndb::coverage
