#include "coverage/coverage.h"

namespace ndb::coverage {

std::size_t CoverageMap::edges_covered() const {
    std::size_t n = 0;
    for (const std::uint32_t c : counts_) {
        if (c != 0) ++n;
    }
    return n;
}

std::uint64_t CoverageMap::total_hits() const {
    std::uint64_t n = 0;
    for (const std::uint32_t c : counts_) n += c;
    return n;
}

std::size_t CoverageMap::merge_new_from(const CoverageMap& fresh) {
    std::size_t new_slots = 0;
    for (std::size_t i = 0; i < kSlots; ++i) {
        if (fresh.counts_[i] == 0) continue;
        if (counts_[i] == 0) ++new_slots;
        counts_[i] += fresh.counts_[i];
    }
    return new_slots;
}

}  // namespace ndb::coverage
