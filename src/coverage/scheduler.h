// Adaptive seed scheduling over the campaign's program catalogue.
//
// The uniform sweep spends the same scenario budget on every program; the
// CorpusScheduler spends more on programs that keep producing feedback --
// fresh coverage edges and fresh divergence fingerprints -- which is the
// multiplicative-weights half of greybox "energy" assignment (AFLFast /
// FP4 style), with an exploration floor so no program is ever starved.
//
// Everything here is deterministic: weights are plain doubles updated by a
// fixed rule, rounds are apportioned by largest remainder with index
// tie-break, and no randomness or wall clock is consulted.  Given the same
// reward sequence the scheduler produces the same plan, which is what lets
// a guided campaign keep the byte-identical-report-across-thread-counts
// contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ndb::coverage {

class CorpusScheduler {
public:
    // `arms` = number of programs.  `eta` scales the multiplicative update;
    // `explore` is the share of every round reserved for uniform
    // exploration (0 = pure exploitation, 1 = uniform sweep).
    explicit CorpusScheduler(std::size_t arms, double eta = 0.5,
                             double explore = 0.25);

    std::size_t arms() const { return weights_.size(); }

    // Rewards `arm` with a non-negative gain (e.g. new-edges-per-scenario
    // plus a fresh-fingerprint bonus).  Monotone: a larger gain never
    // yields a smaller weight, and therefore never less future energy.
    void reward(std::size_t arm, double gain);

    // Normalized share of the next round's energy for `arm`, exploration
    // floor included: share >= explore / arms for every arm.
    double share(std::size_t arm) const;

    // Splits `budget` scenarios across the arms proportionally to share(),
    // by largest remainder (ties broken by lowest arm index).  When the
    // budget covers all arms, every arm receives at least one scenario so
    // dormant programs keep probing for fresh behaviour.
    std::vector<std::uint64_t> plan_round(std::uint64_t budget) const;

private:
    std::vector<double> weights_;
    double eta_;
    double explore_;
};

}  // namespace ndb::coverage
