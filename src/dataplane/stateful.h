// Stateful externs: register arrays, counters, meters.
#pragma once

#include <cstdint>
#include <vector>

#include "p4/ir.h"
#include "util/bitvec.h"

namespace ndb::dataplane {

using util::Bitvec;

// Meter colors follow the usual trTCM convention.
enum class MeterColor : std::uint8_t { green = 0, yellow = 1, red = 2 };

// Single-rate, two-bucket token meter (committed + excess).
class MeterCell {
public:
    // Rates in bytes/second; bursts in bytes.
    void configure(double committed_rate, std::uint64_t committed_burst,
                   double excess_rate, std::uint64_t excess_burst);

    MeterColor execute(std::uint64_t now_ns, std::uint64_t bytes);

private:
    void refill(std::uint64_t now_ns);

    double committed_rate_ = 1e9;  // effectively unconfigured: everything green
    double excess_rate_ = 1e9;
    double committed_tokens_ = 1e9;
    double excess_tokens_ = 1e9;
    std::uint64_t committed_burst_ = 1'000'000'000;
    std::uint64_t excess_burst_ = 1'000'000'000;
    std::uint64_t last_refill_ns_ = 0;
};

// Runtime storage for every extern instance of one program.
class StatefulSet {
public:
    explicit StatefulSet(const p4::ir::Program& prog);

    // Registers.
    Bitvec register_read(int extern_id, std::uint64_t index) const;
    void register_write(int extern_id, std::uint64_t index, const Bitvec& value);

    // Counters (packets + bytes).
    void counter_count(int extern_id, std::uint64_t index, std::uint64_t bytes);
    std::uint64_t counter_packets(int extern_id, std::uint64_t index) const;
    std::uint64_t counter_bytes(int extern_id, std::uint64_t index) const;

    // Meters.
    void meter_configure(int extern_id, std::uint64_t index, double committed_rate,
                         std::uint64_t committed_burst, double excess_rate,
                         std::uint64_t excess_burst);
    MeterColor meter_execute(int extern_id, std::uint64_t index,
                             std::uint64_t now_ns, std::uint64_t bytes);

    void reset();

private:
    struct RegisterArray {
        int elem_width = 0;
        std::vector<Bitvec> cells;
    };
    struct CounterArray {
        std::vector<std::uint64_t> packets;
        std::vector<std::uint64_t> bytes;
    };
    struct MeterArray {
        std::vector<MeterCell> cells;
    };

    const p4::ir::Program& prog_;
    std::vector<RegisterArray> registers_;   // indexed by extern id (sparse)
    std::vector<CounterArray> counters_;
    std::vector<MeterArray> meters_;
};

}  // namespace ndb::dataplane
