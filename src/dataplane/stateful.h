// Stateful externs: register arrays, counters, meters.
//
// One program's extern instances live in a single dense vector indexed by
// extern id; each slot is typed by its ExternDecl kind.  The accessors
// below are the only state surface the execution engines and the control
// plane touch, so a snapshot of `info()` plus `reset_state()` fully
// captures and clears a device's per-flow state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "p4/ir.h"
#include "util/bitvec.h"

namespace ndb::dataplane {

using util::Bitvec;

// Meter colors follow the usual trTCM convention.
enum class MeterColor : std::uint8_t { green = 0, yellow = 1, red = 2 };

// Single-rate, two-bucket token meter (committed + excess).
class MeterCell {
public:
    // Rates in bytes/second; bursts in bytes.
    void configure(double committed_rate, std::uint64_t committed_burst,
                   double excess_rate, std::uint64_t excess_burst);

    MeterColor execute(std::uint64_t now_ns, std::uint64_t bytes);

    // An unconfigured meter colors everything green (the defaults below are
    // effectively infinite).  That is the correct permissive default for a
    // fresh device, but a policer whose meter was never configured is a
    // control-plane bug, so snapshots surface the flag.
    bool configured() const { return configured_; }

    // Folds the configured rates/bursts into an FNV-1a accumulator.
    std::uint64_t fold_config(std::uint64_t h) const;

private:
    void refill(std::uint64_t now_ns);

    double committed_rate_ = 1e9;  // effectively unconfigured: everything green
    double excess_rate_ = 1e9;
    double committed_tokens_ = 1e9;
    double excess_tokens_ = 1e9;
    std::uint64_t committed_burst_ = 1'000'000'000;
    std::uint64_t excess_burst_ = 1'000'000'000;
    std::uint64_t last_refill_ns_ = 0;
    bool configured_ = false;
};

// Runtime storage for every extern instance of one program.
class StatefulSet {
public:
    explicit StatefulSet(const p4::ir::Program& prog);

    // Registers.
    Bitvec register_read(int extern_id, std::uint64_t index) const;
    void register_write(int extern_id, std::uint64_t index, const Bitvec& value);

    // Counters (packets + bytes).
    void counter_count(int extern_id, std::uint64_t index, std::uint64_t bytes);
    std::uint64_t counter_packets(int extern_id, std::uint64_t index) const;
    std::uint64_t counter_bytes(int extern_id, std::uint64_t index) const;

    // Meters.
    void meter_configure(int extern_id, std::uint64_t index, double committed_rate,
                         std::uint64_t committed_burst, double excess_rate,
                         std::uint64_t excess_burst);
    MeterColor meter_execute(int extern_id, std::uint64_t index,
                             std::uint64_t now_ns, std::uint64_t bytes);

    // Per-extern summary for status snapshots.  `state_hash` digests the
    // dynamic contents (register values, counter packets+bytes) and, for
    // meters, the configured parameters -- not the live token buckets, whose
    // floating-point residue would make byte-identical reports fragile.
    struct Info {
        std::string name;
        std::string kind;  // "register" | "counter" | "meter"
        std::uint64_t cells = 0;
        std::uint64_t state_hash = 0;
        std::uint64_t unconfigured_meters = 0;  // 0 for non-meters
    };
    std::vector<Info> info() const;

    // Returns every extern to its power-on value: registers to zero,
    // counters to zero, meters to unconfigured-permissive.  Exactly the
    // state a freshly loaded program starts from.
    void reset_state();

private:
    struct ExternState {
        p4::ir::ExternDecl::Kind kind = p4::ir::ExternDecl::Kind::reg;
        std::string name;
        int elem_width = 0;
        std::vector<Bitvec> cells;           // registers
        std::vector<std::uint64_t> packets;  // counters
        std::vector<std::uint64_t> bytes;
        std::vector<MeterCell> meters;       // meters
    };

    std::vector<ExternState> externs_;  // dense, indexed by extern id
};

}  // namespace ndb::dataplane
