// Vendor-backend behaviour deviations ("quirks").
//
// A Quirks value travels with a compiled device image and tells the
// execution engines how the modeled target diverges from P4 semantics.
// The reference target uses the all-defaults value; the SDNet-like target
// injects the bug catalogue here.  The headline entry is
// `reject_as_accept`: the paper's discovery that SDNet does not implement
// the parser reject state, so packets that must be dropped are forwarded.
#pragma once

#include <string>

namespace ndb::dataplane {

struct Quirks {
    // Parser `reject` behaves like `accept`: headers extracted so far stay
    // valid and the packet continues through the pipeline (paper Section 4).
    bool reject_as_accept = false;

    // Maximum number of header extracts the hardware parser supports;
    // further extracts are silently skipped and the parser accepts early.
    // 0 means unlimited.
    int parser_depth_limit = 0;

    // The checksum engine is not wired up: ipv4_checksum_update is a no-op.
    bool skip_checksum_update = false;

    // Right shifts are miscompiled into left shifts.
    bool shift_miscompile = false;

    // Tables hold at most this many entries regardless of the declared
    // size.  0 means no clamp.
    int table_size_clamp = 0;

    // Ternary match selects the lowest-priority matching entry instead of
    // the highest.
    bool ternary_priority_inverted = false;

    // User metadata starts with a garbage pattern instead of zeros.
    bool metadata_clobber = false;

    // --- state-quirk family: bugs only per-flow state can expose ---

    // A register write to a cell already holding a non-zero value is
    // silently dropped: stale flow entries win over refreshes (the classic
    // failed learn/refresh path in NAT and firewall tables).
    bool stale_entry = false;

    // The aging clock loses its low microsecond bit (half-resolution
    // timestamp latch), so expiry decisions flip near the timeout boundary
    // and stored last-seen stamps drift off the reference by one.
    bool expiry_off_by_one = false;

    // The hash unit only produces this many low-order result bits (0 = no
    // quirk): flows that should spread over the whole bucket space collide
    // into 2^N buckets and get misdirected.
    int hash_collision_misdirect = 0;

    bool any() const {
        return reject_as_accept || parser_depth_limit > 0 || skip_checksum_update ||
               shift_miscompile || table_size_clamp > 0 ||
               ternary_priority_inverted || metadata_clobber || stale_entry ||
               expiry_off_by_one || hash_collision_misdirect > 0;
    }

    // Canonical "+"-joined list of the active quirks ("none" when faithful),
    // stable across runs: campaign fingerprints and corpus entries key on it.
    std::string signature() const {
        std::string s;
        const auto tag = [&s](const std::string& t) {
            if (!s.empty()) s += '+';
            s += t;
        };
        if (reject_as_accept) tag("reject_as_accept");
        if (parser_depth_limit > 0) {
            tag("parser_depth_limit=" + std::to_string(parser_depth_limit));
        }
        if (skip_checksum_update) tag("skip_checksum_update");
        if (shift_miscompile) tag("shift_miscompile");
        if (table_size_clamp > 0) {
            tag("table_size_clamp=" + std::to_string(table_size_clamp));
        }
        if (ternary_priority_inverted) tag("ternary_priority_inverted");
        if (metadata_clobber) tag("metadata_clobber");
        if (stale_entry) tag("stale_entry");
        if (expiry_off_by_one) tag("expiry_off_by_one");
        if (hash_collision_misdirect > 0) {
            tag("hash_collision_misdirect=" +
                std::to_string(hash_collision_misdirect));
        }
        return s.empty() ? "none" : s;
    }
};

}  // namespace ndb::dataplane
