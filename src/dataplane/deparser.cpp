#include "dataplane/deparser.h"

namespace ndb::dataplane {

packet::Packet deparse(const p4::ir::Program& prog, const PacketState& state) {
    std::size_t total_bits = 0;
    for (const int h : prog.deparse_order) {
        if (state.header_valid(h)) {
            total_bits += static_cast<std::size_t>(
                prog.headers[static_cast<std::size_t>(h)].size_bits);
        }
    }
    const std::size_t header_bytes = (total_bits + 7) / 8;
    packet::Packet out = packet::Packet::zeros(header_bytes + state.payload.size());

    std::size_t cursor = 0;
    for (const int h : prog.deparse_order) {
        if (!state.header_valid(h)) continue;
        const auto& hdr = prog.headers[static_cast<std::size_t>(h)];
        const auto& inst = state.headers[static_cast<std::size_t>(h)];
        for (std::size_t f = 0; f < hdr.fields.size(); ++f) {
            out.deposit_bits(cursor + static_cast<std::size_t>(hdr.fields[f].offset),
                             inst.fields[f]);
        }
        cursor += static_cast<std::size_t>(hdr.size_bits);
    }
    for (std::size_t i = 0; i < state.payload.size(); ++i) {
        out.set_byte(header_bytes + i, state.payload[i]);
    }
    out.meta = state.meta;
    return out;
}

}  // namespace ndb::dataplane
