#include "dataplane/pipeline.h"

#include "coverage/coverage.h"
#include "dataplane/compile.h"
#include "dataplane/deparser.h"
#include "obs/metrics.h"

namespace ndb::dataplane {

const char* disposition_name(Disposition d) {
    switch (d) {
        case Disposition::forwarded: return "forwarded";
        case Disposition::dropped_parser: return "dropped(parser)";
        case Disposition::dropped_ingress: return "dropped(ingress)";
        case Disposition::dropped_egress: return "dropped(egress)";
    }
    return "?";
}

const char* stage_name(Stage stage) {
    switch (stage) {
        case Stage::parser: return "parser";
        case Stage::ingress: return "ingress";
        case Stage::egress: return "egress";
        case Stage::deparser: return "deparser";
    }
    return "?";
}

namespace {

// Does any expression in the program read the ingress timestamp?  The
// expiry_off_by_one quirk must only perturb programs that age state off
// the virtual clock: standard metadata is folded into every tap digest,
// so an ungated rewrite would make every catalogue program diverge at the
// parser tap and drown the real state-bug landscape.
bool expr_reads_timestamp(const p4::ir::Expr& e, const p4::ir::FieldRef& ts) {
    if (e.kind == p4::ir::Expr::Kind::field && e.fref == ts) return true;
    if (e.a && expr_reads_timestamp(*e.a, ts)) return true;
    if (e.b && expr_reads_timestamp(*e.b, ts)) return true;
    if (e.c && expr_reads_timestamp(*e.c, ts)) return true;
    return false;
}

bool body_reads_timestamp(const std::vector<p4::ir::StmtPtr>& body,
                          const p4::ir::FieldRef& ts) {
    for (const auto& stmt : body) {
        if (stmt->value && expr_reads_timestamp(*stmt->value, ts)) return true;
        if (stmt->cond && expr_reads_timestamp(*stmt->cond, ts)) return true;
        if (stmt->index_expr && expr_reads_timestamp(*stmt->index_expr, ts)) {
            return true;
        }
        for (const auto& arg : stmt->action_args) {
            if (arg && expr_reads_timestamp(*arg, ts)) return true;
        }
        for (const auto& input : stmt->hash_inputs) {
            if (input && expr_reads_timestamp(*input, ts)) return true;
        }
        if (body_reads_timestamp(stmt->then_body, ts)) return true;
        if (body_reads_timestamp(stmt->else_body, ts)) return true;
    }
    return false;
}

bool program_reads_timestamp(const p4::ir::Program& prog) {
    const p4::ir::FieldRef ts = prog.f_timestamp;
    if (!ts.valid()) return false;
    if (body_reads_timestamp(prog.ingress.body, ts)) return true;
    if (prog.egress && body_reads_timestamp(prog.egress->body, ts)) return true;
    for (const auto& action : prog.actions) {
        if (body_reads_timestamp(action.body, ts)) return true;
    }
    for (const auto& st : prog.parser_states) {
        for (const auto& op : st.ops) {
            if (op.value && expr_reads_timestamp(*op.value, ts)) return true;
        }
        for (const auto& key : st.transition.keys) {
            if (key && expr_reads_timestamp(*key, ts)) return true;
        }
    }
    return false;
}

}  // namespace

Pipeline::Pipeline(const p4::ir::Program& prog, TableSet& tables,
                   StatefulSet& stateful, PipelineOptions options)
    : prog_(prog),
      tables_(tables),
      stateful_(stateful),
      options_(options),
      parser_(prog, options.quirks),
      interp_(prog, tables, stateful, options.quirks) {
    quirk_expiry_clock_ =
        options_.quirks.expiry_off_by_one && program_reads_timestamp(prog_);
    if (options_.engine == Engine::compiled) {
        compiled_ = std::make_unique<CompiledPipeline>(prog_, tables_, stateful_,
                                                       options_.quirks);
    }
}

Pipeline::~Pipeline() = default;

void Pipeline::set_engine(Engine engine) {
    options_.engine = engine;
    if (engine == Engine::compiled && !compiled_) {
        compiled_ = std::make_unique<CompiledPipeline>(prog_, tables_, stateful_,
                                                       options_.quirks);
        compiled_->set_coverage(coverage_, cov_salt_);
    }
}

void Pipeline::set_coverage(coverage::CoverageMap* map, std::uint64_t salt) {
    coverage_ = map;
    cov_salt_ = salt;
    parser_.set_coverage(map, salt);
    interp_.set_coverage(map, salt);
    if (compiled_) compiled_->set_coverage(map, salt);
}

PipelineResult Pipeline::process(const packet::Packet& in) {
    PipelineResult result;
    ++counters_.parser_in;

    // Telemetry (observe-only): the packet counter is exact; the per-stage
    // clocks run on a 1/16 per-thread sample so the extra clock_gettime
    // calls stay inside the bench overhead gate.  Whole-packet latency is
    // recorded by the guard below on every exit path, early returns
    // included.
    const bool obs_engine = options_.engine == Engine::compiled;
    bool timed = false;
    std::uint64_t t_mark = 0;
    if (obs::metrics_on()) {
        obs::count(obs::Counter::packets);
        timed = obs::sample_packet();
        if (timed) {
            obs::count(obs::Counter::packets_sampled);
            t_mark = obs::now_ns();
        }
    }
    struct PacketTimer {
        bool on;
        std::uint64_t t0;
        obs::Hist hist;
        ~PacketTimer() {
            if (on) obs::record(hist, obs::now_ns() - t0);
        }
    } packet_timer{timed, t_mark, obs::pipeline_hist(3, obs_engine)};

    state_.ensure_shape(prog_);
    state_.reset(prog_, in.meta, static_cast<std::uint32_t>(in.size()),
                 options_.quirks.metadata_clobber);
    if (quirk_expiry_clock_) {
        // expiry_off_by_one quirk: the aging clock latch loses its low
        // microsecond bit, so stored last-seen stamps and timeout deltas sit
        // one off the reference near the expiry boundary.  One site covers
        // both engines: the stages read whatever f_timestamp holds.
        state_.set(prog_.f_timestamp,
                   util::Bitvec(48, (in.meta.rx_time_ns / 1000) & ~1ull));
    }
    PacketState& state = state_;

    CompiledPipeline* const compiled =
        options_.engine == Engine::compiled ? compiled_.get() : nullptr;
    const ParserVerdict verdict =
        compiled ? compiled->run_parser(in, state) : parser_.run(in, state);
    if (timed) {
        const std::uint64_t t = obs::now_ns();
        obs::record(obs::pipeline_hist(0, obs_engine), t - t_mark);
        t_mark = t;
    }
    result.parser_verdict = verdict;
    switch (verdict) {
        case ParserVerdict::accept:
            ++counters_.parser_accepted;
            break;
        case ParserVerdict::reject:
            ++counters_.parser_rejected;
            break;
        default:
            ++counters_.parser_errors;
            break;
    }
    if (options_.capture_taps) result.tap_after_parser = state;
    if (options_.capture_digests) {
        result.stage_hash[0] = hash_packet_state(prog_, state);
    }
    if (verdict != ParserVerdict::accept) {
        result.disposition = Disposition::dropped_parser;
        result.cycles = state.cycles;
        return result;
    }
    if (options_.stage_hook) {
        options_.stage_hook(Stage::parser, state);
        if (state.vanished) {
            result.silent_drop = true;
            result.silent_drop_stage = Stage::parser;
            result.disposition = Disposition::dropped_parser;
            result.cycles = state.cycles;
            return result;
        }
    }

    const auto applies = [&]() -> const std::vector<TableApply>& {
        return compiled ? compiled->applies() : interp_.applies();
    };
    if (compiled) {
        compiled->clear_applies();
        compiled->run_ingress(state);
    } else {
        interp_.clear_applies();
        interp_.run_control(prog_.ingress, state);
    }
    if (options_.capture_taps) result.tap_after_ingress = state;
    if (options_.capture_digests) {
        result.stage_hash[1] = hash_packet_state(prog_, state);
    }
    if (state.drop_flagged(prog_)) {
        ++counters_.ingress_dropped;
        result.disposition = Disposition::dropped_ingress;
        result.applies = applies();
        result.cycles = state.cycles;
        return result;
    }
    if (options_.stage_hook) {
        options_.stage_hook(Stage::ingress, state);
        if (state.vanished) {
            result.silent_drop = true;
            result.silent_drop_stage = Stage::ingress;
            result.disposition = Disposition::dropped_ingress;
            result.applies = applies();
            result.cycles = state.cycles;
            return result;
        }
    }

    // Traffic manager: commit egress_spec to egress_port.
    const std::uint64_t port = state.egress_spec(prog_);
    state.set(prog_.f_egress_port, util::Bitvec(9, port));

    if (prog_.egress) {
        state.exited = false;
        if (compiled) {
            compiled->run_egress(state);
        } else {
            interp_.run_control(*prog_.egress, state);
        }
        if (options_.capture_taps) result.tap_after_egress = state;
        if (options_.capture_digests) {
            result.stage_hash[2] = hash_packet_state(prog_, state);
        }
        if (state.drop_flagged(prog_)) {
            ++counters_.egress_dropped;
            result.disposition = Disposition::dropped_egress;
            result.applies = applies();
            result.cycles = state.cycles;
            return result;
        }
    }
    if (options_.stage_hook) {
        options_.stage_hook(Stage::egress, state);
        if (state.vanished) {
            result.silent_drop = true;
            result.silent_drop_stage = Stage::egress;
            result.disposition = Disposition::dropped_egress;
            result.applies = applies();
            result.cycles = state.cycles;
            return result;
        }
    }

    // Match-action covers everything between the parser mark and here
    // (ingress + traffic manager + egress); drop paths fold their partial
    // match-action time into the whole-packet histogram only.
    if (timed) {
        const std::uint64_t t = obs::now_ns();
        obs::record(obs::pipeline_hist(1, obs_engine), t - t_mark);
        t_mark = t;
    }
    result.output = compiled ? compiled->deparse(state) : deparse(prog_, state);
    if (timed) {
        obs::record(obs::pipeline_hist(2, obs_engine), obs::now_ns() - t_mark);
    }
    result.output.meta.egress_port = static_cast<std::uint32_t>(port);
    result.egress_port = static_cast<std::uint32_t>(port);
    result.disposition = Disposition::forwarded;
    result.applies = applies();
    result.cycles = state.cycles + 1;  // deparser cycle
    ++counters_.forwarded;
    return result;
}

}  // namespace ndb::dataplane
