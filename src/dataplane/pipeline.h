// The full per-packet pipeline: parse -> ingress -> egress -> deparse.
//
// This is the "data plane under test" of the paper's Figure 1.  The
// optional stage traces ("taps") are the internal observation points that
// give NetDebug its visibility advantage over external testers.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "dataplane/digest.h"
#include "dataplane/engine.h"
#include "dataplane/interp.h"
#include "dataplane/parser_engine.h"
#include "dataplane/quirks.h"
#include "dataplane/state.h"
#include "dataplane/stateful.h"
#include "dataplane/tables.h"
#include "p4/ir.h"
#include "packet/packet.h"

namespace ndb::coverage {
class CoverageMap;
}  // namespace ndb::coverage

namespace ndb::dataplane {

class CompiledPipeline;

enum class Disposition {
    forwarded,
    dropped_parser,
    dropped_ingress,
    dropped_egress,
};

const char* disposition_name(Disposition d);

// Pipeline stages, used to address taps and fault injection points.
enum class Stage { parser = 0, ingress = 1, egress = 2, deparser = 3 };

inline constexpr int kStageCount = 4;
const char* stage_name(Stage stage);

// Compact per-packet view of the internal stage taps, hashed in place by
// the pipeline (streaming mode): the same values the campaign engine used
// to derive from full PacketState copies, at none of the copy cost.
struct TapDigest {
    ParserVerdict verdict = ParserVerdict::accept;
    Disposition disposition = Disposition::forwarded;
    std::uint32_t egress_port = 0;  // meaningful when forwarded
    // parser/ingress/egress states; kStageNotReachedHash when never reached.
    std::array<std::uint64_t, 3> stage_hash = {
        kStageNotReachedHash, kStageNotReachedHash, kStageNotReachedHash};

    bool operator==(const TapDigest&) const = default;
};

struct PipelineResult {
    Disposition disposition = Disposition::forwarded;
    ParserVerdict parser_verdict = ParserVerdict::accept;
    packet::Packet output;                 // meaningful when forwarded
    std::uint32_t egress_port = 0;
    std::uint64_t cycles = 0;
    std::vector<TableApply> applies;

    // An injected fault swallowed the packet after this stage; the device's
    // own counters do NOT see such losses (that is what makes them silent).
    bool silent_drop = false;
    Stage silent_drop_stage = Stage::parser;

    // Stage taps (populated when tracing is enabled).
    std::optional<PacketState> tap_after_parser;
    std::optional<PacketState> tap_after_ingress;
    std::optional<PacketState> tap_after_egress;

    // Streaming digests of the same tap points (populated when
    // capture_digests is enabled); no state copy is ever made for these.
    std::array<std::uint64_t, 3> stage_hash = {
        kStageNotReachedHash, kStageNotReachedHash, kStageNotReachedHash};
};

struct PipelineOptions {
    Quirks quirks;
    Engine engine = default_engine();  // which executor runs the stages
    bool capture_taps = false;     // full PacketState copies (replay/localize)
    bool capture_digests = false;  // in-place stage hashes (campaign hot path)

    // Fault-injection hook, called after each stage with the live state.
    // Setting PacketState::vanished makes the packet disappear silently.
    std::function<void(Stage, PacketState&)> stage_hook;
};

// Aggregate per-stage counters: the device's internal status registers.
struct StageCounters {
    std::uint64_t parser_in = 0;
    std::uint64_t parser_accepted = 0;
    std::uint64_t parser_rejected = 0;
    std::uint64_t parser_errors = 0;
    std::uint64_t ingress_dropped = 0;
    std::uint64_t egress_dropped = 0;
    std::uint64_t forwarded = 0;
};

class Pipeline {
public:
    Pipeline(const p4::ir::Program& prog, TableSet& tables, StatefulSet& stateful,
             PipelineOptions options = {});
    ~Pipeline();  // out of line: CompiledPipeline is incomplete here

    PipelineResult process(const packet::Packet& in);

    // Switches the stage executor.  The compiled image is built lazily on
    // first use and kept; switching back and forth recompiles nothing.
    // Everything around the stages (counters, taps, digests, hooks, traffic
    // manager, deparser) is shared orchestration in process(), so only the
    // stage execution itself changes engine.
    void set_engine(Engine engine);
    Engine engine() const { return options_.engine; }

    const p4::ir::Program& program() const { return prog_; }
    const StageCounters& counters() const { return counters_; }
    void reset_counters() { counters_ = {}; }
    void set_capture_taps(bool on) { options_.capture_taps = on; }
    void set_capture_digests(bool on) { options_.capture_digests = on; }

    // Coverage mode: routes parser-edge/table/action/branch events from the
    // execution engines into `map`.  Off (nullptr) by default; when off the
    // only cost is a null check per instrumentation site, and when on no
    // per-packet allocation is ever made (the map is a fixed array).
    void set_coverage(coverage::CoverageMap* map, std::uint64_t salt = 0);
    coverage::CoverageMap* coverage() const { return coverage_; }

private:
    const p4::ir::Program& prog_;
    TableSet& tables_;
    StatefulSet& stateful_;
    PipelineOptions options_;
    ParserEngine parser_;
    Interpreter interp_;
    std::unique_ptr<CompiledPipeline> compiled_;  // lazily built threaded code
    StageCounters counters_;
    coverage::CoverageMap* coverage_ = nullptr;
    std::uint64_t cov_salt_ = 0;  // remembered for late engine switches
    // expiry_off_by_one is active AND the program reads the aging clock
    // (precomputed IR scan; see program_reads_timestamp in pipeline.cpp).
    bool quirk_expiry_clock_ = false;
    // Per-packet execution state, reset in place each process() call so the
    // steady-state hot path performs no per-packet allocation.
    PacketState state_;
};

}  // namespace ndb::dataplane
