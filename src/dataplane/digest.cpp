#include "dataplane/digest.h"


namespace ndb::dataplane {

namespace {

inline std::uint64_t fnv1a_byte(std::uint64_t h, unsigned char b) {
    h ^= b;
    h *= 0x100000001b3ull;
    return h;
}

// Folds in the exact character sequence of v.to_hex() without building it;
// digit count and values come from the same Bitvec accessors to_hex() uses,
// so the two renderings cannot drift apart.
std::uint64_t fnv1a_hex(std::uint64_t h, const util::Bitvec& v) {
    static const char* digits = "0123456789abcdef";
    h = fnv1a_byte(h, '0');
    h = fnv1a_byte(h, 'x');
    for (int i = v.hex_digit_count() - 1; i >= 0; --i) {
        h = fnv1a_byte(h, static_cast<unsigned char>(digits[v.nibble(i)]));
    }
    return h;
}

}  // namespace

std::uint64_t hash_packet_state(const p4::ir::Program& prog,
                                const PacketState& state) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < prog.headers.size(); ++i) {
        const auto& inst = state.headers[i];
        h = fnv1a_byte(h, inst.valid ? 1 : 0);
        if (!inst.valid && !prog.headers[i].is_metadata) continue;
        for (const auto& field : inst.fields) {
            h = fnv1a_hex(h, field);
        }
    }
    return h;
}

}  // namespace ndb::dataplane
