// IR -> threaded-code specializer and its dispatch-loop executor.
//
// compile() lowers one p4::ir::Program (under one Quirks value) into the
// flat CompiledProgram image described in compiled_ops.h.  CompiledPipeline
// executes that image with the same observable semantics as the tree
// walkers it replaces -- ParserEngine::run and Interpreter::run_control --
// including cycle accounting, coverage sites (same salts, same ordinals)
// and error behaviour, which the interp-vs-compiled differential tests
// assert over the whole catalogue x quirk matrix.
//
// Pipeline::process stays the single orchestrator (counters, taps, digest
// capture, fault hooks, traffic manager) and dispatches per stage to one
// engine or the other, so everything recorded around the stages is
// identical across engines by construction.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "dataplane/compiled_ops.h"
#include "dataplane/interp.h"
#include "dataplane/quirks.h"
#include "dataplane/state.h"
#include "dataplane/stateful.h"
#include "dataplane/tables.h"
#include "p4/ir.h"
#include "packet/packet.h"

namespace ndb::coverage {
class CoverageMap;
}  // namespace ndb::coverage

namespace ndb::dataplane {

// Lowers `prog` to threaded code.  The image is a pure function of
// (prog, quirks): quirks that alter execution semantics are baked into the
// emitted opcodes (shift_miscompile, skip_checksum_update,
// parser_depth_limit); reject_as_accept stays a runtime check in the
// parser epilogue.  Throws std::out_of_range on malformed state references.
compiled::CompiledProgram compile(const p4::ir::Program& prog, const Quirks& quirks);

// Executes a compiled image.  All per-packet machinery (value stack, call
// frames, key/arg/byte scratch) is pooled on the object, so steady-state
// execution performs no heap allocation -- same contract as Interpreter.
class CompiledPipeline {
public:
    CompiledPipeline(const p4::ir::Program& prog, TableSet& tables,
                     StatefulSet& stateful, Quirks quirks = {});

    ParserVerdict run_parser(const packet::Packet& pkt, PacketState& state);
    void run_ingress(PacketState& state);
    void run_egress(PacketState& state);

    // Specialized deparser: one streaming pass over the pre-resolved field
    // layout, writing each output byte exactly once (the generic deparse()
    // re-reads the covering bytes per field).  Byte-identical output; falls
    // back to the generic routine for headers whose fields do not tile
    // [0, size_bits) contiguously.
    packet::Packet deparse(const PacketState& state) const;

    const std::vector<TableApply>& applies() const { return applies_; }
    void clear_applies() { applies_.clear(); }

    // Same contract as Interpreter::set_coverage / ParserEngine::set_coverage:
    // the compiled stream records the identical sites with the identical
    // salts, so the two engines fill the same CoverageMap slots.
    void set_coverage(coverage::CoverageMap* map, std::uint64_t salt = 0);

    const compiled::CompiledProgram& image() const { return cp_; }

private:
    Bitvec eval(compiled::ExprRef ref, const PacketState& state, const Frame& frame);
    void eval_args(const compiled::Inst& in, const PacketState& state,
                   const Frame& frame, std::vector<Bitvec>& out);
    void run_control(const compiled::Routine& routine, PacketState& state);
    void exec(std::uint32_t pc, PacketState& state);
    ParserVerdict pfinish(const packet::Packet& pkt, PacketState& state,
                          ParserVerdict verdict);

    Frame& push_frame() {
        if (depth_ >= frames_.size()) frames_.emplace_back();
        return frames_[depth_++];
    }

    const p4::ir::Program& prog_;
    StatefulSet& stateful_;
    Quirks quirks_;
    compiled::CompiledProgram cp_;
    // Direct table handles, indexed by table id: resolved once from the
    // TableSet at construction (Slot pointers are stable for its lifetime).
    std::vector<TableSet::Slot*> slots_;
    // Per-header streamability, indexed by header id: true when the fields
    // tile [0, size_bits) contiguously, so extract/deparse can stream bits
    // sequentially instead of re-addressing the buffer per field.
    std::vector<bool> stream_hdr_;

    std::vector<TableApply> applies_;
    coverage::CoverageMap* coverage_ = nullptr;
    std::uint64_t cov_salt_ = 0;  // program_salt(prog_.name) ^ device salt

    // Pooled execution scratch (see class comment).
    std::vector<Bitvec> stack_;
    std::deque<Frame> frames_;  // deque: references stay valid while growing
    std::size_t depth_ = 0;
    std::vector<std::uint32_t> rstack_;
    std::vector<Bitvec> keys_scratch_;
    std::vector<Bitvec> args_scratch_;
    std::vector<Bitvec> pkeys_;
    std::vector<std::uint8_t> bytes_scratch_;
    Frame empty_frame_;  // parser expressions have no locals or params

    // Parser machine registers.
    std::size_t cursor_ = 0;
    std::size_t total_bits_ = 0;
    int visited_ = 0;
    int extracts_ = 0;
    int current_ = 0;
};

}  // namespace ndb::dataplane
