// Programmable parser engine: executes the IR parser state machine.
#pragma once

#include "dataplane/quirks.h"
#include "dataplane/state.h"
#include "p4/ir.h"
#include "packet/packet.h"

namespace ndb::dataplane {

class ParserEngine {
public:
    explicit ParserEngine(const p4::ir::Program& prog, Quirks quirks = {})
        : prog_(prog), quirks_(quirks) {}

    // Fills `state` (headers, payload, verdict) from the packet bytes.
    // With the `reject_as_accept` quirk, explicit rejects and parse errors
    // leave the state as-is and report `accept` -- modeling a target that
    // never implemented the reject path.
    ParserVerdict run(const packet::Packet& pkt, PacketState& state,
                      int* states_visited = nullptr) const;

    // Cycle guard so malformed state machines cannot loop forever.
    static constexpr int kMaxStates = 256;

private:
    const p4::ir::Program& prog_;
    Quirks quirks_;
};

}  // namespace ndb::dataplane
