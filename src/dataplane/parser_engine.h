// Programmable parser engine: executes the IR parser state machine.
#pragma once

#include "dataplane/quirks.h"
#include "dataplane/state.h"
#include "p4/ir.h"
#include "packet/packet.h"

namespace ndb::coverage {
class CoverageMap;
}  // namespace ndb::coverage

namespace ndb::dataplane {

class ParserEngine {
public:
    explicit ParserEngine(const p4::ir::Program& prog, Quirks quirks = {})
        : prog_(prog), quirks_(quirks) {}

    // Coverage instrumentation: when set, every state transition (and the
    // terminal state/verdict pair) records an edge into the map, salted by
    // the program name XOR `salt` (devices pass a per-backend salt so a
    // DUT's execution of the same path lights distinct slots from the
    // reference's).  nullptr (the default) reduces the instrumentation to
    // one untaken branch per transition.
    void set_coverage(coverage::CoverageMap* map, std::uint64_t salt = 0);

    // Fills `state` (headers, payload, verdict) from the packet bytes.
    // With the `reject_as_accept` quirk, explicit rejects and parse errors
    // leave the state as-is and report `accept` -- modeling a target that
    // never implemented the reject path.
    ParserVerdict run(const packet::Packet& pkt, PacketState& state,
                      int* states_visited = nullptr) const;

    // Cycle guard so malformed state machines cannot loop forever.
    static constexpr int kMaxStates = 256;

private:
    const p4::ir::Program& prog_;
    Quirks quirks_;
    coverage::CoverageMap* coverage_ = nullptr;
    std::uint64_t cov_salt_ = 0;  // program_salt(prog_.name) ^ device salt
};

}  // namespace ndb::dataplane
