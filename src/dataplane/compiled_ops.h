// Op tables for the threaded-code engine.
//
// compile.cpp lowers a p4::ir::Program into one flat vector<Inst> (control
// flow, statements, parser states) plus one flat vector<ExprInst> (postfix
// expression bytecode over a reusable Bitvec value stack).  Everything the
// tree-walker resolves per packet is resolved here once per program:
// header/field indices sit in the instruction operands, branch targets are
// absolute pcs, constant subexpressions are folded into a literal pool,
// select-case keysets are pre-masked, and quirks that change semantics
// (shift_miscompile, skip_checksum_update, parser_depth_limit) are baked
// into the chosen opcodes.
//
// The encodings are deliberately pointer-free: a compiled image is a pure
// function of (program, quirks), which is what the compiler-determinism
// test asserts and what keeps campaign reports byte-identical across
// engines.  Table ids are resolved to TableSet::Slot pointers only when the
// image is attached to a CompiledPipeline (compile.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bitvec.h"

namespace ndb::dataplane::compiled {

using util::Bitvec;

// --- expression bytecode ------------------------------------------------------

enum class EOp : std::uint8_t {
    const_pool,  // push consts[a]
    field,       // push headers[a].fields[b]
    param,       // push frame.params[a]
    local,       // push frame.locals[a]
    valid,       // push Bitvec(1, headers[a].valid)

    neg,         // arithmetic negate top of stack
    bnot,
    lnot,        // Bitvec(1, top.is_zero())

    add, sub, mul, band, bor, bxor,
    shl,         // clamped shift left (amount from top of stack)
    shr,         // clamped logical shift right
    shr_as_shl,  // shift_miscompile lowering: shr emitted as shl
    eq, ne, ult, ule, ugt, uge,
    concat,
    land, lor,   // eager logicals: IR expressions are side-effect free, so
                 // evaluating both operands matches short-circuit semantics
    select,      // ternary: pops else, then, cond

    slice,       // top[a:b]
    cast,        // top.resize(a)
};

struct ExprInst {
    EOp op = EOp::const_pool;
    std::int32_t a = 0;
    std::int32_t b = 0;

    friend bool operator==(const ExprInst&, const ExprInst&) = default;
};

// Range [begin, begin+len) into CompiledProgram::expr_code; len 0 = absent
// (e.g. an extern with no index expression).
struct ExprRef {
    std::uint32_t begin = 0;
    std::uint32_t len = 0;

    friend bool operator==(const ExprRef&, const ExprRef&) = default;
};

// --- instruction stream -------------------------------------------------------

enum class Op : std::uint8_t {
    // Statements (each costs the interpreter's one cycle unless noted).
    assign_field,   // headers[a].fields[b] = expr
    assign_local,   // locals[a] = expr
    assign_slice,   // headers[a].fields[b][c:d] = expr (c = hi, d = lo)
    branch_false,   // if expr is zero jump to a; b = pre-order branch ordinal
    jump,           // pc = a
    apply_table,    // a = table id; args = key exprs (costs two cycles)
    call_action,    // a = action id; args = argument exprs
    set_valid,      // headers[a].valid = (b != 0)
    exit_run,       // exit statement: unwind every frame of this run
    ret,            // return from an action body
    halt,           // end of a control stream

    // Externs.
    ext_mark_to_drop,    // headers[a].fields[b] (egress_spec) = drop port
    ext_register_read,   // headers[a].fields[b] = regs[c][expr], width d
    ext_register_write,  // regs[a][expr] = expr2
    ext_counter_count,   // counters[a][expr] += packet bytes
    ext_meter_execute,   // headers[a].fields[b] = color of meters[c][expr]
    ext_hash,            // headers[a].fields[b] = crc32(args), width d
    ext_checksum,        // recompute checksum field b of header a
    ext_nop,             // cycle only (ExternKind::none, quirked-out checksum)

    // Parser (cycle accounting matches ParserEngine op for op).
    pstate,         // enter state a: loop guard then one cycle
    pextract,       // extract header a (b = size_bits, c = depth limit, 0 = none)
    padvance,       // cursor += a bits (bounds-checked)
    passign,        // headers[a].fields[b] = expr.resize(c)
    ptrans,         // direct transition to a; b = target pc when a is a state
    pselect_keys,   // evaluate args into the parser key scratch
    pcase,          // sets [a, b) all match => go to c (target pc d)
    pselect_fail,   // no case matched: transition to reject
};

struct Inst {
    Op op = Op::halt;
    std::int32_t a = 0;
    std::int32_t b = 0;
    std::int32_t c = 0;
    std::int32_t d = 0;
    ExprRef expr;                  // condition / RHS / extern index
    ExprRef expr2;                 // register_write value
    std::uint32_t args_begin = 0;  // range into CompiledProgram::arg_refs
    std::uint32_t args_len = 0;

    friend bool operator==(const Inst&, const Inst&) = default;
};

// One pre-masked keyset of a select case: key < 0 never occurs (compile
// drops "any" sets entirely); match is keys[key] & mask == value_masked.
struct CaseSet {
    std::int32_t key = 0;
    Bitvec mask;
    Bitvec value_masked;  // value & mask, folded at compile time

    friend bool operator==(const CaseSet&, const CaseSet&) = default;
};

// Entry point plus local-variable widths of one body (control or action).
struct Routine {
    std::uint32_t entry_pc = 0;
    std::uint32_t widths_begin = 0;  // range into CompiledProgram::width_pool
    std::uint32_t widths_len = 0;

    friend bool operator==(const Routine&, const Routine&) = default;
};

struct CompiledProgram {
    std::vector<Inst> code;
    std::vector<ExprInst> expr_code;
    std::vector<Bitvec> consts;      // interned literal pool
    std::vector<ExprRef> arg_refs;   // table keys / action args / hash inputs
    std::vector<CaseSet> case_sets;
    std::vector<int> width_pool;

    Routine ingress;
    Routine egress;                  // valid when has_egress
    bool has_egress = false;
    std::vector<Routine> actions;    // indexed by action id

    std::uint32_t parser_pc = 0;     // entry pc of the start state
    int start_state = 0;

    friend bool operator==(const CompiledProgram&, const CompiledProgram&) = default;

    // Deterministic text dump (tests and debugging).
    std::string disassemble() const;
};

}  // namespace ndb::dataplane::compiled
