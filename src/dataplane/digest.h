// Streaming per-stage state digests.
//
// hash_packet_state() is the in-place form of the campaign engine's
// copy-based tap hashing: an order-sensitive FNV-1a over header validity
// plus every field value (metadata headers included, mirroring
// FaultLocalizer's comparison).  Field values are folded in as the exact
// character sequence of Bitvec::to_hex() -- streamed nibble by nibble, so
// the digest of a live PacketState is bit-identical to hashing a deep copy
// while never materializing one.
//
// Timing (cycles) is deliberately excluded: quirked paths may legitimately
// cost different cycle counts without being behaviourally wrong.
#pragma once

#include <cstdint>

#include "dataplane/state.h"
#include "p4/ir.h"

namespace ndb::dataplane {

// Digest value reported for a stage the packet never reached.
inline constexpr std::uint64_t kStageNotReachedHash = 0x9e3779b97f4a7c15ull;

std::uint64_t hash_packet_state(const p4::ir::Program& prog,
                                const PacketState& state);

}  // namespace ndb::dataplane
