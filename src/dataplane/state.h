// Per-packet execution state flowing through the pipeline stages.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "p4/ir.h"
#include "packet/packet.h"
#include "util/bitvec.h"

namespace ndb::dataplane {

enum class ParserVerdict {
    accept,
    reject,            // explicit transition to reject
    error_truncated,   // extract past the end of the packet
    error_loop,        // state-machine cycle guard tripped
};

const char* parser_verdict_name(ParserVerdict verdict);

struct HeaderInstance {
    bool valid = false;
    std::vector<util::Bitvec> fields;
};

// The parsed representation plus metadata; one per packet in flight.
struct PacketState {
    std::vector<HeaderInstance> headers;   // parallel to ir::Program::headers
    std::vector<std::uint8_t> payload;     // bytes beyond the parsed headers
    // The program `headers` was last shaped for; identity, not equivalence,
    // so ensure_shape() rebuilds whenever a different Program object shows
    // up even if it happens to declare the same header count.
    const p4::ir::Program* shaped_for = nullptr;
    packet::PacketMeta meta;
    ParserVerdict parser_verdict = ParserVerdict::accept;
    std::uint64_t cycles = 0;  // accumulated processing cost
    bool exited = false;       // an `exit` statement fired
    bool vanished = false;     // injected fault: packet silently lost here

    // Builds the initial state for `prog`: all header field slots allocated,
    // metadata headers valid and zeroed, standard metadata populated from
    // `meta`.  `clobber_meta` simulates targets that do not zero user
    // metadata.
    static PacketState initial(const p4::ir::Program& prog,
                               const packet::PacketMeta& meta,
                               std::uint32_t packet_len,
                               bool clobber_meta = false);

    // Allocates the header/field slots for `prog` (no-op when already
    // shaped for exactly that program object).
    void ensure_shape(const p4::ir::Program& prog);

    // Re-initializes an already-shaped state in place, equivalent to
    // initial() but reusing every allocation: the pipeline's per-packet
    // scratch path.
    void reset(const p4::ir::Program& prog, const packet::PacketMeta& m,
               std::uint32_t packet_len, bool clobber_meta = false);

    const util::Bitvec& get(p4::ir::FieldRef ref) const;
    void set(p4::ir::FieldRef ref, util::Bitvec value);
    bool header_valid(int header) const;

    // Reads egress_spec from standard metadata.
    std::uint64_t egress_spec(const p4::ir::Program& prog) const;
    bool drop_flagged(const p4::ir::Program& prog) const;

    std::string summary(const p4::ir::Program& prog) const;
};

}  // namespace ndb::dataplane
