#include "dataplane/interp.h"

#include <stdexcept>

#include "coverage/coverage.h"
#include "packet/checksum.h"

namespace ndb::dataplane {

using p4::ir::Expr;
using p4::ir::Program;
using p4::ir::Stmt;

Bitvec eval_expr(const Program& prog, const Expr& e, const PacketState& state,
                 const Frame& frame, const Quirks& quirks) {
    switch (e.kind) {
        case Expr::Kind::constant:
            return e.cvalue;
        case Expr::Kind::field:
            return state.get(e.fref);
        case Expr::Kind::param:
            return frame.params.at(static_cast<std::size_t>(e.index));
        case Expr::Kind::local:
            return frame.locals.at(static_cast<std::size_t>(e.index));
        case Expr::Kind::is_valid:
            return Bitvec(1, state.header_valid(e.fref.header) ? 1 : 0);
        case Expr::Kind::unary: {
            const Bitvec a = eval_expr(prog, *e.a, state, frame, quirks);
            switch (e.un) {
                case p4::ast::UnOp::neg: return a.neg();
                case p4::ast::UnOp::bnot: return a.bnot();
                case p4::ast::UnOp::lnot: return Bitvec(1, a.is_zero() ? 1 : 0);
            }
            break;
        }
        case Expr::Kind::binary: {
            using p4::ast::BinOp;
            // Short-circuit the logical operators.
            if (e.bin == BinOp::land) {
                const Bitvec a = eval_expr(prog, *e.a, state, frame, quirks);
                if (a.is_zero()) return Bitvec(1, 0);
                return eval_expr(prog, *e.b, state, frame, quirks).is_zero()
                           ? Bitvec(1, 0)
                           : Bitvec(1, 1);
            }
            if (e.bin == BinOp::lor) {
                const Bitvec a = eval_expr(prog, *e.a, state, frame, quirks);
                if (!a.is_zero()) return Bitvec(1, 1);
                return eval_expr(prog, *e.b, state, frame, quirks).is_zero()
                           ? Bitvec(1, 0)
                           : Bitvec(1, 1);
            }
            const Bitvec a = eval_expr(prog, *e.a, state, frame, quirks);
            const Bitvec b = eval_expr(prog, *e.b, state, frame, quirks);
            switch (e.bin) {
                case BinOp::add: return a.add(b);
                case BinOp::sub: return a.sub(b);
                case BinOp::mul: return a.mul(b);
                case BinOp::band: return a.band(b);
                case BinOp::bor: return a.bor(b);
                case BinOp::bxor: return a.bxor(b);
                case BinOp::shl:
                    return a.shl(static_cast<int>(std::min<std::uint64_t>(
                        b.to_u64(), static_cast<std::uint64_t>(a.width()))));
                case BinOp::shr: {
                    const int amount = static_cast<int>(std::min<std::uint64_t>(
                        b.to_u64(), static_cast<std::uint64_t>(a.width())));
                    // Vendor bug: the backend emits a left shift instead.
                    return quirks.shift_miscompile ? a.shl(amount) : a.lshr(amount);
                }
                case BinOp::eq: return Bitvec(1, a.eq(b) ? 1 : 0);
                case BinOp::ne: return Bitvec(1, a.eq(b) ? 0 : 1);
                case BinOp::lt: return Bitvec(1, a.ult(b) ? 1 : 0);
                case BinOp::le: return Bitvec(1, a.ule(b) ? 1 : 0);
                case BinOp::gt: return Bitvec(1, a.ugt(b) ? 1 : 0);
                case BinOp::ge: return Bitvec(1, a.uge(b) ? 1 : 0);
                case BinOp::concat: return Bitvec::concat(a, b);
                case BinOp::land:
                case BinOp::lor: break;  // handled above
            }
            break;
        }
        case Expr::Kind::ternary: {
            const Bitvec c = eval_expr(prog, *e.c, state, frame, quirks);
            return c.is_zero() ? eval_expr(prog, *e.b, state, frame, quirks)
                               : eval_expr(prog, *e.a, state, frame, quirks);
        }
        case Expr::Kind::slice: {
            const Bitvec a = eval_expr(prog, *e.a, state, frame, quirks);
            return a.slice(e.hi, e.lo);
        }
        case Expr::Kind::cast: {
            const Bitvec a = eval_expr(prog, *e.a, state, frame, quirks);
            return a.resize(e.width);
        }
    }
    throw std::logic_error("eval_expr: unreachable");
}

Interpreter::Interpreter(const Program& prog, TableSet& tables, StatefulSet& stateful,
                         Quirks quirks)
    : prog_(prog), tables_(tables), stateful_(stateful), quirks_(quirks) {}

void reset_frame_locals(Frame& frame, std::span<const int> widths) {
    frame.locals.resize(widths.size());
    for (std::size_t i = 0; i < widths.size(); ++i) {
        if (frame.locals[i].width() == widths[i]) {
            frame.locals[i].zero();
        } else {
            frame.locals[i] = Bitvec(widths[i]);
        }
    }
}

void Interpreter::set_coverage(coverage::CoverageMap* map, std::uint64_t salt) {
    coverage_ = map;
    if (!map) return;
    cov_salt_ = coverage::program_salt(prog_.name) ^ salt;
    if (!branch_ids_.empty()) return;
    branch_ids_ = p4::ir::number_branches(prog_);
}

Frame& Interpreter::push_frame() {
    if (depth_ >= frames_.size()) frames_.emplace_back();
    return frames_[depth_++];
}

// Restores the frame depth on scope exit so a throw out of exec_body (e.g.
// an IR-level width error) cannot permanently leak pool depth on the
// long-lived interpreter.
struct Interpreter::FrameScope {
    Interpreter& interp;
    ~FrameScope() { interp.pop_frame(); }
};

void Interpreter::run_control(const p4::ir::Control& control, PacketState& state) {
    Frame& frame = push_frame();
    const FrameScope scope{*this};
    frame.params.clear();
    reset_frame_locals(frame, control.local_widths);
    exec_body(control.body, state, frame);
}

void Interpreter::run_action(int action_id, std::span<const Bitvec> args,
                             PacketState& state) {
    const auto& action = prog_.actions.at(static_cast<std::size_t>(action_id));
    if (coverage_) {
        coverage_->record(coverage::Site::action,
                          cov_salt_ ^ static_cast<std::uint64_t>(action_id));
    }
    Frame& frame = push_frame();
    const FrameScope scope{*this};
    frame.params.assign(args.begin(), args.end());
    reset_frame_locals(frame, action.local_widths);
    exec_body(action.body, state, frame);
}

void Interpreter::exec_body(const std::vector<p4::ir::StmtPtr>& body,
                            PacketState& state, Frame& frame) {
    for (const auto& s : body) {
        if (state.exited) return;
        exec(*s, state, frame);
    }
}

void Interpreter::exec(const Stmt& s, PacketState& state, Frame& frame) {
    ++state.cycles;
    switch (s.kind) {
        case Stmt::Kind::assign_field:
            state.set(s.dst, eval_expr(prog_, *s.value, state, frame, quirks_));
            return;
        case Stmt::Kind::assign_local:
            frame.locals.at(static_cast<std::size_t>(s.local_index)) =
                eval_expr(prog_, *s.value, state, frame, quirks_);
            return;
        case Stmt::Kind::assign_slice: {
            Bitvec cur = state.get(s.dst);
            const Bitvec v = eval_expr(prog_, *s.value, state, frame, quirks_);
            if (v.width() < s.hi - s.lo + 1) {
                // set_slice zero-fills missing bits; a too-narrow RHS here is
                // an IR bug and must surface, not silently clear field bits.
                throw std::out_of_range("assign_slice: value narrower than slice");
            }
            cur.set_slice(s.hi, s.lo, v);
            state.set(s.dst, std::move(cur));
            return;
        }
        case Stmt::Kind::if_stmt: {
            const Bitvec c = eval_expr(prog_, *s.cond, state, frame, quirks_);
            const bool taken = !c.is_zero();
            if (coverage_) {
                const auto it = branch_ids_.find(&s);
                if (it != branch_ids_.end()) {
                    coverage_->record(coverage::Site::branch,
                                      cov_salt_ ^ it->second, taken ? 1 : 0);
                }
            }
            exec_body(taken ? s.then_body : s.else_body, state, frame);
            return;
        }
        case Stmt::Kind::apply_table: {
            state.cycles += 1;  // match stage costs an extra cycle
            const auto& table = prog_.tables.at(static_cast<std::size_t>(s.table));
            // The scratch is free for reuse as soon as lookup() returns, so
            // nested applies inside the resulting action are fine.
            keys_scratch_.clear();
            keys_scratch_.reserve(table.keys.size());
            for (const auto& k : table.keys) {
                keys_scratch_.push_back(eval_expr(prog_, *k.expr, state, frame, quirks_));
            }
            bool hit = false;
            const ActionEntry& entry = tables_.lookup(s.table, keys_scratch_, hit);
            if (coverage_) {
                coverage_->record(coverage::Site::table,
                                  cov_salt_ ^ static_cast<std::uint64_t>(s.table),
                                  hit ? 1 : 0);
            }
            applies_.push_back({s.table, hit, entry.action_id});
            run_action(entry.action_id, entry.args, state);
            return;
        }
        case Stmt::Kind::call_action: {
            // Like keys_scratch_: run_action copies the args into its frame
            // before executing, so the scratch may be clobbered by nested calls.
            args_scratch_.clear();
            args_scratch_.reserve(s.action_args.size());
            for (const auto& a : s.action_args) {
                args_scratch_.push_back(eval_expr(prog_, *a, state, frame, quirks_));
            }
            run_action(s.action, args_scratch_, state);
            return;
        }
        case Stmt::Kind::set_valid:
            state.headers.at(static_cast<std::size_t>(s.dst.header)).valid =
                s.make_valid;
            return;
        case Stmt::Kind::extern_op:
            exec_extern(s, state, frame);
            return;
        case Stmt::Kind::exit_pipeline:
            state.exited = true;
            return;
    }
}

void Interpreter::exec_extern(const Stmt& s, PacketState& state, Frame& frame) {
    const auto index_of = [&](const p4::ir::ExprPtr& e) -> std::uint64_t {
        return e ? eval_expr(prog_, *e, state, frame, quirks_).to_u64() : 0;
    };
    const std::uint64_t pkt_bytes = state.get(prog_.f_packet_length).to_u64();

    switch (s.ext) {
        case p4::ir::ExternKind::mark_to_drop:
            state.set(prog_.f_egress_spec, Bitvec(9, p4::ir::kDropPort));
            return;
        case p4::ir::ExternKind::register_read: {
            const Bitvec v = stateful_.register_read(s.extern_id, index_of(s.index_expr));
            state.set(s.ext_dst, v.resize(prog_.field(s.ext_dst).width));
            return;
        }
        case p4::ir::ExternKind::register_write: {
            const std::uint64_t index = index_of(s.index_expr);
            // stale_entry quirk: the faulty datapath never refreshes a cell
            // that already holds state, so the first write to a bucket wins
            // forever (control-plane writes are unaffected: they go through
            // the runtime API, not this executor).
            if (quirks_.stale_entry &&
                !stateful_.register_read(s.extern_id, index).is_zero()) {
                return;
            }
            stateful_.register_write(s.extern_id, index,
                                     eval_expr(prog_, *s.value, state, frame, quirks_));
            return;
        }
        case p4::ir::ExternKind::counter_count:
            stateful_.counter_count(s.extern_id, index_of(s.index_expr), pkt_bytes);
            return;
        case p4::ir::ExternKind::meter_execute: {
            const MeterColor color = stateful_.meter_execute(
                s.extern_id, index_of(s.index_expr), state.meta.rx_time_ns, pkt_bytes);
            state.set(s.ext_dst, Bitvec(prog_.field(s.ext_dst).width,
                                        static_cast<std::uint64_t>(color)));
            return;
        }
        case p4::ir::ExternKind::hash: {
            bytes_scratch_.clear();
            for (const auto& input : s.hash_inputs) {
                const Bitvec v = eval_expr(prog_, *input, state, frame, quirks_);
                const std::size_t old = bytes_scratch_.size();
                bytes_scratch_.resize(old + static_cast<std::size_t>((v.width() + 7) / 8));
                v.write_bytes(std::span<std::uint8_t>(bytes_scratch_).subspan(old));
            }
            std::uint32_t h = packet::crc32(bytes_scratch_);
            // hash_collision_misdirect quirk: the hash unit only produces N
            // low-order bits, collapsing the bucket space.
            if (quirks_.hash_collision_misdirect > 0 &&
                quirks_.hash_collision_misdirect < 32) {
                h &= (1u << quirks_.hash_collision_misdirect) - 1u;
            }
            state.set(s.ext_dst,
                      Bitvec(32, h).resize(prog_.field(s.ext_dst).width));
            return;
        }
        case p4::ir::ExternKind::checksum_update:
            if (!quirks_.skip_checksum_update) {
                checksum_update_field(prog_, state, s.hash_header, s.checksum_field,
                                      bytes_scratch_);
            }
            return;
        case p4::ir::ExternKind::none:
            return;
    }
}

void checksum_update_field(const Program& prog, PacketState& state, int header,
                           int checksum_field,
                           std::vector<std::uint8_t>& bytes_scratch) {
    const auto& hdr = prog.headers.at(static_cast<std::size_t>(header));
    const auto& inst = state.headers.at(static_cast<std::size_t>(header));
    // Serialize the header with the checksum field forced to zero, then take
    // the RFC 1071 checksum of the byte image.  The image is streamed
    // MSB-first into the byte scratch instead of built from O(fields^2)
    // Bitvec concatenations.
    bytes_scratch.assign(static_cast<std::size_t>((hdr.size_bits + 7) / 8), 0);
    std::size_t bitpos = 0;  // wire position, MSB-first
    for (std::size_t f = 0; f < hdr.fields.size(); ++f) {
        const int w = hdr.fields[f].width;
        if (static_cast<int>(f) == checksum_field) {
            bitpos += static_cast<std::size_t>(w);  // scratch is pre-zeroed
            continue;
        }
        const Bitvec& v = inst.fields[f];
        // Deposit in <=32-bit chunks, high bits of the field first; the
        // buffer is pre-zeroed, so OR-ing whole covering bytes suffices.
        int remaining = w;
        while (remaining > 0) {
            const int chunk = std::min(remaining, 32);
            const std::uint64_t bits =
                v.slice(remaining - 1, remaining - chunk).to_u64();
            const std::size_t end = bitpos + static_cast<std::size_t>(chunk);
            const std::size_t first = bitpos / 8;
            const std::size_t last = (end + 7) / 8;  // exclusive
            std::uint64_t acc = bits << (8 * last - end);
            for (std::size_t i = last; i-- > first;) {
                bytes_scratch[i] |= static_cast<std::uint8_t>(acc);
                acc >>= 8;
            }
            bitpos = end;
            remaining -= chunk;
        }
    }
    const std::uint16_t csum = packet::internet_checksum(bytes_scratch);
    const int w = hdr.fields[static_cast<std::size_t>(checksum_field)].width;
    state.set({header, checksum_field}, Bitvec(16, csum).resize(w));
}

}  // namespace ndb::dataplane
