// Match-action table engines: exact (hash), LPM, ternary (TCAM).
//
// The control plane programs entries through TableSet; the interpreter
// performs lookups with key values it evaluated from the packet state.
//
// Two engine families implement the same MatchEngine contract:
//
//   * the indexed engines (the default) keep the lookup path off the heap
//     and off linear scans: exact match hashes the concatenated key image,
//     LPM keeps one hash table per installed prefix length probed longest
//     first, and ternary keeps its rows priority-sorted so the first match
//     wins and the scan exits early;
//   * the naive engines are the original straight-line implementations,
//     retained as the semantic reference for differential tests and
//     benchmarks (make_naive_*).
//
// Both families are byte-identical in behaviour, including the quirk
// interplay (ternary_priority_inverted, table_size_clamp).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "p4/ir.h"
#include "util/bitvec.h"

namespace ndb::dataplane {

using util::Bitvec;

// Control-plane view of one table entry.
struct TableEntry {
    std::vector<Bitvec> key_values;   // one per key element
    std::vector<Bitvec> key_masks;    // ternary only (parallel to key_values)
    int prefix_len = -1;              // lpm only
    int priority = 0;                 // ternary only; higher wins
    int action_id = 0;
    std::vector<Bitvec> action_args;
};

// Result of a lookup: the action to run.
struct ActionEntry {
    int action_id = 0;
    std::vector<Bitvec> args;
};

// Outcome of inserting an entry.
enum class InsertStatus { ok, table_full, duplicate, bad_entry };

const char* insert_status_name(InsertStatus status);

// One table's match engine.  `capacity` is enforced at insert.
class MatchEngine {
public:
    virtual ~MatchEngine() = default;
    virtual InsertStatus insert(const TableEntry& entry) = 0;
    virtual bool erase(const TableEntry& entry) = 0;  // match on key part only
    // Returns the matched action, or nullptr on miss.  The pointer stays
    // valid until the engine is next mutated.
    virtual const ActionEntry* lookup(std::span<const Bitvec> keys) const = 0;
    virtual std::size_t entry_count() const = 0;
    virtual void clear() = 0;
};

// Indexed engines (the hot-path default).
std::unique_ptr<MatchEngine> make_exact_engine(int total_width, std::size_t capacity);
std::unique_ptr<MatchEngine> make_lpm_engine(int key_width, std::size_t capacity);
std::unique_ptr<MatchEngine> make_ternary_engine(int total_width, std::size_t capacity,
                                                 bool inverted_priority);

// Naive reference engines (linear/bit-at-a-time; for differential testing).
std::unique_ptr<MatchEngine> make_naive_exact_engine(int total_width,
                                                     std::size_t capacity);
std::unique_ptr<MatchEngine> make_naive_lpm_engine(int key_width,
                                                   std::size_t capacity);
std::unique_ptr<MatchEngine> make_naive_ternary_engine(int total_width,
                                                       std::size_t capacity,
                                                       bool inverted_priority);

// Per-program collection of table engines plus default actions and
// hit/miss statistics (the statistics feed the status-monitoring use-case).
class TableSet {
public:
    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
    };

    // `size_clamp` models vendor table-capacity limits (0 = none).
    TableSet(const p4::ir::Program& prog, int size_clamp, bool inverted_priority);

    // One table's engine plus its default action and statistics.  Exposed so
    // the compiled pipeline can resolve a table id to a stable handle once at
    // compile time and skip the per-lookup id indirection.
    struct Slot {
        std::unique_ptr<MatchEngine> engine;
        ActionEntry default_action;
        Stats stats;
        std::size_t capacity = 0;
        // Which engine family backs this slot (telemetry's per-kind
        // lookup counters/histograms key off it).
        p4::ir::MatchKind kind = p4::ir::MatchKind::exact;
    };

    InsertStatus insert(int table_id, const TableEntry& entry);
    bool erase(int table_id, const TableEntry& entry);
    void set_default_action(int table_id, ActionEntry entry);

    // Lookup; falls back to the table's default action on miss.
    // `hit` reports whether an entry matched.  The reference stays valid
    // until the table is next mutated.
    const ActionEntry& lookup(int table_id, std::span<const Bitvec> keys, bool& hit);

    // Stable per-table handle: slots_ never resizes after construction, so
    // the pointer stays valid (and tracks entry/default-action updates) for
    // the TableSet's lifetime.
    Slot* slot_ptr(int table_id) {
        return &slots_.at(static_cast<std::size_t>(table_id));
    }

    // lookup() against a resolved handle; identical semantics (hit/miss
    // statistics, default-action fallback) with the id lookup hoisted out.
    static const ActionEntry& lookup_slot(Slot& slot, std::span<const Bitvec> keys,
                                          bool& hit) {
        if (obs::metrics_on()) [[unlikely]] {
            return lookup_slot_timed(slot, keys, hit);
        }
        if (const ActionEntry* found = slot.engine->lookup(keys)) {
            hit = true;
            ++slot.stats.hits;
            return *found;
        }
        hit = false;
        ++slot.stats.misses;
        return slot.default_action;
    }

    // lookup_slot() with telemetry: per-kind lookup counters (exact) plus a
    // 1/64-sampled latency histogram.  Out of line so the instrumented path
    // costs the fast path nothing but the one enabled check.
    static const ActionEntry& lookup_slot_timed(Slot& slot,
                                                std::span<const Bitvec> keys,
                                                bool& hit);

    const Stats& stats(int table_id) const;
    std::size_t entry_count(int table_id) const;
    std::size_t capacity(int table_id) const;
    void clear(int table_id);
    void reset_stats();

private:
    std::vector<Slot> slots_;
};

}  // namespace ndb::dataplane
