#include "dataplane/tables.h"

#include <algorithm>
#include <array>
#include <bit>
#include <optional>
#include <stdexcept>

namespace ndb::dataplane {

const char* insert_status_name(InsertStatus status) {
    switch (status) {
        case InsertStatus::ok: return "ok";
        case InsertStatus::table_full: return "table_full";
        case InsertStatus::duplicate: return "duplicate";
        case InsertStatus::bad_entry: return "bad_entry";
    }
    return "?";
}

namespace {

Bitvec concat_keys(std::span<const Bitvec> keys) {
    Bitvec out;
    for (const auto& k : keys) out = Bitvec::concat(out, k);
    return out;
}

// --- packed key image ---------------------------------------------------------
//
// Little-endian word image of the concatenated key elements (first element
// in the high-order bits), truncated/zero-extended to the table's total key
// width -- exactly concat_keys(keys).resize(total_width), but built on the
// stack with no Bitvec temporaries.  Keys up to kInlineWords*64 bits
// (everything in the catalogue) never allocate.
class PackedKey {
public:
    static int words_for(int width) { return width <= 64 ? 1 : (width + 63) / 64; }

    void pack(std::span<const Bitvec> keys, int total_width) {
        nwords_ = words_for(total_width);
        std::uint64_t* w = data();
        for (int i = 0; i < nwords_; ++i) w[i] = 0;
        // Last key occupies the low bits: walk the elements back to front.
        int bitpos = 0;
        for (std::size_t k = keys.size(); k-- > 0;) {
            const Bitvec& key = keys[k];
            const auto src = key.word_span();
            const int off = bitpos % 64;
            for (std::size_t i = 0; i < src.size(); ++i) {
                const int base = bitpos / 64 + static_cast<int>(i);
                if (base < nwords_) w[base] |= src[i] << off;
                if (off != 0 && base + 1 < nwords_) {
                    w[base + 1] |= src[i] >> (64 - off);
                }
            }
            bitpos += key.width();
        }
        const int rem = total_width % 64;
        if (rem != 0) w[nwords_ - 1] &= ~0ull >> (64 - rem);
    }

    // In-place AND with a mask image of the same word count.
    void band_with(const PackedKey& mask) {
        std::uint64_t* w = data();
        const std::uint64_t* m = mask.data();
        for (int i = 0; i < nwords_; ++i) w[i] &= m[i];
    }

    // Clears the low `drop` bits (LPM prefix masking: keep the top bits).
    void clear_low_bits(int drop) {
        std::uint64_t* w = data();
        for (int i = 0; i < nwords_ && drop > 0; ++i, drop -= 64) {
            if (drop >= 64) {
                w[i] = 0;
            } else {
                w[i] &= ~0ull << drop;
            }
        }
    }

    std::span<const std::uint64_t> words() const {
        return {data(), static_cast<std::size_t>(nwords_)};
    }

    bool operator==(const PackedKey& o) const {
        if (nwords_ != o.nwords_) return false;
        const std::uint64_t* a = data();
        const std::uint64_t* b = o.data();
        for (int i = 0; i < nwords_; ++i) {
            if (a[i] != b[i]) return false;
        }
        return true;
    }

    std::size_t hash() const {
        std::size_t h = 0xcbf29ce484222325ull;
        const std::uint64_t* w = data();
        for (int i = 0; i < nwords_; ++i) {
            h ^= w[i];
            h *= 0x100000001b3ull;
            h ^= h >> 29;
        }
        return h;
    }

private:
    static constexpr int kInlineWords = 4;

    std::uint64_t* data() {
        if (nwords_ > kInlineWords && wide_.size() < static_cast<std::size_t>(nwords_)) {
            wide_.resize(static_cast<std::size_t>(nwords_));
        }
        return nwords_ <= kInlineWords ? inline_.data() : wide_.data();
    }
    const std::uint64_t* data() const {
        return nwords_ <= kInlineWords ? inline_.data() : wide_.data();
    }

    std::array<std::uint64_t, kInlineWords> inline_{};
    std::vector<std::uint64_t> wide_;  // only for keys wider than 256 bits
    int nwords_ = 1;
};

struct PackedKeyHash {
    std::size_t operator()(const PackedKey& k) const { return k.hash(); }
};

// Open-addressing hash map from PackedKey to ActionEntry: power-of-two
// capacity, linear probing, tombstoned erase.  A lookup is one hash, a
// couple of contiguous slot probes and zero pointer chasing -- the node
// allocations and bucket indirection of std::unordered_map are what kept
// the previous exact engine an order of magnitude below line rate.
//
// Two slot-diet refinements close the one-word-key gap against the inline
// Bitvec naive engine (ROADMAP item):
//   * the key hash is cached in each slot, so probe-chain walks compare one
//     word before ever touching the key image, and grow() rehashes without
//     recomputing a single hash;
//   * ActionEntry values live in a side pool addressed by a 32-bit index
//     ("indirect ActionEntry"), keeping the probed slot array dense --
//     a slot is state + hash + index + key image, no vector payloads.
class FlatKeyMap {
public:
    const ActionEntry* find(const PackedKey& k) const {
        if (slots_.empty()) return nullptr;
        const std::size_t h = k.hash();
        std::size_t i = h & mask_;
        for (;;) {
            const Slot& s = slots_[i];
            if (s.state == kEmpty) return nullptr;
            if (s.state == kFull && s.hash == h && s.key == k) {
                return &values_[s.value];
            }
            i = (i + 1) & mask_;
        }
    }

    bool contains(const PackedKey& k) const { return find(k) != nullptr; }

    // Precondition: !contains(k).
    void insert(PackedKey k, ActionEntry v) {
        if ((used_ + 1) * 10 >= slots_.size() * 7) grow();
        const std::size_t h = k.hash();
        std::uint32_t index;
        if (!free_.empty()) {
            index = free_.back();
            free_.pop_back();
            values_[index] = std::move(v);
        } else {
            index = static_cast<std::uint32_t>(values_.size());
            values_.push_back(std::move(v));
        }
        place(std::move(k), h, index);
        ++size_;
    }

    bool erase(const PackedKey& k) {
        if (slots_.empty()) return false;
        const std::size_t h = k.hash();
        std::size_t i = h & mask_;
        for (;;) {
            Slot& s = slots_[i];
            if (s.state == kEmpty) return false;
            if (s.state == kFull && s.hash == h && s.key == k) {
                s.state = kTombstone;
                values_[s.value] = ActionEntry{};
                free_.push_back(s.value);
                --size_;
                return true;
            }
            i = (i + 1) & mask_;
        }
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    void clear() {
        slots_.clear();
        values_.clear();
        free_.clear();
        mask_ = 0;
        size_ = 0;
        used_ = 0;
    }

private:
    enum State : std::uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };
    struct Slot {
        State state = kEmpty;
        std::uint32_t value = 0;  // index into values_
        std::size_t hash = 0;     // cached key hash
        PackedKey key;
    };

    void place(PackedKey k, std::size_t h, std::uint32_t index) {
        std::size_t i = h & mask_;
        while (slots_[i].state == kFull) i = (i + 1) & mask_;
        Slot& s = slots_[i];
        if (s.state == kEmpty) ++used_;  // tombstones are re-used
        s.state = kFull;
        s.hash = h;
        s.value = index;
        s.key = std::move(k);
    }

    void grow() {
        const std::size_t cap = slots_.empty() ? 16 : slots_.size() * 2;
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(cap, Slot{});
        mask_ = cap - 1;
        used_ = 0;
        // Re-place using the cached hashes; the value pool is untouched.
        for (auto& s : old) {
            if (s.state == kFull) place(std::move(s.key), s.hash, s.value);
        }
    }

    std::vector<Slot> slots_;
    std::vector<ActionEntry> values_;   // indirect payloads, index-stable
    std::vector<std::uint32_t> free_;   // recycled value-pool indices
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
    std::size_t used_ = 0;  // full + tombstoned slots (probe-chain length bound)
};

// --- indexed exact ------------------------------------------------------------

class IndexedExactEngine final : public MatchEngine {
public:
    IndexedExactEngine(int total_width, std::size_t capacity)
        : total_width_(total_width), capacity_(capacity) {}

    InsertStatus insert(const TableEntry& entry) override {
        PackedKey key;
        key.pack(entry.key_values, total_width_);
        if (map_.contains(key)) return InsertStatus::duplicate;
        if (map_.size() >= capacity_) return InsertStatus::table_full;
        map_.insert(std::move(key), ActionEntry{entry.action_id, entry.action_args});
        return InsertStatus::ok;
    }

    bool erase(const TableEntry& entry) override {
        PackedKey key;
        key.pack(entry.key_values, total_width_);
        return map_.erase(key);
    }

    const ActionEntry* lookup(std::span<const Bitvec> keys) const override {
        PackedKey key;
        key.pack(keys, total_width_);
        return map_.find(key);
    }

    std::size_t entry_count() const override { return map_.size(); }
    void clear() override { map_.clear(); }

private:
    int total_width_;
    std::size_t capacity_;
    FlatKeyMap map_;
};

// --- indexed lpm --------------------------------------------------------------

// One hash table per installed prefix length, probed longest length first:
// the classic software-LPM layout.  Every map key is the lookup key with
// its low (width - length) bits cleared.
//
// Bitmap-guided probe order (the ROADMAP's many-distinct-lengths fix):
//
//   * active lengths live in a bitmap (bit L set <=> length L holds
//     entries) walked top word down with one count-leading-zeros per
//     candidate, replacing the sorted-vector scan;
//   * each active length additionally keeps a 256-bit *guard* filter over
//     the top min(8, L) bits of its installed prefixes.  A lookup computes
//     its own top bits once and tests one guard bit before committing to a
//     hash probe, so the dominant cost of the ~25-active-lengths shape --
//     a full hash-and-miss per length -- collapses to a shift-and-AND for
//     every length that cannot possibly match.  Guards are conservative
//     (erase leaves bits set until a length empties), which only costs a
//     wasted probe, never a wrong result.
class IndexedLpmEngine final : public MatchEngine {
public:
    IndexedLpmEngine(int key_width, std::size_t capacity)
        : key_width_(key_width), capacity_(capacity),
          guard_bits_(std::min(key_width, 8)),
          by_len_(static_cast<std::size_t>(key_width) + 1),
          active_bits_((static_cast<std::size_t>(key_width) + 64) / 64, 0),
          guards_(static_cast<std::size_t>(key_width) + 1) {}

    InsertStatus insert(const TableEntry& entry) override {
        if (entry.key_values.size() != 1 || entry.prefix_len < 0 ||
            entry.prefix_len > key_width_) {
            return InsertStatus::bad_entry;
        }
        if (count_ >= capacity_) return InsertStatus::table_full;
        PackedKey key = masked_key(entry.key_values[0], entry.prefix_len);
        auto& map = by_len_[static_cast<std::size_t>(entry.prefix_len)];
        if (map.contains(key)) return InsertStatus::duplicate;
        if (map.empty()) set_active(entry.prefix_len, true);
        set_guard(entry.prefix_len, guard_index(top_bits(key), entry.prefix_len));
        map.insert(std::move(key), ActionEntry{entry.action_id, entry.action_args});
        ++count_;
        return InsertStatus::ok;
    }

    bool erase(const TableEntry& entry) override {
        if (entry.key_values.size() != 1 || entry.prefix_len < 0 ||
            entry.prefix_len > key_width_) {
            return false;
        }
        auto& map = by_len_[static_cast<std::size_t>(entry.prefix_len)];
        if (!map.erase(masked_key(entry.key_values[0], entry.prefix_len))) {
            return false;
        }
        --count_;
        if (map.empty()) {
            set_active(entry.prefix_len, false);
            guards_[static_cast<std::size_t>(entry.prefix_len)] = {};
        }
        return true;
    }

    const ActionEntry* lookup(std::span<const Bitvec> keys) const override {
        if (keys.size() != 1) return nullptr;
        PackedKey key;
        key.pack(keys.subspan(0, 1), key_width_);
        // Masking clears low bits only, so the key's top guard_bits_ are
        // invariant across every candidate length: compute them once.
        const std::uint32_t top = top_bits(key);
        int masked_to = key_width_;  // bits still intact (from the top)
        // Bitmap-guided probe order: walk set bits from the highest word
        // down, longest prefix first.
        for (std::size_t w = active_bits_.size(); w-- > 0;) {
            std::uint64_t bits = active_bits_[w];
            while (bits != 0) {
                const int hi = 63 - std::countl_zero(bits);
                bits &= ~(1ull << hi);
                const int len = static_cast<int>(w) * 64 + hi;
                if (!test_guard(len, guard_index(top, len))) continue;
                // Lengths are visited descending, so masking is monotone:
                // clear a few more low bits each step instead of re-packing.
                if (len < masked_to) {
                    key.clear_low_bits(key_width_ - len);
                    masked_to = len;
                }
                if (const ActionEntry* found =
                        by_len_[static_cast<std::size_t>(len)].find(key)) {
                    return found;
                }
            }
        }
        return nullptr;
    }

    std::size_t entry_count() const override { return count_; }

    void clear() override {
        for (auto& map : by_len_) map.clear();
        std::fill(active_bits_.begin(), active_bits_.end(), 0);
        std::fill(guards_.begin(), guards_.end(), Guard{});
        count_ = 0;
    }

private:
    PackedKey masked_key(const Bitvec& value, int prefix_len) const {
        PackedKey key;
        key.pack(std::span<const Bitvec>(&value, 1), key_width_);
        key.clear_low_bits(key_width_ - prefix_len);
        return key;
    }

    void set_active(int len, bool on) {
        auto& word = active_bits_[static_cast<std::size_t>(len) / 64];
        const std::uint64_t bit = 1ull << (static_cast<std::size_t>(len) % 64);
        word = on ? (word | bit) : (word & ~bit);
    }

    // Top min(8, key_width) bits of a packed key image.
    std::uint32_t top_bits(const PackedKey& key) const {
        const auto words = key.words();
        if (guard_bits_ == 0) return 0;
        const int lo = key_width_ - guard_bits_;  // lowest extracted bit
        const std::size_t word = static_cast<std::size_t>(lo) / 64;
        const int off = lo % 64;
        std::uint64_t v = words[word] >> off;
        if (off > 64 - guard_bits_ && word + 1 < words.size()) {
            v |= words[word + 1] << (64 - off);
        }
        return static_cast<std::uint32_t>(v & ((1u << guard_bits_) - 1));
    }

    // Guard bit index for prefix length `len`: the top min(len, guard_bits_)
    // bits.  Shorter prefixes collapse onto coarser buckets, so a stored
    // /L prefix and a lookup key agreeing on those bits share the index.
    std::uint32_t guard_index(std::uint32_t top, int len) const {
        const int significant = std::min(len, guard_bits_);
        return top >> (guard_bits_ - significant);
    }

    void set_guard(int len, std::uint32_t index) {
        guards_[static_cast<std::size_t>(len)][index / 64] |=
            1ull << (index % 64);
    }
    bool test_guard(int len, std::uint32_t index) const {
        return (guards_[static_cast<std::size_t>(len)][index / 64] >>
                (index % 64)) &
               1;
    }

    using Guard = std::array<std::uint64_t, 4>;  // 256 bits: all top-8 values

    int key_width_;
    std::size_t capacity_;
    int guard_bits_;  // min(8, key_width): bits each guard filter keys on
    std::vector<FlatKeyMap> by_len_;
    std::vector<std::uint64_t> active_bits_;  // bit L <=> length L non-empty
    std::vector<Guard> guards_;               // per-length presence filters
    std::size_t count_ = 0;
};

// --- indexed ternary ----------------------------------------------------------

// Rows kept sorted best-priority-first (insertion order breaks ties, like
// the naive scan), so a lookup returns the first matching row and exits.
class IndexedTernaryEngine final : public MatchEngine {
public:
    IndexedTernaryEngine(int total_width, std::size_t capacity, bool inverted)
        : total_width_(total_width), capacity_(capacity), inverted_(inverted) {}

    InsertStatus insert(const TableEntry& entry) override {
        if (rows_.size() >= capacity_) return InsertStatus::table_full;
        Row row;
        make_row_key(entry, row.value, row.mask);
        for (const auto& existing : rows_) {
            if (existing.value == row.value && existing.mask == row.mask) {
                return InsertStatus::duplicate;
            }
        }
        row.priority = entry.priority;
        row.seq = next_seq_++;
        row.action = {entry.action_id, entry.action_args};
        const auto pos = std::upper_bound(
            rows_.begin(), rows_.end(), row,
            [this](const Row& a, const Row& b) { return wins(a, b); });
        rows_.insert(pos, std::move(row));
        return InsertStatus::ok;
    }

    bool erase(const TableEntry& entry) override {
        PackedKey value, mask;
        make_row_key(entry, value, mask);
        for (auto it = rows_.begin(); it != rows_.end(); ++it) {
            if (it->value == value && it->mask == mask) {
                rows_.erase(it);
                return true;
            }
        }
        return false;
    }

    const ActionEntry* lookup(std::span<const Bitvec> keys) const override {
        PackedKey key;
        key.pack(keys, total_width_);
        const auto kw = key.words();
        for (const auto& row : rows_) {
            const auto vw = row.value.words();
            const auto mw = row.mask.words();
            bool match = true;
            for (std::size_t i = 0; i < kw.size(); ++i) {
                if ((kw[i] & mw[i]) != vw[i]) {
                    match = false;
                    break;
                }
            }
            if (match) return &row.action;  // best-first order: done
        }
        return nullptr;
    }

    std::size_t entry_count() const override { return rows_.size(); }
    void clear() override { rows_.clear(); }

private:
    struct Row {
        PackedKey value;
        PackedKey mask;
        int priority = 0;
        std::uint64_t seq = 0;
        ActionEntry action;
    };

    // Strict-weak order: does `a` win over `b`?
    bool wins(const Row& a, const Row& b) const {
        if (a.priority != b.priority) {
            return inverted_ ? a.priority < b.priority : a.priority > b.priority;
        }
        return a.seq < b.seq;  // first-inserted wins ties, like the naive scan
    }

    void make_row_key(const TableEntry& entry, PackedKey& value,
                      PackedKey& mask) const {
        value.pack(entry.key_values, total_width_);
        if (entry.key_masks.empty()) {
            const Bitvec all = Bitvec::ones(total_width_);
            mask.pack(std::span<const Bitvec>(&all, 1), total_width_);
        } else {
            mask.pack(entry.key_masks, total_width_);
        }
        // Pre-mask the value so matching is (key & mask) == value.
        value.band_with(mask);
    }

    int total_width_;
    std::size_t capacity_;
    bool inverted_;
    std::uint64_t next_seq_ = 0;
    std::vector<Row> rows_;
};

// --- naive exact (reference) --------------------------------------------------

class NaiveExactEngine final : public MatchEngine {
public:
    NaiveExactEngine(int total_width, std::size_t capacity)
        : total_width_(total_width), capacity_(capacity) {}

    InsertStatus insert(const TableEntry& entry) override {
        const Bitvec key = concat_keys(entry.key_values).resize(total_width_);
        if (map_.count(key)) return InsertStatus::duplicate;
        if (map_.size() >= capacity_) return InsertStatus::table_full;
        map_.emplace(key, ActionEntry{entry.action_id, entry.action_args});
        return InsertStatus::ok;
    }

    bool erase(const TableEntry& entry) override {
        const Bitvec key = concat_keys(entry.key_values).resize(total_width_);
        return map_.erase(key) > 0;
    }

    const ActionEntry* lookup(std::span<const Bitvec> keys) const override {
        const Bitvec key = concat_keys(keys).resize(total_width_);
        const auto it = map_.find(key);
        return it == map_.end() ? nullptr : &it->second;
    }

    std::size_t entry_count() const override { return map_.size(); }
    void clear() override { map_.clear(); }

private:
    int total_width_;
    std::size_t capacity_;
    std::unordered_map<Bitvec, ActionEntry, util::BitvecHash> map_;
};

// --- naive lpm (reference) ----------------------------------------------------

// Binary trie over the key bits, most significant bit first.  The longest
// prefix on the lookup path wins.
class NaiveLpmEngine final : public MatchEngine {
public:
    NaiveLpmEngine(int key_width, std::size_t capacity)
        : key_width_(key_width), capacity_(capacity) {
        nodes_.push_back(Node{});  // root
    }

    InsertStatus insert(const TableEntry& entry) override {
        if (entry.key_values.size() != 1 || entry.prefix_len < 0 ||
            entry.prefix_len > key_width_) {
            return InsertStatus::bad_entry;
        }
        if (count_ >= capacity_) return InsertStatus::table_full;
        const Bitvec value = entry.key_values[0].resize(key_width_);
        std::size_t node = 0;
        for (int i = 0; i < entry.prefix_len; ++i) {
            const bool bit = value.bit(key_width_ - 1 - i);
            const std::size_t child = bit ? nodes_[node].one : nodes_[node].zero;
            if (child == 0) {
                const std::size_t fresh = nodes_.size();
                nodes_.push_back(Node{});
                if (bit) {
                    nodes_[node].one = fresh;
                } else {
                    nodes_[node].zero = fresh;
                }
                node = fresh;
            } else {
                node = child;
            }
        }
        if (nodes_[node].entry) return InsertStatus::duplicate;
        nodes_[node].entry = ActionEntry{entry.action_id, entry.action_args};
        ++count_;
        return InsertStatus::ok;
    }

    bool erase(const TableEntry& entry) override {
        if (entry.key_values.size() != 1 || entry.prefix_len < 0 ||
            entry.prefix_len > key_width_) {
            return false;
        }
        const Bitvec value = entry.key_values[0].resize(key_width_);
        std::size_t node = 0;
        for (int i = 0; i < entry.prefix_len; ++i) {
            const bool bit = value.bit(key_width_ - 1 - i);
            const std::size_t child = bit ? nodes_[node].one : nodes_[node].zero;
            if (child == 0) return false;
            node = child;
        }
        if (!nodes_[node].entry) return false;
        nodes_[node].entry.reset();
        --count_;
        return true;
    }

    const ActionEntry* lookup(std::span<const Bitvec> keys) const override {
        if (keys.size() != 1) return nullptr;
        const Bitvec key = keys[0].resize(key_width_);
        const ActionEntry* best = nullptr;
        std::size_t node = 0;
        if (nodes_[0].entry) best = &*nodes_[0].entry;
        for (int i = 0; i < key_width_; ++i) {
            const bool bit = key.bit(key_width_ - 1 - i);
            const std::size_t child = bit ? nodes_[node].one : nodes_[node].zero;
            if (child == 0) break;
            node = child;
            if (nodes_[node].entry) best = &*nodes_[node].entry;
        }
        return best;
    }

    std::size_t entry_count() const override { return count_; }

    void clear() override {
        nodes_.clear();
        nodes_.push_back(Node{});
        count_ = 0;
    }

private:
    struct Node {
        std::size_t zero = 0;  // 0 = absent (root is never a child)
        std::size_t one = 0;
        std::optional<ActionEntry> entry;
    };
    int key_width_;
    std::size_t capacity_;
    std::vector<Node> nodes_;
    std::size_t count_ = 0;
};

// --- naive ternary (reference) ------------------------------------------------

class NaiveTernaryEngine final : public MatchEngine {
public:
    NaiveTernaryEngine(int total_width, std::size_t capacity, bool inverted)
        : total_width_(total_width), capacity_(capacity), inverted_(inverted) {}

    InsertStatus insert(const TableEntry& entry) override {
        if (entries_.size() >= capacity_) return InsertStatus::table_full;
        Row row;
        row.value = concat_keys(entry.key_values).resize(total_width_);
        if (entry.key_masks.empty()) {
            row.mask = Bitvec::ones(total_width_);
        } else {
            row.mask = concat_keys(entry.key_masks).resize(total_width_);
        }
        row.value = row.value.band(row.mask);
        row.priority = entry.priority;
        row.action = {entry.action_id, entry.action_args};
        for (const auto& existing : entries_) {
            if (existing.value == row.value && existing.mask == row.mask) {
                return InsertStatus::duplicate;
            }
        }
        entries_.push_back(std::move(row));
        return InsertStatus::ok;
    }

    bool erase(const TableEntry& entry) override {
        Bitvec value = concat_keys(entry.key_values).resize(total_width_);
        Bitvec mask = entry.key_masks.empty()
                          ? Bitvec::ones(total_width_)
                          : concat_keys(entry.key_masks).resize(total_width_);
        value = value.band(mask);
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->value == value && it->mask == mask) {
                entries_.erase(it);
                return true;
            }
        }
        return false;
    }

    const ActionEntry* lookup(std::span<const Bitvec> keys) const override {
        const Bitvec key = concat_keys(keys).resize(total_width_);
        const Row* best = nullptr;
        for (const auto& row : entries_) {
            if (!key.band(row.mask).eq(row.value)) continue;
            if (!best) {
                best = &row;
            } else if (inverted_ ? row.priority < best->priority
                                 : row.priority > best->priority) {
                best = &row;
            }
        }
        return best ? &best->action : nullptr;
    }

    std::size_t entry_count() const override { return entries_.size(); }
    void clear() override { entries_.clear(); }

private:
    struct Row {
        Bitvec value;
        Bitvec mask;
        int priority = 0;
        ActionEntry action;
    };
    int total_width_;
    std::size_t capacity_;
    bool inverted_;
    std::vector<Row> entries_;
};

}  // namespace

std::unique_ptr<MatchEngine> make_exact_engine(int total_width, std::size_t capacity) {
    return std::make_unique<IndexedExactEngine>(total_width, capacity);
}

std::unique_ptr<MatchEngine> make_lpm_engine(int key_width, std::size_t capacity) {
    return std::make_unique<IndexedLpmEngine>(key_width, capacity);
}

std::unique_ptr<MatchEngine> make_ternary_engine(int total_width, std::size_t capacity,
                                                 bool inverted_priority) {
    return std::make_unique<IndexedTernaryEngine>(total_width, capacity,
                                                  inverted_priority);
}

std::unique_ptr<MatchEngine> make_naive_exact_engine(int total_width,
                                                     std::size_t capacity) {
    return std::make_unique<NaiveExactEngine>(total_width, capacity);
}

std::unique_ptr<MatchEngine> make_naive_lpm_engine(int key_width,
                                                   std::size_t capacity) {
    return std::make_unique<NaiveLpmEngine>(key_width, capacity);
}

std::unique_ptr<MatchEngine> make_naive_ternary_engine(int total_width,
                                                       std::size_t capacity,
                                                       bool inverted_priority) {
    return std::make_unique<NaiveTernaryEngine>(total_width, capacity,
                                                inverted_priority);
}

// --- TableSet -------------------------------------------------------------------

TableSet::TableSet(const p4::ir::Program& prog, int size_clamp,
                   bool inverted_priority) {
    slots_.reserve(prog.tables.size());
    for (const auto& t : prog.tables) {
        Slot slot;
        std::size_t cap = static_cast<std::size_t>(std::max<std::int64_t>(t.size, 1));
        if (size_clamp > 0) {
            cap = std::min(cap, static_cast<std::size_t>(size_clamp));
        }
        slot.capacity = cap;
        if (t.has_lpm()) {
            slot.engine = make_lpm_engine(t.keys[0].width, cap);
            slot.kind = p4::ir::MatchKind::lpm;
        } else if (t.has_ternary()) {
            slot.engine = make_ternary_engine(t.total_key_width(), cap, inverted_priority);
            slot.kind = p4::ir::MatchKind::ternary;
        } else {
            slot.engine = make_exact_engine(t.total_key_width(), cap);
            slot.kind = p4::ir::MatchKind::exact;
        }
        slot.default_action = {t.default_action, t.default_args};
        slots_.push_back(std::move(slot));
    }
}

InsertStatus TableSet::insert(int table_id, const TableEntry& entry) {
    return slots_.at(static_cast<std::size_t>(table_id)).engine->insert(entry);
}

bool TableSet::erase(int table_id, const TableEntry& entry) {
    return slots_.at(static_cast<std::size_t>(table_id)).engine->erase(entry);
}

void TableSet::set_default_action(int table_id, ActionEntry entry) {
    slots_.at(static_cast<std::size_t>(table_id)).default_action = std::move(entry);
}

const ActionEntry& TableSet::lookup(int table_id, std::span<const Bitvec> keys,
                                    bool& hit) {
    return lookup_slot(slots_.at(static_cast<std::size_t>(table_id)), keys, hit);
}

const ActionEntry& TableSet::lookup_slot_timed(Slot& slot,
                                               std::span<const Bitvec> keys,
                                               bool& hit) {
    obs::Counter counter = obs::Counter::lookups_exact;
    obs::Hist hist = obs::Hist::lookup_ns_exact;
    switch (slot.kind) {
        case p4::ir::MatchKind::lpm:
            counter = obs::Counter::lookups_lpm;
            hist = obs::Hist::lookup_ns_lpm;
            break;
        case p4::ir::MatchKind::ternary:
            counter = obs::Counter::lookups_ternary;
            hist = obs::Hist::lookup_ns_ternary;
            break;
        case p4::ir::MatchKind::exact:
            break;
    }
    obs::count(counter);
    const bool timed = obs::sample_lookup();
    const std::uint64_t t0 = timed ? obs::now_ns() : 0;
    const ActionEntry* found = slot.engine->lookup(keys);
    if (timed) obs::record(hist, obs::now_ns() - t0);
    if (found) {
        hit = true;
        ++slot.stats.hits;
        return *found;
    }
    hit = false;
    ++slot.stats.misses;
    return slot.default_action;
}

const TableSet::Stats& TableSet::stats(int table_id) const {
    return slots_.at(static_cast<std::size_t>(table_id)).stats;
}

std::size_t TableSet::entry_count(int table_id) const {
    return slots_.at(static_cast<std::size_t>(table_id)).engine->entry_count();
}

std::size_t TableSet::capacity(int table_id) const {
    return slots_.at(static_cast<std::size_t>(table_id)).capacity;
}

void TableSet::clear(int table_id) {
    slots_.at(static_cast<std::size_t>(table_id)).engine->clear();
}

void TableSet::reset_stats() {
    for (auto& slot : slots_) slot.stats = {};
}

}  // namespace ndb::dataplane
