#include "dataplane/tables.h"

#include <algorithm>
#include <stdexcept>

namespace ndb::dataplane {

const char* insert_status_name(InsertStatus status) {
    switch (status) {
        case InsertStatus::ok: return "ok";
        case InsertStatus::table_full: return "table_full";
        case InsertStatus::duplicate: return "duplicate";
        case InsertStatus::bad_entry: return "bad_entry";
    }
    return "?";
}

namespace {

Bitvec concat_keys(std::span<const Bitvec> keys) {
    Bitvec out;
    for (const auto& k : keys) out = Bitvec::concat(out, k);
    return out;
}

// --- exact ------------------------------------------------------------------

class ExactEngine final : public MatchEngine {
public:
    ExactEngine(int total_width, std::size_t capacity)
        : total_width_(total_width), capacity_(capacity) {}

    InsertStatus insert(const TableEntry& entry) override {
        const Bitvec key = concat_keys(entry.key_values).resize(total_width_);
        if (map_.count(key)) return InsertStatus::duplicate;
        if (map_.size() >= capacity_) return InsertStatus::table_full;
        map_.emplace(key, ActionEntry{entry.action_id, entry.action_args});
        return InsertStatus::ok;
    }

    bool erase(const TableEntry& entry) override {
        const Bitvec key = concat_keys(entry.key_values).resize(total_width_);
        return map_.erase(key) > 0;
    }

    std::optional<ActionEntry> lookup(std::span<const Bitvec> keys) const override {
        const Bitvec key = concat_keys(keys).resize(total_width_);
        const auto it = map_.find(key);
        if (it == map_.end()) return std::nullopt;
        return it->second;
    }

    std::size_t entry_count() const override { return map_.size(); }
    void clear() override { map_.clear(); }

private:
    int total_width_;
    std::size_t capacity_;
    std::unordered_map<Bitvec, ActionEntry, util::BitvecHash> map_;
};

// --- lpm ---------------------------------------------------------------------

// Binary trie over the key bits, most significant bit first.  The longest
// prefix on the lookup path wins.
class LpmEngine final : public MatchEngine {
public:
    LpmEngine(int key_width, std::size_t capacity)
        : key_width_(key_width), capacity_(capacity) {
        nodes_.push_back(Node{});  // root
    }

    InsertStatus insert(const TableEntry& entry) override {
        if (entry.key_values.size() != 1 || entry.prefix_len < 0 ||
            entry.prefix_len > key_width_) {
            return InsertStatus::bad_entry;
        }
        if (count_ >= capacity_) return InsertStatus::table_full;
        const Bitvec value = entry.key_values[0].resize(key_width_);
        std::size_t node = 0;
        for (int i = 0; i < entry.prefix_len; ++i) {
            const bool bit = value.bit(key_width_ - 1 - i);
            std::size_t& child = bit ? nodes_[node].one : nodes_[node].zero;
            if (child == 0) {
                child = nodes_.size();
                // `child` is invalidated by push_back; recompute through index.
                const std::size_t fresh = nodes_.size();
                nodes_.push_back(Node{});
                if (bit) {
                    nodes_[node].one = fresh;
                } else {
                    nodes_[node].zero = fresh;
                }
                node = fresh;
            } else {
                node = child;
            }
        }
        if (nodes_[node].entry) return InsertStatus::duplicate;
        nodes_[node].entry = ActionEntry{entry.action_id, entry.action_args};
        ++count_;
        return InsertStatus::ok;
    }

    bool erase(const TableEntry& entry) override {
        if (entry.key_values.size() != 1 || entry.prefix_len < 0) return false;
        const Bitvec value = entry.key_values[0].resize(key_width_);
        std::size_t node = 0;
        for (int i = 0; i < entry.prefix_len; ++i) {
            const bool bit = value.bit(key_width_ - 1 - i);
            const std::size_t child = bit ? nodes_[node].one : nodes_[node].zero;
            if (child == 0) return false;
            node = child;
        }
        if (!nodes_[node].entry) return false;
        nodes_[node].entry.reset();
        --count_;
        return true;
    }

    std::optional<ActionEntry> lookup(std::span<const Bitvec> keys) const override {
        if (keys.size() != 1) return std::nullopt;
        const Bitvec key = keys[0].resize(key_width_);
        std::optional<ActionEntry> best;
        std::size_t node = 0;
        if (nodes_[0].entry) best = nodes_[0].entry;
        for (int i = 0; i < key_width_; ++i) {
            const bool bit = key.bit(key_width_ - 1 - i);
            const std::size_t child = bit ? nodes_[node].one : nodes_[node].zero;
            if (child == 0) break;
            node = child;
            if (nodes_[node].entry) best = nodes_[node].entry;
        }
        return best;
    }

    std::size_t entry_count() const override { return count_; }

    void clear() override {
        nodes_.clear();
        nodes_.push_back(Node{});
        count_ = 0;
    }

private:
    struct Node {
        std::size_t zero = 0;  // 0 = absent (root is never a child)
        std::size_t one = 0;
        std::optional<ActionEntry> entry;
    };
    int key_width_;
    std::size_t capacity_;
    std::vector<Node> nodes_;
    std::size_t count_ = 0;
};

// --- ternary -----------------------------------------------------------------

class TernaryEngine final : public MatchEngine {
public:
    TernaryEngine(int total_width, std::size_t capacity, bool inverted)
        : total_width_(total_width), capacity_(capacity), inverted_(inverted) {}

    InsertStatus insert(const TableEntry& entry) override {
        if (entries_.size() >= capacity_) return InsertStatus::table_full;
        Row row;
        row.value = concat_keys(entry.key_values).resize(total_width_);
        if (entry.key_masks.empty()) {
            row.mask = Bitvec::ones(total_width_);
        } else {
            row.mask = concat_keys(entry.key_masks).resize(total_width_);
        }
        row.value = row.value.band(row.mask);
        row.priority = entry.priority;
        row.action = {entry.action_id, entry.action_args};
        for (const auto& existing : entries_) {
            if (existing.value == row.value && existing.mask == row.mask) {
                return InsertStatus::duplicate;
            }
        }
        entries_.push_back(std::move(row));
        return InsertStatus::ok;
    }

    bool erase(const TableEntry& entry) override {
        Bitvec value = concat_keys(entry.key_values).resize(total_width_);
        Bitvec mask = entry.key_masks.empty()
                          ? Bitvec::ones(total_width_)
                          : concat_keys(entry.key_masks).resize(total_width_);
        value = value.band(mask);
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->value == value && it->mask == mask) {
                entries_.erase(it);
                return true;
            }
        }
        return false;
    }

    std::optional<ActionEntry> lookup(std::span<const Bitvec> keys) const override {
        const Bitvec key = concat_keys(keys).resize(total_width_);
        const Row* best = nullptr;
        for (const auto& row : entries_) {
            if (!key.band(row.mask).eq(row.value)) continue;
            if (!best) {
                best = &row;
            } else if (inverted_ ? row.priority < best->priority
                                 : row.priority > best->priority) {
                best = &row;
            }
        }
        if (!best) return std::nullopt;
        return best->action;
    }

    std::size_t entry_count() const override { return entries_.size(); }
    void clear() override { entries_.clear(); }

private:
    struct Row {
        Bitvec value;
        Bitvec mask;
        int priority = 0;
        ActionEntry action;
    };
    int total_width_;
    std::size_t capacity_;
    bool inverted_;
    std::vector<Row> entries_;
};

}  // namespace

std::unique_ptr<MatchEngine> make_exact_engine(int total_width, std::size_t capacity) {
    return std::make_unique<ExactEngine>(total_width, capacity);
}

std::unique_ptr<MatchEngine> make_lpm_engine(int key_width, std::size_t capacity) {
    return std::make_unique<LpmEngine>(key_width, capacity);
}

std::unique_ptr<MatchEngine> make_ternary_engine(int total_width, std::size_t capacity,
                                                 bool inverted_priority) {
    return std::make_unique<TernaryEngine>(total_width, capacity, inverted_priority);
}

// --- TableSet -------------------------------------------------------------------

TableSet::TableSet(const p4::ir::Program& prog, int size_clamp,
                   bool inverted_priority) {
    slots_.reserve(prog.tables.size());
    for (const auto& t : prog.tables) {
        Slot slot;
        std::size_t cap = static_cast<std::size_t>(std::max<std::int64_t>(t.size, 1));
        if (size_clamp > 0) {
            cap = std::min(cap, static_cast<std::size_t>(size_clamp));
        }
        slot.capacity = cap;
        if (t.has_lpm()) {
            slot.engine = make_lpm_engine(t.keys[0].width, cap);
        } else if (t.has_ternary()) {
            slot.engine = make_ternary_engine(t.total_key_width(), cap, inverted_priority);
        } else {
            slot.engine = make_exact_engine(t.total_key_width(), cap);
        }
        slot.default_action = {t.default_action, t.default_args};
        slots_.push_back(std::move(slot));
    }
}

InsertStatus TableSet::insert(int table_id, const TableEntry& entry) {
    return slots_.at(static_cast<std::size_t>(table_id)).engine->insert(entry);
}

bool TableSet::erase(int table_id, const TableEntry& entry) {
    return slots_.at(static_cast<std::size_t>(table_id)).engine->erase(entry);
}

void TableSet::set_default_action(int table_id, ActionEntry entry) {
    slots_.at(static_cast<std::size_t>(table_id)).default_action = std::move(entry);
}

ActionEntry TableSet::lookup(int table_id, std::span<const Bitvec> keys, bool& hit) {
    auto& slot = slots_.at(static_cast<std::size_t>(table_id));
    if (auto found = slot.engine->lookup(keys)) {
        hit = true;
        ++slot.stats.hits;
        return *found;
    }
    hit = false;
    ++slot.stats.misses;
    return slot.default_action;
}

const TableSet::Stats& TableSet::stats(int table_id) const {
    return slots_.at(static_cast<std::size_t>(table_id)).stats;
}

std::size_t TableSet::entry_count(int table_id) const {
    return slots_.at(static_cast<std::size_t>(table_id)).engine->entry_count();
}

std::size_t TableSet::capacity(int table_id) const {
    return slots_.at(static_cast<std::size_t>(table_id)).capacity;
}

void TableSet::clear(int table_id) {
    slots_.at(static_cast<std::size_t>(table_id)).engine->clear();
}

void TableSet::reset_stats() {
    for (auto& slot : slots_) slot.stats = {};
}

}  // namespace ndb::dataplane
