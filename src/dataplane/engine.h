// Execution-engine selection for the data plane.
//
// Two engines execute the same IR behind the Pipeline interface:
//
//   * Engine::interpreter -- the tree-walking Interpreter, the trusted
//     semantic oracle every fast path is differentially tested against;
//   * Engine::compiled    -- the threaded-code CompiledPipeline (the
//     production default), a per-program specialization of the IR into a
//     flat instruction stream (src/dataplane/compile.h).
//
// The process-wide default is overridable with NDB_ENGINE=interp|compiled,
// which is how CI sweeps the whole test suite under both engines without
// per-test plumbing.
#pragma once

#include <optional>
#include <string_view>

namespace ndb::dataplane {

enum class Engine {
    interpreter = 0,
    compiled = 1,
};

const char* engine_name(Engine engine);

// Parses "interp"/"interpreter"/"compiled"; nullopt on anything else.
std::optional<Engine> engine_from_name(std::string_view name);

// The process default: NDB_ENGINE when set to a valid name (read once),
// otherwise Engine::compiled.
Engine default_engine();

}  // namespace ndb::dataplane
