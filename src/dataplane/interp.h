// IR interpreter: expression evaluation and match-action control execution.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <unordered_map>
#include <vector>

#include "dataplane/quirks.h"
#include "dataplane/state.h"
#include "dataplane/stateful.h"
#include "dataplane/tables.h"
#include "p4/ir.h"

namespace ndb::coverage {
class CoverageMap;
}  // namespace ndb::coverage

namespace ndb::dataplane {

// Local/parameter slots for the body currently executing.
struct Frame {
    std::vector<Bitvec> locals;
    std::vector<Bitvec> params;
};

// One table application observed while a control ran.
struct TableApply {
    int table = -1;
    bool hit = false;
    int action = -1;
};

// Evaluates `e` against packet state and frame.  Shared by the parser
// engine (select keys), the interpreter and tests.  Honours the quirks
// that affect expression semantics (shift miscompilation).
Bitvec eval_expr(const p4::ir::Program& prog, const p4::ir::Expr& e,
                 const PacketState& state, const Frame& frame,
                 const Quirks& quirks);

// Re-initializes a pooled frame's local slots to zeroes of the declared
// widths, reusing storage when the widths already line up.  Shared by both
// execution engines so locals always start from the identical state.
void reset_frame_locals(Frame& frame, std::span<const int> widths);

// IPv4-style checksum recompute shared by both execution engines: serialize
// `header` with the checksum field forced to zero, RFC-1071 sum the byte
// image (streamed through `bytes_scratch`), store into the checksum field.
void checksum_update_field(const p4::ir::Program& prog, PacketState& state,
                           int header, int checksum_field,
                           std::vector<std::uint8_t>& bytes_scratch);

// Executes ingress/egress controls over a PacketState.
//
// The execution machinery (call frames, table-key scratch, extern byte
// buffers) is pooled on the interpreter and reused across packets, so a
// steady-state packet traversal performs no heap allocation of its own.
class Interpreter {
public:
    Interpreter(const p4::ir::Program& prog, TableSet& tables, StatefulSet& stateful,
                Quirks quirks = {});

    // Runs a control body; table applies are appended to `applies_`.
    void run_control(const p4::ir::Control& control, PacketState& state);

    // Runs one action directly (used for table results and direct calls).
    void run_action(int action_id, std::span<const Bitvec> args, PacketState& state);

    const std::vector<TableApply>& applies() const { return applies_; }
    void clear_applies() { applies_.clear(); }

    // Coverage instrumentation: when a map is set, table hits/misses,
    // action invocations and branch edges are recorded into it, salted by
    // the program name XOR `salt` (devices pass a per-backend salt so DUT
    // edges never alias reference edges).  The static branch ordinals are
    // assigned on the first call (a deterministic pre-order walk of the
    // controls and actions), so enabling coverage allocates once here and
    // never on the per-packet path.
    void set_coverage(coverage::CoverageMap* map, std::uint64_t salt = 0);

private:
    void exec_body(const std::vector<p4::ir::StmtPtr>& body, PacketState& state,
                   Frame& frame);
    void exec(const p4::ir::Stmt& s, PacketState& state, Frame& frame);
    void exec_extern(const p4::ir::Stmt& s, PacketState& state, Frame& frame);

    // Call-frame pool: frames_ grows to the deepest nesting ever seen and
    // its vectors keep their capacity, so re-entry is allocation-free.
    struct FrameScope;
    Frame& push_frame();
    void pop_frame() { --depth_; }

    const p4::ir::Program& prog_;
    TableSet& tables_;
    StatefulSet& stateful_;
    Quirks quirks_;
    std::vector<TableApply> applies_;

    std::deque<Frame> frames_;  // deque: references stay valid while growing
    std::size_t depth_ = 0;
    std::vector<Bitvec> keys_scratch_;
    std::vector<Bitvec> args_scratch_;
    std::vector<std::uint8_t> bytes_scratch_;

    coverage::CoverageMap* coverage_ = nullptr;
    std::uint64_t cov_salt_ = 0;  // program_salt(prog_.name) ^ device salt
    // if_stmt -> stable ordinal; built once per program when coverage is
    // first enabled (identical walk order => identical ordinals everywhere).
    std::unordered_map<const p4::ir::Stmt*, std::uint32_t> branch_ids_;
};

}  // namespace ndb::dataplane
