// IR interpreter: expression evaluation and match-action control execution.
#pragma once

#include <vector>

#include "dataplane/quirks.h"
#include "dataplane/state.h"
#include "dataplane/stateful.h"
#include "dataplane/tables.h"
#include "p4/ir.h"

namespace ndb::dataplane {

// Local/parameter slots for the body currently executing.
struct Frame {
    std::vector<Bitvec> locals;
    std::vector<Bitvec> params;
};

// One table application observed while a control ran.
struct TableApply {
    int table = -1;
    bool hit = false;
    int action = -1;
};

// Evaluates `e` against packet state and frame.  Shared by the parser
// engine (select keys), the interpreter and tests.  Honours the quirks
// that affect expression semantics (shift miscompilation).
Bitvec eval_expr(const p4::ir::Program& prog, const p4::ir::Expr& e,
                 const PacketState& state, const Frame& frame,
                 const Quirks& quirks);

// Executes ingress/egress controls over a PacketState.
class Interpreter {
public:
    Interpreter(const p4::ir::Program& prog, TableSet& tables, StatefulSet& stateful,
                Quirks quirks = {});

    // Runs a control body; table applies are appended to `applies_`.
    void run_control(const p4::ir::Control& control, PacketState& state);

    // Runs one action directly (used for table results and direct calls).
    void run_action(int action_id, std::vector<Bitvec> args, PacketState& state);

    const std::vector<TableApply>& applies() const { return applies_; }
    void clear_applies() { applies_.clear(); }

private:
    void exec_body(const std::vector<p4::ir::StmtPtr>& body, PacketState& state,
                   Frame& frame);
    void exec(const p4::ir::Stmt& s, PacketState& state, Frame& frame);
    void exec_extern(const p4::ir::Stmt& s, PacketState& state, Frame& frame);
    void checksum_update(PacketState& state, int header, int checksum_field);

    const p4::ir::Program& prog_;
    TableSet& tables_;
    StatefulSet& stateful_;
    Quirks quirks_;
    std::vector<TableApply> applies_;
};

}  // namespace ndb::dataplane
