// Deparser: serializes the parsed representation back to wire bytes.
#pragma once

#include "dataplane/state.h"
#include "p4/ir.h"
#include "packet/packet.h"

namespace ndb::dataplane {

// Emits every valid header in the program's deparse order, then appends the
// payload.  Non-byte-aligned header stacks are padded with zero bits at the
// end, mirroring how hardware deparsers round up to the bus width.
packet::Packet deparse(const p4::ir::Program& prog, const PacketState& state);

}  // namespace ndb::dataplane
