#include "dataplane/compile.h"

#include <algorithm>
#include <stdexcept>

#include "coverage/coverage.h"
#include "dataplane/deparser.h"
#include "dataplane/parser_engine.h"
#include "packet/checksum.h"
#include "util/strings.h"

namespace ndb::dataplane {

using compiled::CaseSet;
using compiled::CompiledProgram;
using compiled::EOp;
using compiled::ExprInst;
using compiled::ExprRef;
using compiled::Inst;
using compiled::Op;
using compiled::Routine;
using p4::ir::Expr;
using p4::ir::Program;
using p4::ir::Stmt;

// --- compiler -----------------------------------------------------------------

namespace {

// True when the subtree contains no packet/frame reads, so its value is a
// pure function of the program (and quirks) and folds at compile time.
bool is_const_expr(const Expr& e) {
    switch (e.kind) {
        case Expr::Kind::constant:
            return true;
        case Expr::Kind::field:
        case Expr::Kind::param:
        case Expr::Kind::local:
        case Expr::Kind::is_valid:
            return false;
        case Expr::Kind::unary:
        case Expr::Kind::slice:
        case Expr::Kind::cast:
            return is_const_expr(*e.a);
        case Expr::Kind::binary:
            return is_const_expr(*e.a) && is_const_expr(*e.b);
        case Expr::Kind::ternary:
            return is_const_expr(*e.a) && is_const_expr(*e.b) && is_const_expr(*e.c);
    }
    return false;
}

class Compiler {
public:
    Compiler(const Program& prog, const Quirks& quirks)
        : prog_(prog), quirks_(quirks), branch_ids_(p4::ir::number_branches(prog)) {}

    CompiledProgram run() {
        cp_.ingress = lower_routine(prog_.ingress.body, prog_.ingress.local_widths,
                                    Op::halt);
        cp_.has_egress = prog_.egress.has_value();
        if (prog_.egress) {
            cp_.egress = lower_routine(prog_.egress->body,
                                       prog_.egress->local_widths, Op::halt);
        }
        cp_.actions.reserve(prog_.actions.size());
        for (const auto& action : prog_.actions) {
            cp_.actions.push_back(
                lower_routine(action.body, action.local_widths, Op::ret));
        }
        lower_parser();
        return std::move(cp_);
    }

private:
    std::size_t emit(Inst in) {
        cp_.code.push_back(in);
        return cp_.code.size() - 1;
    }

    std::int32_t intern_const(const Bitvec& v) {
        for (std::size_t i = 0; i < cp_.consts.size(); ++i) {
            if (cp_.consts[i] == v) return static_cast<std::int32_t>(i);
        }
        cp_.consts.push_back(v);
        return static_cast<std::int32_t>(cp_.consts.size() - 1);
    }

    void emit_expr(const Expr& e) {
        // Constant folding: a read-free subtree evaluates now, through the
        // same eval_expr the interpreter runs (so quirk-dependent semantics
        // like shift_miscompile fold identically), and lowers to one pool
        // push.
        if (is_const_expr(e)) {
            const Bitvec v =
                eval_expr(prog_, e, fold_state_, fold_frame_, quirks_);
            cp_.expr_code.push_back({EOp::const_pool, intern_const(v), 0});
            return;
        }
        switch (e.kind) {
            case Expr::Kind::constant:
                break;  // handled by the fold above
            case Expr::Kind::field:
                cp_.expr_code.push_back({EOp::field, e.fref.header, e.fref.field});
                return;
            case Expr::Kind::param:
                cp_.expr_code.push_back({EOp::param, e.index, 0});
                return;
            case Expr::Kind::local:
                cp_.expr_code.push_back({EOp::local, e.index, 0});
                return;
            case Expr::Kind::is_valid:
                cp_.expr_code.push_back({EOp::valid, e.fref.header, 0});
                return;
            case Expr::Kind::unary: {
                emit_expr(*e.a);
                EOp op = EOp::neg;
                switch (e.un) {
                    case p4::ast::UnOp::neg: op = EOp::neg; break;
                    case p4::ast::UnOp::bnot: op = EOp::bnot; break;
                    case p4::ast::UnOp::lnot: op = EOp::lnot; break;
                }
                cp_.expr_code.push_back({op, 0, 0});
                return;
            }
            case Expr::Kind::binary: {
                using p4::ast::BinOp;
                emit_expr(*e.a);
                emit_expr(*e.b);
                EOp op = EOp::add;
                switch (e.bin) {
                    case BinOp::add: op = EOp::add; break;
                    case BinOp::sub: op = EOp::sub; break;
                    case BinOp::mul: op = EOp::mul; break;
                    case BinOp::band: op = EOp::band; break;
                    case BinOp::bor: op = EOp::bor; break;
                    case BinOp::bxor: op = EOp::bxor; break;
                    case BinOp::shl: op = EOp::shl; break;
                    case BinOp::shr:
                        // The vendor-bug quirk is resolved at compile time.
                        op = quirks_.shift_miscompile ? EOp::shr_as_shl : EOp::shr;
                        break;
                    case BinOp::eq: op = EOp::eq; break;
                    case BinOp::ne: op = EOp::ne; break;
                    case BinOp::lt: op = EOp::ult; break;
                    case BinOp::le: op = EOp::ule; break;
                    case BinOp::gt: op = EOp::ugt; break;
                    case BinOp::ge: op = EOp::uge; break;
                    case BinOp::concat: op = EOp::concat; break;
                    case BinOp::land: op = EOp::land; break;
                    case BinOp::lor: op = EOp::lor; break;
                }
                cp_.expr_code.push_back({op, 0, 0});
                return;
            }
            case Expr::Kind::ternary:
                emit_expr(*e.c);
                emit_expr(*e.a);
                emit_expr(*e.b);
                cp_.expr_code.push_back({EOp::select, 0, 0});
                return;
            case Expr::Kind::slice:
                emit_expr(*e.a);
                cp_.expr_code.push_back({EOp::slice, e.hi, e.lo});
                return;
            case Expr::Kind::cast:
                emit_expr(*e.a);
                cp_.expr_code.push_back({EOp::cast, e.width, 0});
                return;
        }
        throw std::logic_error("compile: unreachable expression kind");
    }

    ExprRef lower_expr(const Expr& e) {
        ExprRef ref;
        ref.begin = static_cast<std::uint32_t>(cp_.expr_code.size());
        emit_expr(e);
        ref.len = static_cast<std::uint32_t>(cp_.expr_code.size()) - ref.begin;
        return ref;
    }

    // Lowers a list of argument expressions into a contiguous arg_refs range.
    // The expressions are lowered first (lower_expr appends to expr_code),
    // then the refs are appended in one block so the range stays contiguous
    // even when an argument itself triggers nested lowering.
    template <typename Exprs>
    void lower_args(Inst& in, const Exprs& exprs) {
        std::vector<ExprRef> refs;
        refs.reserve(exprs.size());
        for (const auto& e : exprs) refs.push_back(lower_expr(*e));
        in.args_begin = static_cast<std::uint32_t>(cp_.arg_refs.size());
        in.args_len = static_cast<std::uint32_t>(refs.size());
        cp_.arg_refs.insert(cp_.arg_refs.end(), refs.begin(), refs.end());
    }

    Routine lower_routine(const std::vector<p4::ir::StmtPtr>& body,
                          const std::vector<int>& local_widths, Op tail) {
        Routine r;
        r.entry_pc = static_cast<std::uint32_t>(cp_.code.size());
        r.widths_begin = static_cast<std::uint32_t>(cp_.width_pool.size());
        r.widths_len = static_cast<std::uint32_t>(local_widths.size());
        cp_.width_pool.insert(cp_.width_pool.end(), local_widths.begin(),
                              local_widths.end());
        lower_body(body);
        Inst t;
        t.op = tail;
        emit(t);
        return r;
    }

    void lower_body(const std::vector<p4::ir::StmtPtr>& body) {
        for (const auto& s : body) lower_stmt(*s);
    }

    void lower_stmt(const Stmt& s) {
        Inst in;
        switch (s.kind) {
            case Stmt::Kind::assign_field:
                in.op = Op::assign_field;
                in.a = s.dst.header;
                in.b = s.dst.field;
                in.expr = lower_expr(*s.value);
                emit(in);
                return;
            case Stmt::Kind::assign_local:
                in.op = Op::assign_local;
                in.a = s.local_index;
                in.expr = lower_expr(*s.value);
                emit(in);
                return;
            case Stmt::Kind::assign_slice:
                in.op = Op::assign_slice;
                in.a = s.dst.header;
                in.b = s.dst.field;
                in.c = s.hi;
                in.d = s.lo;
                in.expr = lower_expr(*s.value);
                emit(in);
                return;
            case Stmt::Kind::if_stmt: {
                in.op = Op::branch_false;
                in.b = static_cast<std::int32_t>(branch_ids_.at(&s));
                in.expr = lower_expr(*s.cond);
                const std::size_t bidx = emit(in);
                lower_body(s.then_body);
                if (s.else_body.empty()) {
                    cp_.code[bidx].a = static_cast<std::int32_t>(cp_.code.size());
                } else {
                    Inst j;
                    j.op = Op::jump;
                    const std::size_t jidx = emit(j);
                    cp_.code[bidx].a = static_cast<std::int32_t>(cp_.code.size());
                    lower_body(s.else_body);
                    cp_.code[jidx].a = static_cast<std::int32_t>(cp_.code.size());
                }
                return;
            }
            case Stmt::Kind::apply_table: {
                in.op = Op::apply_table;
                in.a = s.table;
                const auto& table =
                    prog_.tables.at(static_cast<std::size_t>(s.table));
                std::vector<ExprRef> refs;
                refs.reserve(table.keys.size());
                for (const auto& k : table.keys) refs.push_back(lower_expr(*k.expr));
                in.args_begin = static_cast<std::uint32_t>(cp_.arg_refs.size());
                in.args_len = static_cast<std::uint32_t>(refs.size());
                cp_.arg_refs.insert(cp_.arg_refs.end(), refs.begin(), refs.end());
                emit(in);
                return;
            }
            case Stmt::Kind::call_action:
                in.op = Op::call_action;
                in.a = s.action;
                lower_args(in, s.action_args);
                emit(in);
                return;
            case Stmt::Kind::set_valid:
                in.op = Op::set_valid;
                in.a = s.dst.header;
                in.b = s.make_valid ? 1 : 0;
                emit(in);
                return;
            case Stmt::Kind::extern_op:
                lower_extern(s);
                return;
            case Stmt::Kind::exit_pipeline:
                in.op = Op::exit_run;
                emit(in);
                return;
        }
        throw std::logic_error("compile: unreachable statement kind");
    }

    void lower_extern(const Stmt& s) {
        Inst in;
        switch (s.ext) {
            case p4::ir::ExternKind::mark_to_drop:
                in.op = Op::ext_mark_to_drop;
                in.a = prog_.f_egress_spec.header;
                in.b = prog_.f_egress_spec.field;
                break;
            case p4::ir::ExternKind::register_read:
                in.op = Op::ext_register_read;
                in.a = s.ext_dst.header;
                in.b = s.ext_dst.field;
                in.c = s.extern_id;
                in.d = prog_.field(s.ext_dst).width;
                if (s.index_expr) in.expr = lower_expr(*s.index_expr);
                break;
            case p4::ir::ExternKind::register_write:
                in.op = Op::ext_register_write;
                in.a = s.extern_id;
                if (s.index_expr) in.expr = lower_expr(*s.index_expr);
                in.expr2 = lower_expr(*s.value);
                break;
            case p4::ir::ExternKind::counter_count:
                in.op = Op::ext_counter_count;
                in.a = s.extern_id;
                if (s.index_expr) in.expr = lower_expr(*s.index_expr);
                break;
            case p4::ir::ExternKind::meter_execute:
                in.op = Op::ext_meter_execute;
                in.a = s.ext_dst.header;
                in.b = s.ext_dst.field;
                in.c = s.extern_id;
                in.d = prog_.field(s.ext_dst).width;
                if (s.index_expr) in.expr = lower_expr(*s.index_expr);
                break;
            case p4::ir::ExternKind::hash:
                in.op = Op::ext_hash;
                in.a = s.ext_dst.header;
                in.b = s.ext_dst.field;
                in.d = prog_.field(s.ext_dst).width;
                lower_args(in, s.hash_inputs);
                break;
            case p4::ir::ExternKind::checksum_update:
                // skip_checksum_update is resolved here: the op keeps only
                // its cycle cost, exactly like the interpreter's guarded
                // call.
                if (quirks_.skip_checksum_update) {
                    in.op = Op::ext_nop;
                } else {
                    in.op = Op::ext_checksum;
                    in.a = s.hash_header;
                    in.b = s.checksum_field;
                }
                break;
            case p4::ir::ExternKind::none:
                in.op = Op::ext_nop;
                break;
        }
        emit(in);
    }

    void lower_parser() {
        const std::size_t n = prog_.parser_states.size();
        std::vector<std::uint32_t> state_pc(n, 0);
        // Transition targets referencing real states are patched once every
        // state's entry pc is known; accept/reject resolve at runtime from
        // the encoded next-state id.
        struct Fixup {
            std::size_t inst;
            int next;
            bool is_case;
        };
        std::vector<Fixup> fixups;

        for (std::size_t i = 0; i < n; ++i) {
            state_pc[i] = static_cast<std::uint32_t>(cp_.code.size());
            {
                Inst st;
                st.op = Op::pstate;
                st.a = static_cast<std::int32_t>(i);
                emit(st);
            }
            const auto& state = prog_.parser_states[i];
            for (const auto& op : state.ops) {
                Inst in;
                switch (op.kind) {
                    case p4::ir::ParserOp::Kind::extract: {
                        const auto& hdr =
                            prog_.headers.at(static_cast<std::size_t>(op.header));
                        in.op = Op::pextract;
                        in.a = op.header;
                        in.b = hdr.size_bits;
                        in.c = quirks_.parser_depth_limit;
                        break;
                    }
                    case p4::ir::ParserOp::Kind::advance:
                        in.op = Op::padvance;
                        in.a = op.bits;
                        break;
                    case p4::ir::ParserOp::Kind::assign:
                        in.op = Op::passign;
                        in.a = op.dst.header;
                        in.b = op.dst.field;
                        in.c = prog_.field(op.dst).width;
                        in.expr = lower_expr(*op.value);
                        break;
                }
                emit(in);
            }
            const auto& t = state.transition;
            if (t.kind == p4::ir::Transition::Kind::direct) {
                Inst tr;
                tr.op = Op::ptrans;
                tr.a = t.next_state;
                const std::size_t idx = emit(tr);
                if (t.next_state >= 0) fixups.push_back({idx, t.next_state, false});
            } else {
                Inst keys;
                keys.op = Op::pselect_keys;
                lower_args(keys, t.keys);
                emit(keys);
                for (const auto& c : t.cases) {
                    Inst cs;
                    cs.op = Op::pcase;
                    cs.a = static_cast<std::int32_t>(cp_.case_sets.size());
                    for (std::size_t k = 0; k < c.sets.size(); ++k) {
                        const auto& ks = c.sets[k];
                        if (ks.any) continue;  // always matches: drop the check
                        cp_.case_sets.push_back({static_cast<std::int32_t>(k),
                                                 ks.mask,
                                                 ks.value.band(ks.mask)});
                    }
                    cs.b = static_cast<std::int32_t>(cp_.case_sets.size());
                    cs.c = c.next_state;
                    const std::size_t idx = emit(cs);
                    if (c.next_state >= 0) fixups.push_back({idx, c.next_state, true});
                }
                Inst fail;
                fail.op = Op::pselect_fail;
                emit(fail);
            }
        }

        for (const auto& f : fixups) {
            if (static_cast<std::size_t>(f.next) >= n) {
                throw std::out_of_range("compile: parser transition to unknown state");
            }
            const auto target = static_cast<std::int32_t>(state_pc[f.next]);
            if (f.is_case) {
                cp_.code[f.inst].d = target;
            } else {
                cp_.code[f.inst].b = target;
            }
        }
        cp_.start_state = prog_.start_state;
        cp_.parser_pc = (prog_.start_state >= 0 &&
                         static_cast<std::size_t>(prog_.start_state) < n)
                            ? state_pc[static_cast<std::size_t>(prog_.start_state)]
                            : 0;
    }

    const Program& prog_;
    const Quirks& quirks_;
    std::unordered_map<const Stmt*, std::uint32_t> branch_ids_;
    CompiledProgram cp_;
    // Dummies for constant folding: a read-free subtree never touches them.
    PacketState fold_state_;
    Frame fold_frame_;
};

}  // namespace

compiled::CompiledProgram compile(const Program& prog, const Quirks& quirks) {
    return Compiler(prog, quirks).run();
}

// --- disassembler -------------------------------------------------------------

namespace compiled {

namespace {

const char* op_name(Op op) {
    switch (op) {
        case Op::assign_field: return "assign_field";
        case Op::assign_local: return "assign_local";
        case Op::assign_slice: return "assign_slice";
        case Op::branch_false: return "branch_false";
        case Op::jump: return "jump";
        case Op::apply_table: return "apply_table";
        case Op::call_action: return "call_action";
        case Op::set_valid: return "set_valid";
        case Op::exit_run: return "exit_run";
        case Op::ret: return "ret";
        case Op::halt: return "halt";
        case Op::ext_mark_to_drop: return "ext_mark_to_drop";
        case Op::ext_register_read: return "ext_register_read";
        case Op::ext_register_write: return "ext_register_write";
        case Op::ext_counter_count: return "ext_counter_count";
        case Op::ext_meter_execute: return "ext_meter_execute";
        case Op::ext_hash: return "ext_hash";
        case Op::ext_checksum: return "ext_checksum";
        case Op::ext_nop: return "ext_nop";
        case Op::pstate: return "pstate";
        case Op::pextract: return "pextract";
        case Op::padvance: return "padvance";
        case Op::passign: return "passign";
        case Op::ptrans: return "ptrans";
        case Op::pselect_keys: return "pselect_keys";
        case Op::pcase: return "pcase";
        case Op::pselect_fail: return "pselect_fail";
    }
    return "?";
}

const char* eop_name(EOp op) {
    switch (op) {
        case EOp::const_pool: return "const";
        case EOp::field: return "field";
        case EOp::param: return "param";
        case EOp::local: return "local";
        case EOp::valid: return "valid";
        case EOp::neg: return "neg";
        case EOp::bnot: return "bnot";
        case EOp::lnot: return "lnot";
        case EOp::add: return "add";
        case EOp::sub: return "sub";
        case EOp::mul: return "mul";
        case EOp::band: return "band";
        case EOp::bor: return "bor";
        case EOp::bxor: return "bxor";
        case EOp::shl: return "shl";
        case EOp::shr: return "shr";
        case EOp::shr_as_shl: return "shr_as_shl";
        case EOp::eq: return "eq";
        case EOp::ne: return "ne";
        case EOp::ult: return "ult";
        case EOp::ule: return "ule";
        case EOp::ugt: return "ugt";
        case EOp::uge: return "uge";
        case EOp::concat: return "concat";
        case EOp::land: return "land";
        case EOp::lor: return "lor";
        case EOp::select: return "select";
        case EOp::slice: return "slice";
        case EOp::cast: return "cast";
    }
    return "?";
}

}  // namespace

std::string CompiledProgram::disassemble() const {
    std::string out;
    out += util::format("ingress@%u egress@%u(%d) parser@%u start=%d\n",
                        ingress.entry_pc, egress.entry_pc, has_egress ? 1 : 0,
                        parser_pc, start_state);
    for (std::size_t i = 0; i < code.size(); ++i) {
        const Inst& in = code[i];
        out += util::format("%4zu  %-18s a=%d b=%d c=%d d=%d", i, op_name(in.op),
                            in.a, in.b, in.c, in.d);
        if (in.expr.len) {
            out += util::format(" expr=[%u+%u)", in.expr.begin, in.expr.len);
        }
        if (in.expr2.len) {
            out += util::format(" expr2=[%u+%u)", in.expr2.begin, in.expr2.len);
        }
        if (in.args_len) {
            out += util::format(" args=[%u+%u)", in.args_begin, in.args_len);
        }
        out += "\n";
    }
    out += util::format("expr code (%zu):\n", expr_code.size());
    for (std::size_t i = 0; i < expr_code.size(); ++i) {
        const ExprInst& e = expr_code[i];
        out += util::format("%4zu  %-10s a=%d b=%d\n", i, eop_name(e.op), e.a, e.b);
    }
    out += util::format("consts (%zu):\n", consts.size());
    for (std::size_t i = 0; i < consts.size(); ++i) {
        out += util::format("%4zu  w%d:0x%llx\n", i, consts[i].width(),
                            static_cast<unsigned long long>(
                                consts[i].width() ? consts[i].to_u64() : 0));
    }
    return out;
}

}  // namespace compiled

// --- executor -----------------------------------------------------------------

namespace {

// Mirrors PacketState::set's width contract (including its exception) while
// writing through compile-time-resolved indices.
inline void store_field(PacketState& state, std::int32_t h, std::int32_t f,
                        Bitvec v) {
    Bitvec& slot = state.headers[static_cast<std::size_t>(h)]
                       .fields[static_cast<std::size_t>(f)];
    if (slot.width() != v.width()) {
        throw std::invalid_argument("PacketState::set: width mismatch");
    }
    slot = std::move(v);
}

// Sequential MSB-first bit reader over a packet buffer.  The caller bounds-
// checks the whole run once (cursor + header bits <= packet bits), so the
// per-field checks and re-addressing of Packet::extract_bits disappear.
struct BitReader {
    const std::uint8_t* data;
    std::size_t bit;

    // Next `k` bits (k <= 64), network order.  High garbage bits beyond `k`
    // may survive in the return value; Bitvec(k, v) truncates them.
    std::uint64_t read(int k) {
        const std::size_t end = bit + static_cast<std::size_t>(k);
        const std::size_t first = bit >> 3;
        const std::size_t last = (end + 7) >> 3;  // exclusive
        unsigned __int128 acc = 0;
        for (std::size_t i = first; i < last; ++i) {
            acc = (acc << 8) | data[i];
        }
        bit = end;
        return static_cast<std::uint64_t>(acc >> (8 * last - end));
    }
};

// Sequential MSB-first bit writer into a zeroed buffer: each byte is
// composed in the accumulator and stored exactly once.
struct BitWriter {
    std::uint8_t* out;
    unsigned __int128 acc = 0;
    int pending = 0;
    std::size_t pos = 0;

    // Appends the low `k` bits of `v` (k <= 64; higher bits must be zero,
    // which Bitvec's representation invariant guarantees).
    void push(std::uint64_t v, int k) {
        acc = (acc << k) | v;
        pending += k;
        while (pending >= 8) {
            pending -= 8;
            out[pos++] = static_cast<std::uint8_t>(acc >> pending);
        }
    }

    // Left-aligns and stores any trailing partial byte.
    void flush() {
        if (pending > 0) {
            out[pos++] = static_cast<std::uint8_t>(acc << (8 - pending));
            pending = 0;
        }
    }
};

// Bits [lo+k-1 .. lo] of a little-endian word image, for chunking values
// wider than 64 bits through the streaming writer.
inline std::uint64_t bits_at(std::span<const std::uint64_t> words, int lo, int k) {
    const int word = lo >> 6;
    const int off = lo & 63;
    std::uint64_t v = words[static_cast<std::size_t>(word)] >> off;
    if (off + k > 64 && static_cast<std::size_t>(word) + 1 < words.size()) {
        v |= words[static_cast<std::size_t>(word) + 1] << (64 - off);
    }
    if (k < 64) v &= (std::uint64_t{1} << k) - 1;
    return v;
}

}  // namespace

CompiledPipeline::CompiledPipeline(const Program& prog, TableSet& tables,
                                   StatefulSet& stateful, Quirks quirks)
    : prog_(prog),
      stateful_(stateful),
      quirks_(quirks),
      cp_(compile(prog, quirks)) {
    slots_.reserve(prog.tables.size());
    for (std::size_t i = 0; i < prog.tables.size(); ++i) {
        slots_.push_back(tables.slot_ptr(static_cast<int>(i)));
    }
    stream_hdr_.reserve(prog.headers.size());
    for (const auto& h : prog.headers) {
        int cursor = 0;
        bool stream = true;
        for (const auto& f : h.fields) {
            if (f.offset != cursor || f.width < 0) {
                stream = false;
                break;
            }
            cursor += f.width;
        }
        stream_hdr_.push_back(stream && cursor == h.size_bits);
    }
    stack_.reserve(16);
    rstack_.reserve(8);
}

void CompiledPipeline::set_coverage(coverage::CoverageMap* map, std::uint64_t salt) {
    coverage_ = map;
    if (map) cov_salt_ = coverage::program_salt(prog_.name) ^ salt;
}

Bitvec CompiledPipeline::eval(ExprRef ref, const PacketState& state,
                              const Frame& frame) {
    auto& st = stack_;
    const ExprInst* ip = cp_.expr_code.data() + ref.begin;
    const auto pop = [&st]() {
        Bitvec v = std::move(st.back());
        st.pop_back();
        return v;
    };
    for (std::uint32_t n = ref.len; n-- > 0; ++ip) {
        switch (ip->op) {
            case EOp::const_pool:
                st.push_back(cp_.consts[static_cast<std::size_t>(ip->a)]);
                break;
            case EOp::field:
                st.push_back(state.headers[static_cast<std::size_t>(ip->a)]
                                 .fields[static_cast<std::size_t>(ip->b)]);
                break;
            case EOp::param:
                st.push_back(frame.params[static_cast<std::size_t>(ip->a)]);
                break;
            case EOp::local:
                st.push_back(frame.locals[static_cast<std::size_t>(ip->a)]);
                break;
            case EOp::valid:
                st.push_back(Bitvec(
                    1, state.headers[static_cast<std::size_t>(ip->a)].valid ? 1 : 0));
                break;
            case EOp::neg:
                st.back() = st.back().neg();
                break;
            case EOp::bnot:
                st.back() = st.back().bnot();
                break;
            case EOp::lnot:
                st.back() = Bitvec(1, st.back().is_zero() ? 1 : 0);
                break;
            case EOp::add: {
                const Bitvec b = pop();
                st.back() = st.back().add(b);
                break;
            }
            case EOp::sub: {
                const Bitvec b = pop();
                st.back() = st.back().sub(b);
                break;
            }
            case EOp::mul: {
                const Bitvec b = pop();
                st.back() = st.back().mul(b);
                break;
            }
            case EOp::band: {
                const Bitvec b = pop();
                st.back() = st.back().band(b);
                break;
            }
            case EOp::bor: {
                const Bitvec b = pop();
                st.back() = st.back().bor(b);
                break;
            }
            case EOp::bxor: {
                const Bitvec b = pop();
                st.back() = st.back().bxor(b);
                break;
            }
            case EOp::shl: {
                const Bitvec b = pop();
                Bitvec& a = st.back();
                a = a.shl(static_cast<int>(std::min<std::uint64_t>(
                    b.to_u64(), static_cast<std::uint64_t>(a.width()))));
                break;
            }
            case EOp::shr: {
                const Bitvec b = pop();
                Bitvec& a = st.back();
                a = a.lshr(static_cast<int>(std::min<std::uint64_t>(
                    b.to_u64(), static_cast<std::uint64_t>(a.width()))));
                break;
            }
            case EOp::shr_as_shl: {
                const Bitvec b = pop();
                Bitvec& a = st.back();
                a = a.shl(static_cast<int>(std::min<std::uint64_t>(
                    b.to_u64(), static_cast<std::uint64_t>(a.width()))));
                break;
            }
            case EOp::eq: {
                const Bitvec b = pop();
                st.back() = Bitvec(1, st.back().eq(b) ? 1 : 0);
                break;
            }
            case EOp::ne: {
                const Bitvec b = pop();
                st.back() = Bitvec(1, st.back().eq(b) ? 0 : 1);
                break;
            }
            case EOp::ult: {
                const Bitvec b = pop();
                st.back() = Bitvec(1, st.back().ult(b) ? 1 : 0);
                break;
            }
            case EOp::ule: {
                const Bitvec b = pop();
                st.back() = Bitvec(1, st.back().ule(b) ? 1 : 0);
                break;
            }
            case EOp::ugt: {
                const Bitvec b = pop();
                st.back() = Bitvec(1, st.back().ugt(b) ? 1 : 0);
                break;
            }
            case EOp::uge: {
                const Bitvec b = pop();
                st.back() = Bitvec(1, st.back().uge(b) ? 1 : 0);
                break;
            }
            case EOp::concat: {
                const Bitvec b = pop();
                st.back() = Bitvec::concat(st.back(), b);
                break;
            }
            case EOp::land: {
                const Bitvec b = pop();
                st.back() =
                    Bitvec(1, (!st.back().is_zero() && !b.is_zero()) ? 1 : 0);
                break;
            }
            case EOp::lor: {
                const Bitvec b = pop();
                st.back() =
                    Bitvec(1, (!st.back().is_zero() || !b.is_zero()) ? 1 : 0);
                break;
            }
            case EOp::select: {
                Bitvec on_false = pop();
                Bitvec on_true = pop();
                Bitvec& cond = st.back();
                cond = cond.is_zero() ? std::move(on_false) : std::move(on_true);
                break;
            }
            case EOp::slice:
                st.back() = st.back().slice(ip->a, ip->b);
                break;
            case EOp::cast:
                st.back() = st.back().resize(ip->a);
                break;
        }
    }
    Bitvec out = std::move(st.back());
    st.pop_back();
    return out;
}

void CompiledPipeline::eval_args(const Inst& in, const PacketState& state,
                                 const Frame& frame, std::vector<Bitvec>& out) {
    out.clear();
    out.reserve(in.args_len);
    const ExprRef* refs = cp_.arg_refs.data() + in.args_begin;
    for (std::uint32_t i = 0; i < in.args_len; ++i) {
        out.push_back(eval(refs[i], state, frame));
    }
}

void CompiledPipeline::run_ingress(PacketState& state) {
    run_control(cp_.ingress, state);
}

void CompiledPipeline::run_egress(PacketState& state) {
    run_control(cp_.egress, state);
}

void CompiledPipeline::run_control(const Routine& routine, PacketState& state) {
    Frame& frame = push_frame();
    frame.params.clear();
    reset_frame_locals(
        frame, std::span<const int>(cp_.width_pool.data() + routine.widths_begin,
                                    routine.widths_len));
    const std::size_t base_depth = depth_ - 1;
    const std::size_t base_ret = rstack_.size();
    try {
        exec(routine.entry_pc, state);
    } catch (...) {
        // A throw (IR-level width error) must not leak pool depth on the
        // long-lived executor -- same contract as Interpreter::FrameScope.
        depth_ = base_depth;
        rstack_.resize(base_ret);
        throw;
    }
    depth_ = base_depth;
    rstack_.resize(base_ret);
}

void CompiledPipeline::exec(std::uint32_t pc, PacketState& state) {
    const std::size_t base_depth = depth_;
    const std::size_t base_ret = rstack_.size();
    const Inst* code = cp_.code.data();
    Frame* fr = &frames_[depth_ - 1];
    for (;;) {
        const Inst& in = code[pc];
        switch (in.op) {
            case Op::halt:
                return;
            case Op::ret:
                --depth_;
                fr = &frames_[depth_ - 1];
                pc = rstack_.back();
                rstack_.pop_back();
                continue;
            case Op::exit_run:
                // `exit` stops the whole run: unwind every frame this exec
                // opened (the interpreter's per-statement exited check
                // returns through each nesting level; one unwind here is
                // observably identical).
                ++state.cycles;
                state.exited = true;
                depth_ = base_depth;
                rstack_.resize(base_ret);
                return;
            case Op::assign_field:
                ++state.cycles;
                store_field(state, in.a, in.b, eval(in.expr, state, *fr));
                break;
            case Op::assign_local:
                ++state.cycles;
                fr->locals[static_cast<std::size_t>(in.a)] =
                    eval(in.expr, state, *fr);
                break;
            case Op::assign_slice: {
                ++state.cycles;
                Bitvec cur = state.headers[static_cast<std::size_t>(in.a)]
                                 .fields[static_cast<std::size_t>(in.b)];
                const Bitvec v = eval(in.expr, state, *fr);
                if (v.width() < in.c - in.d + 1) {
                    throw std::out_of_range(
                        "assign_slice: value narrower than slice");
                }
                cur.set_slice(in.c, in.d, v);
                store_field(state, in.a, in.b, std::move(cur));
                break;
            }
            case Op::branch_false: {
                ++state.cycles;
                const Bitvec c = eval(in.expr, state, *fr);
                const bool taken = !c.is_zero();
                if (coverage_) {
                    coverage_->record(
                        coverage::Site::branch,
                        cov_salt_ ^ static_cast<std::uint32_t>(in.b),
                        taken ? 1 : 0);
                }
                if (!taken) {
                    pc = static_cast<std::uint32_t>(in.a);
                    continue;
                }
                break;
            }
            case Op::jump:
                pc = static_cast<std::uint32_t>(in.a);
                continue;
            case Op::apply_table: {
                state.cycles += 2;  // statement + match stage
                eval_args(in, state, *fr, keys_scratch_);
                bool hit = false;
                const ActionEntry& entry = TableSet::lookup_slot(
                    *slots_[static_cast<std::size_t>(in.a)], keys_scratch_, hit);
                if (coverage_) {
                    coverage_->record(coverage::Site::table,
                                      cov_salt_ ^ static_cast<std::uint64_t>(in.a),
                                      hit ? 1 : 0);
                }
                applies_.push_back({in.a, hit, entry.action_id});
                if (coverage_) {
                    coverage_->record(
                        coverage::Site::action,
                        cov_salt_ ^ static_cast<std::uint64_t>(entry.action_id));
                }
                const Routine& act =
                    cp_.actions[static_cast<std::size_t>(entry.action_id)];
                rstack_.push_back(pc + 1);
                fr = &push_frame();
                fr->params.assign(entry.args.begin(), entry.args.end());
                reset_frame_locals(
                    *fr, std::span<const int>(
                             cp_.width_pool.data() + act.widths_begin,
                             act.widths_len));
                pc = act.entry_pc;
                continue;
            }
            case Op::call_action: {
                ++state.cycles;
                eval_args(in, state, *fr, args_scratch_);
                if (coverage_) {
                    coverage_->record(coverage::Site::action,
                                      cov_salt_ ^ static_cast<std::uint64_t>(in.a));
                }
                const Routine& act = cp_.actions[static_cast<std::size_t>(in.a)];
                rstack_.push_back(pc + 1);
                fr = &push_frame();
                fr->params.assign(args_scratch_.begin(), args_scratch_.end());
                reset_frame_locals(
                    *fr, std::span<const int>(
                             cp_.width_pool.data() + act.widths_begin,
                             act.widths_len));
                pc = act.entry_pc;
                continue;
            }
            case Op::set_valid:
                ++state.cycles;
                state.headers[static_cast<std::size_t>(in.a)].valid = in.b != 0;
                break;
            case Op::ext_mark_to_drop:
                ++state.cycles;
                store_field(state, in.a, in.b, Bitvec(9, p4::ir::kDropPort));
                break;
            case Op::ext_register_read: {
                ++state.cycles;
                const std::uint64_t idx =
                    in.expr.len ? eval(in.expr, state, *fr).to_u64() : 0;
                const Bitvec v = stateful_.register_read(in.c, idx);
                store_field(state, in.a, in.b, v.resize(in.d));
                break;
            }
            case Op::ext_register_write: {
                ++state.cycles;
                const std::uint64_t idx =
                    in.expr.len ? eval(in.expr, state, *fr).to_u64() : 0;
                // stale_entry quirk: cells holding non-zero state are never
                // refreshed by the datapath (mirrors the interpreter hook).
                if (quirks_.stale_entry &&
                    !stateful_.register_read(in.a, idx).is_zero()) {
                    break;
                }
                stateful_.register_write(in.a, idx, eval(in.expr2, state, *fr));
                break;
            }
            case Op::ext_counter_count: {
                ++state.cycles;
                const std::uint64_t idx =
                    in.expr.len ? eval(in.expr, state, *fr).to_u64() : 0;
                stateful_.counter_count(
                    in.a, idx, state.get(prog_.f_packet_length).to_u64());
                break;
            }
            case Op::ext_meter_execute: {
                ++state.cycles;
                const std::uint64_t idx =
                    in.expr.len ? eval(in.expr, state, *fr).to_u64() : 0;
                const MeterColor color = stateful_.meter_execute(
                    in.c, idx, state.meta.rx_time_ns,
                    state.get(prog_.f_packet_length).to_u64());
                store_field(state, in.a, in.b,
                            Bitvec(in.d, static_cast<std::uint64_t>(color)));
                break;
            }
            case Op::ext_hash: {
                ++state.cycles;
                bytes_scratch_.clear();
                const ExprRef* refs = cp_.arg_refs.data() + in.args_begin;
                for (std::uint32_t i = 0; i < in.args_len; ++i) {
                    const Bitvec v = eval(refs[i], state, *fr);
                    const std::size_t old = bytes_scratch_.size();
                    bytes_scratch_.resize(
                        old + static_cast<std::size_t>((v.width() + 7) / 8));
                    v.write_bytes(
                        std::span<std::uint8_t>(bytes_scratch_).subspan(old));
                }
                std::uint32_t h = packet::crc32(bytes_scratch_);
                // hash_collision_misdirect quirk: keep only N low-order bits.
                if (quirks_.hash_collision_misdirect > 0 &&
                    quirks_.hash_collision_misdirect < 32) {
                    h &= (1u << quirks_.hash_collision_misdirect) - 1u;
                }
                store_field(state, in.a, in.b, Bitvec(32, h).resize(in.d));
                break;
            }
            case Op::ext_checksum:
                ++state.cycles;
                checksum_update_field(prog_, state, in.a, in.b, bytes_scratch_);
                break;
            case Op::ext_nop:
                ++state.cycles;
                break;
            default:
                throw std::logic_error("compiled control: unexpected opcode");
        }
        ++pc;
    }
}

ParserVerdict CompiledPipeline::run_parser(const packet::Packet& pkt,
                                           PacketState& state) {
    cursor_ = 0;
    total_bits_ = pkt.size() * 8;
    visited_ = 0;
    extracts_ = 0;
    current_ = cp_.start_state;
    if (current_ == p4::ir::kAccept) return pfinish(pkt, state, ParserVerdict::accept);
    if (current_ == p4::ir::kReject) return pfinish(pkt, state, ParserVerdict::reject);
    if (current_ < 0 ||
        static_cast<std::size_t>(current_) >= prog_.parser_states.size()) {
        throw std::out_of_range("compiled parser: invalid start state");
    }
    std::uint32_t pc = cp_.parser_pc;
    const Inst* code = cp_.code.data();
    for (;;) {
        const Inst& in = code[pc];
        switch (in.op) {
            case Op::pstate:
                current_ = in.a;
                if (++visited_ > ParserEngine::kMaxStates) {
                    return pfinish(pkt, state, ParserVerdict::error_loop);
                }
                state.cycles += 1;
                break;
            case Op::pextract: {
                if (in.c > 0 && extracts_ >= in.c) {
                    // Hardware parser out of stages: silently stop parsing.
                    return pfinish(pkt, state, ParserVerdict::accept);
                }
                if (cursor_ + static_cast<std::size_t>(in.b) > total_bits_) {
                    return pfinish(pkt, state, ParserVerdict::error_truncated);
                }
                const auto& hdr = prog_.headers[static_cast<std::size_t>(in.a)];
                auto& inst = state.headers[static_cast<std::size_t>(in.a)];
                if (stream_hdr_[static_cast<std::size_t>(in.a)]) {
                    // Contiguous layout: stream the fields off the wire in
                    // one pass (the whole header was bounds-checked above).
                    BitReader rd{pkt.bytes().data(), cursor_};
                    for (std::size_t f = 0; f < hdr.fields.size(); ++f) {
                        const int w = hdr.fields[f].width;
                        if (w <= 64) {
                            inst.fields[f] = Bitvec(w, rd.read(w));
                        } else {
                            Bitvec v(w);
                            for (int rem = w; rem > 0;) {
                                const int k = std::min(64, rem);
                                v.set_slice(rem - 1, rem - k,
                                            Bitvec(k, rd.read(k)));
                                rem -= k;
                            }
                            inst.fields[f] = std::move(v);
                        }
                    }
                } else {
                    for (std::size_t f = 0; f < hdr.fields.size(); ++f) {
                        const auto& field = hdr.fields[f];
                        inst.fields[f] = pkt.extract_bits(
                            cursor_ + static_cast<std::size_t>(field.offset),
                            field.width);
                    }
                }
                inst.valid = true;
                cursor_ += static_cast<std::size_t>(in.b);
                ++extracts_;
                state.cycles += 1;
                break;
            }
            case Op::padvance:
                if (cursor_ + static_cast<std::size_t>(in.a) > total_bits_) {
                    return pfinish(pkt, state, ParserVerdict::error_truncated);
                }
                cursor_ += static_cast<std::size_t>(in.a);
                break;
            case Op::passign:
                store_field(state, in.a, in.b,
                            eval(in.expr, state, empty_frame_).resize(in.c));
                break;
            case Op::ptrans:
                if (coverage_) {
                    coverage_->record(coverage::Site::parser_edge,
                                      cov_salt_ ^ static_cast<std::uint64_t>(current_),
                                      static_cast<std::uint64_t>(in.a));
                }
                current_ = in.a;
                if (in.a == p4::ir::kAccept) {
                    return pfinish(pkt, state, ParserVerdict::accept);
                }
                if (in.a == p4::ir::kReject) {
                    return pfinish(pkt, state, ParserVerdict::reject);
                }
                pc = static_cast<std::uint32_t>(in.b);
                continue;
            case Op::pselect_keys: {
                pkeys_.clear();
                pkeys_.reserve(in.args_len);
                const ExprRef* refs = cp_.arg_refs.data() + in.args_begin;
                for (std::uint32_t i = 0; i < in.args_len; ++i) {
                    pkeys_.push_back(eval(refs[i], state, empty_frame_));
                }
                break;
            }
            case Op::pcase: {
                bool match = true;
                for (std::int32_t i = in.a; i < in.b && match; ++i) {
                    const CaseSet& cs = cp_.case_sets[static_cast<std::size_t>(i)];
                    match = pkeys_[static_cast<std::size_t>(cs.key)]
                                .band(cs.mask)
                                .eq(cs.value_masked);
                }
                if (!match) break;  // fall through to the next case
                if (coverage_) {
                    coverage_->record(coverage::Site::parser_edge,
                                      cov_salt_ ^ static_cast<std::uint64_t>(current_),
                                      static_cast<std::uint64_t>(in.c));
                }
                current_ = in.c;
                if (in.c == p4::ir::kAccept) {
                    return pfinish(pkt, state, ParserVerdict::accept);
                }
                if (in.c == p4::ir::kReject) {
                    return pfinish(pkt, state, ParserVerdict::reject);
                }
                pc = static_cast<std::uint32_t>(in.d);
                continue;
            }
            case Op::pselect_fail:
                // No matching case rejects, per P4-16.
                if (coverage_) {
                    coverage_->record(
                        coverage::Site::parser_edge,
                        cov_salt_ ^ static_cast<std::uint64_t>(current_),
                        static_cast<std::uint64_t>(p4::ir::kReject));
                }
                current_ = p4::ir::kReject;
                return pfinish(pkt, state, ParserVerdict::reject);
            default:
                throw std::logic_error("compiled parser: unexpected opcode");
        }
        ++pc;
    }
}

ParserVerdict CompiledPipeline::pfinish(const packet::Packet& pkt,
                                        PacketState& state, ParserVerdict verdict) {
    if (coverage_) {
        // Terminal site: the state the machine stopped in plus the verdict,
        // so depth-limited/truncated exits are distinct edges.
        coverage_->record(coverage::Site::parser_finish,
                          cov_salt_ ^ static_cast<std::uint64_t>(current_),
                          static_cast<std::uint64_t>(verdict));
    }
    // Unparsed remainder becomes the payload (from the next whole byte).
    const std::size_t byte_cursor = (cursor_ + 7) / 8;
    if (byte_cursor < pkt.size()) {
        const auto bytes = pkt.bytes();
        state.payload.assign(bytes.begin() + static_cast<long>(byte_cursor),
                             bytes.end());
    }
    if (verdict != ParserVerdict::accept && quirks_.reject_as_accept) {
        // The vendor parser has no reject path: the packet proceeds with
        // whatever was extracted before the reject/error.
        state.parser_verdict = ParserVerdict::accept;
        return ParserVerdict::accept;
    }
    state.parser_verdict = verdict;
    return verdict;
}

packet::Packet CompiledPipeline::deparse(const PacketState& state) const {
    std::size_t total_bits = 0;
    bool stream = true;
    for (const int h : prog_.deparse_order) {
        if (!state.header_valid(h)) continue;
        total_bits += static_cast<std::size_t>(
            prog_.headers[static_cast<std::size_t>(h)].size_bits);
        stream = stream && stream_hdr_[static_cast<std::size_t>(h)];
    }
    if (!stream) return ndb::dataplane::deparse(prog_, state);

    const std::size_t header_bytes = (total_bits + 7) / 8;
    std::vector<std::uint8_t> buf(header_bytes + state.payload.size(), 0);
    BitWriter wr{buf.data()};
    for (const int h : prog_.deparse_order) {
        if (!state.header_valid(h)) continue;
        const auto& hdr = prog_.headers[static_cast<std::size_t>(h)];
        const auto& inst = state.headers[static_cast<std::size_t>(h)];
        for (std::size_t f = 0; f < hdr.fields.size(); ++f) {
            const int w = hdr.fields[f].width;
            const Bitvec& v = inst.fields[f];
            if (w <= 64) {
                wr.push(v.to_u64(), w);
            } else {
                const auto words = v.word_span();
                for (int rem = w; rem > 0;) {
                    const int k = std::min(64, rem);
                    wr.push(bits_at(words, rem - k, k), k);
                    rem -= k;
                }
            }
        }
    }
    wr.flush();
    std::copy(state.payload.begin(), state.payload.end(),
              buf.begin() + static_cast<long>(header_bytes));
    packet::Packet out(std::move(buf));
    out.meta = state.meta;
    return out;
}

}  // namespace ndb::dataplane
