#include "dataplane/engine.h"

#include <cstdlib>

namespace ndb::dataplane {

const char* engine_name(Engine engine) {
    switch (engine) {
        case Engine::interpreter: return "interpreter";
        case Engine::compiled: return "compiled";
    }
    return "?";
}

std::optional<Engine> engine_from_name(std::string_view name) {
    if (name == "interp" || name == "interpreter") return Engine::interpreter;
    if (name == "compiled") return Engine::compiled;
    return std::nullopt;
}

Engine default_engine() {
    static const Engine cached = [] {
        const char* env = std::getenv("NDB_ENGINE");
        if (env) {
            if (const auto parsed = engine_from_name(env)) return *parsed;
        }
        return Engine::compiled;
    }();
    return cached;
}

}  // namespace ndb::dataplane
