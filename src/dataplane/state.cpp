#include "dataplane/state.h"

#include <stdexcept>

#include "util/strings.h"

namespace ndb::dataplane {

const char* parser_verdict_name(ParserVerdict verdict) {
    switch (verdict) {
        case ParserVerdict::accept: return "accept";
        case ParserVerdict::reject: return "reject";
        case ParserVerdict::error_truncated: return "error.PacketTooShort";
        case ParserVerdict::error_loop: return "error.ParserLoop";
    }
    return "?";
}

PacketState PacketState::initial(const p4::ir::Program& prog,
                                 const packet::PacketMeta& meta,
                                 std::uint32_t packet_len, bool clobber_meta) {
    PacketState st;
    st.ensure_shape(prog);
    st.reset(prog, meta, packet_len, clobber_meta);
    return st;
}

void PacketState::ensure_shape(const p4::ir::Program& prog) {
    if (shaped_for == &prog) return;
    headers.clear();
    headers.reserve(prog.headers.size());
    for (const auto& h : prog.headers) {
        HeaderInstance inst;
        inst.fields.reserve(h.fields.size());
        for (const auto& f : h.fields) inst.fields.emplace_back(f.width);
        headers.push_back(std::move(inst));
    }
    shaped_for = &prog;
}

void PacketState::reset(const p4::ir::Program& prog, const packet::PacketMeta& m,
                        std::uint32_t packet_len, bool clobber_meta) {
    meta = m;
    parser_verdict = ParserVerdict::accept;
    cycles = 0;
    exited = false;
    vanished = false;
    payload.clear();
    for (std::size_t hi = 0; hi < prog.headers.size(); ++hi) {
        const auto& h = prog.headers[hi];
        auto& inst = headers[hi];
        inst.valid = h.is_metadata;
        const bool clobber =
            clobber_meta && h.is_metadata && h.name != "standard_metadata";
        for (std::size_t fi = 0; fi < h.fields.size(); ++fi) {
            util::Bitvec& v = inst.fields[fi];
            v.zero();
            if (clobber) {
                // Alternate bit pattern models uninitialized device memory.
                for (int i = 0; i < h.fields[fi].width; i += 2) v.set_bit(i, true);
            }
        }
    }
    set(prog.f_ingress_port, util::Bitvec(9, m.ingress_port));
    set(prog.f_packet_length, util::Bitvec(32, packet_len));
    set(prog.f_timestamp, util::Bitvec(48, m.rx_time_ns / 1000));  // usec
}

const util::Bitvec& PacketState::get(p4::ir::FieldRef ref) const {
    return headers.at(static_cast<std::size_t>(ref.header))
        .fields.at(static_cast<std::size_t>(ref.field));
}

void PacketState::set(p4::ir::FieldRef ref, util::Bitvec value) {
    auto& slot = headers.at(static_cast<std::size_t>(ref.header))
                     .fields.at(static_cast<std::size_t>(ref.field));
    if (slot.width() != value.width()) {
        throw std::invalid_argument("PacketState::set: width mismatch");
    }
    slot = std::move(value);
}

bool PacketState::header_valid(int header) const {
    return headers.at(static_cast<std::size_t>(header)).valid;
}

std::uint64_t PacketState::egress_spec(const p4::ir::Program& prog) const {
    return get(prog.f_egress_spec).to_u64();
}

bool PacketState::drop_flagged(const p4::ir::Program& prog) const {
    return egress_spec(prog) == p4::ir::kDropPort;
}

std::string PacketState::summary(const p4::ir::Program& prog) const {
    std::string s = util::format("verdict=%s egress_spec=%llu",
                                 parser_verdict_name(parser_verdict),
                                 static_cast<unsigned long long>(egress_spec(prog)));
    for (std::size_t h = 0; h < headers.size(); ++h) {
        if (!headers[h].valid || prog.headers[h].is_metadata) continue;
        s += " " + prog.headers[h].name;
    }
    return s;
}

}  // namespace ndb::dataplane
