#include "dataplane/parser_engine.h"

#include "coverage/coverage.h"
#include "dataplane/interp.h"

namespace ndb::dataplane {

using p4::ir::kAccept;
using p4::ir::kReject;

void ParserEngine::set_coverage(coverage::CoverageMap* map, std::uint64_t salt) {
    coverage_ = map;
    if (map) cov_salt_ = coverage::program_salt(prog_.name) ^ salt;
}

ParserVerdict ParserEngine::run(const packet::Packet& pkt, PacketState& state,
                                int* states_visited) const {
    std::size_t cursor = 0;  // bit offset into the packet
    const std::size_t total_bits = pkt.size() * 8;
    int visited = 0;
    int extracts = 0;
    Frame empty_frame;
    int current = prog_.start_state;

    const auto finish = [&](ParserVerdict verdict) {
        if (coverage_) {
            // Terminal site: the state the machine stopped in plus the
            // verdict, so depth-limited/truncated exits are distinct edges.
            coverage_->record(coverage::Site::parser_finish,
                              cov_salt_ ^ static_cast<std::uint64_t>(current),
                              static_cast<std::uint64_t>(verdict));
        }
        if (states_visited) *states_visited = visited;
        // Unparsed remainder becomes the payload (from the next whole byte).
        const std::size_t byte_cursor = (cursor + 7) / 8;
        if (byte_cursor < pkt.size()) {
            const auto bytes = pkt.bytes();
            state.payload.assign(bytes.begin() + static_cast<long>(byte_cursor),
                                 bytes.end());
        }
        if (verdict != ParserVerdict::accept && quirks_.reject_as_accept) {
            // The vendor parser has no reject path: the packet proceeds with
            // whatever was extracted before the reject/error.
            state.parser_verdict = ParserVerdict::accept;
            return ParserVerdict::accept;
        }
        state.parser_verdict = verdict;
        return verdict;
    };

    for (;;) {
        if (current == kAccept) return finish(ParserVerdict::accept);
        if (current == kReject) return finish(ParserVerdict::reject);
        if (++visited > kMaxStates) return finish(ParserVerdict::error_loop);

        const auto& st =
            prog_.parser_states.at(static_cast<std::size_t>(current));
        state.cycles += 1;

        for (const auto& op : st.ops) {
            switch (op.kind) {
                case p4::ir::ParserOp::Kind::extract: {
                    if (quirks_.parser_depth_limit > 0 &&
                        extracts >= quirks_.parser_depth_limit) {
                        // Hardware parser out of stages: silently stop parsing.
                        return finish(ParserVerdict::accept);
                    }
                    const auto& hdr =
                        prog_.headers.at(static_cast<std::size_t>(op.header));
                    if (cursor + static_cast<std::size_t>(hdr.size_bits) > total_bits) {
                        return finish(ParserVerdict::error_truncated);
                    }
                    auto& inst =
                        state.headers.at(static_cast<std::size_t>(op.header));
                    for (std::size_t f = 0; f < hdr.fields.size(); ++f) {
                        const auto& field = hdr.fields[f];
                        inst.fields[f] = pkt.extract_bits(
                            cursor + static_cast<std::size_t>(field.offset),
                            field.width);
                    }
                    inst.valid = true;
                    cursor += static_cast<std::size_t>(hdr.size_bits);
                    ++extracts;
                    state.cycles += 1;
                    break;
                }
                case p4::ir::ParserOp::Kind::advance:
                    if (cursor + static_cast<std::size_t>(op.bits) > total_bits) {
                        return finish(ParserVerdict::error_truncated);
                    }
                    cursor += static_cast<std::size_t>(op.bits);
                    break;
                case p4::ir::ParserOp::Kind::assign:
                    state.set(op.dst,
                              eval_expr(prog_, *op.value, state, empty_frame, quirks_)
                                  .resize(prog_.field(op.dst).width));
                    break;
            }
        }

        const auto& t = st.transition;
        if (t.kind == p4::ir::Transition::Kind::direct) {
            if (coverage_) {
                coverage_->record(coverage::Site::parser_edge,
                                  cov_salt_ ^ static_cast<std::uint64_t>(current),
                                  static_cast<std::uint64_t>(t.next_state));
            }
            current = t.next_state;
            continue;
        }
        // Select: evaluate keys once, then first matching case wins.
        std::vector<Bitvec> keys;
        keys.reserve(t.keys.size());
        for (const auto& k : t.keys) {
            keys.push_back(eval_expr(prog_, *k, state, empty_frame, quirks_));
        }
        int next = kReject;  // no matching case rejects, per P4-16
        for (const auto& c : t.cases) {
            bool match = true;
            for (std::size_t i = 0; i < c.sets.size() && match; ++i) {
                const auto& ks = c.sets[i];
                if (ks.any) continue;
                match = keys[i].band(ks.mask).eq(ks.value.band(ks.mask));
            }
            if (match) {
                next = c.next_state;
                break;
            }
        }
        if (coverage_) {
            coverage_->record(coverage::Site::parser_edge,
                              cov_salt_ ^ static_cast<std::uint64_t>(current),
                              static_cast<std::uint64_t>(next));
        }
        current = next;
    }
}

}  // namespace ndb::dataplane
