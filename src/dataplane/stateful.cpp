#include "dataplane/stateful.h"

#include <algorithm>
#include <stdexcept>

namespace ndb::dataplane {

void MeterCell::configure(double committed_rate, std::uint64_t committed_burst,
                          double excess_rate, std::uint64_t excess_burst) {
    committed_rate_ = committed_rate;
    committed_burst_ = committed_burst;
    excess_rate_ = excess_rate;
    excess_burst_ = excess_burst;
    committed_tokens_ = static_cast<double>(committed_burst);
    excess_tokens_ = static_cast<double>(excess_burst);
    last_refill_ns_ = 0;
}

void MeterCell::refill(std::uint64_t now_ns) {
    if (now_ns <= last_refill_ns_) return;
    const double dt = static_cast<double>(now_ns - last_refill_ns_) * 1e-9;
    committed_tokens_ = std::min(static_cast<double>(committed_burst_),
                                 committed_tokens_ + committed_rate_ * dt);
    excess_tokens_ = std::min(static_cast<double>(excess_burst_),
                              excess_tokens_ + excess_rate_ * dt);
    last_refill_ns_ = now_ns;
}

MeterColor MeterCell::execute(std::uint64_t now_ns, std::uint64_t bytes) {
    refill(now_ns);
    const double b = static_cast<double>(bytes);
    if (committed_tokens_ >= b) {
        committed_tokens_ -= b;
        return MeterColor::green;
    }
    if (excess_tokens_ >= b) {
        excess_tokens_ -= b;
        return MeterColor::yellow;
    }
    return MeterColor::red;
}

StatefulSet::StatefulSet(const p4::ir::Program& prog) : prog_(prog) {
    registers_.resize(prog.externs.size());
    counters_.resize(prog.externs.size());
    meters_.resize(prog.externs.size());
    for (const auto& e : prog.externs) {
        const auto id = static_cast<std::size_t>(e.id);
        const auto n = static_cast<std::size_t>(e.array_size);
        switch (e.kind) {
            case p4::ir::ExternDecl::Kind::reg:
                registers_[id].elem_width = e.elem_width;
                registers_[id].cells.assign(n, Bitvec(e.elem_width));
                break;
            case p4::ir::ExternDecl::Kind::counter:
                counters_[id].packets.assign(n, 0);
                counters_[id].bytes.assign(n, 0);
                break;
            case p4::ir::ExternDecl::Kind::meter:
                meters_[id].cells.assign(n, MeterCell{});
                break;
        }
    }
}

Bitvec StatefulSet::register_read(int extern_id, std::uint64_t index) const {
    const auto& arr = registers_.at(static_cast<std::size_t>(extern_id));
    if (index >= arr.cells.size()) return Bitvec(arr.elem_width);  // OOB reads 0
    return arr.cells[index];
}

void StatefulSet::register_write(int extern_id, std::uint64_t index,
                                 const Bitvec& value) {
    auto& arr = registers_.at(static_cast<std::size_t>(extern_id));
    if (index >= arr.cells.size()) return;  // OOB writes are dropped
    arr.cells[index] = value.resize(arr.elem_width);
}

void StatefulSet::counter_count(int extern_id, std::uint64_t index,
                                std::uint64_t bytes) {
    auto& arr = counters_.at(static_cast<std::size_t>(extern_id));
    if (index >= arr.packets.size()) return;
    ++arr.packets[index];
    arr.bytes[index] += bytes;
}

std::uint64_t StatefulSet::counter_packets(int extern_id, std::uint64_t index) const {
    const auto& arr = counters_.at(static_cast<std::size_t>(extern_id));
    return index < arr.packets.size() ? arr.packets[index] : 0;
}

std::uint64_t StatefulSet::counter_bytes(int extern_id, std::uint64_t index) const {
    const auto& arr = counters_.at(static_cast<std::size_t>(extern_id));
    return index < arr.bytes.size() ? arr.bytes[index] : 0;
}

void StatefulSet::meter_configure(int extern_id, std::uint64_t index,
                                  double committed_rate, std::uint64_t committed_burst,
                                  double excess_rate, std::uint64_t excess_burst) {
    auto& arr = meters_.at(static_cast<std::size_t>(extern_id));
    if (index >= arr.cells.size()) return;
    arr.cells[index].configure(committed_rate, committed_burst, excess_rate,
                               excess_burst);
}

MeterColor StatefulSet::meter_execute(int extern_id, std::uint64_t index,
                                      std::uint64_t now_ns, std::uint64_t bytes) {
    auto& arr = meters_.at(static_cast<std::size_t>(extern_id));
    if (index >= arr.cells.size()) return MeterColor::red;
    return arr.cells[index].execute(now_ns, bytes);
}

void StatefulSet::reset() {
    for (auto& r : registers_) {
        for (auto& c : r.cells) c = Bitvec(r.elem_width);
    }
    for (auto& c : counters_) {
        std::fill(c.packets.begin(), c.packets.end(), 0);
        std::fill(c.bytes.begin(), c.bytes.end(), 0);
    }
    for (auto& m : meters_) {
        for (auto& cell : m.cells) cell = MeterCell{};
    }
}

}  // namespace ndb::dataplane
