#include "dataplane/stateful.h"

#include <algorithm>
#include <bit>

namespace ndb::dataplane {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

}  // namespace

void MeterCell::configure(double committed_rate, std::uint64_t committed_burst,
                          double excess_rate, std::uint64_t excess_burst) {
    committed_rate_ = committed_rate;
    committed_burst_ = committed_burst;
    excess_rate_ = excess_rate;
    excess_burst_ = excess_burst;
    committed_tokens_ = static_cast<double>(committed_burst);
    excess_tokens_ = static_cast<double>(excess_burst);
    last_refill_ns_ = 0;
    configured_ = true;
}

std::uint64_t MeterCell::fold_config(std::uint64_t h) const {
    h = fnv(h, configured_ ? 1 : 0);
    if (!configured_) return h;
    h = fnv(h, std::bit_cast<std::uint64_t>(committed_rate_));
    h = fnv(h, committed_burst_);
    h = fnv(h, std::bit_cast<std::uint64_t>(excess_rate_));
    h = fnv(h, excess_burst_);
    return h;
}

void MeterCell::refill(std::uint64_t now_ns) {
    if (now_ns <= last_refill_ns_) return;
    const double dt = static_cast<double>(now_ns - last_refill_ns_) * 1e-9;
    committed_tokens_ = std::min(static_cast<double>(committed_burst_),
                                 committed_tokens_ + committed_rate_ * dt);
    excess_tokens_ = std::min(static_cast<double>(excess_burst_),
                              excess_tokens_ + excess_rate_ * dt);
    last_refill_ns_ = now_ns;
}

MeterColor MeterCell::execute(std::uint64_t now_ns, std::uint64_t bytes) {
    refill(now_ns);
    const double b = static_cast<double>(bytes);
    if (committed_tokens_ >= b) {
        committed_tokens_ -= b;
        return MeterColor::green;
    }
    if (excess_tokens_ >= b) {
        excess_tokens_ -= b;
        return MeterColor::yellow;
    }
    return MeterColor::red;
}

StatefulSet::StatefulSet(const p4::ir::Program& prog) {
    externs_.resize(prog.externs.size());
    for (const auto& e : prog.externs) {
        auto& slot = externs_[static_cast<std::size_t>(e.id)];
        slot.kind = e.kind;
        slot.name = e.name;
        slot.elem_width = e.elem_width;
        const auto n = static_cast<std::size_t>(e.array_size);
        switch (e.kind) {
            case p4::ir::ExternDecl::Kind::reg:
                slot.cells.assign(n, Bitvec(e.elem_width));
                break;
            case p4::ir::ExternDecl::Kind::counter:
                slot.packets.assign(n, 0);
                slot.bytes.assign(n, 0);
                break;
            case p4::ir::ExternDecl::Kind::meter:
                slot.meters.assign(n, MeterCell{});
                break;
        }
    }
}

Bitvec StatefulSet::register_read(int extern_id, std::uint64_t index) const {
    const auto& s = externs_.at(static_cast<std::size_t>(extern_id));
    if (index >= s.cells.size()) return Bitvec(s.elem_width);  // OOB reads 0
    return s.cells[index];
}

void StatefulSet::register_write(int extern_id, std::uint64_t index,
                                 const Bitvec& value) {
    auto& s = externs_.at(static_cast<std::size_t>(extern_id));
    if (index >= s.cells.size()) return;  // OOB writes are dropped
    s.cells[index] = value.resize(s.elem_width);
}

void StatefulSet::counter_count(int extern_id, std::uint64_t index,
                                std::uint64_t bytes) {
    auto& s = externs_.at(static_cast<std::size_t>(extern_id));
    if (index >= s.packets.size()) return;
    ++s.packets[index];
    s.bytes[index] += bytes;
}

std::uint64_t StatefulSet::counter_packets(int extern_id, std::uint64_t index) const {
    const auto& s = externs_.at(static_cast<std::size_t>(extern_id));
    return index < s.packets.size() ? s.packets[index] : 0;
}

std::uint64_t StatefulSet::counter_bytes(int extern_id, std::uint64_t index) const {
    const auto& s = externs_.at(static_cast<std::size_t>(extern_id));
    return index < s.bytes.size() ? s.bytes[index] : 0;
}

void StatefulSet::meter_configure(int extern_id, std::uint64_t index,
                                  double committed_rate, std::uint64_t committed_burst,
                                  double excess_rate, std::uint64_t excess_burst) {
    auto& s = externs_.at(static_cast<std::size_t>(extern_id));
    if (index >= s.meters.size()) return;
    s.meters[index].configure(committed_rate, committed_burst, excess_rate,
                              excess_burst);
}

MeterColor StatefulSet::meter_execute(int extern_id, std::uint64_t index,
                                      std::uint64_t now_ns, std::uint64_t bytes) {
    auto& s = externs_.at(static_cast<std::size_t>(extern_id));
    if (index >= s.meters.size()) return MeterColor::red;
    return s.meters[index].execute(now_ns, bytes);
}

std::vector<StatefulSet::Info> StatefulSet::info() const {
    std::vector<Info> out;
    out.reserve(externs_.size());
    for (const auto& s : externs_) {
        Info inf;
        inf.name = s.name;
        std::uint64_t h = kFnvOffset;
        switch (s.kind) {
            case p4::ir::ExternDecl::Kind::reg:
                inf.kind = "register";
                inf.cells = s.cells.size();
                for (const auto& cell : s.cells) {
                    for (const std::uint64_t w : cell.word_span()) h = fnv(h, w);
                }
                break;
            case p4::ir::ExternDecl::Kind::counter:
                inf.kind = "counter";
                inf.cells = s.packets.size();
                for (std::size_t i = 0; i < s.packets.size(); ++i) {
                    h = fnv(h, s.packets[i]);
                    h = fnv(h, s.bytes[i]);
                }
                break;
            case p4::ir::ExternDecl::Kind::meter:
                inf.kind = "meter";
                inf.cells = s.meters.size();
                for (const auto& m : s.meters) {
                    h = m.fold_config(h);
                    if (!m.configured()) ++inf.unconfigured_meters;
                }
                break;
        }
        inf.state_hash = h;
        out.push_back(std::move(inf));
    }
    return out;
}

void StatefulSet::reset_state() {
    for (auto& s : externs_) {
        for (auto& c : s.cells) c = Bitvec(s.elem_width);
        std::fill(s.packets.begin(), s.packets.end(), 0);
        std::fill(s.bytes.begin(), s.bytes.end(), 0);
        for (auto& m : s.meters) m = MeterCell{};
    }
}

}  // namespace ndb::dataplane
