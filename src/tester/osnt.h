// External network tester (OSNT model [1]).
//
// An external tester connects to the device's front-panel ports only.  It
// can generate traffic, capture what comes back, and measure loss,
// throughput and latency from the OUTSIDE.  By construction this class
// never touches the device's internal surfaces (taps, status registers,
// resources, fault plan, control runtime) -- that missing "internal view"
// is exactly the limitation Figure 2 attributes to this tool class.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "packet/packet.h"
#include "target/device.h"
#include "util/stats.h"

namespace ndb::tester {

struct TrafficProfile {
    packet::Packet template_packet;
    std::uint32_t inject_port = 0;
    std::uint64_t count = 1;
    double rate_pps = 0;        // 0 = back-to-back at line rate
    bool stamp_payload = true;  // write seq + timestamp into the payload tail
};

// Offsets of the tester's payload stamps, measured from the packet end.
inline constexpr std::size_t kSeqStampBytes = 8;
inline constexpr std::size_t kTimeStampBytes = 8;

struct Measurement {
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    double loss_fraction = 0.0;
    double achieved_pps = 0.0;
    double achieved_gbps = 0.0;
    util::LatencyHistogram latency_ns;
    std::vector<std::uint64_t> received_per_port;

    std::string to_string() const;
};

class ExternalTester {
public:
    explicit ExternalTester(target::Device& device) : device_(device) {}

    // Sends the profile's stream into the device.
    std::uint64_t send(const TrafficProfile& profile);

    // Collects everything pending on one port.
    std::vector<packet::Packet> capture(std::uint32_t port);

    // send + capture on all ports + statistics.
    Measurement measure(const TrafficProfile& profile);

    // Stamps/readback helpers (shared with tests).
    static void stamp(packet::Packet& pkt, std::uint64_t seq, std::uint64_t t_ns);
    static bool read_stamp(const packet::Packet& pkt, std::uint64_t& seq,
                           std::uint64_t& t_ns);

private:
    target::Device& device_;
    std::uint64_t next_seq_ = 1;
};

}  // namespace ndb::tester
