#include "tester/osnt.h"

#include <algorithm>

#include "util/strings.h"

namespace ndb::tester {

void ExternalTester::stamp(packet::Packet& pkt, std::uint64_t seq,
                           std::uint64_t t_ns) {
    const std::size_t need = kSeqStampBytes + kTimeStampBytes;
    if (pkt.size() < need + 14) {  // keep the Ethernet header intact
        pkt.resize(need + 14);
    }
    const std::size_t base = pkt.size() - need;
    for (int i = 0; i < 8; ++i) {
        pkt.set_byte(base + static_cast<std::size_t>(i),
                     static_cast<std::uint8_t>(seq >> (56 - 8 * i)));
        pkt.set_byte(base + 8 + static_cast<std::size_t>(i),
                     static_cast<std::uint8_t>(t_ns >> (56 - 8 * i)));
    }
}

bool ExternalTester::read_stamp(const packet::Packet& pkt, std::uint64_t& seq,
                                std::uint64_t& t_ns) {
    const std::size_t need = kSeqStampBytes + kTimeStampBytes;
    if (pkt.size() < need) return false;
    const std::size_t base = pkt.size() - need;
    seq = 0;
    t_ns = 0;
    for (int i = 0; i < 8; ++i) {
        seq = (seq << 8) | pkt.byte(base + static_cast<std::size_t>(i));
        t_ns = (t_ns << 8) | pkt.byte(base + 8 + static_cast<std::size_t>(i));
    }
    return true;
}

std::uint64_t ExternalTester::send(const TrafficProfile& profile) {
    const double interval_ns =
        profile.rate_pps > 0 ? 1e9 / profile.rate_pps : 0.0;
    std::uint64_t base_ns = device_.now_ns();
    for (std::uint64_t i = 0; i < profile.count; ++i) {
        packet::Packet pkt = profile.template_packet;
        pkt.meta.ingress_port = profile.inject_port;
        pkt.meta.rx_time_ns =
            base_ns + static_cast<std::uint64_t>(interval_ns * static_cast<double>(i));
        pkt.meta.id = next_seq_;
        if (profile.stamp_payload) {
            stamp(pkt, next_seq_, pkt.meta.rx_time_ns);
        }
        ++next_seq_;
        device_.inject(std::move(pkt));
    }
    return profile.count;
}

std::vector<packet::Packet> ExternalTester::capture(std::uint32_t port) {
    return device_.drain_port(port);
}

Measurement ExternalTester::measure(const TrafficProfile& profile) {
    Measurement m;
    const std::uint64_t t0 = device_.now_ns();
    m.sent = send(profile);

    std::uint64_t first_rx = 0, last_rx = 0;
    std::uint64_t bytes = 0;
    m.received_per_port.assign(
        static_cast<std::size_t>(device_.config().num_ports), 0);
    for (int port = 0; port < device_.config().num_ports; ++port) {
        for (const auto& pkt : capture(static_cast<std::uint32_t>(port))) {
            ++m.received;
            ++m.received_per_port[static_cast<std::size_t>(port)];
            bytes += pkt.size();
            const std::uint64_t rx = pkt.meta.tx_time_ns;
            if (first_rx == 0 || rx < first_rx) first_rx = rx;
            last_rx = std::max(last_rx, rx);
            std::uint64_t seq = 0, stamped_ns = 0;
            if (profile.stamp_payload && read_stamp(pkt, seq, stamped_ns) &&
                rx >= stamped_ns) {
                m.latency_ns.add(rx - stamped_ns);
            }
        }
    }
    m.loss_fraction =
        m.sent ? 1.0 - static_cast<double>(m.received) / static_cast<double>(m.sent)
               : 0.0;
    const double span_ns = static_cast<double>(
        last_rx > t0 ? last_rx - t0 : 1);
    m.achieved_pps = static_cast<double>(m.received) * 1e9 / span_ns;
    m.achieved_gbps = static_cast<double>(bytes) * 8.0 / span_ns;
    return m;
}

std::string Measurement::to_string() const {
    return util::format(
        "sent=%llu received=%llu loss=%.2f%% rate=%.0f pps (%.2f Gbps) "
        "lat p50=%llu p99=%llu max=%llu ns",
        static_cast<unsigned long long>(sent),
        static_cast<unsigned long long>(received), loss_fraction * 100.0,
        achieved_pps, achieved_gbps,
        static_cast<unsigned long long>(latency_ns.percentile(50)),
        static_cast<unsigned long long>(latency_ns.percentile(99)),
        static_cast<unsigned long long>(latency_ns.max_seen()));
}

}  // namespace ndb::tester
