#include "p4/programs.h"

namespace ndb::p4::programs {

namespace {

constexpr std::string_view kEthernetAndIpv4 = R"P4(
const bit<16> TYPE_IPV4 = 0x0800;

header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> totalLen;
    bit<16> identification;
    bit<3>  flags;
    bit<13> fragOffset;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> hdrChecksum;
    bit<32> srcAddr;
    bit<32> dstAddr;
}
)P4";

}  // namespace

std::string_view passthrough() {
    static const std::string src = R"P4(
header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

struct headers { ethernet_t ethernet; }
struct metadata { }

parser MyParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition accept;
    }
}

control MyIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    apply {
        smeta.egress_spec = 9w1;
    }
}

control MyDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ethernet);
    }
}

NdpSwitch(MyParser(), MyIngress(), MyDeparser()) main;
)P4";
    return src;
}

std::string_view l2_switch() {
    static const std::string src = R"P4(
header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

struct headers { ethernet_t ethernet; }
struct metadata { }

parser MyParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition accept;
    }
}

control MyIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    action drop() {
        mark_to_drop(smeta);
    }
    action forward(bit<9> port) {
        smeta.egress_spec = port;
    }
    table dmac {
        key = { hdr.ethernet.dstAddr : exact; }
        actions = { forward; drop; }
        size = 4096;
        default_action = drop();
    }
    apply {
        dmac.apply();
    }
}

control MyDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ethernet);
    }
}

NdpSwitch(MyParser(), MyIngress(), MyDeparser()) main;
)P4";
    return src;
}

std::string_view ipv4_router() {
    static const std::string src = std::string(kEthernetAndIpv4) + R"P4(
struct headers {
    ethernet_t ethernet;
    ipv4_t     ipv4;
}
struct metadata { }

parser MyParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            TYPE_IPV4: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition accept;
    }
}

control MyIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    action drop() {
        mark_to_drop(smeta);
    }
    action ipv4_forward(bit<48> dstAddr, bit<9> port) {
        smeta.egress_spec = port;
        hdr.ethernet.srcAddr = hdr.ethernet.dstAddr;
        hdr.ethernet.dstAddr = dstAddr;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    table ipv4_lpm {
        key = { hdr.ipv4.dstAddr : lpm; }
        actions = { ipv4_forward; drop; NoAction; }
        size = 1024;
        default_action = drop();
    }
    apply {
        if (hdr.ipv4.isValid()) {
            if (hdr.ipv4.ttl == 0) {
                drop();
            } else {
                ipv4_lpm.apply();
                ipv4_checksum_update(hdr.ipv4, hdr.ipv4.hdrChecksum);
            }
        } else {
            drop();
        }
    }
}

control MyDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
    }
}

NdpSwitch(MyParser(), MyIngress(), MyDeparser()) main;
)P4";
    return src;
}

std::string_view reject_filter() {
    static const std::string src = std::string(kEthernetAndIpv4) + R"P4(
struct headers {
    ethernet_t ethernet;
    ipv4_t     ipv4;
}
struct metadata { }

parser MyParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            TYPE_IPV4: parse_ipv4;
            default: reject;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition accept;
    }
}

control MyIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    apply {
        smeta.egress_spec = 9w1;
    }
}

control MyDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
    }
}

NdpSwitch(MyParser(), MyIngress(), MyDeparser()) main;
)P4";
    return src;
}

std::string_view acl_firewall() {
    static const std::string src = std::string(kEthernetAndIpv4) + R"P4(
const bit<8> PROTO_TCP = 6;
const bit<8> PROTO_UDP = 17;

header l4_ports_t {
    bit<16> srcPort;
    bit<16> dstPort;
}

struct headers {
    ethernet_t ethernet;
    ipv4_t     ipv4;
    l4_ports_t l4;
}
struct metadata { }

parser MyParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            TYPE_IPV4: parse_ipv4;
            default: reject;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            PROTO_TCP: parse_l4;
            PROTO_UDP: parse_l4;
            default: reject;
        }
    }
    state parse_l4 {
        pkt.extract(hdr.l4);
        transition accept;
    }
}

control MyIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    action deny() {
        mark_to_drop(smeta);
    }
    action allow(bit<9> port) {
        smeta.egress_spec = port;
    }
    table acl {
        key = {
            hdr.ipv4.srcAddr  : ternary;
            hdr.ipv4.dstAddr  : ternary;
            hdr.ipv4.protocol : ternary;
            hdr.l4.dstPort    : ternary;
        }
        actions = { allow; deny; }
        size = 256;
        default_action = deny();
    }
    apply {
        acl.apply();
    }
}

control MyDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.l4);
    }
}

NdpSwitch(MyParser(), MyIngress(), MyDeparser()) main;
)P4";
    return src;
}

std::string_view tunnel() {
    static const std::string src = std::string(kEthernetAndIpv4) + R"P4(
const bit<16> TYPE_TUNNEL = 0x1212;

header tunnel_t {
    bit<16> proto_id;
    bit<16> dst_id;
}

struct headers {
    ethernet_t ethernet;
    tunnel_t   tunnel;
    ipv4_t     ipv4;
}
struct metadata { }

parser MyParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            TYPE_TUNNEL: parse_tunnel;
            TYPE_IPV4: parse_ipv4;
            default: accept;
        }
    }
    state parse_tunnel {
        pkt.extract(hdr.tunnel);
        transition select(hdr.tunnel.proto_id) {
            TYPE_IPV4: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition accept;
    }
}

control MyIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    action drop() {
        mark_to_drop(smeta);
    }
    action tunnel_forward(bit<9> port) {
        smeta.egress_spec = port;
    }
    action tunnel_encap(bit<16> dst_id, bit<9> port) {
        hdr.tunnel.setValid();
        hdr.tunnel.proto_id = hdr.ethernet.etherType;
        hdr.tunnel.dst_id = dst_id;
        hdr.ethernet.etherType = TYPE_TUNNEL;
        smeta.egress_spec = port;
    }
    action tunnel_decap(bit<9> port) {
        hdr.ethernet.etherType = hdr.tunnel.proto_id;
        hdr.tunnel.setInvalid();
        smeta.egress_spec = port;
    }
    table tunnel_exact {
        key = { hdr.tunnel.dst_id : exact; }
        actions = { tunnel_forward; tunnel_decap; drop; }
        size = 1024;
        default_action = drop();
    }
    table encap_map {
        key = { hdr.ipv4.dstAddr : exact; }
        actions = { tunnel_encap; drop; }
        size = 1024;
        default_action = drop();
    }
    apply {
        if (hdr.tunnel.isValid()) {
            tunnel_exact.apply();
        } else {
            if (hdr.ipv4.isValid()) {
                encap_map.apply();
            } else {
                drop();
            }
        }
    }
}

control MyDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.tunnel);
        pkt.emit(hdr.ipv4);
    }
}

NdpSwitch(MyParser(), MyIngress(), MyDeparser()) main;
)P4";
    return src;
}

std::string_view deep_parser() {
    static const std::string src = R"P4(
const bit<16> TYPE_STACK = 0x8847;

header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

header label_t {
    bit<20> label;
    bit<3>  tc;
    bit<1>  bos;
    bit<8>  ttl;
}

struct headers {
    ethernet_t ethernet;
    label_t l0;
    label_t l1;
    label_t l2;
    label_t l3;
    label_t l4;
    label_t l5;
    label_t l6;
    label_t l7;
}
struct metadata { }

parser MyParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            TYPE_STACK: parse_l0;
            default: accept;
        }
    }
    state parse_l0 { pkt.extract(hdr.l0);
        transition select(hdr.l0.bos) { 1: accept; default: parse_l1; } }
    state parse_l1 { pkt.extract(hdr.l1);
        transition select(hdr.l1.bos) { 1: accept; default: parse_l2; } }
    state parse_l2 { pkt.extract(hdr.l2);
        transition select(hdr.l2.bos) { 1: accept; default: parse_l3; } }
    state parse_l3 { pkt.extract(hdr.l3);
        transition select(hdr.l3.bos) { 1: accept; default: parse_l4; } }
    state parse_l4 { pkt.extract(hdr.l4);
        transition select(hdr.l4.bos) { 1: accept; default: parse_l5; } }
    state parse_l5 { pkt.extract(hdr.l5);
        transition select(hdr.l5.bos) { 1: accept; default: parse_l6; } }
    state parse_l6 { pkt.extract(hdr.l6);
        transition select(hdr.l6.bos) { 1: accept; default: parse_l7; } }
    state parse_l7 { pkt.extract(hdr.l7); transition accept; }
}

control MyIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    action drop() {
        mark_to_drop(smeta);
    }
    action pop_forward(bit<9> port) {
        smeta.egress_spec = port;
    }
    table label_fib {
        key = { hdr.l0.label : exact; }
        actions = { pop_forward; drop; }
        size = 1024;
        default_action = drop();
    }
    apply {
        if (hdr.l0.isValid()) {
            label_fib.apply();
        } else {
            smeta.egress_spec = 9w1;
        }
    }
}

control MyDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.l0);
        pkt.emit(hdr.l1);
        pkt.emit(hdr.l2);
        pkt.emit(hdr.l3);
        pkt.emit(hdr.l4);
        pkt.emit(hdr.l5);
        pkt.emit(hdr.l6);
        pkt.emit(hdr.l7);
    }
}

NdpSwitch(MyParser(), MyIngress(), MyDeparser()) main;
)P4";
    return src;
}

std::string_view stats_monitor() {
    static const std::string src = R"P4(
header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

struct headers { ethernet_t ethernet; }
struct metadata {
    bit<48> pkt_count;
}

parser MyParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition accept;
    }
}

control MyIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    register<bit<48>>(512) port_pkts;
    counter(512) port_bytes;
    apply {
        port_pkts.read(meta.pkt_count, smeta.ingress_port);
        port_pkts.write(smeta.ingress_port, meta.pkt_count + 1);
        port_bytes.count(smeta.ingress_port);
        smeta.egress_spec = 9w2;
    }
}

control MyDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ethernet);
    }
}

NdpSwitch(MyParser(), MyIngress(), MyDeparser()) main;
)P4";
    return src;
}

std::string_view metered_policer() {
    static const std::string src = R"P4(
header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

struct headers { ethernet_t ethernet; }
struct metadata {
    bit<2> color;
}

parser MyParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition accept;
    }
}

control MyIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    meter(64) port_meter;
    action drop() {
        mark_to_drop(smeta);
    }
    apply {
        port_meter.execute(smeta.ingress_port, meta.color);
        if (meta.color == 2) {
            drop();
        } else {
            smeta.egress_spec = 9w1;
        }
    }
}

control MyDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ethernet);
    }
}

NdpSwitch(MyParser(), MyIngress(), MyDeparser()) main;
)P4";
    return src;
}

std::string_view variant_a() {
    static const std::string src = std::string(kEthernetAndIpv4) + R"P4(
struct headers {
    ethernet_t ethernet;
    ipv4_t     ipv4;
}
struct metadata { }

parser MyParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            TYPE_IPV4: parse_ipv4;
            default: reject;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition accept;
    }
}

control MyIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    apply {
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
        smeta.egress_spec = 9w3;
    }
}

control MyDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
    }
}

NdpSwitch(MyParser(), MyIngress(), MyDeparser()) main;
)P4";
    return src;
}

std::string_view variant_b() {
    static const std::string src = std::string(kEthernetAndIpv4) + R"P4(
struct headers {
    ethernet_t ethernet;
    ipv4_t     ipv4;
}
struct metadata { }

parser MyParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            TYPE_IPV4: parse_ipv4;
            default: reject;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition accept;
    }
}

control MyIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    apply {
        hdr.ipv4.ttl = hdr.ipv4.ttl + 255;
        smeta.egress_spec = 9w3;
    }
}

control MyDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
    }
}

NdpSwitch(MyParser(), MyIngress(), MyDeparser()) main;
)P4";
    return src;
}

std::string_view wide_match() {
    static const std::string src = std::string(kEthernetAndIpv4) + R"P4(
struct headers {
    ethernet_t ethernet;
    ipv4_t     ipv4;
}
struct metadata { }

parser MyParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            TYPE_IPV4: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition accept;
    }
}

control MyIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    action drop() {
        mark_to_drop(smeta);
    }
    action set_port(bit<9> port) {
        smeta.egress_spec = port;
    }
    table flow_wide {
        key = {
            hdr.ethernet.dstAddr : exact;
            hdr.ethernet.srcAddr : exact;
            hdr.ipv4.srcAddr     : exact;
            hdr.ipv4.dstAddr     : exact;
            hdr.ipv4.protocol    : exact;
        }
        actions = { set_port; drop; }
        size = 65536;
        default_action = drop();
    }
    table backup {
        key = { hdr.ipv4.dstAddr : ternary; }
        actions = { set_port; drop; }
        size = 8192;
        default_action = drop();
    }
    apply {
        if (hdr.ipv4.isValid()) {
            flow_wide.apply();
            backup.apply();
        } else {
            drop();
        }
    }
}

control MyDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
    }
}

NdpSwitch(MyParser(), MyIngress(), MyDeparser()) main;
)P4";
    return src;
}

std::string_view shift_mangler() {
    static const std::string src = R"P4(
header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

struct headers { ethernet_t ethernet; }
struct metadata { }

parser MyParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition accept;
    }
}

control MyIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    apply {
        hdr.ethernet.etherType = hdr.ethernet.etherType >> 4;
        hdr.ethernet.dstAddr = hdr.ethernet.dstAddr >> 8;
        smeta.egress_spec = 9w1;
    }
}

control MyDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ethernet);
    }
}

NdpSwitch(MyParser(), MyIngress(), MyDeparser()) main;
)P4";
    return src;
}

std::string_view meta_echo() {
    static const std::string src = R"P4(
header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

struct headers { ethernet_t ethernet; }
struct metadata {
    bit<16> scratch;
}

parser MyParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition accept;
    }
}

control MyIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    apply {
        hdr.ethernet.etherType = meta.scratch;
        smeta.egress_spec = 9w1;
    }
}

control MyDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ethernet);
    }
}

NdpSwitch(MyParser(), MyIngress(), MyDeparser()) main;
)P4";
    return src;
}

std::string_view nat_gateway() {
    static const std::string src = std::string(kEthernetAndIpv4) + R"P4(
struct headers {
    ethernet_t ethernet;
    ipv4_t     ipv4;
}
struct metadata {
    bit<1>  translated;
    bit<6>  bucket;
    bit<32> stored_key;
    bit<48> stored_last;
    bit<48> now;
    bit<48> age;
}

parser MyParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            TYPE_IPV4: parse_ipv4;
            default: reject;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition accept;
    }
}

control MyIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    register<bit<32>>(64) nat_key;
    register<bit<48>>(64) nat_last;
    action drop() {
        mark_to_drop(smeta);
    }
    action static_map(bit<32> src, bit<9> port) {
        hdr.ipv4.srcAddr = src;
        smeta.egress_spec = port;
        meta.translated = 1;
    }
    table nat_static {
        key = { hdr.ipv4.srcAddr : exact; }
        actions = { static_map; NoAction; }
        size = 256;
        default_action = NoAction();
    }
    apply {
        nat_static.apply();
        if (meta.translated == 0) {
            hash(meta.bucket, hdr.ipv4.srcAddr, hdr.ipv4.dstAddr);
            nat_key.read(meta.stored_key, meta.bucket);
            nat_last.read(meta.stored_last, meta.bucket);
            meta.now = smeta.ingress_global_timestamp;
            meta.age = meta.now - meta.stored_last;
            if (meta.stored_key == 32w0 || meta.age >= 48w64) {
                nat_key.write(meta.bucket, hdr.ipv4.srcAddr);
                nat_last.write(meta.bucket, meta.now);
                hdr.ipv4.srcAddr = 32w0xc0a80001;
                smeta.egress_spec = 9w2;
            } else {
                if (meta.stored_key == hdr.ipv4.srcAddr) {
                    nat_last.write(meta.bucket, meta.now);
                    hdr.ipv4.srcAddr = 32w0xc0a80001;
                    smeta.egress_spec = 9w2;
                } else {
                    drop();
                }
            }
        }
        ipv4_checksum_update(hdr.ipv4, hdr.ipv4.hdrChecksum);
    }
}

control MyDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
    }
}

NdpSwitch(MyParser(), MyIngress(), MyDeparser()) main;
)P4";
    return src;
}

std::string_view flow_firewall() {
    static const std::string src = std::string(kEthernetAndIpv4) + R"P4(
struct headers {
    ethernet_t ethernet;
    ipv4_t     ipv4;
}
struct metadata {
    bit<1>  outbound;
    bit<32> fkey;
    bit<6>  bucket;
    bit<32> stored_key;
    bit<48> stored_last;
    bit<48> now;
    bit<48> age;
    bit<32> pkts;
}

parser MyParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            TYPE_IPV4: parse_ipv4;
            default: reject;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition accept;
    }
}

control MyIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    register<bit<32>>(64) flow_key;
    register<bit<48>>(64) flow_last;
    register<bit<32>>(64) flow_pkts;
    action drop() {
        mark_to_drop(smeta);
    }
    action mark_outbound() {
        meta.outbound = 1;
    }
    table internal_hosts {
        key = { hdr.ipv4.srcAddr : exact; }
        actions = { mark_outbound; NoAction; }
        size = 256;
        default_action = NoAction();
    }
    apply {
        internal_hosts.apply();
        meta.fkey = hdr.ipv4.srcAddr ^ hdr.ipv4.dstAddr;
        hash(meta.bucket, meta.fkey);
        flow_key.read(meta.stored_key, meta.bucket);
        flow_last.read(meta.stored_last, meta.bucket);
        meta.now = smeta.ingress_global_timestamp;
        meta.age = meta.now - meta.stored_last;
        if (meta.outbound == 1) {
            flow_key.write(meta.bucket, meta.fkey);
            flow_last.write(meta.bucket, meta.now);
            flow_pkts.read(meta.pkts, meta.bucket);
            flow_pkts.write(meta.bucket, meta.pkts + 1);
            smeta.egress_spec = 9w1;
        } else {
            if (meta.stored_key == meta.fkey && meta.age < 48w128) {
                flow_pkts.read(meta.pkts, meta.bucket);
                flow_pkts.write(meta.bucket, meta.pkts + 1);
                smeta.egress_spec = 9w2;
            } else {
                drop();
            }
        }
    }
}

control MyDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
    }
}

NdpSwitch(MyParser(), MyIngress(), MyDeparser()) main;
)P4";
    return src;
}

std::string_view maglev_lb() {
    static const std::string src = std::string(kEthernetAndIpv4) + R"P4(
const bit<8> PROTO_TCP = 6;
const bit<8> PROTO_UDP = 17;

header l4_ports_t {
    bit<16> srcPort;
    bit<16> dstPort;
}

struct headers {
    ethernet_t ethernet;
    ipv4_t     ipv4;
    l4_ports_t l4;
}
struct metadata {
    bit<1>  vip_hit;
    bit<6>  bucket;
    bit<32> backend;
}

parser MyParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            TYPE_IPV4: parse_ipv4;
            default: reject;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            PROTO_TCP: parse_l4;
            PROTO_UDP: parse_l4;
            default: reject;
        }
    }
    state parse_l4 {
        pkt.extract(hdr.l4);
        transition accept;
    }
}

control MyIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    register<bit<32>>(64) backend_map;
    counter(64) bucket_hits;
    action drop() {
        mark_to_drop(smeta);
    }
    action vip_select(bit<9> port) {
        smeta.egress_spec = port;
        meta.vip_hit = 1;
    }
    table vip {
        key = { hdr.ipv4.dstAddr : exact; }
        actions = { vip_select; NoAction; }
        size = 64;
        default_action = NoAction();
    }
    apply {
        vip.apply();
        if (meta.vip_hit == 1) {
            hash(meta.bucket, hdr.ipv4.srcAddr, hdr.ipv4.dstAddr,
                 hdr.ipv4.protocol, hdr.l4.srcPort, hdr.l4.dstPort);
            bucket_hits.count(meta.bucket);
            backend_map.read(meta.backend, meta.bucket);
            if (meta.backend == 32w0) {
                drop();
            } else {
                hdr.ipv4.dstAddr = meta.backend;
                ipv4_checksum_update(hdr.ipv4, hdr.ipv4.hdrChecksum);
            }
        } else {
            drop();
        }
    }
}

control MyDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.l4);
    }
}

NdpSwitch(MyParser(), MyIngress(), MyDeparser()) main;
)P4";
    return src;
}

std::string_view learning_bridge() {
    static const std::string src = R"P4(
header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

struct headers { ethernet_t ethernet; }
struct metadata {
    bit<6>  src_bucket;
    bit<6>  dst_bucket;
    bit<48> stored_key;
    bit<9>  out_port;
}

parser MyParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition accept;
    }
}

control MyIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    register<bit<48>>(64) mac_key;
    register<bit<9>>(64) mac_port;
    apply {
        hash(meta.src_bucket, hdr.ethernet.srcAddr);
        mac_key.write(meta.src_bucket, hdr.ethernet.srcAddr);
        mac_port.write(meta.src_bucket, smeta.ingress_port);
        hash(meta.dst_bucket, hdr.ethernet.dstAddr);
        mac_key.read(meta.stored_key, meta.dst_bucket);
        mac_port.read(meta.out_port, meta.dst_bucket);
        if (meta.stored_key == hdr.ethernet.dstAddr) {
            smeta.egress_spec = meta.out_port;
        } else {
            smeta.egress_spec = 9w3;
        }
    }
}

control MyDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ethernet);
    }
}

NdpSwitch(MyParser(), MyIngress(), MyDeparser()) main;
)P4";
    return src;
}

std::vector<Sample> all_samples() {
    return {
        {"passthrough", passthrough()},
        {"l2_switch", l2_switch()},
        {"ipv4_router", ipv4_router()},
        {"reject_filter", reject_filter()},
        {"acl_firewall", acl_firewall()},
        {"tunnel", tunnel()},
        {"deep_parser", deep_parser()},
        {"stats_monitor", stats_monitor()},
        {"metered_policer", metered_policer()},
        {"variant_a", variant_a()},
        {"variant_b", variant_b()},
        {"wide_match", wide_match()},
        {"shift_mangler", shift_mangler()},
        {"meta_echo", meta_echo()},
        {"nat_gateway", nat_gateway()},
        {"flow_firewall", flow_firewall()},
        {"maglev_lb", maglev_lb()},
        {"learning_bridge", learning_bridge()},
    };
}

std::string_view sample_by_name(std::string_view name) {
    for (const auto& sample : all_samples()) {
        if (sample.name == name) return sample.source;
    }
    return {};
}

std::vector<std::string> sample_names() {
    std::vector<std::string> names;
    for (auto& sample : all_samples()) names.push_back(std::move(sample.name));
    return names;
}

}  // namespace ndb::p4::programs
