#include "p4/lexer.h"

#include <cctype>
#include <unordered_map>

namespace ndb::p4 {

const char* tok_kind_name(TokKind kind) {
    switch (kind) {
        case TokKind::end_of_file: return "<eof>";
        case TokKind::identifier: return "identifier";
        case TokKind::number: return "number";
        case TokKind::kw_header: return "'header'";
        case TokKind::kw_struct: return "'struct'";
        case TokKind::kw_typedef: return "'typedef'";
        case TokKind::kw_const: return "'const'";
        case TokKind::kw_parser: return "'parser'";
        case TokKind::kw_control: return "'control'";
        case TokKind::kw_state: return "'state'";
        case TokKind::kw_transition: return "'transition'";
        case TokKind::kw_select: return "'select'";
        case TokKind::kw_default: return "'default'";
        case TokKind::kw_action: return "'action'";
        case TokKind::kw_table: return "'table'";
        case TokKind::kw_key: return "'key'";
        case TokKind::kw_actions: return "'actions'";
        case TokKind::kw_size: return "'size'";
        case TokKind::kw_default_action: return "'default_action'";
        case TokKind::kw_apply: return "'apply'";
        case TokKind::kw_if: return "'if'";
        case TokKind::kw_else: return "'else'";
        case TokKind::kw_exit: return "'exit'";
        case TokKind::kw_return: return "'return'";
        case TokKind::kw_bit: return "'bit'";
        case TokKind::kw_bool: return "'bool'";
        case TokKind::kw_true: return "'true'";
        case TokKind::kw_false: return "'false'";
        case TokKind::kw_in: return "'in'";
        case TokKind::kw_out: return "'out'";
        case TokKind::kw_inout: return "'inout'";
        case TokKind::kw_register: return "'register'";
        case TokKind::kw_counter: return "'counter'";
        case TokKind::kw_meter: return "'meter'";
        case TokKind::kw_main: return "'main'";
        case TokKind::l_brace: return "'{'";
        case TokKind::r_brace: return "'}'";
        case TokKind::l_paren: return "'('";
        case TokKind::r_paren: return "')'";
        case TokKind::l_bracket: return "'['";
        case TokKind::r_bracket: return "']'";
        case TokKind::l_angle: return "'<'";
        case TokKind::r_angle: return "'>'";
        case TokKind::semicolon: return "';'";
        case TokKind::colon: return "':'";
        case TokKind::comma: return "','";
        case TokKind::dot: return "'.'";
        case TokKind::assign: return "'='";
        case TokKind::plus: return "'+'";
        case TokKind::minus: return "'-'";
        case TokKind::star: return "'*'";
        case TokKind::slash: return "'/'";
        case TokKind::percent: return "'%'";
        case TokKind::amp: return "'&'";
        case TokKind::pipe: return "'|'";
        case TokKind::caret: return "'^'";
        case TokKind::tilde: return "'~'";
        case TokKind::bang: return "'!'";
        case TokKind::amp_amp: return "'&&'";
        case TokKind::pipe_pipe: return "'||'";
        case TokKind::eq_eq: return "'=='";
        case TokKind::bang_eq: return "'!='";
        case TokKind::le: return "'<='";
        case TokKind::ge: return "'>='";
        case TokKind::shl: return "'<<'";
        case TokKind::shr: return "'>>'";
        case TokKind::plus_plus: return "'++'";
        case TokKind::amp_amp_amp: return "'&&&'";
        case TokKind::underscore: return "'_'";
        case TokKind::question: return "'?'";
    }
    return "?";
}

namespace {
const std::unordered_map<std::string_view, TokKind> kKeywords = {
    {"header", TokKind::kw_header},       {"struct", TokKind::kw_struct},
    {"typedef", TokKind::kw_typedef},     {"const", TokKind::kw_const},
    {"parser", TokKind::kw_parser},       {"control", TokKind::kw_control},
    {"state", TokKind::kw_state},         {"transition", TokKind::kw_transition},
    {"select", TokKind::kw_select},       {"default", TokKind::kw_default},
    {"action", TokKind::kw_action},       {"table", TokKind::kw_table},
    {"key", TokKind::kw_key},             {"actions", TokKind::kw_actions},
    {"size", TokKind::kw_size},           {"default_action", TokKind::kw_default_action},
    {"apply", TokKind::kw_apply},         {"if", TokKind::kw_if},
    {"else", TokKind::kw_else},           {"exit", TokKind::kw_exit},
    {"return", TokKind::kw_return},       {"bit", TokKind::kw_bit},
    {"bool", TokKind::kw_bool},           {"true", TokKind::kw_true},
    {"false", TokKind::kw_false},         {"in", TokKind::kw_in},
    {"out", TokKind::kw_out},             {"inout", TokKind::kw_inout},
    {"register", TokKind::kw_register},   {"counter", TokKind::kw_counter},
    {"meter", TokKind::kw_meter},         {"main", TokKind::kw_main},
};
}  // namespace

Lexer::Lexer(std::string_view source, util::DiagEngine& diags)
    : src_(source), diags_(diags) {}

std::vector<Token> Lexer::run() {
    std::vector<Token> tokens;
    for (;;) {
        Token t = next();
        const bool done = t.kind == TokKind::end_of_file;
        tokens.push_back(std::move(t));
        if (done) break;
    }
    return tokens;
}

char Lexer::peek(int ahead) const {
    const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
    return i < src_.size() ? src_[i] : '\0';
}

char Lexer::advance() {
    const char c = peek();
    ++pos_;
    if (c == '\n') {
        ++line_;
        col_ = 1;
    } else {
        ++col_;
    }
    return c;
}

bool Lexer::match(char c) {
    if (peek() != c) return false;
    advance();
    return true;
}

void Lexer::skip_trivia() {
    for (;;) {
        const char c = peek();
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            advance();
        } else if (c == '/' && peek(1) == '/') {
            while (peek() != '\n' && peek() != '\0') advance();
        } else if (c == '/' && peek(1) == '*') {
            advance();
            advance();
            while (!(peek() == '*' && peek(1) == '/')) {
                if (peek() == '\0') {
                    diags_.error(loc(), "unterminated block comment");
                    return;
                }
                advance();
            }
            advance();
            advance();
        } else {
            return;
        }
    }
}

Token Lexer::make(TokKind kind) {
    Token t;
    t.kind = kind;
    t.loc = tok_start_;
    return t;
}

Token Lexer::lex_identifier() {
    std::string text;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
        text.push_back(advance());
    }
    if (text == "_") return make(TokKind::underscore);
    const auto it = kKeywords.find(text);
    if (it != kKeywords.end()) return make(it->second);
    Token t = make(TokKind::identifier);
    t.text = std::move(text);
    return t;
}

Token Lexer::lex_number() {
    // Grammar: [INT 'w'] (0x HEX | 0b BIN | DEC); underscores allowed inside.
    std::string digits;
    int width = -1;
    int base = 10;

    const auto try_base_prefix = [&] {
        if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
            advance();
            advance();
            base = 16;
        } else if (peek() == '0' && (peek(1) == 'b' || peek(1) == 'B')) {
            advance();
            advance();
            base = 2;
        }
    };
    const auto read_digits = [&] {
        const auto is_digit = [&](char c) {
            return base == 16 ? std::isxdigit(static_cast<unsigned char>(c)) != 0
                              : std::isdigit(static_cast<unsigned char>(c)) != 0;
        };
        while (is_digit(peek()) || peek() == '_') {
            if (peek() == '_') {
                advance();
                continue;
            }
            digits.push_back(advance());
        }
    };

    try_base_prefix();
    read_digits();
    // A decimal run followed by 'w' is a width prefix: 8w255, 16w0xFFFF.
    if (base == 10 && peek() == 'w' && !digits.empty()) {
        advance();
        width = std::stoi(digits);
        digits.clear();
        if (width <= 0 || width > 4096) {
            diags_.error(tok_start_, "bad width prefix in literal");
            width = 32;
        }
        try_base_prefix();
        read_digits();
    }
    if (digits.empty()) {
        diags_.error(tok_start_, "malformed number literal");
        digits = "0";
    }

    // Accumulate into a wide bitvec so 128-bit literals (IPv6) work.
    const int value_width = width > 0 ? width : 256;
    util::Bitvec value(value_width);
    const util::Bitvec vbase(value_width, static_cast<std::uint64_t>(base));
    bool overflow = false;
    for (const char c : digits) {
        int d = 0;
        if (c >= '0' && c <= '9') {
            d = c - '0';
        } else if (c >= 'a' && c <= 'f') {
            d = c - 'a' + 10;
        } else {
            d = c - 'A' + 10;
        }
        const auto scaled = value.mul(vbase);
        // Detect wrap for sized literals: scaled/base must give value back.
        const auto next = scaled.add(util::Bitvec(value_width, static_cast<std::uint64_t>(d)));
        if (width > 0 && !value.is_zero() && scaled.ult(value)) overflow = true;
        value = next;
    }
    if (overflow) diags_.error(tok_start_, "literal does not fit in declared width");

    Token t = make(TokKind::number);
    t.width = width;
    if (width > 0) {
        t.value = value;
    } else {
        // Unsized literal: keep a canonical 64-bit value; typechecker resizes.
        t.value = value.resize(64);
        if (!value.resize(64).resize(value_width).eq(value)) {
            diags_.error(tok_start_, "unsized literal exceeds 64 bits; add a width prefix");
        }
    }
    t.text = digits;
    return t;
}

Token Lexer::next() {
    skip_trivia();
    tok_start_ = loc();
    const char c = peek();
    if (c == '\0') return make(TokKind::end_of_file);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') return lex_identifier();
    if (std::isdigit(static_cast<unsigned char>(c))) return lex_number();

    advance();
    switch (c) {
        case '{': return make(TokKind::l_brace);
        case '}': return make(TokKind::r_brace);
        case '(': return make(TokKind::l_paren);
        case ')': return make(TokKind::r_paren);
        case '[': return make(TokKind::l_bracket);
        case ']': return make(TokKind::r_bracket);
        case ';': return make(TokKind::semicolon);
        case ':': return make(TokKind::colon);
        case ',': return make(TokKind::comma);
        case '.': return make(TokKind::dot);
        case '?': return make(TokKind::question);
        case '~': return make(TokKind::tilde);
        case '*': return make(TokKind::star);
        case '/': return make(TokKind::slash);
        case '%': return make(TokKind::percent);
        case '^': return make(TokKind::caret);
        case '+': return match('+') ? make(TokKind::plus_plus) : make(TokKind::plus);
        case '-': return make(TokKind::minus);
        case '=': return match('=') ? make(TokKind::eq_eq) : make(TokKind::assign);
        case '!': return match('=') ? make(TokKind::bang_eq) : make(TokKind::bang);
        case '&':
            if (match('&')) {
                return match('&') ? make(TokKind::amp_amp_amp) : make(TokKind::amp_amp);
            }
            return make(TokKind::amp);
        case '|': return match('|') ? make(TokKind::pipe_pipe) : make(TokKind::pipe);
        case '<':
            if (match('<')) return make(TokKind::shl);
            if (match('=')) return make(TokKind::le);
            return make(TokKind::l_angle);
        case '>':
            if (match('>')) return make(TokKind::shr);
            if (match('=')) return make(TokKind::ge);
            return make(TokKind::r_angle);
        default:
            diags_.error(tok_start_, std::string("unexpected character '") + c + "'");
            return next();
    }
}

}  // namespace ndb::p4
