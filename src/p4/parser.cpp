#include "p4/parser.h"

#include "p4/lexer.h"

namespace ndb::p4 {

namespace {

ast::ExprPtr make_expr(ast::Expr::Kind kind, util::SourceLoc loc) {
    auto e = std::make_unique<ast::Expr>();
    e->kind = kind;
    e->loc = loc;
    return e;
}

ast::StmtPtr make_stmt(ast::Stmt::Kind kind, util::SourceLoc loc) {
    auto s = std::make_unique<ast::Stmt>();
    s->kind = kind;
    s->loc = loc;
    return s;
}

// Binary operator precedence; higher binds tighter.
int precedence(TokKind kind) {
    switch (kind) {
        case TokKind::pipe_pipe: return 1;
        case TokKind::amp_amp: return 2;
        case TokKind::eq_eq:
        case TokKind::bang_eq: return 3;
        case TokKind::l_angle:
        case TokKind::r_angle:
        case TokKind::le:
        case TokKind::ge: return 4;
        case TokKind::pipe: return 5;
        case TokKind::caret: return 6;
        case TokKind::amp: return 7;
        case TokKind::shl:
        case TokKind::shr: return 8;
        case TokKind::plus_plus: return 9;
        case TokKind::plus:
        case TokKind::minus: return 10;
        case TokKind::star: return 11;
        default: return -1;
    }
}

ast::BinOp bin_op_for(TokKind kind) {
    switch (kind) {
        case TokKind::pipe_pipe: return ast::BinOp::lor;
        case TokKind::amp_amp: return ast::BinOp::land;
        case TokKind::eq_eq: return ast::BinOp::eq;
        case TokKind::bang_eq: return ast::BinOp::ne;
        case TokKind::l_angle: return ast::BinOp::lt;
        case TokKind::r_angle: return ast::BinOp::gt;
        case TokKind::le: return ast::BinOp::le;
        case TokKind::ge: return ast::BinOp::ge;
        case TokKind::pipe: return ast::BinOp::bor;
        case TokKind::caret: return ast::BinOp::bxor;
        case TokKind::amp: return ast::BinOp::band;
        case TokKind::shl: return ast::BinOp::shl;
        case TokKind::shr: return ast::BinOp::shr;
        case TokKind::plus_plus: return ast::BinOp::concat;
        case TokKind::plus: return ast::BinOp::add;
        case TokKind::minus: return ast::BinOp::sub;
        case TokKind::star: return ast::BinOp::mul;
        default: return ast::BinOp::add;
    }
}

}  // namespace

P4Parser::P4Parser(std::vector<Token> tokens, util::DiagEngine& diags)
    : tokens_(std::move(tokens)), diags_(diags) {}

const Token& P4Parser::peek(int ahead) const {
    const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

const Token& P4Parser::advance() {
    const Token& t = peek();
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
}

bool P4Parser::accept(TokKind kind) {
    if (!check(kind)) return false;
    advance();
    return true;
}

const Token& P4Parser::expect(TokKind kind, const char* what) {
    if (!check(kind)) {
        diags_.error(peek().loc, std::string("expected ") + tok_kind_name(kind) +
                                     " " + what + ", found " +
                                     tok_kind_name(peek().kind));
        throw Bail{};
    }
    return advance();
}

void P4Parser::expect_close_angle(const char* what) {
    if (check(TokKind::r_angle)) {
        advance();
        return;
    }
    if (check(TokKind::shr)) {
        // Split '>>' in place: consume one '>', leave one behind.
        tokens_[pos_].kind = TokKind::r_angle;
        return;
    }
    diags_.error(peek().loc, std::string("expected '>' ") + what + ", found " +
                                 tok_kind_name(peek().kind));
    throw Bail{};
}

void P4Parser::fail(const char* message) {
    diags_.error(peek().loc, message);
    throw Bail{};
}

void P4Parser::sync_to_decl() {
    // Skip tokens until a plausible declaration start at brace depth zero.
    int depth = 0;
    while (!check(TokKind::end_of_file)) {
        switch (peek().kind) {
            case TokKind::l_brace:
                ++depth;
                advance();
                break;
            case TokKind::r_brace:
                if (depth == 0) {
                    advance();
                    return;
                }
                --depth;
                advance();
                break;
            case TokKind::semicolon:
                advance();
                if (depth == 0) return;
                break;
            default:
                advance();
                break;
        }
    }
}

ast::Program P4Parser::parse_program() {
    ast::Program prog;
    while (!check(TokKind::end_of_file)) {
        try {
            switch (peek().kind) {
                case TokKind::kw_header: parse_header(prog); break;
                case TokKind::kw_struct: parse_struct(prog); break;
                case TokKind::kw_typedef: parse_typedef(prog); break;
                case TokKind::kw_const: parse_const(prog); break;
                case TokKind::kw_parser: parse_parser_decl(prog); break;
                case TokKind::kw_control: parse_control_decl(prog); break;
                case TokKind::identifier: parse_package_inst(prog); break;
                default:
                    fail("expected a declaration");
            }
        } catch (const Bail&) {
            sync_to_decl();
        }
    }
    return prog;
}

ast::TypeRef P4Parser::parse_type() {
    ast::TypeRef t;
    t.loc = peek().loc;
    if (accept(TokKind::kw_bit)) {
        t.kind = ast::TypeRef::Kind::bits;
        expect(TokKind::l_angle, "after 'bit'");
        const Token& n = expect(TokKind::number, "as bit width");
        t.width = static_cast<int>(n.value.to_u64());
        if (t.width <= 0 || t.width > 4096) {
            diags_.error(n.loc, "bit width must be in [1, 4096]");
            t.width = 1;
        }
        expect_close_angle("after bit width");
    } else if (accept(TokKind::kw_bool)) {
        t.kind = ast::TypeRef::Kind::boolean;
    } else {
        const Token& id = expect(TokKind::identifier, "as type name");
        t.kind = ast::TypeRef::Kind::named;
        t.name = id.text;
    }
    return t;
}

ast::FieldDecl P4Parser::parse_field() {
    ast::FieldDecl f;
    f.loc = peek().loc;
    f.type = parse_type();
    f.name = expect(TokKind::identifier, "as field name").text;
    expect(TokKind::semicolon, "after field");
    return f;
}

void P4Parser::parse_header(ast::Program& prog) {
    ast::HeaderDecl h;
    h.loc = peek().loc;
    expect(TokKind::kw_header, "");
    h.name = expect(TokKind::identifier, "as header name").text;
    expect(TokKind::l_brace, "to open header");
    while (!accept(TokKind::r_brace)) {
        h.fields.push_back(parse_field());
    }
    prog.headers.push_back(std::move(h));
}

void P4Parser::parse_struct(ast::Program& prog) {
    ast::StructDecl s;
    s.loc = peek().loc;
    expect(TokKind::kw_struct, "");
    s.name = expect(TokKind::identifier, "as struct name").text;
    expect(TokKind::l_brace, "to open struct");
    while (!accept(TokKind::r_brace)) {
        s.fields.push_back(parse_field());
    }
    prog.structs.push_back(std::move(s));
}

void P4Parser::parse_typedef(ast::Program& prog) {
    ast::TypedefDecl t;
    t.loc = peek().loc;
    expect(TokKind::kw_typedef, "");
    t.type = parse_type();
    t.name = expect(TokKind::identifier, "as typedef name").text;
    expect(TokKind::semicolon, "after typedef");
    prog.typedefs.push_back(std::move(t));
}

void P4Parser::parse_const(ast::Program& prog) {
    ast::ConstDecl c;
    c.loc = peek().loc;
    expect(TokKind::kw_const, "");
    c.type = parse_type();
    c.name = expect(TokKind::identifier, "as constant name").text;
    expect(TokKind::assign, "in constant definition");
    c.value = parse_expr();
    expect(TokKind::semicolon, "after constant");
    prog.consts.push_back(std::move(c));
}

std::vector<ast::Param> P4Parser::parse_params() {
    std::vector<ast::Param> params;
    expect(TokKind::l_paren, "to open parameter list");
    if (!check(TokKind::r_paren)) {
        do {
            ast::Param p;
            p.loc = peek().loc;
            if (accept(TokKind::kw_in)) {
                p.dir = ast::ParamDir::in;
            } else if (accept(TokKind::kw_out)) {
                p.dir = ast::ParamDir::out;
            } else if (accept(TokKind::kw_inout)) {
                p.dir = ast::ParamDir::inout;
            }
            p.type = parse_type();
            p.name = expect(TokKind::identifier, "as parameter name").text;
            params.push_back(std::move(p));
        } while (accept(TokKind::comma));
    }
    expect(TokKind::r_paren, "to close parameter list");
    return params;
}

void P4Parser::parse_parser_decl(ast::Program& prog) {
    ast::ParserDecl p;
    p.loc = peek().loc;
    expect(TokKind::kw_parser, "");
    p.name = expect(TokKind::identifier, "as parser name").text;
    p.params = parse_params();
    expect(TokKind::l_brace, "to open parser body");
    while (!accept(TokKind::r_brace)) {
        p.states.push_back(parse_parser_state());
    }
    prog.parsers.push_back(std::move(p));
}

ast::Keyset P4Parser::parse_keyset() {
    ast::Keyset k;
    k.loc = peek().loc;
    if (accept(TokKind::kw_default) || accept(TokKind::underscore)) {
        k.kind = ast::Keyset::Kind::any;
        return k;
    }
    k.value = parse_expr();
    if (accept(TokKind::amp_amp_amp)) {
        k.kind = ast::Keyset::Kind::masked;
        k.mask = parse_expr();
    } else {
        k.kind = ast::Keyset::Kind::value;
    }
    return k;
}

ast::ParserState P4Parser::parse_parser_state() {
    ast::ParserState st;
    st.loc = peek().loc;
    expect(TokKind::kw_state, "to begin parser state");
    st.name = expect(TokKind::identifier, "as state name").text;
    expect(TokKind::l_brace, "to open state");
    bool have_transition = false;
    while (!accept(TokKind::r_brace)) {
        if (accept(TokKind::kw_transition)) {
            have_transition = true;
            if (accept(TokKind::kw_select)) {
                st.tkind = ast::ParserState::TransitionKind::select;
                expect(TokKind::l_paren, "after 'select'");
                do {
                    st.select_exprs.push_back(parse_expr());
                } while (accept(TokKind::comma));
                expect(TokKind::r_paren, "to close select keys");
                expect(TokKind::l_brace, "to open select cases");
                while (!accept(TokKind::r_brace)) {
                    ast::SelectCase c;
                    c.loc = peek().loc;
                    if (accept(TokKind::l_paren)) {
                        do {
                            c.keys.push_back(parse_keyset());
                        } while (accept(TokKind::comma));
                        expect(TokKind::r_paren, "to close keyset tuple");
                    } else {
                        c.keys.push_back(parse_keyset());
                    }
                    expect(TokKind::colon, "before select target");
                    c.next_state = expect(TokKind::identifier, "as next state").text;
                    expect(TokKind::semicolon, "after select case");
                    st.cases.push_back(std::move(c));
                }
            } else {
                st.tkind = ast::ParserState::TransitionKind::direct;
                st.next_state = expect(TokKind::identifier, "as next state").text;
                expect(TokKind::semicolon, "after transition");
            }
            // transition must be last in the state
            expect(TokKind::r_brace, "after transition");
            return st;
        }
        st.stmts.push_back(parse_statement());
    }
    if (!have_transition) {
        // P4 allows a state without transition: implicit reject.
        st.tkind = ast::ParserState::TransitionKind::direct;
        st.next_state = "reject";
    }
    return st;
}

ast::ExternInstance P4Parser::parse_extern_instance() {
    ast::ExternInstance e;
    e.loc = peek().loc;
    if (accept(TokKind::kw_register)) {
        e.kind = ast::ExternInstance::Kind::reg;
        expect(TokKind::l_angle, "after 'register'");
        e.elem_type = parse_type();
        expect_close_angle("after register element type");
    } else if (accept(TokKind::kw_counter)) {
        e.kind = ast::ExternInstance::Kind::counter;
    } else {
        expect(TokKind::kw_meter, "for extern instance");
        e.kind = ast::ExternInstance::Kind::meter;
    }
    expect(TokKind::l_paren, "to open extern arguments");
    const Token& n = expect(TokKind::number, "as extern array size");
    e.array_size = static_cast<std::int64_t>(n.value.to_u64());
    expect(TokKind::r_paren, "to close extern arguments");
    e.name = expect(TokKind::identifier, "as extern instance name").text;
    expect(TokKind::semicolon, "after extern instance");
    return e;
}

ast::ActionDecl P4Parser::parse_action() {
    ast::ActionDecl a;
    a.loc = peek().loc;
    expect(TokKind::kw_action, "");
    a.name = expect(TokKind::identifier, "as action name").text;
    a.params = parse_params();
    expect(TokKind::l_brace, "to open action body");
    while (!check(TokKind::r_brace)) {
        a.body.push_back(parse_statement());
    }
    expect(TokKind::r_brace, "to close action body");
    return a;
}

ast::TableDecl P4Parser::parse_table() {
    ast::TableDecl t;
    t.loc = peek().loc;
    expect(TokKind::kw_table, "");
    t.name = expect(TokKind::identifier, "as table name").text;
    expect(TokKind::l_brace, "to open table");
    while (!accept(TokKind::r_brace)) {
        if (accept(TokKind::kw_key)) {
            expect(TokKind::assign, "after 'key'");
            expect(TokKind::l_brace, "to open key list");
            while (!accept(TokKind::r_brace)) {
                ast::KeyElement k;
                k.loc = peek().loc;
                k.expr = parse_expr();
                expect(TokKind::colon, "before match kind");
                k.match_kind = expect(TokKind::identifier, "as match kind").text;
                expect(TokKind::semicolon, "after key element");
                t.keys.push_back(std::move(k));
            }
        } else if (accept(TokKind::kw_actions)) {
            expect(TokKind::assign, "after 'actions'");
            expect(TokKind::l_brace, "to open action list");
            while (!accept(TokKind::r_brace)) {
                ast::ActionRef r;
                r.loc = peek().loc;
                r.name = expect(TokKind::identifier, "as action name").text;
                expect(TokKind::semicolon, "after action reference");
                t.actions.push_back(std::move(r));
            }
        } else if (accept(TokKind::kw_default_action)) {
            expect(TokKind::assign, "after 'default_action'");
            ast::ActionRef r;
            r.loc = peek().loc;
            r.name = expect(TokKind::identifier, "as default action").text;
            if (accept(TokKind::l_paren)) {
                if (!check(TokKind::r_paren)) {
                    do {
                        r.args.push_back(parse_expr());
                    } while (accept(TokKind::comma));
                }
                expect(TokKind::r_paren, "to close default action arguments");
            }
            expect(TokKind::semicolon, "after default_action");
            t.default_action = std::move(r);
        } else if (accept(TokKind::kw_size)) {
            expect(TokKind::assign, "after 'size'");
            const Token& n = expect(TokKind::number, "as table size");
            t.size = static_cast<std::int64_t>(n.value.to_u64());
            expect(TokKind::semicolon, "after size");
        } else {
            fail("expected a table property (key/actions/default_action/size)");
        }
    }
    return t;
}

void P4Parser::parse_control_decl(ast::Program& prog) {
    ast::ControlDecl c;
    c.loc = peek().loc;
    expect(TokKind::kw_control, "");
    c.name = expect(TokKind::identifier, "as control name").text;
    c.params = parse_params();
    expect(TokKind::l_brace, "to open control body");
    while (!check(TokKind::kw_apply)) {
        switch (peek().kind) {
            case TokKind::kw_action:
                c.actions.push_back(parse_action());
                break;
            case TokKind::kw_table:
                c.tables.push_back(parse_table());
                break;
            case TokKind::kw_register:
            case TokKind::kw_counter:
            case TokKind::kw_meter:
                c.externs.push_back(parse_extern_instance());
                break;
            default:
                fail("expected action/table/extern declaration or 'apply'");
        }
    }
    expect(TokKind::kw_apply, "");
    expect(TokKind::l_brace, "to open apply block");
    while (!check(TokKind::r_brace)) {
        c.apply_body.push_back(parse_statement());
    }
    expect(TokKind::r_brace, "to close apply block");
    expect(TokKind::r_brace, "to close control");
    prog.controls.push_back(std::move(c));
}

void P4Parser::parse_package_inst(ast::Program& prog) {
    ast::PackageInst pkg;
    pkg.loc = peek().loc;
    pkg.package_name = expect(TokKind::identifier, "as package name").text;
    expect(TokKind::l_paren, "to open package arguments");
    if (!check(TokKind::r_paren)) {
        do {
            pkg.args.push_back(expect(TokKind::identifier, "as package argument").text);
            expect(TokKind::l_paren, "after package argument");
            expect(TokKind::r_paren, "after package argument");
        } while (accept(TokKind::comma));
    }
    expect(TokKind::r_paren, "to close package arguments");
    expect(TokKind::kw_main, "as package instance name");
    expect(TokKind::semicolon, "after package instantiation");
    if (prog.package) {
        diags_.error(pkg.loc, "duplicate package instantiation");
    }
    prog.package = std::move(pkg);
}

// --- statements ---------------------------------------------------------------

ast::StmtPtr P4Parser::parse_block() {
    auto s = make_stmt(ast::Stmt::Kind::block, peek().loc);
    expect(TokKind::l_brace, "to open block");
    while (!check(TokKind::r_brace)) {
        s->body.push_back(parse_statement());
    }
    expect(TokKind::r_brace, "to close block");
    return s;
}

ast::StmtPtr P4Parser::parse_statement() {
    const util::SourceLoc loc = peek().loc;
    switch (peek().kind) {
        case TokKind::l_brace:
            return parse_block();
        case TokKind::kw_if: {
            advance();
            auto s = make_stmt(ast::Stmt::Kind::if_stmt, loc);
            expect(TokKind::l_paren, "after 'if'");
            s->cond = parse_expr();
            expect(TokKind::r_paren, "to close if condition");
            s->then_branch = parse_statement();
            if (accept(TokKind::kw_else)) {
                s->else_branch = parse_statement();
            }
            return s;
        }
        case TokKind::kw_exit: {
            advance();
            expect(TokKind::semicolon, "after 'exit'");
            return make_stmt(ast::Stmt::Kind::exit, loc);
        }
        case TokKind::kw_return: {
            advance();
            expect(TokKind::semicolon, "after 'return'");
            return make_stmt(ast::Stmt::Kind::ret, loc);
        }
        case TokKind::kw_bit:
        case TokKind::kw_bool: {
            auto s = make_stmt(ast::Stmt::Kind::var_decl, loc);
            s->var_type = parse_type();
            s->var_name = expect(TokKind::identifier, "as variable name").text;
            if (accept(TokKind::assign)) {
                s->var_init = parse_expr();
            }
            expect(TokKind::semicolon, "after variable declaration");
            return s;
        }
        default:
            break;
    }
    // Named-type variable declaration: `TypeName varName [= expr];`
    if (check(TokKind::identifier) && peek(1).kind == TokKind::identifier) {
        auto s = make_stmt(ast::Stmt::Kind::var_decl, loc);
        s->var_type = parse_type();
        s->var_name = expect(TokKind::identifier, "as variable name").text;
        if (accept(TokKind::assign)) {
            s->var_init = parse_expr();
        }
        expect(TokKind::semicolon, "after variable declaration");
        return s;
    }
    // Assignment or call statement.
    auto e = parse_postfix();
    if (accept(TokKind::assign)) {
        auto s = make_stmt(ast::Stmt::Kind::assign, loc);
        s->lhs = std::move(e);
        s->rhs = parse_expr();
        expect(TokKind::semicolon, "after assignment");
        return s;
    }
    if (e->kind != ast::Expr::Kind::call) {
        diags_.error(loc, "expected assignment or call statement");
        throw Bail{};
    }
    auto s = make_stmt(ast::Stmt::Kind::call, loc);
    s->call = std::move(e);
    expect(TokKind::semicolon, "after call");
    return s;
}

// --- expressions ----------------------------------------------------------------

ast::ExprPtr P4Parser::parse_expr() { return parse_ternary(); }

ast::ExprPtr P4Parser::parse_ternary() {
    auto cond = parse_binary(0);
    if (!accept(TokKind::question)) return cond;
    auto e = make_expr(ast::Expr::Kind::ternary, cond->loc);
    e->cond = std::move(cond);
    e->lhs = parse_expr();
    expect(TokKind::colon, "in conditional expression");
    e->rhs = parse_expr();
    return e;
}

ast::ExprPtr P4Parser::parse_binary(int min_prec) {
    auto lhs = parse_unary();
    for (;;) {
        const int prec = precedence(peek().kind);
        if (prec < 0 || prec < min_prec) return lhs;
        const TokKind op = advance().kind;
        auto rhs = parse_binary(prec + 1);
        auto e = make_expr(ast::Expr::Kind::binary, lhs->loc);
        e->bin = bin_op_for(op);
        e->lhs = std::move(lhs);
        e->rhs = std::move(rhs);
        lhs = std::move(e);
    }
}

ast::ExprPtr P4Parser::parse_unary() {
    const util::SourceLoc loc = peek().loc;
    if (accept(TokKind::minus)) {
        auto e = make_expr(ast::Expr::Kind::unary, loc);
        e->un = ast::UnOp::neg;
        e->lhs = parse_unary();
        return e;
    }
    if (accept(TokKind::tilde)) {
        auto e = make_expr(ast::Expr::Kind::unary, loc);
        e->un = ast::UnOp::bnot;
        e->lhs = parse_unary();
        return e;
    }
    if (accept(TokKind::bang)) {
        auto e = make_expr(ast::Expr::Kind::unary, loc);
        e->un = ast::UnOp::lnot;
        e->lhs = parse_unary();
        return e;
    }
    // Cast: '(' (bit<N> | bool | TypeName ')' followed by a unary expression.
    if (check(TokKind::l_paren) &&
        (peek(1).kind == TokKind::kw_bit || peek(1).kind == TokKind::kw_bool)) {
        advance();
        auto e = make_expr(ast::Expr::Kind::cast, loc);
        e->cast_type = parse_type();
        expect(TokKind::r_paren, "to close cast");
        e->lhs = parse_unary();
        return e;
    }
    return parse_postfix();
}

ast::ExprPtr P4Parser::parse_postfix() {
    auto e = parse_primary();
    for (;;) {
        if (accept(TokKind::dot)) {
            auto m = make_expr(ast::Expr::Kind::member, e->loc);
            // Allow `apply` as a member name: `t.apply()`.
            if (check(TokKind::kw_apply)) {
                advance();
                m->name = "apply";
            } else {
                m->name = expect(TokKind::identifier, "as member name").text;
            }
            m->base = std::move(e);
            e = std::move(m);
        } else if (accept(TokKind::l_bracket)) {
            auto s = make_expr(ast::Expr::Kind::slice, e->loc);
            s->base = std::move(e);
            s->hi = parse_expr();
            expect(TokKind::colon, "in slice");
            s->lo = parse_expr();
            expect(TokKind::r_bracket, "to close slice");
            e = std::move(s);
        } else if (check(TokKind::l_paren)) {
            advance();
            auto c = make_expr(ast::Expr::Kind::call, e->loc);
            c->callee = std::move(e);
            if (!check(TokKind::r_paren)) {
                do {
                    c->args.push_back(parse_expr());
                } while (accept(TokKind::comma));
            }
            expect(TokKind::r_paren, "to close call");
            e = std::move(c);
        } else {
            return e;
        }
    }
}

ast::ExprPtr P4Parser::parse_primary() {
    const util::SourceLoc loc = peek().loc;
    if (check(TokKind::number)) {
        const Token& t = advance();
        auto e = make_expr(ast::Expr::Kind::number, loc);
        e->value = t.value;
        e->declared_width = t.width;
        return e;
    }
    if (accept(TokKind::kw_true)) {
        auto e = make_expr(ast::Expr::Kind::boolean, loc);
        e->bvalue = true;
        return e;
    }
    if (accept(TokKind::kw_false)) {
        auto e = make_expr(ast::Expr::Kind::boolean, loc);
        e->bvalue = false;
        return e;
    }
    if (check(TokKind::identifier)) {
        auto e = make_expr(ast::Expr::Kind::name, loc);
        e->name = advance().text;
        return e;
    }
    if (accept(TokKind::l_paren)) {
        auto e = parse_expr();
        expect(TokKind::r_paren, "to close parenthesized expression");
        return e;
    }
    fail("expected an expression");
}

ast::Program parse_source(std::string_view source, util::DiagEngine& diags) {
    Lexer lexer(source, diags);
    P4Parser parser(lexer.run(), diags);
    return parser.parse_program();
}

}  // namespace ndb::p4
