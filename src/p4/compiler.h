// Semantic analysis and lowering from AST to IR.
//
// The compiler resolves names, checks types and widths, enforces the
// architecture contract (NdpSwitch package, parameter roles) and produces
// the flat ir::Program every backend consumes.  All semantic errors are
// reported through the DiagEngine; compile_or_throw wraps them in a
// CompileError for callers that want exception flow.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "p4/ast.h"
#include "p4/ir.h"
#include "util/diag.h"

namespace ndb::p4 {

struct CompileResult {
    std::unique_ptr<ir::Program> program;  // null when !ok
    bool ok = false;
};

// Lowers a parsed program.  Diagnostics (including parse diagnostics from
// earlier phases) accumulate in `diags`.
CompileResult compile(const ast::Program& prog, std::string name,
                      util::DiagEngine& diags);

// Lex + parse + compile; throws util::CompileError with the full diagnostic
// report when anything fails.
std::unique_ptr<ir::Program> compile_source(std::string_view source,
                                            std::string name);

// As compile_source but returns diagnostics instead of throwing.
CompileResult try_compile_source(std::string_view source, std::string name,
                                 util::DiagEngine& diags);

}  // namespace ndb::p4
