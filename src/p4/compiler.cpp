#include "p4/compiler.h"

#include <map>
#include <optional>
#include <unordered_map>

#include "p4/parser.h"

namespace ndb::p4 {

namespace {

using util::Bitvec;
using util::DiagEngine;
using util::SourceLoc;

// Role a parser/control parameter plays in the NdpSwitch architecture.
enum class Role { packet_in, packet_out, headers, usermeta, stdmeta };

struct LocalVar {
    int index = 0;
    int width = 0;
};

struct ParamVar {
    int index = 0;
    int width = 0;
};

// Lowering context for one parser/control/action body.
struct Scope {
    std::map<std::string, Role> roles;          // parameter name -> role
    std::map<std::string, LocalVar> locals;     // var decls in this body
    std::map<std::string, ParamVar> params;     // action data parameters
    std::vector<int>* local_widths = nullptr;   // slot table of the owner
    bool in_parser = false;
    bool in_action = false;
    bool in_deparser = false;
};

struct ConstVal {
    Bitvec value;
    bool sized = false;  // false: came from an unsized literal (width fluid)
};

class Compiler {
public:
    Compiler(const ast::Program& prog, std::string name, DiagEngine& diags)
        : src_(prog), diags_(diags) {
        out_ = std::make_unique<ir::Program>();
        out_->name = std::move(name);
    }

    CompileResult run();

private:
    [[noreturn]] void fatal(SourceLoc loc, const std::string& msg) {
        diags_.error(loc, msg);
        throw Abort{};
    }
    void error(SourceLoc loc, const std::string& msg) { diags_.error(loc, msg); }

    struct Abort {};

    // --- declaration collection ---
    void collect_types();
    int resolve_width(const ast::TypeRef& type);  // bit width of a value type
    void build_headers(const ast::ParserDecl& parser);
    void add_std_metadata();
    void collect_externs_and_actions();

    // --- const evaluation ---
    ConstVal const_eval(const ast::Expr& e, int expected_width);

    // --- expression lowering ---
    ir::ExprPtr lower_expr(const ast::Expr& e, Scope& scope, int expected_width);
    ir::ExprPtr lower_bool(const ast::Expr& e, Scope& scope);
    std::pair<ir::ExprPtr, ir::ExprPtr> lower_pair(const ast::Expr& lhs,
                                                   const ast::Expr& rhs,
                                                   Scope& scope);
    // Resolves hdr.x / meta.f / smeta.f member chains to a FieldRef; returns
    // nullopt when `e` is not a field path.
    std::optional<ir::FieldRef> resolve_field(const ast::Expr& e, Scope& scope);
    // Resolves `hdr.x` to a header instance index, if it is one.
    int resolve_header(const ast::Expr& e, Scope& scope);

    // --- statement lowering ---
    void lower_stmt(const ast::Stmt& s, Scope& scope, std::vector<ir::StmtPtr>& out);
    void lower_call(const ast::Expr& call, Scope& scope, std::vector<ir::StmtPtr>& out);

    // --- top-level pieces ---
    void lower_parser(const ast::ParserDecl& parser);
    void lower_actions_of(const ast::ControlDecl& control);
    void lower_tables_of(const ast::ControlDecl& control);
    void lower_control(const ast::ControlDecl& control, ir::Control& out_control);
    void lower_deparser(const ast::ControlDecl& control);

    Scope make_scope(const std::vector<ast::Param>& params, bool in_parser,
                     bool in_deparser);

    const ast::ControlDecl* find_control(const std::string& name, SourceLoc loc);
    const ast::ParserDecl* find_parser(const std::string& name, SourceLoc loc);

    const ast::Program& src_;
    DiagEngine& diags_;
    std::unique_ptr<ir::Program> out_;

    std::map<std::string, int> typedef_widths_;
    std::map<std::string, ConstVal> consts_;
    std::map<std::string, const ast::HeaderDecl*> header_types_;
    std::map<std::string, const ast::StructDecl*> struct_types_;
    std::map<std::string, int> action_ids_;
    std::map<std::string, int> extern_ids_;
    std::map<std::string, int> table_ids_;
    std::map<std::string, int> state_ids_;
    std::string headers_struct_name_;
    std::string usermeta_struct_name_;
};

int Compiler::resolve_width(const ast::TypeRef& type) {
    switch (type.kind) {
        case ast::TypeRef::Kind::bits:
            return type.width;
        case ast::TypeRef::Kind::boolean:
            return 1;
        case ast::TypeRef::Kind::named: {
            const auto it = typedef_widths_.find(type.name);
            if (it == typedef_widths_.end()) {
                fatal(type.loc, "unknown type '" + type.name + "' (expected a bit<N> type)");
            }
            return it->second;
        }
    }
    return 1;
}

void Compiler::collect_types() {
    for (const auto& t : src_.typedefs) {
        if (typedef_widths_.count(t.name)) {
            error(t.loc, "duplicate typedef '" + t.name + "'");
            continue;
        }
        typedef_widths_[t.name] = resolve_width(t.type);
    }
    for (const auto& h : src_.headers) {
        if (header_types_.count(h.name)) {
            error(h.loc, "duplicate header type '" + h.name + "'");
            continue;
        }
        header_types_[h.name] = &h;
    }
    for (const auto& s : src_.structs) {
        if (struct_types_.count(s.name)) {
            error(s.loc, "duplicate struct type '" + s.name + "'");
            continue;
        }
        struct_types_[s.name] = &s;
    }
    for (const auto& c : src_.consts) {
        const int w = resolve_width(c.type);
        ConstVal v = const_eval(*c.value, w);
        v.value = v.value.resize(w);
        v.sized = true;
        if (consts_.count(c.name)) {
            error(c.loc, "duplicate constant '" + c.name + "'");
            continue;
        }
        consts_[c.name] = std::move(v);
    }
}

ConstVal Compiler::const_eval(const ast::Expr& e, int expected_width) {
    switch (e.kind) {
        case ast::Expr::Kind::number: {
            if (e.declared_width > 0) {
                return {e.value, true};
            }
            if (expected_width > 0) {
                const Bitvec v = e.value.resize(expected_width);
                if (!v.resize(64).eq(e.value)) {
                    error(e.loc, "literal does not fit in " +
                                     std::to_string(expected_width) + " bits");
                }
                return {v, true};
            }
            return {e.value, false};
        }
        case ast::Expr::Kind::boolean:
            return {Bitvec(1, e.bvalue ? 1 : 0), true};
        case ast::Expr::Kind::name: {
            const auto it = consts_.find(e.name);
            if (it == consts_.end()) {
                fatal(e.loc, "'" + e.name + "' is not a compile-time constant");
            }
            return it->second;
        }
        case ast::Expr::Kind::cast: {
            const int w = resolve_width(e.cast_type);
            ConstVal v = const_eval(*e.lhs, w);
            return {v.value.resize(w), true};
        }
        case ast::Expr::Kind::unary: {
            ConstVal v = const_eval(*e.lhs, expected_width);
            if (e.un == ast::UnOp::bnot) return {v.value.bnot(), v.sized};
            if (e.un == ast::UnOp::neg) return {v.value.neg(), v.sized};
            fatal(e.loc, "operator not allowed in constant expression");
        }
        case ast::Expr::Kind::binary: {
            ConstVal a = const_eval(*e.lhs, expected_width);
            ConstVal b = const_eval(*e.rhs, a.sized ? a.value.width() : expected_width);
            const int w = std::max(a.value.width(), b.value.width());
            const Bitvec av = a.value.resize(w);
            const Bitvec bv = b.value.resize(w);
            const bool sized = a.sized || b.sized;
            switch (e.bin) {
                case ast::BinOp::add: return {av.add(bv), sized};
                case ast::BinOp::sub: return {av.sub(bv), sized};
                case ast::BinOp::mul: return {av.mul(bv), sized};
                case ast::BinOp::band: return {av.band(bv), sized};
                case ast::BinOp::bor: return {av.bor(bv), sized};
                case ast::BinOp::bxor: return {av.bxor(bv), sized};
                case ast::BinOp::shl: return {av.shl(static_cast<int>(bv.to_u64())), sized};
                case ast::BinOp::shr: return {av.lshr(static_cast<int>(bv.to_u64())), sized};
                default:
                    fatal(e.loc, "operator not allowed in constant expression");
            }
        }
        default:
            fatal(e.loc, "expression is not a compile-time constant");
    }
}

void Compiler::add_std_metadata() {
    ir::Header std_meta;
    std_meta.name = "standard_metadata";
    std_meta.type_name = "standard_metadata_t";
    std_meta.is_metadata = true;
    const std::pair<const char*, int> fields[] = {
        {"ingress_port", 9},     {"egress_spec", 9},
        {"egress_port", 9},      {"packet_length", 32},
        {"ingress_global_timestamp", 48},
    };
    int offset = 0;
    for (const auto& [fname, fwidth] : fields) {
        std_meta.fields.push_back({fname, fwidth, offset});
        offset += fwidth;
    }
    std_meta.size_bits = offset;
    out_->stdmeta = static_cast<int>(out_->headers.size());
    out_->headers.push_back(std::move(std_meta));
    const int h = out_->stdmeta;
    out_->f_ingress_port = {h, 0};
    out_->f_egress_spec = {h, 1};
    out_->f_egress_port = {h, 2};
    out_->f_packet_length = {h, 3};
    out_->f_timestamp = {h, 4};
}

void Compiler::build_headers(const ast::ParserDecl& parser) {
    // The parser's `out` struct parameter defines the header instances; the
    // `inout` user-struct parameter (not standard_metadata_t) defines the
    // user metadata.
    for (const auto& p : parser.params) {
        if (p.type.kind != ast::TypeRef::Kind::named) continue;
        if (p.type.name == "packet_in" || p.type.name == "standard_metadata_t") continue;
        const auto it = struct_types_.find(p.type.name);
        if (it == struct_types_.end()) {
            fatal(p.loc, "unknown struct type '" + p.type.name + "' in parser signature");
        }
        const ast::StructDecl& st = *it->second;
        const bool is_headers = p.dir == ast::ParamDir::out;
        if (is_headers) {
            headers_struct_name_ = st.name;
            for (const auto& f : st.fields) {
                if (f.type.kind != ast::TypeRef::Kind::named ||
                    !header_types_.count(f.type.name)) {
                    fatal(f.loc, "headers struct field '" + f.name +
                                     "' must have a header type");
                }
                const ast::HeaderDecl& hd = *header_types_[f.type.name];
                ir::Header h;
                h.name = f.name;
                h.type_name = hd.name;
                int offset = 0;
                for (const auto& hf : hd.fields) {
                    const int w = resolve_width(hf.type);
                    h.fields.push_back({hf.name, w, offset});
                    offset += w;
                }
                h.size_bits = offset;
                if (out_->header_index(h.name) >= 0) {
                    error(f.loc, "duplicate header instance '" + h.name + "'");
                }
                out_->headers.push_back(std::move(h));
            }
        } else {
            usermeta_struct_name_ = st.name;
            ir::Header h;
            h.name = "meta";
            h.type_name = st.name;
            h.is_metadata = true;
            int offset = 0;
            for (const auto& f : st.fields) {
                const int w = resolve_width(f.type);
                h.fields.push_back({f.name, w, offset});
                offset += w;
            }
            h.size_bits = offset;
            out_->usermeta = static_cast<int>(out_->headers.size());
            out_->headers.push_back(std::move(h));
        }
    }
}

void Compiler::collect_externs_and_actions() {
    // Builtin NoAction is always action 0.
    ir::Action no_action;
    no_action.name = "NoAction";
    no_action.id = 0;
    action_ids_["NoAction"] = 0;
    out_->actions.push_back(std::move(no_action));

    for (const auto& control : src_.controls) {
        for (const auto& e : control.externs) {
            if (extern_ids_.count(e.name)) {
                error(e.loc, "duplicate extern instance '" + e.name + "'");
                continue;
            }
            ir::ExternDecl d;
            d.name = e.name;
            d.id = static_cast<int>(out_->externs.size());
            d.array_size = e.array_size;
            switch (e.kind) {
                case ast::ExternInstance::Kind::reg:
                    d.kind = ir::ExternDecl::Kind::reg;
                    d.elem_width = resolve_width(e.elem_type);
                    break;
                case ast::ExternInstance::Kind::counter:
                    d.kind = ir::ExternDecl::Kind::counter;
                    d.elem_width = 64;
                    break;
                case ast::ExternInstance::Kind::meter:
                    d.kind = ir::ExternDecl::Kind::meter;
                    d.elem_width = 2;
                    break;
            }
            if (d.array_size <= 0 || d.array_size > (1 << 24)) {
                error(e.loc, "extern array size out of range");
                d.array_size = 1;
            }
            extern_ids_[e.name] = d.id;
            out_->externs.push_back(std::move(d));
        }
        for (const auto& a : control.actions) {
            if (action_ids_.count(a.name)) {
                error(a.loc, "duplicate action '" + a.name +
                                 "' (action names are global in this architecture)");
                continue;
            }
            ir::Action act;
            act.name = a.name;
            act.id = static_cast<int>(out_->actions.size());
            for (const auto& p : a.params) {
                act.param_widths.push_back(resolve_width(p.type));
            }
            action_ids_[a.name] = act.id;
            out_->actions.push_back(std::move(act));
        }
    }
}

Scope Compiler::make_scope(const std::vector<ast::Param>& params, bool in_parser,
                           bool in_deparser) {
    Scope scope;
    scope.in_parser = in_parser;
    scope.in_deparser = in_deparser;
    for (const auto& p : params) {
        if (p.type.kind == ast::TypeRef::Kind::named) {
            if (p.type.name == "packet_in") {
                scope.roles[p.name] = Role::packet_in;
                continue;
            }
            if (p.type.name == "packet_out") {
                scope.roles[p.name] = Role::packet_out;
                continue;
            }
            if (p.type.name == "standard_metadata_t") {
                scope.roles[p.name] = Role::stdmeta;
                continue;
            }
            if (p.type.name == headers_struct_name_) {
                scope.roles[p.name] = Role::headers;
                continue;
            }
            if (p.type.name == usermeta_struct_name_) {
                scope.roles[p.name] = Role::usermeta;
                continue;
            }
        }
        fatal(p.loc, "parameter '" + p.name +
                         "' does not match the NdpSwitch architecture signature");
    }
    return scope;
}

std::optional<ir::FieldRef> Compiler::resolve_field(const ast::Expr& e, Scope& scope) {
    if (e.kind != ast::Expr::Kind::member) return std::nullopt;
    const ast::Expr& base = *e.base;
    // meta.f / smeta.f: one-level member on a struct-role parameter.
    if (base.kind == ast::Expr::Kind::name) {
        const auto role = scope.roles.find(base.name);
        if (role == scope.roles.end()) return std::nullopt;
        if (role->second == Role::usermeta) {
            if (out_->usermeta < 0) return std::nullopt;
            const int f = out_->headers[static_cast<std::size_t>(out_->usermeta)]
                              .field_index(e.name);
            if (f < 0) {
                fatal(e.loc, "metadata has no field '" + e.name + "'");
            }
            return ir::FieldRef{out_->usermeta, f};
        }
        if (role->second == Role::stdmeta) {
            const int f = out_->headers[static_cast<std::size_t>(out_->stdmeta)]
                              .field_index(e.name);
            if (f < 0) {
                fatal(e.loc, "standard_metadata has no field '" + e.name + "'");
            }
            return ir::FieldRef{out_->stdmeta, f};
        }
        return std::nullopt;
    }
    // hdr.instance.field: two-level member through the headers role.
    if (base.kind == ast::Expr::Kind::member &&
        base.base->kind == ast::Expr::Kind::name) {
        const auto role = scope.roles.find(base.base->name);
        if (role == scope.roles.end() || role->second != Role::headers) {
            return std::nullopt;
        }
        const int h = out_->header_index(base.name);
        if (h < 0) {
            fatal(base.loc, "no header instance '" + base.name + "'");
        }
        const int f = out_->headers[static_cast<std::size_t>(h)].field_index(e.name);
        if (f < 0) {
            fatal(e.loc, "header '" + base.name + "' has no field '" + e.name + "'");
        }
        return ir::FieldRef{h, f};
    }
    return std::nullopt;
}

int Compiler::resolve_header(const ast::Expr& e, Scope& scope) {
    if (e.kind != ast::Expr::Kind::member) return -1;
    if (e.base->kind != ast::Expr::Kind::name) return -1;
    const auto role = scope.roles.find(e.base->name);
    if (role == scope.roles.end() || role->second != Role::headers) return -1;
    return out_->header_index(e.name);
}

ir::ExprPtr Compiler::lower_bool(const ast::Expr& e, Scope& scope) {
    auto r = lower_expr(e, scope, -1);
    if (!r->is_bool) {
        fatal(e.loc, "expected a boolean expression");
    }
    return r;
}

std::pair<ir::ExprPtr, ir::ExprPtr> Compiler::lower_pair(const ast::Expr& lhs,
                                                         const ast::Expr& rhs,
                                                         Scope& scope) {
    // Width inference: try the side that is not an unsized literal first.
    const bool lhs_unsized =
        lhs.kind == ast::Expr::Kind::number && lhs.declared_width <= 0;
    if (lhs_unsized) {
        auto r = lower_expr(rhs, scope, -1);
        auto l = lower_expr(lhs, scope, r->width);
        return {std::move(l), std::move(r)};
    }
    auto l = lower_expr(lhs, scope, -1);
    auto r = lower_expr(rhs, scope, l->width);
    return {std::move(l), std::move(r)};
}

ir::ExprPtr Compiler::lower_expr(const ast::Expr& e, Scope& scope, int expected_width) {
    auto out = std::make_unique<ir::Expr>();
    switch (e.kind) {
        case ast::Expr::Kind::number: {
            ConstVal v = const_eval(e, expected_width);
            if (!v.sized) {
                fatal(e.loc, "cannot infer width of literal; add a width prefix (e.g. 8w1)");
            }
            out->kind = ir::Expr::Kind::constant;
            out->cvalue = v.value;
            out->width = v.value.width();
            return out;
        }
        case ast::Expr::Kind::boolean: {
            out->kind = ir::Expr::Kind::constant;
            out->cvalue = Bitvec(1, e.bvalue ? 1 : 0);
            out->width = 1;
            out->is_bool = true;
            return out;
        }
        case ast::Expr::Kind::name: {
            if (const auto it = scope.locals.find(e.name); it != scope.locals.end()) {
                out->kind = ir::Expr::Kind::local;
                out->index = it->second.index;
                out->width = it->second.width;
                return out;
            }
            if (const auto it = scope.params.find(e.name); it != scope.params.end()) {
                out->kind = ir::Expr::Kind::param;
                out->index = it->second.index;
                out->width = it->second.width;
                return out;
            }
            if (const auto it = consts_.find(e.name); it != consts_.end()) {
                out->kind = ir::Expr::Kind::constant;
                out->cvalue = it->second.value;
                out->width = it->second.value.width();
                return out;
            }
            fatal(e.loc, "unknown name '" + e.name + "'");
        }
        case ast::Expr::Kind::member: {
            if (auto fref = resolve_field(e, scope)) {
                out->kind = ir::Expr::Kind::field;
                out->fref = *fref;
                out->width = out_->field(*fref).width;
                return out;
            }
            fatal(e.loc, "cannot resolve '" + e.to_string() + "' to a field");
        }
        case ast::Expr::Kind::slice: {
            auto base = lower_expr(*e.base, scope, -1);
            const ConstVal hi = const_eval(*e.hi, 32);
            const ConstVal lo = const_eval(*e.lo, 32);
            const int hi_i = static_cast<int>(hi.value.to_u64());
            const int lo_i = static_cast<int>(lo.value.to_u64());
            if (lo_i < 0 || hi_i < lo_i || hi_i >= base->width) {
                fatal(e.loc, "slice bounds out of range");
            }
            out->kind = ir::Expr::Kind::slice;
            out->hi = hi_i;
            out->lo = lo_i;
            out->width = hi_i - lo_i + 1;
            out->a = std::move(base);
            return out;
        }
        case ast::Expr::Kind::unary: {
            if (e.un == ast::UnOp::lnot) {
                out->kind = ir::Expr::Kind::unary;
                out->un = e.un;
                out->a = lower_bool(*e.lhs, scope);
                out->width = 1;
                out->is_bool = true;
                return out;
            }
            auto a = lower_expr(*e.lhs, scope, expected_width);
            out->kind = ir::Expr::Kind::unary;
            out->un = e.un;
            out->width = a->width;
            out->a = std::move(a);
            return out;
        }
        case ast::Expr::Kind::binary: {
            switch (e.bin) {
                case ast::BinOp::land:
                case ast::BinOp::lor: {
                    out->kind = ir::Expr::Kind::binary;
                    out->bin = e.bin;
                    out->a = lower_bool(*e.lhs, scope);
                    out->b = lower_bool(*e.rhs, scope);
                    out->width = 1;
                    out->is_bool = true;
                    return out;
                }
                case ast::BinOp::eq:
                case ast::BinOp::ne:
                case ast::BinOp::lt:
                case ast::BinOp::le:
                case ast::BinOp::gt:
                case ast::BinOp::ge: {
                    auto [l, r] = lower_pair(*e.lhs, *e.rhs, scope);
                    if (l->width != r->width) {
                        fatal(e.loc, "comparison width mismatch: " +
                                         std::to_string(l->width) + " vs " +
                                         std::to_string(r->width));
                    }
                    out->kind = ir::Expr::Kind::binary;
                    out->bin = e.bin;
                    out->a = std::move(l);
                    out->b = std::move(r);
                    out->width = 1;
                    out->is_bool = true;
                    return out;
                }
                case ast::BinOp::concat: {
                    auto l = lower_expr(*e.lhs, scope, -1);
                    auto r = lower_expr(*e.rhs, scope, -1);
                    out->kind = ir::Expr::Kind::binary;
                    out->bin = e.bin;
                    out->width = l->width + r->width;
                    out->a = std::move(l);
                    out->b = std::move(r);
                    return out;
                }
                case ast::BinOp::shl:
                case ast::BinOp::shr: {
                    auto l = lower_expr(*e.lhs, scope, expected_width);
                    auto r = lower_expr(*e.rhs, scope, 32);
                    out->kind = ir::Expr::Kind::binary;
                    out->bin = e.bin;
                    out->width = l->width;
                    out->a = std::move(l);
                    out->b = std::move(r);
                    return out;
                }
                default: {
                    auto [l, r] = lower_pair(*e.lhs, *e.rhs, scope);
                    if (l->width != r->width) {
                        fatal(e.loc, "operand width mismatch: " +
                                         std::to_string(l->width) + " vs " +
                                         std::to_string(r->width));
                    }
                    out->kind = ir::Expr::Kind::binary;
                    out->bin = e.bin;
                    out->width = l->width;
                    out->a = std::move(l);
                    out->b = std::move(r);
                    return out;
                }
            }
        }
        case ast::Expr::Kind::ternary: {
            out->kind = ir::Expr::Kind::ternary;
            out->c = lower_bool(*e.cond, scope);
            auto [l, r] = lower_pair(*e.lhs, *e.rhs, scope);
            if (l->width != r->width) {
                fatal(e.loc, "conditional branches have different widths");
            }
            out->width = l->width;
            out->is_bool = l->is_bool && r->is_bool;
            out->a = std::move(l);
            out->b = std::move(r);
            return out;
        }
        case ast::Expr::Kind::cast: {
            const int w = resolve_width(e.cast_type);
            auto a = lower_expr(*e.lhs, scope, w);
            out->kind = ir::Expr::Kind::cast;
            out->width = w;
            out->is_bool = e.cast_type.kind == ast::TypeRef::Kind::boolean;
            out->a = std::move(a);
            return out;
        }
        case ast::Expr::Kind::call: {
            // Only hdr.x.isValid() is an expression-position builtin.
            const ast::Expr& callee = *e.callee;
            if (callee.kind == ast::Expr::Kind::member && callee.name == "isValid" &&
                e.args.empty()) {
                const int h = resolve_header(*callee.base, scope);
                if (h < 0) {
                    fatal(e.loc, "isValid() receiver is not a header instance");
                }
                out->kind = ir::Expr::Kind::is_valid;
                out->fref = {h, 0};
                out->width = 1;
                out->is_bool = true;
                return out;
            }
            fatal(e.loc, "call '" + e.to_string() + "' is not valid in an expression");
        }
    }
    fatal(e.loc, "unsupported expression");
}

void Compiler::lower_call(const ast::Expr& call, Scope& scope,
                          std::vector<ir::StmtPtr>& out) {
    const ast::Expr& callee = *call.callee;
    auto stmt = std::make_unique<ir::Stmt>();

    // --- global builtin functions: name(...) ---
    if (callee.kind == ast::Expr::Kind::name) {
        if (callee.name == "mark_to_drop") {
            // Accept mark_to_drop(smeta) or mark_to_drop().
            stmt->kind = ir::Stmt::Kind::extern_op;
            stmt->ext = ir::ExternKind::mark_to_drop;
            out.push_back(std::move(stmt));
            return;
        }
        if (callee.name == "hash") {
            if (call.args.size() < 2) {
                fatal(call.loc, "hash(dst, inputs...) needs a destination and inputs");
            }
            const auto dst = resolve_field(*call.args[0], scope);
            if (!dst) fatal(call.args[0]->loc, "hash destination must be a field");
            stmt->kind = ir::Stmt::Kind::extern_op;
            stmt->ext = ir::ExternKind::hash;
            stmt->ext_dst = *dst;
            for (std::size_t i = 1; i < call.args.size(); ++i) {
                stmt->hash_inputs.push_back(lower_expr(*call.args[i], scope, -1));
            }
            out.push_back(std::move(stmt));
            return;
        }
        if (callee.name == "ipv4_checksum_update") {
            if (call.args.size() != 2) {
                fatal(call.loc,
                      "ipv4_checksum_update(header, checksum_field) takes 2 arguments");
            }
            const int h = resolve_header(*call.args[0], scope);
            if (h < 0) fatal(call.args[0]->loc, "first argument must be a header");
            const auto f = resolve_field(*call.args[1], scope);
            if (!f || f->header != h) {
                fatal(call.args[1]->loc,
                      "second argument must be a checksum field of that header");
            }
            stmt->kind = ir::Stmt::Kind::extern_op;
            stmt->ext = ir::ExternKind::checksum_update;
            stmt->hash_header = h;
            stmt->checksum_field = f->field;
            out.push_back(std::move(stmt));
            return;
        }
        // Direct action invocation.
        if (const auto it = action_ids_.find(callee.name); it != action_ids_.end()) {
            if (scope.in_parser || scope.in_deparser) {
                fatal(call.loc, "actions cannot be invoked here");
            }
            const ir::Action& act = out_->actions[static_cast<std::size_t>(it->second)];
            if (call.args.size() != act.param_widths.size()) {
                fatal(call.loc, "action '" + callee.name + "' expects " +
                                    std::to_string(act.param_widths.size()) +
                                    " arguments");
            }
            stmt->kind = ir::Stmt::Kind::call_action;
            stmt->action = it->second;
            for (std::size_t i = 0; i < call.args.size(); ++i) {
                stmt->action_args.push_back(
                    lower_expr(*call.args[i], scope, act.param_widths[i]));
            }
            out.push_back(std::move(stmt));
            return;
        }
        fatal(call.loc, "unknown function '" + callee.name + "'");
    }

    // --- member builtins: recv.obj(...) ---
    if (callee.kind != ast::Expr::Kind::member) {
        fatal(call.loc, "expected a call statement");
    }
    const ast::Expr& base = *callee.base;
    const std::string& method = callee.name;

    // packet_in / packet_out methods.
    if (base.kind == ast::Expr::Kind::name) {
        const auto role = scope.roles.find(base.name);
        if (role != scope.roles.end() && role->second == Role::packet_in) {
            if (!scope.in_parser) fatal(call.loc, "packet_in is only usable in the parser");
            fatal(call.loc, "packet method handled by parser lowering");  // unreachable
        }
        if (role != scope.roles.end() && role->second == Role::packet_out) {
            fatal(call.loc, "packet_out is only usable in the deparser");
        }
        // Table or extern instance methods.
        if (const auto it = table_ids_.find(base.name); it != table_ids_.end()) {
            if (method != "apply" || !call.args.empty()) {
                fatal(call.loc, "tables only support .apply()");
            }
            if (scope.in_parser || scope.in_action || scope.in_deparser) {
                fatal(call.loc, "table apply is only allowed in a control apply block");
            }
            stmt->kind = ir::Stmt::Kind::apply_table;
            stmt->table = it->second;
            out.push_back(std::move(stmt));
            return;
        }
        if (const auto it = extern_ids_.find(base.name); it != extern_ids_.end()) {
            const ir::ExternDecl& decl = out_->externs[static_cast<std::size_t>(it->second)];
            stmt->kind = ir::Stmt::Kind::extern_op;
            stmt->extern_id = it->second;
            if (decl.kind == ir::ExternDecl::Kind::reg && method == "read") {
                if (call.args.size() != 2) fatal(call.loc, "register.read(dst, index)");
                const auto dst = resolve_field(*call.args[0], scope);
                if (!dst) fatal(call.loc, "register.read destination must be a field");
                stmt->ext = ir::ExternKind::register_read;
                stmt->ext_dst = *dst;
                stmt->index_expr = lower_expr(*call.args[1], scope, 32);
            } else if (decl.kind == ir::ExternDecl::Kind::reg && method == "write") {
                if (call.args.size() != 2) fatal(call.loc, "register.write(index, value)");
                stmt->ext = ir::ExternKind::register_write;
                stmt->index_expr = lower_expr(*call.args[0], scope, 32);
                stmt->value = lower_expr(*call.args[1], scope, decl.elem_width);
                if (stmt->value->width != decl.elem_width) {
                    fatal(call.loc, "register value width mismatch");
                }
            } else if (decl.kind == ir::ExternDecl::Kind::counter && method == "count") {
                if (call.args.size() != 1) fatal(call.loc, "counter.count(index)");
                stmt->ext = ir::ExternKind::counter_count;
                stmt->index_expr = lower_expr(*call.args[0], scope, 32);
            } else if (decl.kind == ir::ExternDecl::Kind::meter && method == "execute") {
                if (call.args.size() != 2) fatal(call.loc, "meter.execute(index, dst)");
                stmt->ext = ir::ExternKind::meter_execute;
                stmt->index_expr = lower_expr(*call.args[0], scope, 32);
                const auto dst = resolve_field(*call.args[1], scope);
                if (!dst) fatal(call.loc, "meter.execute destination must be a field");
                stmt->ext_dst = *dst;
            } else {
                fatal(call.loc, "extern '" + base.name + "' has no method '" + method + "'");
            }
            out.push_back(std::move(stmt));
            return;
        }
    }

    // header.setValid() / setInvalid().
    const int h = resolve_header(base, scope);
    if (h >= 0 && (method == "setValid" || method == "setInvalid")) {
        if (!call.args.empty()) fatal(call.loc, method + "() takes no arguments");
        stmt->kind = ir::Stmt::Kind::set_valid;
        stmt->dst = {h, 0};
        stmt->make_valid = method == "setValid";
        out.push_back(std::move(stmt));
        return;
    }
    fatal(call.loc, "cannot resolve call '" + call.to_string() + "'");
}

void Compiler::lower_stmt(const ast::Stmt& s, Scope& scope,
                          std::vector<ir::StmtPtr>& out) {
    switch (s.kind) {
        case ast::Stmt::Kind::block: {
            // Locals declared inside nested blocks stay visible to the end of
            // the body; duplicate names are rejected, which keeps the slot
            // model simple without changing observable behaviour.
            for (const auto& st : s.body) lower_stmt(*st, scope, out);
            return;
        }
        case ast::Stmt::Kind::var_decl: {
            if (!scope.local_widths) {
                fatal(s.loc, "variable declarations are not allowed here");
            }
            if (scope.locals.count(s.var_name) || scope.params.count(s.var_name)) {
                fatal(s.loc, "duplicate variable '" + s.var_name + "'");
            }
            const int w = resolve_width(s.var_type);
            const int slot = static_cast<int>(scope.local_widths->size());
            scope.local_widths->push_back(w);
            scope.locals[s.var_name] = {slot, w};
            if (s.var_init) {
                auto stmt = std::make_unique<ir::Stmt>();
                stmt->kind = ir::Stmt::Kind::assign_local;
                stmt->local_index = slot;
                stmt->value = lower_expr(*s.var_init, scope, w);
                if (stmt->value->width != w) {
                    fatal(s.loc, "initializer width mismatch");
                }
                out.push_back(std::move(stmt));
            }
            return;
        }
        case ast::Stmt::Kind::assign: {
            const ast::Expr& lhs = *s.lhs;
            auto stmt = std::make_unique<ir::Stmt>();
            if (lhs.kind == ast::Expr::Kind::slice) {
                const auto fref = resolve_field(*lhs.base, scope);
                if (!fref) fatal(lhs.loc, "slice assignment target must be a field");
                const ConstVal hi = const_eval(*lhs.hi, 32);
                const ConstVal lo = const_eval(*lhs.lo, 32);
                const int hi_i = static_cast<int>(hi.value.to_u64());
                const int lo_i = static_cast<int>(lo.value.to_u64());
                const int fw = out_->field(*fref).width;
                if (lo_i < 0 || hi_i < lo_i || hi_i >= fw) {
                    fatal(lhs.loc, "slice bounds out of range");
                }
                stmt->kind = ir::Stmt::Kind::assign_slice;
                stmt->dst = *fref;
                stmt->hi = hi_i;
                stmt->lo = lo_i;
                stmt->value = lower_expr(*s.rhs, scope, hi_i - lo_i + 1);
                if (stmt->value->width != hi_i - lo_i + 1) {
                    fatal(s.loc, "slice assignment width mismatch");
                }
                out.push_back(std::move(stmt));
                return;
            }
            if (auto fref = resolve_field(lhs, scope)) {
                const int w = out_->field(*fref).width;
                stmt->kind = ir::Stmt::Kind::assign_field;
                stmt->dst = *fref;
                stmt->value = lower_expr(*s.rhs, scope, w);
                if (stmt->value->width != w) {
                    fatal(s.loc, "assignment width mismatch: field is " +
                                     std::to_string(w) + " bits, value is " +
                                     std::to_string(stmt->value->width));
                }
                out.push_back(std::move(stmt));
                return;
            }
            if (lhs.kind == ast::Expr::Kind::name) {
                const auto it = scope.locals.find(lhs.name);
                if (it != scope.locals.end()) {
                    stmt->kind = ir::Stmt::Kind::assign_local;
                    stmt->local_index = it->second.index;
                    stmt->value = lower_expr(*s.rhs, scope, it->second.width);
                    if (stmt->value->width != it->second.width) {
                        fatal(s.loc, "assignment width mismatch");
                    }
                    out.push_back(std::move(stmt));
                    return;
                }
                if (scope.params.count(lhs.name)) {
                    fatal(s.loc, "action parameters are read-only");
                }
            }
            fatal(s.loc, "cannot assign to '" + lhs.to_string() + "'");
        }
        case ast::Stmt::Kind::if_stmt: {
            auto stmt = std::make_unique<ir::Stmt>();
            stmt->kind = ir::Stmt::Kind::if_stmt;
            stmt->cond = lower_bool(*s.cond, scope);
            lower_stmt(*s.then_branch, scope, stmt->then_body);
            if (s.else_branch) {
                lower_stmt(*s.else_branch, scope, stmt->else_body);
            }
            out.push_back(std::move(stmt));
            return;
        }
        case ast::Stmt::Kind::call:
            lower_call(*s.call, scope, out);
            return;
        case ast::Stmt::Kind::exit: {
            auto stmt = std::make_unique<ir::Stmt>();
            stmt->kind = ir::Stmt::Kind::exit_pipeline;
            out.push_back(std::move(stmt));
            return;
        }
        case ast::Stmt::Kind::ret:
            fatal(s.loc, "'return' is not supported; use 'exit'");
        default:
            fatal(s.loc, "unsupported statement");
    }
}

void Compiler::lower_parser(const ast::ParserDecl& parser) {
    Scope scope = make_scope(parser.params, /*in_parser=*/true, /*in_deparser=*/false);

    // Assign state ids; `start` must exist.
    for (const auto& st : parser.states) {
        if (state_ids_.count(st.name)) {
            error(st.loc, "duplicate parser state '" + st.name + "'");
            continue;
        }
        state_ids_[st.name] = static_cast<int>(state_ids_.size());
    }
    const auto resolve_state = [&](const std::string& name, SourceLoc loc) -> int {
        if (name == "accept") return ir::kAccept;
        if (name == "reject") return ir::kReject;
        const auto it = state_ids_.find(name);
        if (it == state_ids_.end()) {
            fatal(loc, "unknown parser state '" + name + "'");
        }
        return it->second;
    };
    if (!state_ids_.count("start")) {
        fatal(parser.loc, "parser has no 'start' state");
    }
    out_->start_state = state_ids_["start"];

    out_->parser_states.resize(parser.states.size());
    for (const auto& st : parser.states) {
        ir::ParserState ir_state;
        ir_state.name = st.name;
        for (const auto& stmt : st.stmts) {
            if (stmt->kind == ast::Stmt::Kind::call) {
                const ast::Expr& call = *stmt->call;
                const ast::Expr& callee = *call.callee;
                if (callee.kind == ast::Expr::Kind::member &&
                    callee.base->kind == ast::Expr::Kind::name &&
                    scope.roles.count(callee.base->name) &&
                    scope.roles[callee.base->name] == Role::packet_in) {
                    ir::ParserOp op;
                    if (callee.name == "extract") {
                        if (call.args.size() != 1) {
                            fatal(call.loc, "extract takes one header argument");
                        }
                        const int h = resolve_header(*call.args[0], scope);
                        if (h < 0) {
                            fatal(call.loc, "extract argument must be a header instance");
                        }
                        op.kind = ir::ParserOp::Kind::extract;
                        op.header = h;
                    } else if (callee.name == "advance") {
                        if (call.args.size() != 1) {
                            fatal(call.loc, "advance takes a bit count");
                        }
                        op.kind = ir::ParserOp::Kind::advance;
                        op.bits = static_cast<int>(
                            const_eval(*call.args[0], 32).value.to_u64());
                    } else {
                        fatal(call.loc, "packet_in has no method '" + callee.name + "'");
                    }
                    ir_state.ops.push_back(std::move(op));
                    continue;
                }
                fatal(call.loc, "only packet extract/advance calls are allowed in parser states");
            }
            if (stmt->kind == ast::Stmt::Kind::assign) {
                const auto fref = resolve_field(*stmt->lhs, scope);
                if (!fref) {
                    fatal(stmt->loc, "parser assignments must target metadata fields");
                }
                ir::ParserOp op;
                op.kind = ir::ParserOp::Kind::assign;
                op.dst = *fref;
                op.value = lower_expr(*stmt->rhs, scope, out_->field(*fref).width);
                ir_state.ops.push_back(std::move(op));
                continue;
            }
            fatal(stmt->loc, "statement not allowed in a parser state");
        }
        // Transition.
        if (st.tkind == ast::ParserState::TransitionKind::direct) {
            ir_state.transition.kind = ir::Transition::Kind::direct;
            ir_state.transition.next_state = resolve_state(st.next_state, st.loc);
        } else {
            ir_state.transition.kind = ir::Transition::Kind::select;
            std::vector<int> key_widths;
            for (const auto& k : st.select_exprs) {
                auto e = lower_expr(*k, scope, -1);
                key_widths.push_back(e->width);
                ir_state.transition.keys.push_back(std::move(e));
            }
            for (const auto& c : st.cases) {
                if (c.keys.size() != key_widths.size()) {
                    fatal(c.loc, "select case arity mismatch");
                }
                ir::Transition::Case ir_case;
                for (std::size_t i = 0; i < c.keys.size(); ++i) {
                    ir::Keyset ks;
                    const int w = key_widths[i];
                    switch (c.keys[i].kind) {
                        case ast::Keyset::Kind::any:
                            ks.any = true;
                            break;
                        case ast::Keyset::Kind::value:
                            ks.value = const_eval(*c.keys[i].value, w).value.resize(w);
                            ks.mask = Bitvec::ones(w);
                            break;
                        case ast::Keyset::Kind::masked:
                            ks.value = const_eval(*c.keys[i].value, w).value.resize(w);
                            ks.mask = const_eval(*c.keys[i].mask, w).value.resize(w);
                            break;
                    }
                    ir_case.sets.push_back(std::move(ks));
                }
                ir_case.next_state = resolve_state(c.next_state, c.loc);
                ir_state.transition.cases.push_back(std::move(ir_case));
            }
        }
        out_->parser_states[static_cast<std::size_t>(state_ids_[st.name])] =
            std::move(ir_state);
    }
}

void Compiler::lower_actions_of(const ast::ControlDecl& control) {
    for (const auto& a : control.actions) {
        const auto it = action_ids_.find(a.name);
        if (it == action_ids_.end()) continue;  // duplicate reported earlier
        ir::Action& act = out_->actions[static_cast<std::size_t>(it->second)];
        if (!act.body.empty()) continue;
        Scope scope = make_scope(control.params, false, false);
        scope.in_action = true;
        scope.local_widths = &act.local_widths;
        for (std::size_t i = 0; i < a.params.size(); ++i) {
            scope.params[a.params[i].name] = {static_cast<int>(i),
                                              act.param_widths[i]};
        }
        for (const auto& s : a.body) {
            lower_stmt(*s, scope, act.body);
        }
    }
}

void Compiler::lower_tables_of(const ast::ControlDecl& control) {
    for (const auto& t : control.tables) {
        if (table_ids_.count(t.name)) {
            error(t.loc, "duplicate table '" + t.name + "'");
            continue;
        }
        ir::Table table;
        table.name = t.name;
        table.id = static_cast<int>(out_->tables.size());
        table.size = t.size;
        Scope scope = make_scope(control.params, false, false);
        int lpm_count = 0;
        for (const auto& k : t.keys) {
            ir::TableKey key;
            key.expr = lower_expr(*k.expr, scope, -1);
            key.width = key.expr->width;
            key.name = k.expr->to_string();
            if (k.match_kind == "exact") {
                key.kind = ir::MatchKind::exact;
            } else if (k.match_kind == "lpm") {
                key.kind = ir::MatchKind::lpm;
                ++lpm_count;
            } else if (k.match_kind == "ternary") {
                key.kind = ir::MatchKind::ternary;
            } else {
                error(k.loc, "unknown match kind '" + k.match_kind + "'");
                key.kind = ir::MatchKind::exact;
            }
            table.keys.push_back(std::move(key));
        }
        if (lpm_count > 0 && table.keys.size() != 1) {
            error(t.loc, "an lpm table must have exactly one key in this architecture");
        }
        if (lpm_count > 0 && table.has_ternary()) {
            error(t.loc, "lpm and ternary keys cannot be mixed");
        }
        for (const auto& ar : t.actions) {
            const auto it = action_ids_.find(ar.name);
            if (it == action_ids_.end()) {
                error(ar.loc, "table references unknown action '" + ar.name + "'");
                continue;
            }
            table.actions.push_back(it->second);
        }
        if (table.actions.empty()) {
            table.actions.push_back(0);  // NoAction
        }
        table.default_action = 0;
        if (t.default_action) {
            const auto it = action_ids_.find(t.default_action->name);
            if (it == action_ids_.end()) {
                error(t.default_action->loc, "unknown default action '" +
                                                 t.default_action->name + "'");
            } else {
                table.default_action = it->second;
                const ir::Action& act =
                    out_->actions[static_cast<std::size_t>(it->second)];
                if (t.default_action->args.size() != act.param_widths.size()) {
                    error(t.default_action->loc,
                          "default action argument count mismatch");
                } else {
                    for (std::size_t i = 0; i < act.param_widths.size(); ++i) {
                        table.default_args.push_back(
                            const_eval(*t.default_action->args[i], act.param_widths[i])
                                .value.resize(act.param_widths[i]));
                    }
                }
                bool listed = false;
                for (const int a : table.actions) listed |= a == it->second;
                if (!listed) table.actions.push_back(it->second);
            }
        }
        table_ids_[t.name] = table.id;
        out_->tables.push_back(std::move(table));
    }
}

void Compiler::lower_control(const ast::ControlDecl& control, ir::Control& out_control) {
    out_control.name = control.name;
    Scope scope = make_scope(control.params, false, false);
    scope.local_widths = &out_control.local_widths;
    for (const auto& s : control.apply_body) {
        lower_stmt(*s, scope, out_control.body);
    }
}

void Compiler::lower_deparser(const ast::ControlDecl& control) {
    Scope scope = make_scope(control.params, false, /*in_deparser=*/true);
    for (const auto& s : control.apply_body) {
        if (s->kind != ast::Stmt::Kind::call) {
            fatal(s->loc, "deparser apply block may only contain emit calls");
        }
        const ast::Expr& call = *s->call;
        const ast::Expr& callee = *call.callee;
        if (callee.kind != ast::Expr::Kind::member || callee.name != "emit" ||
            callee.base->kind != ast::Expr::Kind::name ||
            !scope.roles.count(callee.base->name) ||
            scope.roles[callee.base->name] != Role::packet_out) {
            fatal(call.loc, "deparser statements must be pkt.emit(header)");
        }
        if (call.args.size() != 1) fatal(call.loc, "emit takes one header");
        const int h = resolve_header(*call.args[0], scope);
        if (h < 0) fatal(call.loc, "emit argument must be a header instance");
        out_->deparse_order.push_back(h);
    }
}

const ast::ControlDecl* Compiler::find_control(const std::string& name, SourceLoc loc) {
    for (const auto& c : src_.controls) {
        if (c.name == name) return &c;
    }
    fatal(loc, "package references unknown control '" + name + "'");
}

const ast::ParserDecl* Compiler::find_parser(const std::string& name, SourceLoc loc) {
    for (const auto& p : src_.parsers) {
        if (p.name == name) return &p;
    }
    fatal(loc, "package references unknown parser '" + name + "'");
}

CompileResult Compiler::run() {
    try {
        collect_types();

        if (!src_.package) {
            fatal({}, "program has no package instantiation "
                      "(expected NdpSwitch(Parser(), Ingress(), [Egress(),] Deparser()) main;)");
        }
        const ast::PackageInst& pkg = *src_.package;
        if (pkg.package_name != "NdpSwitch") {
            error(pkg.loc, "unknown package '" + pkg.package_name +
                               "'; expected NdpSwitch");
        }
        if (pkg.args.size() != 3 && pkg.args.size() != 4) {
            fatal(pkg.loc, "NdpSwitch takes (parser, ingress, [egress,] deparser)");
        }
        const ast::ParserDecl* parser = find_parser(pkg.args[0], pkg.loc);
        const ast::ControlDecl* ingress = find_control(pkg.args[1], pkg.loc);
        const ast::ControlDecl* egress =
            pkg.args.size() == 4 ? find_control(pkg.args[2], pkg.loc) : nullptr;
        const ast::ControlDecl* deparser = find_control(pkg.args.back(), pkg.loc);

        add_std_metadata();
        build_headers(*parser);
        collect_externs_and_actions();
        lower_parser(*parser);

        // Tables/actions of both match-action controls must be lowered before
        // their apply bodies so direct calls and applies resolve.
        lower_actions_of(*ingress);
        lower_tables_of(*ingress);
        if (egress) {
            lower_actions_of(*egress);
            lower_tables_of(*egress);
        }
        lower_control(*ingress, out_->ingress);
        if (egress) {
            ir::Control e;
            lower_control(*egress, e);
            out_->egress = std::move(e);
        }
        lower_deparser(*deparser);
    } catch (const Abort&) {
        // fatal() already recorded the diagnostic.
    }

    CompileResult result;
    result.ok = !diags_.has_errors();
    if (result.ok) result.program = std::move(out_);
    return result;
}

}  // namespace

CompileResult compile(const ast::Program& prog, std::string name,
                      util::DiagEngine& diags) {
    Compiler c(prog, std::move(name), diags);
    return c.run();
}

CompileResult try_compile_source(std::string_view source, std::string name,
                                 util::DiagEngine& diags) {
    ast::Program prog = parse_source(source, diags);
    if (diags.has_errors()) {
        return {};
    }
    return compile(prog, std::move(name), diags);
}

std::unique_ptr<ir::Program> compile_source(std::string_view source, std::string name) {
    util::DiagEngine diags;
    CompileResult result = try_compile_source(source, std::move(name), diags);
    if (!result.ok) {
        throw util::CompileError(diags.report());
    }
    return std::move(result.program);
}

}  // namespace ndb::p4
