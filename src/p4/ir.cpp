#include "p4/ir.h"

#include <stdexcept>

#include "util/strings.h"

namespace ndb::p4::ir {

int Header::field_index(std::string_view field_name) const {
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (fields[i].name == field_name) return static_cast<int>(i);
    }
    return -1;
}

// --- expressions ---------------------------------------------------------------

ExprPtr Expr::clone() const {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->width = width;
    e->is_bool = is_bool;
    e->cvalue = cvalue;
    e->fref = fref;
    e->index = index;
    e->un = un;
    e->bin = bin;
    e->hi = hi;
    e->lo = lo;
    if (a) e->a = a->clone();
    if (b) e->b = b->clone();
    if (c) e->c = c->clone();
    return e;
}

ExprPtr make_const(const Bitvec& value) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::constant;
    e->width = value.width();
    e->cvalue = value;
    return e;
}

ExprPtr make_field(FieldRef fref, int width) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::field;
    e->width = width;
    e->fref = fref;
    return e;
}

std::string Expr::to_string() const {
    switch (kind) {
        case Kind::constant: return cvalue.to_string();
        case Kind::field:
            return "f[" + std::to_string(fref.header) + "." + std::to_string(fref.field) + "]";
        case Kind::param: return "p" + std::to_string(index);
        case Kind::local: return "l" + std::to_string(index);
        case Kind::is_valid: return "valid(h" + std::to_string(fref.header) + ")";
        case Kind::unary:
            return std::string(ast::un_op_name(un)) + a->to_string();
        case Kind::binary:
            return "(" + a->to_string() + " " + ast::bin_op_name(bin) + " " + b->to_string() + ")";
        case Kind::ternary:
            return "(" + c->to_string() + " ? " + a->to_string() + " : " + b->to_string() + ")";
        case Kind::slice:
            return a->to_string() + "[" + std::to_string(hi) + ":" + std::to_string(lo) + "]";
        case Kind::cast:
            return "(bit<" + std::to_string(width) + ">)" + a->to_string();
    }
    return "?";
}

// --- statements ------------------------------------------------------------------

StmtPtr Stmt::clone() const {
    auto s = std::make_unique<Stmt>();
    s->kind = kind;
    s->dst = dst;
    s->local_index = local_index;
    s->hi = hi;
    s->lo = lo;
    if (value) s->value = value->clone();
    if (cond) s->cond = cond->clone();
    s->then_body = clone_body(then_body);
    s->else_body = clone_body(else_body);
    s->table = table;
    s->action = action;
    for (const auto& a : action_args) s->action_args.push_back(a->clone());
    s->make_valid = make_valid;
    s->ext = ext;
    s->extern_id = extern_id;
    if (index_expr) s->index_expr = index_expr->clone();
    s->ext_dst = ext_dst;
    for (const auto& h : hash_inputs) s->hash_inputs.push_back(h->clone());
    s->hash_header = hash_header;
    s->checksum_field = checksum_field;
    return s;
}

std::vector<StmtPtr> clone_body(const std::vector<StmtPtr>& body) {
    std::vector<StmtPtr> out;
    out.reserve(body.size());
    for (const auto& s : body) out.push_back(s->clone());
    return out;
}

std::string Stmt::to_string(int indent) const {
    const std::string pad(static_cast<std::size_t>(indent), ' ');
    switch (kind) {
        case Kind::assign_field:
            return pad + "f[" + std::to_string(dst.header) + "." + std::to_string(dst.field) +
                   "] = " + value->to_string() + "\n";
        case Kind::assign_local:
            return pad + "l" + std::to_string(local_index) + " = " + value->to_string() + "\n";
        case Kind::assign_slice:
            return pad + "f[" + std::to_string(dst.header) + "." + std::to_string(dst.field) +
                   "][" + std::to_string(hi) + ":" + std::to_string(lo) + "] = " +
                   value->to_string() + "\n";
        case Kind::if_stmt: {
            std::string s = pad + "if " + cond->to_string() + "\n";
            for (const auto& st : then_body) s += st->to_string(indent + 2);
            if (!else_body.empty()) {
                s += pad + "else\n";
                for (const auto& st : else_body) s += st->to_string(indent + 2);
            }
            return s;
        }
        case Kind::apply_table:
            return pad + "apply t" + std::to_string(table) + "\n";
        case Kind::call_action:
            return pad + "call a" + std::to_string(action) + "\n";
        case Kind::set_valid:
            return pad + (make_valid ? "setValid h" : "setInvalid h") +
                   std::to_string(dst.header) + "\n";
        case Kind::extern_op:
            return pad + "extern op " + std::to_string(static_cast<int>(ext)) + "\n";
        case Kind::exit_pipeline:
            return pad + "exit\n";
    }
    return pad + "?\n";
}

// --- parser -----------------------------------------------------------------------

ParserOp ParserOp::clone() const {
    ParserOp op;
    op.kind = kind;
    op.header = header;
    op.bits = bits;
    op.dst = dst;
    if (value) op.value = value->clone();
    return op;
}

Transition Transition::clone() const {
    Transition t;
    t.kind = kind;
    t.next_state = next_state;
    for (const auto& k : keys) t.keys.push_back(k->clone());
    t.cases = cases;
    return t;
}

ParserState ParserState::clone() const {
    ParserState s;
    s.name = name;
    for (const auto& op : ops) s.ops.push_back(op.clone());
    s.transition = transition.clone();
    return s;
}

// --- tables -----------------------------------------------------------------------

const char* match_kind_name(MatchKind kind) {
    switch (kind) {
        case MatchKind::exact: return "exact";
        case MatchKind::lpm: return "lpm";
        case MatchKind::ternary: return "ternary";
    }
    return "?";
}

int Table::total_key_width() const {
    int w = 0;
    for (const auto& k : keys) w += k.width;
    return w;
}

bool Table::has_lpm() const {
    for (const auto& k : keys) {
        if (k.kind == MatchKind::lpm) return true;
    }
    return false;
}

bool Table::has_ternary() const {
    for (const auto& k : keys) {
        if (k.kind == MatchKind::ternary) return true;
    }
    return false;
}

// --- program ----------------------------------------------------------------------

int Program::header_index(std::string_view instance_name) const {
    for (std::size_t i = 0; i < headers.size(); ++i) {
        if (headers[i].name == instance_name) return static_cast<int>(i);
    }
    return -1;
}

FieldRef Program::field_ref(std::string_view header, std::string_view field) const {
    const int h = header_index(header);
    if (h < 0) return {};
    const int f = headers[static_cast<std::size_t>(h)].field_index(field);
    if (f < 0) return {};
    return {h, f};
}

const Field& Program::field(FieldRef ref) const {
    if (!ref.valid()) throw std::out_of_range("Program::field: invalid ref");
    return headers.at(static_cast<std::size_t>(ref.header))
        .fields.at(static_cast<std::size_t>(ref.field));
}

std::string Program::field_name(FieldRef ref) const {
    if (!ref.valid()) return "<none>";
    const auto& h = headers.at(static_cast<std::size_t>(ref.header));
    return h.name + "." + h.fields.at(static_cast<std::size_t>(ref.field)).name;
}

const Table* Program::table_by_name(std::string_view table_name) const {
    for (const auto& t : tables) {
        if (t.name == table_name) return &t;
    }
    return nullptr;
}

const Action* Program::action_by_name(std::string_view action_name) const {
    for (const auto& a : actions) {
        if (a.name == action_name) return &a;
    }
    return nullptr;
}

const ExternDecl* Program::extern_by_name(std::string_view extern_name) const {
    for (const auto& e : externs) {
        if (e.name == extern_name) return &e;
    }
    return nullptr;
}

Program Program::clone() const {
    Program p;
    p.name = name;
    p.headers = headers;
    p.stdmeta = stdmeta;
    p.usermeta = usermeta;
    for (const auto& s : parser_states) p.parser_states.push_back(s.clone());
    p.start_state = start_state;
    for (const auto& a : actions) {
        Action na;
        na.name = a.name;
        na.id = a.id;
        na.param_widths = a.param_widths;
        na.local_widths = a.local_widths;
        na.body = clone_body(a.body);
        p.actions.push_back(std::move(na));
    }
    for (const auto& t : tables) {
        Table nt;
        nt.name = t.name;
        nt.id = t.id;
        for (const auto& k : t.keys) {
            TableKey nk;
            nk.expr = k.expr->clone();
            nk.kind = k.kind;
            nk.width = k.width;
            nk.name = k.name;
            nt.keys.push_back(std::move(nk));
        }
        nt.actions = t.actions;
        nt.default_action = t.default_action;
        nt.default_args = t.default_args;
        nt.size = t.size;
        p.tables.push_back(std::move(nt));
    }
    p.externs = externs;
    p.ingress.name = ingress.name;
    p.ingress.local_widths = ingress.local_widths;
    p.ingress.body = clone_body(ingress.body);
    if (egress) {
        Control e;
        e.name = egress->name;
        e.local_widths = egress->local_widths;
        e.body = clone_body(egress->body);
        p.egress = std::move(e);
    }
    p.deparse_order = deparse_order;
    p.f_ingress_port = f_ingress_port;
    p.f_egress_spec = f_egress_spec;
    p.f_egress_port = f_egress_port;
    p.f_packet_length = f_packet_length;
    p.f_timestamp = f_timestamp;
    return p;
}

std::string Program::to_string() const {
    std::string s = "program " + name + "\n";
    for (const auto& h : headers) {
        s += util::format("  header %s (%s, %d bits)%s\n", h.name.c_str(),
                          h.type_name.c_str(), h.size_bits,
                          h.is_metadata ? " [meta]" : "");
    }
    s += util::format("  parser: %zu states (start=%d)\n", parser_states.size(),
                      start_state);
    for (const auto& st : parser_states) {
        s += "    state " + st.name + "\n";
    }
    for (const auto& t : tables) {
        s += util::format("  table %s: %d-bit key, %zu actions, size %lld\n",
                          t.name.c_str(), t.total_key_width(), t.actions.size(),
                          static_cast<long long>(t.size));
    }
    for (const auto& a : actions) {
        s += "  action " + a.name + "\n";
    }
    s += util::format("  ingress: %zu stmts\n", ingress.body.size());
    if (egress) s += util::format("  egress: %zu stmts\n", egress->body.size());
    s += util::format("  deparse: %zu headers\n", deparse_order.size());
    return s;
}

namespace {

void collect_branches(const std::vector<StmtPtr>& body,
                      std::unordered_map<const Stmt*, std::uint32_t>& ids) {
    for (const auto& s : body) {
        if (s->kind != Stmt::Kind::if_stmt) continue;
        const auto ordinal = static_cast<std::uint32_t>(ids.size());
        ids.emplace(s.get(), ordinal);
        collect_branches(s->then_body, ids);
        collect_branches(s->else_body, ids);
    }
}

}  // namespace

std::unordered_map<const Stmt*, std::uint32_t> number_branches(const Program& prog) {
    std::unordered_map<const Stmt*, std::uint32_t> ids;
    collect_branches(prog.ingress.body, ids);
    if (prog.egress) collect_branches(prog.egress->body, ids);
    for (const auto& action : prog.actions) {
        collect_branches(action.body, ids);
    }
    return ids;
}

}  // namespace ndb::p4::ir
