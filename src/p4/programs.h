// Built-in sample P4 programs.
//
// These are the data planes the repository's experiments run: the paper's
// Section-4 reject-filter scenario, plus the programs backing each use-case
// in Figure 2 (functional, performance, compiler check, architecture check,
// resources, status monitoring, comparison).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ndb::p4::programs {

// Forwards every packet to port 1; smallest possible pipeline (quickstart).
std::string_view passthrough();

// L2 switch: exact match on destination MAC -> egress port, default drop.
std::string_view l2_switch();

// IPv4 router: LPM on dstAddr, MAC rewrite, TTL decrement, checksum update.
std::string_view ipv4_router();

// The paper's Section-4 scenario: the parser REJECTS every non-IPv4 packet;
// ingress forwards everything that parses.  Program semantics: non-IPv4 is
// never forwarded.  A target that does not implement the reject state
// forwards such packets anyway -- the bug NetDebug catches and software
// formal verification cannot.
std::string_view reject_filter();

// ACL firewall: parser rejects non-TCP/UDP; ternary ACL with default deny.
std::string_view acl_firewall();

// Tunnel encap/decap: setValid/setInvalid, multi-path parser.
std::string_view tunnel();

// MPLS-like label stack, 8 levels deep: probes target parser-depth limits
// (architecture check use-case).
std::string_view deep_parser();

// Per-port registers + counters: status-monitoring use-case.
std::string_view stats_monitor();

// Meter-based policer: uses an extern the vendor backend cannot compile
// (compiler check use-case).
std::string_view metered_policer();

// Two alternative specifications of the same TTL-decrementing forwarder
// (comparison use-case): variant B computes ttl-1 as ttl+255.
std::string_view variant_a();
std::string_view variant_b();

// Wide-key, large tables: resource-quantification use-case.
std::string_view wide_match();

// Rewrites a header field with a right shift of itself: output bytes depend
// on shift direction, so a shift-miscompiling backend diverges observably.
std::string_view shift_mangler();

// Copies an uninitialized user-metadata field into the output: faithful
// targets emit zeros, targets that skip metadata zeroing emit garbage.
std::string_view meta_echo();

// --- Stateful network functions (per-flow state at production flow counts).
// All four age or key per-flow register state, so they expose the
// state-quirk family (stale_entry, expiry_off_by_one,
// hash_collision_misdirect) that stateless catalogue entries cannot.

// Source NAT: static mappings via table, dynamic mappings via a
// hash-indexed register pair (translation key + last-seen stamp) with a
// 64us idle timeout.  Collisions on an unexpired foreign entry drop.
std::string_view nat_gateway();

// Stateful firewall: outbound packets (per an internal-hosts table) open a
// flow entry; inbound packets pass only while a matching entry is younger
// than 128us.  Flow key is srcAddr^dstAddr so both directions share a cell.
std::string_view flow_firewall();

// Maglev-style load balancer: exact-match VIP table, 5-tuple hash into a
// 64-bucket backend map populated by control-plane register writes, with a
// per-bucket hit counter.  Unpopulated buckets drop.
std::string_view maglev_lb();

// L2 learning bridge: learns srcAddr->ingress_port in hash-indexed
// registers, forwards on dstAddr lookup hit, floods (port 3) on miss.
std::string_view learning_bridge();

struct Sample {
    std::string name;
    std::string_view source;
};

// Every sample above, for sweep-style tests and benches.
std::vector<Sample> all_samples();

// Source of the sample named `name`; empty view when unknown.  Campaign
// scenario synthesis and corpus replay address the catalogue by name.
std::string_view sample_by_name(std::string_view name);

// Names of all catalogue entries, in all_samples() order.
std::vector<std::string> sample_names();

}  // namespace ndb::p4::programs
