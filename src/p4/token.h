// Token definitions for the P4-16 subset lexer.
#pragma once

#include <cstdint>
#include <string>

#include "util/bitvec.h"
#include "util/diag.h"

namespace ndb::p4 {

enum class TokKind {
    end_of_file,
    identifier,
    number,       // value in Token::value, optional width prefix in Token::width

    // keywords
    kw_header, kw_struct, kw_typedef, kw_const, kw_parser, kw_control,
    kw_state, kw_transition, kw_select, kw_default, kw_action, kw_table,
    kw_key, kw_actions, kw_size, kw_default_action, kw_apply, kw_if,
    kw_else, kw_exit, kw_return, kw_bit, kw_bool, kw_true, kw_false,
    kw_in, kw_out, kw_inout, kw_register, kw_counter, kw_meter, kw_main,

    // punctuation / operators
    l_brace, r_brace, l_paren, r_paren, l_bracket, r_bracket,
    l_angle, r_angle,             // < >
    semicolon, colon, comma, dot, assign,
    plus, minus, star, slash, percent,
    amp, pipe, caret, tilde, bang,
    amp_amp, pipe_pipe, eq_eq, bang_eq, le, ge, shl, shr,
    plus_plus,                    // ++ concatenation
    amp_amp_amp,                  // &&& ternary mask in keysets
    underscore,                   // _ wildcard keyset
    question,                     // ? :
};

const char* tok_kind_name(TokKind kind);

struct Token {
    TokKind kind = TokKind::end_of_file;
    std::string text;          // identifier spelling / raw literal text
    util::Bitvec value;        // numbers: the literal value (width 64 if unsized)
    int width = -1;            // numbers: explicit width from "8w255", -1 if unsized
    util::SourceLoc loc;
};

}  // namespace ndb::p4
