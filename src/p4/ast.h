// Abstract syntax tree for the P4-16 subset.
//
// The tree is produced by P4Parser and consumed by the compiler
// (semantic analysis + lowering to IR).  Nodes are plain structs owned
// through unique_ptr; the printer in ast.cpp regenerates source-like text
// for golden tests.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/bitvec.h"
#include "util/diag.h"

namespace ndb::p4::ast {

// --- types (syntactic) ------------------------------------------------------

struct TypeRef {
    enum class Kind { bits, boolean, named };
    Kind kind = Kind::bits;
    int width = 0;      // bits
    std::string name;   // named
    util::SourceLoc loc;

    std::string to_string() const;
};

// --- expressions ------------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class UnOp { neg, bnot, lnot };
enum class BinOp {
    add, sub, mul, band, bor, bxor, shl, shr,
    eq, ne, lt, le, gt, ge, land, lor, concat,
};

const char* un_op_name(UnOp op);
const char* bin_op_name(BinOp op);

struct Expr {
    enum class Kind {
        number,    // value/declared_width
        boolean,   // bvalue
        name,      // name
        member,    // base.name
        slice,     // base[hi:lo]
        unary,     // un, lhs
        binary,    // bin, lhs, rhs
        ternary,   // cond ? lhs : rhs
        call,      // callee(args)  -- callee is a name or member expr
        cast,      // (type) lhs
    };

    Kind kind = Kind::number;
    util::SourceLoc loc;

    util::Bitvec value;        // number
    int declared_width = -1;   // number: explicit "8w" width, -1 if unsized
    bool bvalue = false;       // boolean
    std::string name;          // name / member field name
    ExprPtr base;              // member, slice
    ExprPtr hi;                // slice bounds (constant expressions)
    ExprPtr lo;
    UnOp un = UnOp::neg;
    BinOp bin = BinOp::add;
    ExprPtr lhs;
    ExprPtr rhs;
    ExprPtr cond;              // ternary
    ExprPtr callee;            // call
    std::vector<ExprPtr> args;
    TypeRef cast_type;         // cast

    std::string to_string() const;
};

// --- statements ---------------------------------------------------------------

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
    enum class Kind { assign, if_stmt, block, call, exit, ret, var_decl };

    Kind kind = Kind::block;
    util::SourceLoc loc;

    ExprPtr lhs;                 // assign target
    ExprPtr rhs;                 // assign value
    ExprPtr cond;                // if
    StmtPtr then_branch;         // if
    StmtPtr else_branch;         // if (may be null)
    std::vector<StmtPtr> body;   // block
    ExprPtr call;                // call statement
    TypeRef var_type;            // var_decl
    std::string var_name;
    ExprPtr var_init;            // may be null

    std::string to_string(int indent = 0) const;
};

// --- declarations -------------------------------------------------------------

struct FieldDecl {
    TypeRef type;
    std::string name;
    util::SourceLoc loc;
};

struct HeaderDecl {
    std::string name;
    std::vector<FieldDecl> fields;
    util::SourceLoc loc;
};

struct StructDecl {
    std::string name;
    std::vector<FieldDecl> fields;
    util::SourceLoc loc;
};

struct TypedefDecl {
    TypeRef type;
    std::string name;
    util::SourceLoc loc;
};

struct ConstDecl {
    TypeRef type;
    std::string name;
    ExprPtr value;
    util::SourceLoc loc;
};

enum class ParamDir { none, in, out, inout };

struct Param {
    ParamDir dir = ParamDir::none;
    TypeRef type;   // named types include packet_in / packet_out
    std::string name;
    util::SourceLoc loc;
};

// Keyset entry in a select case: value, value &&& mask, or wildcard.
struct Keyset {
    enum class Kind { value, masked, any };
    Kind kind = Kind::value;
    ExprPtr value;
    ExprPtr mask;
    util::SourceLoc loc;
};

struct SelectCase {
    std::vector<Keyset> keys;   // one per select expression
    std::string next_state;
    util::SourceLoc loc;
};

struct ParserState {
    std::string name;
    std::vector<StmtPtr> stmts;

    enum class TransitionKind { direct, select };
    TransitionKind tkind = TransitionKind::direct;
    std::string next_state;               // direct (includes accept/reject)
    std::vector<ExprPtr> select_exprs;    // select
    std::vector<SelectCase> cases;
    util::SourceLoc loc;
};

struct ParserDecl {
    std::string name;
    std::vector<Param> params;
    std::vector<ParserState> states;
    util::SourceLoc loc;
};

struct ActionDecl {
    std::string name;
    std::vector<Param> params;   // action data (directionless)
    std::vector<StmtPtr> body;
    util::SourceLoc loc;
};

struct KeyElement {
    ExprPtr expr;
    std::string match_kind;   // "exact" | "lpm" | "ternary"
    util::SourceLoc loc;
};

struct ActionRef {
    std::string name;
    std::vector<ExprPtr> args;
    util::SourceLoc loc;
};

struct TableDecl {
    std::string name;
    std::vector<KeyElement> keys;
    std::vector<ActionRef> actions;
    std::optional<ActionRef> default_action;
    std::int64_t size = 1024;
    util::SourceLoc loc;
};

struct ExternInstance {
    enum class Kind { reg, counter, meter };
    Kind kind = Kind::reg;
    TypeRef elem_type;     // register<T>: element type; unused otherwise
    std::int64_t array_size = 0;
    std::string name;
    util::SourceLoc loc;
};

struct ControlDecl {
    std::string name;
    std::vector<Param> params;
    std::vector<ActionDecl> actions;
    std::vector<TableDecl> tables;
    std::vector<ExternInstance> externs;
    std::vector<StmtPtr> apply_body;
    util::SourceLoc loc;
};

// NdpSwitch(MyParser(), MyIngress(), MyEgress(), MyDeparser()) main;
struct PackageInst {
    std::string package_name;
    std::vector<std::string> args;
    util::SourceLoc loc;
};

struct Program {
    std::vector<HeaderDecl> headers;
    std::vector<StructDecl> structs;
    std::vector<TypedefDecl> typedefs;
    std::vector<ConstDecl> consts;
    std::vector<ParserDecl> parsers;
    std::vector<ControlDecl> controls;
    std::optional<PackageInst> package;

    std::string to_string() const;
};

}  // namespace ndb::p4::ast
