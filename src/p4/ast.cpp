#include "p4/ast.h"

namespace ndb::p4::ast {

const char* un_op_name(UnOp op) {
    switch (op) {
        case UnOp::neg: return "-";
        case UnOp::bnot: return "~";
        case UnOp::lnot: return "!";
    }
    return "?";
}

const char* bin_op_name(BinOp op) {
    switch (op) {
        case BinOp::add: return "+";
        case BinOp::sub: return "-";
        case BinOp::mul: return "*";
        case BinOp::band: return "&";
        case BinOp::bor: return "|";
        case BinOp::bxor: return "^";
        case BinOp::shl: return "<<";
        case BinOp::shr: return ">>";
        case BinOp::eq: return "==";
        case BinOp::ne: return "!=";
        case BinOp::lt: return "<";
        case BinOp::le: return "<=";
        case BinOp::gt: return ">";
        case BinOp::ge: return ">=";
        case BinOp::land: return "&&";
        case BinOp::lor: return "||";
        case BinOp::concat: return "++";
    }
    return "?";
}

std::string TypeRef::to_string() const {
    switch (kind) {
        case Kind::bits: return "bit<" + std::to_string(width) + ">";
        case Kind::boolean: return "bool";
        case Kind::named: return name;
    }
    return "?";
}

std::string Expr::to_string() const {
    switch (kind) {
        case Kind::number:
            if (declared_width > 0) {
                return std::to_string(declared_width) + "w" + value.to_hex();
            }
            return std::to_string(value.to_u64());
        case Kind::boolean:
            return bvalue ? "true" : "false";
        case Kind::name:
            return name;
        case Kind::member:
            return base->to_string() + "." + name;
        case Kind::slice:
            return base->to_string() + "[" + hi->to_string() + ":" + lo->to_string() + "]";
        case Kind::unary:
            return std::string(un_op_name(un)) + "(" + lhs->to_string() + ")";
        case Kind::binary:
            return "(" + lhs->to_string() + " " + bin_op_name(bin) + " " +
                   rhs->to_string() + ")";
        case Kind::ternary:
            return "(" + cond->to_string() + " ? " + lhs->to_string() + " : " +
                   rhs->to_string() + ")";
        case Kind::call: {
            std::string s = callee->to_string() + "(";
            for (std::size_t i = 0; i < args.size(); ++i) {
                if (i) s += ", ";
                s += args[i]->to_string();
            }
            return s + ")";
        }
        case Kind::cast:
            return "(" + cast_type.to_string() + ")(" + lhs->to_string() + ")";
    }
    return "?";
}

namespace {
std::string spaces(int n) { return std::string(static_cast<std::size_t>(n), ' '); }
}  // namespace

std::string Stmt::to_string(int indent) const {
    const std::string pad = spaces(indent);
    switch (kind) {
        case Kind::assign:
            return pad + lhs->to_string() + " = " + rhs->to_string() + ";\n";
        case Kind::if_stmt: {
            std::string s = pad + "if (" + cond->to_string() + ")\n";
            s += then_branch->to_string(indent + 2);
            if (else_branch) {
                s += pad + "else\n" + else_branch->to_string(indent + 2);
            }
            return s;
        }
        case Kind::block: {
            std::string s = pad + "{\n";
            for (const auto& st : body) s += st->to_string(indent + 2);
            return s + pad + "}\n";
        }
        case Kind::call:
            return pad + call->to_string() + ";\n";
        case Kind::exit:
            return pad + "exit;\n";
        case Kind::ret:
            return pad + "return;\n";
        case Kind::var_decl: {
            std::string s = pad + var_type.to_string() + " " + var_name;
            if (var_init) s += " = " + var_init->to_string();
            return s + ";\n";
        }
    }
    return pad + "?;\n";
}

std::string Program::to_string() const {
    std::string s;
    for (const auto& t : typedefs) {
        s += "typedef " + t.type.to_string() + " " + t.name + ";\n";
    }
    for (const auto& c : consts) {
        s += "const " + c.type.to_string() + " " + c.name + " = " +
             c.value->to_string() + ";\n";
    }
    for (const auto& h : headers) {
        s += "header " + h.name + " {\n";
        for (const auto& f : h.fields) {
            s += "  " + f.type.to_string() + " " + f.name + ";\n";
        }
        s += "}\n";
    }
    for (const auto& st : structs) {
        s += "struct " + st.name + " {\n";
        for (const auto& f : st.fields) {
            s += "  " + f.type.to_string() + " " + f.name + ";\n";
        }
        s += "}\n";
    }
    for (const auto& p : parsers) {
        s += "parser " + p.name + " { " + std::to_string(p.states.size()) + " states }\n";
    }
    for (const auto& c : controls) {
        s += "control " + c.name + " { " + std::to_string(c.tables.size()) +
             " tables, " + std::to_string(c.actions.size()) + " actions }\n";
    }
    if (package) {
        s += package->package_name + "(...) main;\n";
    }
    return s;
}

}  // namespace ndb::p4::ast
