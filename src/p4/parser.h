// Recursive-descent parser for the P4-16 subset.
#pragma once

#include <string_view>
#include <vector>

#include "p4/ast.h"
#include "p4/token.h"
#include "util/diag.h"

namespace ndb::p4 {

class P4Parser {
public:
    P4Parser(std::vector<Token> tokens, util::DiagEngine& diags);

    // Parses the full token stream.  Parse errors are recorded in the
    // DiagEngine; the returned program contains everything that parsed.
    ast::Program parse_program();

private:
    struct Bail {};  // thrown to unwind to the nearest declaration boundary

    const Token& peek(int ahead = 0) const;
    const Token& advance();
    bool check(TokKind kind) const { return peek().kind == kind; }
    bool accept(TokKind kind);
    const Token& expect(TokKind kind, const char* what);
    // Consumes '>' even when the lexer glued two of them into '>>'
    // (register<bit<48>> needs this, as in C++).
    void expect_close_angle(const char* what);
    [[noreturn]] void fail(const char* message);
    void sync_to_decl();

    ast::TypeRef parse_type();
    ast::FieldDecl parse_field();
    void parse_header(ast::Program& prog);
    void parse_struct(ast::Program& prog);
    void parse_typedef(ast::Program& prog);
    void parse_const(ast::Program& prog);
    void parse_parser_decl(ast::Program& prog);
    void parse_control_decl(ast::Program& prog);
    void parse_package_inst(ast::Program& prog);
    ast::ExternInstance parse_extern_instance();

    std::vector<ast::Param> parse_params();
    ast::ParserState parse_parser_state();
    ast::Keyset parse_keyset();

    ast::ActionDecl parse_action();
    ast::TableDecl parse_table();

    ast::StmtPtr parse_statement();
    ast::StmtPtr parse_block();

    ast::ExprPtr parse_expr();
    ast::ExprPtr parse_ternary();
    ast::ExprPtr parse_binary(int min_prec);
    ast::ExprPtr parse_unary();
    ast::ExprPtr parse_postfix();
    ast::ExprPtr parse_primary();

    std::vector<Token> tokens_;
    std::size_t pos_ = 0;
    util::DiagEngine& diags_;
};

// Convenience: lex + parse.
ast::Program parse_source(std::string_view source, util::DiagEngine& diags);

}  // namespace ndb::p4
