// Intermediate representation produced by the compiler.
//
// The IR is the contract between the P4 frontend and every backend in the
// repository: the reference interpreter executes it, the vendor backend
// lowers (and possibly mis-lowers) it to a device image, the symbolic
// executor analyses it, and the resource model costs it.  All names and
// widths are resolved; expressions are typed; header instances are flat.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "p4/ast.h"
#include "util/bitvec.h"

namespace ndb::p4::ir {

using util::Bitvec;

// --- headers & fields -------------------------------------------------------

struct Field {
    std::string name;
    int width = 0;    // bits
    int offset = 0;   // bit offset from the start of the header
};

struct Header {
    std::string name;        // instance name as seen by the program (e.g. "ethernet")
    std::string type_name;   // declared header type
    std::vector<Field> fields;
    int size_bits = 0;
    bool is_metadata = false;  // metadata is always valid and never deparsed

    int field_index(std::string_view field_name) const;
};

// (header index, field index) pair; (-1,-1) means "none".
struct FieldRef {
    int header = -1;
    int field = -1;

    bool valid() const { return header >= 0 && field >= 0; }
    friend bool operator==(const FieldRef&, const FieldRef&) = default;
};

// --- expressions --------------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
    enum class Kind {
        constant,   // cvalue
        field,      // fref
        param,      // index: action parameter slot
        local,      // index: local variable slot in the enclosing body
        is_valid,   // fref.header
        unary,      // un, a
        binary,     // bin, a, b
        ternary,    // c ? a : b
        slice,      // a[hi:lo]
        cast,       // (bit<width>) a   (zero-extend or truncate)
    };

    Kind kind = Kind::constant;
    int width = 0;         // result width in bits (bool is width 1 + is_bool)
    bool is_bool = false;

    Bitvec cvalue;
    FieldRef fref;
    int index = 0;
    ast::UnOp un = ast::UnOp::neg;
    ast::BinOp bin = ast::BinOp::add;
    ExprPtr a;
    ExprPtr b;
    ExprPtr c;
    int hi = 0;
    int lo = 0;

    ExprPtr clone() const;
    std::string to_string() const;
};

ExprPtr make_const(const Bitvec& value);
ExprPtr make_field(FieldRef fref, int width);

// --- statements -----------------------------------------------------------------

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class ExternKind {
    none,
    register_read,     // ext_dst = externs[extern_id][index_expr]
    register_write,    // externs[extern_id][index_expr] = value
    counter_count,     // bump counter cell index_expr
    meter_execute,     // ext_dst = color of meter cell index_expr
    mark_to_drop,      // egress_spec = drop port
    hash,              // ext_dst = crc32(inputs) truncated
    checksum_update,   // recompute IPv4-style checksum of header `hash_header`
};

struct Stmt {
    enum class Kind {
        assign_field,   // dst = value
        assign_local,   // locals[local_index] = value
        assign_slice,   // dst[hi:lo] = value
        if_stmt,        // cond ? then_body : else_body
        apply_table,    // tables[table]
        call_action,    // actions[action](action_args)
        set_valid,      // dst.header.setValid()/setInvalid() per make_valid
        extern_op,      // see ExternKind
        exit_pipeline,  // exit;
    };

    Kind kind = Kind::exit_pipeline;

    FieldRef dst;
    int local_index = 0;
    int hi = 0;
    int lo = 0;
    ExprPtr value;
    ExprPtr cond;
    std::vector<StmtPtr> then_body;
    std::vector<StmtPtr> else_body;
    int table = -1;
    int action = -1;
    std::vector<ExprPtr> action_args;
    bool make_valid = true;

    ExternKind ext = ExternKind::none;
    int extern_id = -1;
    ExprPtr index_expr;
    FieldRef ext_dst;
    std::vector<ExprPtr> hash_inputs;
    int hash_header = -1;        // checksum_update target header
    int checksum_field = -1;     // field index of the checksum within that header

    StmtPtr clone() const;
    std::string to_string(int indent = 0) const;
};

std::vector<StmtPtr> clone_body(const std::vector<StmtPtr>& body);

// --- parser ----------------------------------------------------------------------

// Distinguished pseudo-states for parser transitions.
inline constexpr int kAccept = -1;
inline constexpr int kReject = -2;

struct ParserOp {
    enum class Kind { extract, advance, assign };
    Kind kind = Kind::extract;
    int header = -1;   // extract target
    int bits = 0;      // advance amount
    FieldRef dst;      // assign
    ExprPtr value;

    ParserOp clone() const;
};

struct Keyset {
    bool any = false;
    Bitvec value;   // compared as (key & mask) == (value & mask)
    Bitvec mask;
};

struct Transition {
    enum class Kind { direct, select };
    Kind kind = Kind::direct;
    int next_state = kReject;         // direct
    std::vector<ExprPtr> keys;        // select
    struct Case {
        std::vector<Keyset> sets;     // one per key
        int next_state = kReject;
    };
    std::vector<Case> cases;          // evaluated in order; no match => reject

    Transition clone() const;
};

struct ParserState {
    std::string name;
    std::vector<ParserOp> ops;
    Transition transition;

    ParserState clone() const;
};

// --- tables, actions, externs ------------------------------------------------------

enum class MatchKind { exact, lpm, ternary };

const char* match_kind_name(MatchKind kind);

struct TableKey {
    ExprPtr expr;
    MatchKind kind = MatchKind::exact;
    int width = 0;
    std::string name;   // source text, for control-plane display
};

struct Table {
    std::string name;
    int id = -1;
    std::vector<TableKey> keys;
    std::vector<int> actions;          // action ids permitted on this table
    int default_action = -1;
    std::vector<Bitvec> default_args;
    std::int64_t size = 1024;

    int total_key_width() const;
    bool has_lpm() const;
    bool has_ternary() const;
};

struct Action {
    std::string name;
    int id = -1;
    std::vector<int> param_widths;
    std::vector<int> local_widths;
    std::vector<StmtPtr> body;
};

struct ExternDecl {
    enum class Kind { reg, counter, meter };
    Kind kind = Kind::reg;
    std::string name;
    int id = -1;
    int elem_width = 0;        // registers
    std::int64_t array_size = 0;
};

struct Control {
    std::string name;
    std::vector<int> local_widths;
    std::vector<StmtPtr> body;
};

// --- whole program -------------------------------------------------------------------

struct Program {
    std::string name;

    std::vector<Header> headers;
    int stdmeta = -1;    // index of the standard_metadata pseudo-header
    int usermeta = -1;   // index of the flattened user metadata (-1 if none)

    std::vector<ParserState> parser_states;
    int start_state = 0;

    std::vector<Action> actions;
    std::vector<Table> tables;
    std::vector<ExternDecl> externs;

    Control ingress;
    std::optional<Control> egress;
    std::vector<int> deparse_order;   // header indices emitted when valid

    // Well-known standard_metadata fields.
    FieldRef f_ingress_port;
    FieldRef f_egress_spec;
    FieldRef f_egress_port;
    FieldRef f_packet_length;
    FieldRef f_timestamp;

    int header_index(std::string_view instance_name) const;
    FieldRef field_ref(std::string_view header, std::string_view field) const;
    const Field& field(FieldRef ref) const;
    std::string field_name(FieldRef ref) const;   // "hdr.field" for messages
    const Table* table_by_name(std::string_view name) const;
    const Action* action_by_name(std::string_view name) const;
    const ExternDecl* extern_by_name(std::string_view name) const;

    // Deep copy (the vendor backend mutates a clone, never the original).
    Program clone() const;

    std::string to_string() const;
};

// Value of egress_spec that marks a packet for drop.
inline constexpr std::uint64_t kDropPort = 511;

// Stable pre-order ordinal for every if_stmt in the program, walking
// ingress, then egress, then actions by id.  Both execution engines (the
// tree-walking interpreter and the threaded-code compiler) derive their
// branch-coverage slots from this single walk, so the ordinals can never
// drift between them.
std::unordered_map<const Stmt*, std::uint32_t> number_branches(const Program& prog);

}  // namespace ndb::p4::ir
