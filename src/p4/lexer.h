// Hand-written lexer for the P4-16 subset.
#pragma once

#include <string_view>
#include <vector>

#include "p4/token.h"
#include "util/diag.h"

namespace ndb::p4 {

class Lexer {
public:
    Lexer(std::string_view source, util::DiagEngine& diags);

    // Tokenizes the whole input; always ends with an end_of_file token.
    std::vector<Token> run();

private:
    Token next();
    char peek(int ahead = 0) const;
    char advance();
    bool match(char c);
    void skip_trivia();  // whitespace and // and /* */ comments
    Token make(TokKind kind);
    Token lex_number();
    Token lex_identifier();
    util::SourceLoc loc() const { return {line_, col_}; }

    std::string_view src_;
    util::DiagEngine& diags_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
    util::SourceLoc tok_start_;
};

}  // namespace ndb::p4
