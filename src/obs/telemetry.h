// Telemetry facade: one switch for the metrics registry + trace layer, the
// merged export views, and the delta codec the campaign fabric ships over
// its heartbeat frames.
//
// Multi-process model: the parent enables telemetry before forking workers
// (fork inherits the enable flags and the trace epoch).  Each worker resets
// its inherited copy at startup, then answers every heartbeat with an ack
// whose payload is the encoded delta since its last ack -- metrics
// subtraction is exact (pure bucket counts) and trace events drain exactly
// once.  The parent decodes and imports each delta, so merged_metrics() /
// trace_json() are one coherent cross-process view.  Deltas are observe-only
// cargo: under injected link faults an in-flight delta can be lost with its
// frame (the final one rides the shutdown path, which bypasses injection).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ndb::obs {

// What one worker ships home per heartbeat: its pid, the metrics recorded
// since the previous ship, and the trace events drained since then.
struct TelemetryDelta {
    std::uint64_t pid = 0;
    MetricsSnapshot metrics;
    std::vector<TraceEventRecord> events;

    bool empty() const { return events.empty() && metrics.empty(); }
};

class Telemetry {
public:
    // Enables/disables the two layers independently; pins the trace epoch
    // on first enable so forked workers share the parent's timeline.
    static void set_enabled(bool metrics, bool tracing);
    static bool any_enabled() { return metrics_on() || trace_on(); }

    // Zeroes everything local: shards, rings, imported events/metrics and
    // the delta baseline.  A forked worker calls this first so its deltas
    // exclude whatever the parent recorded pre-fork.
    static void reset();

    // Local snapshot plus every imported worker delta.
    static MetricsSnapshot merged_metrics();

    // Non-destructive merged event view (local rings + imported).
    static std::vector<TraceEventRecord> collect_trace_events();

    // {"telemetry": ..., "metrics": {...}} over merged_metrics().
    static std::string metrics_json();

    // Chrome trace_event JSON over collect_trace_events().
    static std::string trace_json();

    // Worker side: metrics-since-last-call + drained events.
    static TelemetryDelta take_delta();

    static std::vector<std::uint8_t> encode_delta(const TelemetryDelta& delta);
    // Strict: returns false (and leaves `out` unspecified) on any
    // truncation, bad magic, or version mismatch.
    static bool decode_delta(const std::vector<std::uint8_t>& bytes,
                             TelemetryDelta& out);

    // Parent side: folds a decoded delta into the imported accumulators.
    static void import_delta(TelemetryDelta delta);

    // Writes `content` to `path`; on failure returns false with a
    // diagnostic in `error` (callers keep their exit code: telemetry loss
    // is never a run failure).
    static bool write_file(const std::string& path, const std::string& content,
                           std::string& error);
};

}  // namespace ndb::obs
