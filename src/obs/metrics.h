// Telemetry metrics: a lock-free, per-thread-sharded registry of monotonic
// counters, gauges and log2-bucket latency histograms.
//
// Design contract (the whole subsystem is observe-only):
//
//   * recording never allocates and never blocks: each thread leases one
//     shard (a block of relaxed atomics) and only ever writes its own cells;
//   * when metrics are off (`metrics_on()` false, the default) the hot paths
//     cost exactly one relaxed load -- instrumented code must gate every
//     hook on it;
//   * timing is *sampled* (1/16 packets, 1/64 table lookups, per-thread
//     decimation) so the clock reads stay inside the bench overhead gate,
//     while counters stay exact;
//   * snapshot() merges shards in registration order under a lock, so the
//     merged totals are a deterministic commutative sum no matter how many
//     threads recorded;
//   * histograms are pure bucket-count arrays (no min/max cells), so
//     snapshot subtraction is well-defined -- that is what lets fabric
//     workers ship deltas home (see obs/telemetry.h).
//
// Nothing in here feeds back into campaign reports: those must stay
// byte-identical with telemetry on or off.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>

namespace ndb::obs {

// Wall-free monotonic clock (CLOCK_MONOTONIC), in nanoseconds.  The domain
// is system-wide, so fork()ed fabric workers share the parent's timeline.
std::uint64_t now_ns();

// Process-family epoch: captured on first use (Telemetry::set_enabled pins
// it before any fork), inherited by workers, never reset -- every trace
// timestamp is exported relative to it.
std::uint64_t epoch_ns();

// --- metric identities --------------------------------------------------------

enum class Counter : std::uint32_t {
    packets = 0,      // every Pipeline::process entry (exact)
    packets_sampled,  // the 1/16 subset that carried stage clocks
    lookups_exact,
    lookups_lpm,
    lookups_ternary,
    wire_requests,
    wire_retries,
    wire_timeouts,
    scenarios,
    divergences,
    rounds,
    concolic_injected,
    worker_spawns,
    worker_restarts,
    trace_events_dropped,
    count_,
};
inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::count_);
const char* counter_name(Counter c);

enum class Gauge : std::uint32_t {
    campaign_threads = 0,
    fabric_workers,
    count_,
};
inline constexpr std::size_t kNumGauges = static_cast<std::size_t>(Gauge::count_);
const char* gauge_name(Gauge g);

enum class Hist : std::uint32_t {
    // Per-stage pipeline latency, one block per execution engine.  Keep the
    // two blocks parallel: pipeline_hist() below indexes across them.
    parse_ns_interp = 0,
    match_action_ns_interp,
    deparse_ns_interp,
    packet_ns_interp,
    parse_ns_compiled,
    match_action_ns_compiled,
    deparse_ns_compiled,
    packet_ns_compiled,
    lookup_ns_exact,
    lookup_ns_lpm,
    lookup_ns_ternary,
    wire_rtt_ns,
    scenario_ns,
    count_,
};
inline constexpr std::size_t kNumHists = static_cast<std::size_t>(Hist::count_);
const char* hist_name(Hist h);

// Stage index within an engine block: 0=parse 1=match-action 2=deparse
// 3=whole packet.
inline Hist pipeline_hist(int stage, bool compiled_engine) {
    return static_cast<Hist>(static_cast<int>(Hist::parse_ns_interp) +
                             (compiled_engine ? 4 : 0) + stage);
}

// --- log2 histogram math ------------------------------------------------------

inline constexpr int kHistBuckets = 64;

// Bucket 0 holds exactly {0}; bucket b >= 1 holds [2^(b-1), 2^b), i.e. all
// values whose bit width is b, saturating into bucket 63.
inline int hist_bucket(std::uint64_t v) {
    const int width = static_cast<int>(std::bit_width(v));
    return width < kHistBuckets ? width : kHistBuckets - 1;
}

// Inclusive upper bound of a bucket (what percentile extraction reports).
inline std::uint64_t hist_bucket_upper(int bucket) {
    if (bucket <= 0) return 0;
    if (bucket >= kHistBuckets - 1) return ~0ull;
    return (1ull << bucket) - 1;
}

// One merged histogram: pure bucket counts, so add/subtract are exact.
struct HistogramData {
    std::array<std::uint64_t, kHistBuckets> buckets{};

    std::uint64_t count() const;
    // Bucket upper bound at percentile p (in [0,100]); 0 when empty.
    std::uint64_t percentile(double p) const;
    void add(const HistogramData& other);
    void subtract(const HistogramData& other);
    bool operator==(const HistogramData&) const = default;
};

// --- merged snapshot ----------------------------------------------------------

struct MetricsSnapshot {
    std::array<std::uint64_t, kNumCounters> counters{};
    std::array<std::int64_t, kNumGauges> gauges{};
    std::array<HistogramData, kNumHists> hists{};

    void add(const MetricsSnapshot& other);
    void subtract(const MetricsSnapshot& other);
    bool empty() const;
    // {"counters": {...}, "gauges": {...}, "histograms": {...}} with
    // p50/p90/p99 per histogram and sparse [bucket, count] pairs.
    std::string to_json(int indent = 0) const;
    bool operator==(const MetricsSnapshot&) const = default;
};

// --- registry -----------------------------------------------------------------

namespace detail {
extern std::atomic<bool> g_metrics_on;
}  // namespace detail

// The one hot-path gate.  Everything else in this header is off-path.
inline bool metrics_on() {
    return detail::g_metrics_on.load(std::memory_order_relaxed);
}

class Metrics {
public:
    // Leaked singleton: shards outlive every recording thread, including
    // main-thread thread_local destructors.
    static Metrics& instance();

    void set_enabled(bool on);

    // Deterministic merged view: shards summed in registration order.
    MetricsSnapshot snapshot();

    // Zeroes every shard and gauge (snapshot isolation for benches/tests).
    void reset();

    void gauge_set(Gauge g, std::int64_t value);
    void gauge_add(Gauge g, std::int64_t delta);

private:
    Metrics() = default;
};

// Recording API -- call only when metrics_on().  Thread-safe, allocation
// free after a thread's first call (which leases its shard).
void count(Counter c, std::uint64_t n = 1);
void record(Hist h, std::uint64_t value);
// Per-thread decimation: true on every 16th packet / 64th lookup.
bool sample_packet();
bool sample_lookup();

}  // namespace ndb::obs
