#include "obs/telemetry.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <mutex>
#include <utility>

#include "util/strings.h"

namespace ndb::obs {

namespace {

// Delta wire format (independent of control/wire.h so the codec round-trips
// in unit tests without a frame in sight): little-endian, magic + version
// headed, length-prefixed strings capped well under kMaxPayloadBytes.
constexpr std::uint32_t kDeltaMagic = 0x4e44'4254;  // "NDBT"
constexpr std::uint16_t kDeltaVersion = 1;
constexpr std::size_t kMaxString = 4096;
constexpr std::size_t kMaxEvents = 1u << 20;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
    put_u16(out, static_cast<std::uint16_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

struct Cursor {
    const std::uint8_t* p;
    std::size_t left;

    bool u16(std::uint16_t& v) {
        if (left < 2) return false;
        v = static_cast<std::uint16_t>(p[0] | (p[1] << 8));
        p += 2;
        left -= 2;
        return true;
    }
    bool u32(std::uint32_t& v) {
        if (left < 4) return false;
        v = 0;
        for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
        p += 4;
        left -= 4;
        return true;
    }
    bool u64(std::uint64_t& v) {
        if (left < 8) return false;
        v = 0;
        for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
        p += 8;
        left -= 8;
        return true;
    }
    bool str(std::string& s) {
        std::uint16_t n = 0;
        if (!u16(n) || n > kMaxString || left < n) return false;
        s.assign(reinterpret_cast<const char*>(p), n);
        p += n;
        left -= n;
        return true;
    }
};

// The imported accumulators + per-process delta baseline.  Leaked like the
// other obs singletons (trace events may arrive while threads still exit).
struct ImportState {
    std::mutex mu;
    MetricsSnapshot imported;     // sum of every imported delta's metrics
    MetricsSnapshot last_shipped;  // take_delta baseline (local snapshot)
};

ImportState& import_state() {
    static ImportState* s = new ImportState();
    return *s;
}

}  // namespace

void Telemetry::set_enabled(bool metrics, bool tracing) {
    Metrics::instance().set_enabled(metrics);
    Trace::instance().set_enabled(tracing);
}

void Telemetry::reset() {
    Metrics::instance().reset();
    Trace::instance().reset();
    ImportState& st = import_state();
    const std::lock_guard<std::mutex> lock(st.mu);
    st.imported = MetricsSnapshot{};
    st.last_shipped = MetricsSnapshot{};
}

MetricsSnapshot Telemetry::merged_metrics() {
    MetricsSnapshot out = Metrics::instance().snapshot();
    ImportState& st = import_state();
    const std::lock_guard<std::mutex> lock(st.mu);
    out.add(st.imported);
    return out;
}

std::vector<TraceEventRecord> Telemetry::collect_trace_events() {
    return Trace::instance().collect();
}

std::string Telemetry::metrics_json() {
    std::string s = "{\n";
    s += "  \"telemetry\": \"ndb\",\n";
    s += util::format("  \"pid\": %llu,\n",
                      static_cast<unsigned long long>(::getpid()));
    s += util::format("  \"trace_events_dropped\": %llu,\n",
                      static_cast<unsigned long long>(
                          Trace::instance().dropped()));
    s += "  \"metrics\": " + merged_metrics().to_json(2) + "\n";
    s += "}\n";
    return s;
}

std::string Telemetry::trace_json() {
    return trace_events_json(collect_trace_events());
}

TelemetryDelta Telemetry::take_delta() {
    TelemetryDelta delta;
    delta.pid = static_cast<std::uint64_t>(::getpid());
    const MetricsSnapshot current = Metrics::instance().snapshot();
    ImportState& st = import_state();
    {
        const std::lock_guard<std::mutex> lock(st.mu);
        delta.metrics = current;
        delta.metrics.subtract(st.last_shipped);
        st.last_shipped = current;
    }
    delta.events = Trace::instance().drain();
    return delta;
}

std::vector<std::uint8_t> Telemetry::encode_delta(const TelemetryDelta& delta) {
    std::vector<std::uint8_t> out;
    put_u32(out, kDeltaMagic);
    put_u16(out, kDeltaVersion);
    put_u64(out, delta.pid);
    put_u16(out, static_cast<std::uint16_t>(kNumCounters));
    for (const std::uint64_t c : delta.metrics.counters) put_u64(out, c);
    put_u16(out, static_cast<std::uint16_t>(kNumGauges));
    for (const std::int64_t g : delta.metrics.gauges) {
        put_u64(out, static_cast<std::uint64_t>(g));
    }
    put_u16(out, static_cast<std::uint16_t>(kNumHists));
    put_u16(out, static_cast<std::uint16_t>(kHistBuckets));
    for (const HistogramData& h : delta.metrics.hists) {
        for (const std::uint64_t b : h.buckets) put_u64(out, b);
    }
    put_u32(out, static_cast<std::uint32_t>(delta.events.size()));
    for (const TraceEventRecord& ev : delta.events) {
        put_str(out, ev.name);
        put_str(out, ev.arg0);
        put_str(out, ev.arg1);
        put_u64(out, ev.ts_ns);
        put_u64(out, ev.dur_ns);
        put_u64(out, ev.v0);
        put_u64(out, ev.v1);
        put_u32(out, ev.tid);
    }
    return out;
}

bool Telemetry::decode_delta(const std::vector<std::uint8_t>& bytes,
                             TelemetryDelta& out) {
    Cursor c{bytes.data(), bytes.size()};
    std::uint32_t magic = 0;
    std::uint16_t version = 0;
    if (!c.u32(magic) || magic != kDeltaMagic) return false;
    if (!c.u16(version) || version != kDeltaVersion) return false;
    if (!c.u64(out.pid)) return false;
    std::uint16_t n = 0;
    if (!c.u16(n) || n != kNumCounters) return false;
    for (std::uint64_t& v : out.metrics.counters) {
        if (!c.u64(v)) return false;
    }
    if (!c.u16(n) || n != kNumGauges) return false;
    for (std::int64_t& g : out.metrics.gauges) {
        std::uint64_t raw = 0;
        if (!c.u64(raw)) return false;
        g = static_cast<std::int64_t>(raw);
    }
    std::uint16_t buckets = 0;
    if (!c.u16(n) || n != kNumHists) return false;
    if (!c.u16(buckets) || buckets != kHistBuckets) return false;
    for (HistogramData& h : out.metrics.hists) {
        for (std::uint64_t& b : h.buckets) {
            if (!c.u64(b)) return false;
        }
    }
    std::uint32_t events = 0;
    if (!c.u32(events) || events > kMaxEvents) return false;
    out.events.resize(events);
    for (TraceEventRecord& ev : out.events) {
        if (!c.str(ev.name) || !c.str(ev.arg0) || !c.str(ev.arg1)) return false;
        if (!c.u64(ev.ts_ns) || !c.u64(ev.dur_ns) || !c.u64(ev.v0) ||
            !c.u64(ev.v1) || !c.u32(ev.tid)) {
            return false;
        }
        ev.pid = out.pid;
    }
    return c.left == 0;
}

void Telemetry::import_delta(TelemetryDelta delta) {
    {
        ImportState& st = import_state();
        const std::lock_guard<std::mutex> lock(st.mu);
        st.imported.add(delta.metrics);
    }
    if (!delta.events.empty()) {
        Trace::instance().import_events(std::move(delta.events));
    }
}

bool Telemetry::write_file(const std::string& path, const std::string& content,
                           std::string& error) {
    std::ofstream out(path);
    if (!out) {
        error = std::strerror(errno);
        return false;
    }
    out << content;
    out.close();
    if (!out) {
        error = "write failed";
        return false;
    }
    return true;
}

}  // namespace ndb::obs
