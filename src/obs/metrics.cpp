#include "obs/metrics.h"

#include <time.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>
#include <vector>

#include "util/strings.h"

namespace ndb::obs {

namespace detail {
std::atomic<bool> g_metrics_on{false};
}  // namespace detail

std::uint64_t now_ns() {
    timespec ts{};
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
}

std::uint64_t epoch_ns() {
    static const std::uint64_t epoch = now_ns();
    return epoch;
}

const char* counter_name(Counter c) {
    switch (c) {
        case Counter::packets: return "packets";
        case Counter::packets_sampled: return "packets_sampled";
        case Counter::lookups_exact: return "lookups_exact";
        case Counter::lookups_lpm: return "lookups_lpm";
        case Counter::lookups_ternary: return "lookups_ternary";
        case Counter::wire_requests: return "wire_requests";
        case Counter::wire_retries: return "wire_retries";
        case Counter::wire_timeouts: return "wire_timeouts";
        case Counter::scenarios: return "scenarios";
        case Counter::divergences: return "divergences";
        case Counter::rounds: return "rounds";
        case Counter::concolic_injected: return "concolic_injected";
        case Counter::worker_spawns: return "worker_spawns";
        case Counter::worker_restarts: return "worker_restarts";
        case Counter::trace_events_dropped: return "trace_events_dropped";
        case Counter::count_: break;
    }
    return "?";
}

const char* gauge_name(Gauge g) {
    switch (g) {
        case Gauge::campaign_threads: return "campaign_threads";
        case Gauge::fabric_workers: return "fabric_workers";
        case Gauge::count_: break;
    }
    return "?";
}

const char* hist_name(Hist h) {
    switch (h) {
        case Hist::parse_ns_interp: return "parse_ns_interp";
        case Hist::match_action_ns_interp: return "match_action_ns_interp";
        case Hist::deparse_ns_interp: return "deparse_ns_interp";
        case Hist::packet_ns_interp: return "packet_ns_interp";
        case Hist::parse_ns_compiled: return "parse_ns_compiled";
        case Hist::match_action_ns_compiled: return "match_action_ns_compiled";
        case Hist::deparse_ns_compiled: return "deparse_ns_compiled";
        case Hist::packet_ns_compiled: return "packet_ns_compiled";
        case Hist::lookup_ns_exact: return "lookup_ns_exact";
        case Hist::lookup_ns_lpm: return "lookup_ns_lpm";
        case Hist::lookup_ns_ternary: return "lookup_ns_ternary";
        case Hist::wire_rtt_ns: return "wire_rtt_ns";
        case Hist::scenario_ns: return "scenario_ns";
        case Hist::count_: break;
    }
    return "?";
}

// --- HistogramData ------------------------------------------------------------

std::uint64_t HistogramData::count() const {
    std::uint64_t total = 0;
    for (const std::uint64_t b : buckets) total += b;
    return total;
}

std::uint64_t HistogramData::percentile(double p) const {
    const std::uint64_t total = count();
    if (total == 0) return 0;
    p = std::clamp(p, 0.0, 100.0);
    // Rank of the percentile sample, 1-based, at least 1.
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::ceil(p / 100.0 *
                                                static_cast<double>(total))));
    std::uint64_t cum = 0;
    for (int b = 0; b < kHistBuckets; ++b) {
        cum += buckets[static_cast<std::size_t>(b)];
        if (cum >= rank) return hist_bucket_upper(b);
    }
    return hist_bucket_upper(kHistBuckets - 1);
}

void HistogramData::add(const HistogramData& other) {
    for (int b = 0; b < kHistBuckets; ++b) {
        buckets[static_cast<std::size_t>(b)] +=
            other.buckets[static_cast<std::size_t>(b)];
    }
}

void HistogramData::subtract(const HistogramData& other) {
    for (int b = 0; b < kHistBuckets; ++b) {
        buckets[static_cast<std::size_t>(b)] -=
            other.buckets[static_cast<std::size_t>(b)];
    }
}

// --- MetricsSnapshot ----------------------------------------------------------

void MetricsSnapshot::add(const MetricsSnapshot& other) {
    for (std::size_t i = 0; i < kNumCounters; ++i) {
        counters[i] += other.counters[i];
    }
    for (std::size_t i = 0; i < kNumGauges; ++i) gauges[i] += other.gauges[i];
    for (std::size_t i = 0; i < kNumHists; ++i) hists[i].add(other.hists[i]);
}

void MetricsSnapshot::subtract(const MetricsSnapshot& other) {
    for (std::size_t i = 0; i < kNumCounters; ++i) {
        counters[i] -= other.counters[i];
    }
    for (std::size_t i = 0; i < kNumGauges; ++i) gauges[i] -= other.gauges[i];
    for (std::size_t i = 0; i < kNumHists; ++i) {
        hists[i].subtract(other.hists[i]);
    }
}

bool MetricsSnapshot::empty() const { return *this == MetricsSnapshot{}; }

std::string MetricsSnapshot::to_json(int indent) const {
    const std::string pad(static_cast<std::size_t>(indent), ' ');
    std::string s = "{\n";
    s += pad + "  \"counters\": {";
    bool first = true;
    for (std::size_t i = 0; i < kNumCounters; ++i) {
        if (!first) s += ", ";
        first = false;
        s += util::format("\"%s\": %llu", counter_name(static_cast<Counter>(i)),
                          static_cast<unsigned long long>(counters[i]));
    }
    s += "},\n";
    s += pad + "  \"gauges\": {";
    first = true;
    for (std::size_t i = 0; i < kNumGauges; ++i) {
        if (!first) s += ", ";
        first = false;
        s += util::format("\"%s\": %lld", gauge_name(static_cast<Gauge>(i)),
                          static_cast<long long>(gauges[i]));
    }
    s += "},\n";
    s += pad + "  \"histograms\": {\n";
    for (std::size_t i = 0; i < kNumHists; ++i) {
        const HistogramData& h = hists[i];
        s += pad + util::format("    \"%s\": {", hist_name(static_cast<Hist>(i)));
        s += util::format("\"count\": %llu, ",
                          static_cast<unsigned long long>(h.count()));
        s += util::format("\"p50\": %llu, \"p90\": %llu, \"p99\": %llu, ",
                          static_cast<unsigned long long>(h.percentile(50)),
                          static_cast<unsigned long long>(h.percentile(90)),
                          static_cast<unsigned long long>(h.percentile(99)));
        s += "\"buckets\": [";
        bool fb = true;
        for (int b = 0; b < kHistBuckets; ++b) {
            const std::uint64_t n = h.buckets[static_cast<std::size_t>(b)];
            if (n == 0) continue;
            if (!fb) s += ", ";
            fb = false;
            s += util::format("[%d, %llu]", b,
                              static_cast<unsigned long long>(n));
        }
        s += "]}";
        s += i + 1 < kNumHists ? ",\n" : "\n";
    }
    s += pad + "  }\n" + pad + "}";
    return s;
}

// --- registry internals -------------------------------------------------------

namespace {

constexpr std::uint32_t kPacketSampleMask = 15;  // 1/16
constexpr std::uint32_t kLookupSampleMask = 63;  // 1/64

// One thread's private recording block.  Atomics because snapshot() reads
// them concurrently; contention-free because only the leasing thread writes.
struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kNumCounters> counters{};
    std::array<std::array<std::atomic<std::uint64_t>, kHistBuckets>, kNumHists>
        hists{};
    // Decimation ticks: single-writer, never read cross-thread.
    std::uint32_t packet_tick = 0;
    std::uint32_t lookup_tick = 0;
    bool leased = false;
};

struct Registry {
    std::mutex mu;
    // Stable addresses for the lifetime of the process: shards are leased
    // to threads, returned on thread exit, and re-leased to later threads
    // (campaign rounds spin up fresh pools) instead of accumulating.
    std::vector<std::unique_ptr<Shard>> shards;
    std::array<std::atomic<std::int64_t>, kNumGauges> gauges{};
};

Registry& registry() {
    static Registry* r = new Registry();  // leaked: see Metrics::instance()
    return *r;
}

Shard* acquire_shard() {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    for (auto& s : r.shards) {
        if (!s->leased) {
            s->leased = true;
            return s.get();
        }
    }
    r.shards.push_back(std::make_unique<Shard>());
    r.shards.back()->leased = true;
    return r.shards.back().get();
}

void release_shard(Shard* shard) {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    shard->leased = false;  // accumulated counts stay; snapshot sums them
}

struct ShardLease {
    Shard* shard = nullptr;
    ~ShardLease() {
        if (shard) release_shard(shard);
    }
};

Shard& local_shard() {
    thread_local ShardLease lease;
    if (!lease.shard) lease.shard = acquire_shard();
    return *lease.shard;
}

}  // namespace

Metrics& Metrics::instance() {
    static Metrics* m = new Metrics();  // leaked by design; never destroyed
    return *m;
}

void Metrics::set_enabled(bool on) {
    if (on) epoch_ns();  // pin the export epoch before any fork
    detail::g_metrics_on.store(on, std::memory_order_relaxed);
}

MetricsSnapshot Metrics::snapshot() {
    Registry& r = registry();
    MetricsSnapshot out;
    const std::lock_guard<std::mutex> lock(r.mu);
    for (const auto& s : r.shards) {
        for (std::size_t i = 0; i < kNumCounters; ++i) {
            out.counters[i] += s->counters[i].load(std::memory_order_relaxed);
        }
        for (std::size_t i = 0; i < kNumHists; ++i) {
            for (int b = 0; b < kHistBuckets; ++b) {
                out.hists[i].buckets[static_cast<std::size_t>(b)] +=
                    s->hists[i][static_cast<std::size_t>(b)].load(
                        std::memory_order_relaxed);
            }
        }
    }
    for (std::size_t i = 0; i < kNumGauges; ++i) {
        out.gauges[i] = r.gauges[i].load(std::memory_order_relaxed);
    }
    return out;
}

void Metrics::reset() {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    for (auto& s : r.shards) {
        for (auto& c : s->counters) c.store(0, std::memory_order_relaxed);
        for (auto& h : s->hists) {
            for (auto& b : h) b.store(0, std::memory_order_relaxed);
        }
        s->packet_tick = 0;
        s->lookup_tick = 0;
    }
    for (auto& g : r.gauges) g.store(0, std::memory_order_relaxed);
}

void Metrics::gauge_set(Gauge g, std::int64_t value) {
    registry().gauges[static_cast<std::size_t>(g)].store(
        value, std::memory_order_relaxed);
}

void Metrics::gauge_add(Gauge g, std::int64_t delta) {
    registry().gauges[static_cast<std::size_t>(g)].fetch_add(
        delta, std::memory_order_relaxed);
}

void count(Counter c, std::uint64_t n) {
    Shard& s = local_shard();
    s.counters[static_cast<std::size_t>(c)].fetch_add(
        n, std::memory_order_relaxed);
}

void record(Hist h, std::uint64_t value) {
    Shard& s = local_shard();
    s.hists[static_cast<std::size_t>(h)]
        [static_cast<std::size_t>(hist_bucket(value))]
            .fetch_add(1, std::memory_order_relaxed);
}

bool sample_packet() {
    Shard& s = local_shard();
    return (s.packet_tick++ & kPacketSampleMask) == 0;
}

bool sample_lookup() {
    Shard& s = local_shard();
    return (s.lookup_tick++ & kLookupSampleMask) == 0;
}

}  // namespace ndb::obs
