// Structured trace layer: bounded per-thread event rings exported as Chrome
// trace_event JSON (view in chrome://tracing or ui.perfetto.dev).
//
// Events are coarse -- scheduler rounds, scenario executions, divergences,
// worker lifecycle, wire retries -- never per-packet, so a ring push (one
// uncontended mutex + a slot write) is far off the packet hot path.  Rings
// drop the newest event when full rather than allocate, and count the drops.
//
// Two collection modes:
//   * drain()   -- destructive: moves local ring contents out.  The fabric
//                  worker ships drained events home in heartbeat deltas so
//                  nothing is re-shipped.
//   * collect() -- non-destructive copy of local rings plus every imported
//                  (worker-shipped) event.  The parent's exporter and the
//                  tests use this; reset() is the only eraser on this path.
//
// Like the metrics registry, everything is observe-only and gated on one
// relaxed atomic load when tracing is off.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ndb::obs {

namespace detail {
extern std::atomic<bool> g_trace_on;
}  // namespace detail

inline bool trace_on() {
    return detail::g_trace_on.load(std::memory_order_relaxed);
}

// dur_ns sentinel distinguishing instant events ("i") from complete
// events ("X") in the export.
inline constexpr std::uint64_t kInstantDur = ~0ull;

// One owned event, as drained/collected/imported (ring slots themselves
// hold static strings and never allocate).
struct TraceEventRecord {
    std::string name;
    std::string arg0;  // empty = absent
    std::string arg1;
    std::uint64_t ts_ns = 0;  // absolute CLOCK_MONOTONIC
    std::uint64_t dur_ns = kInstantDur;
    std::uint64_t v0 = 0;
    std::uint64_t v1 = 0;
    std::uint64_t pid = 0;
    std::uint32_t tid = 0;

    bool instant() const { return dur_ns == kInstantDur; }
    bool operator==(const TraceEventRecord&) const = default;
};

class Trace {
public:
    static Trace& instance();  // leaked singleton, like Metrics

    void set_enabled(bool on);

    // Destructive: local ring contents, stamped with this process's pid.
    std::vector<TraceEventRecord> drain();

    // Non-destructive: local rings (stamped) plus imported events.
    std::vector<TraceEventRecord> collect();

    // Worker-shipped events (already pid-stamped by the worker).
    void import_events(std::vector<TraceEventRecord> events);

    // Events lost to full rings since the last reset.
    std::uint64_t dropped() const;

    // Clears rings, imported events, and the drop counter.
    void reset();

private:
    Trace() = default;
};

// Recording API -- call only when trace_on().  `name`/`k0`/`k1` must be
// string literals (stored as pointers in the ring).
void trace_complete(const char* name, std::uint64_t start_ns,
                    std::uint64_t dur_ns, const char* k0 = nullptr,
                    std::uint64_t v0 = 0, const char* k1 = nullptr,
                    std::uint64_t v1 = 0);
void trace_instant(const char* name, const char* k0 = nullptr,
                   std::uint64_t v0 = 0, const char* k1 = nullptr,
                   std::uint64_t v1 = 0);

// Chrome trace_event JSON ({"traceEvents": [...]}) over the given events:
// stable-sorted by timestamp, ts/dur in microseconds relative to
// epoch_ns(), one process_name metadata row per distinct pid.
std::string trace_events_json(std::vector<TraceEventRecord> events);

}  // namespace ndb::obs
