#include "obs/trace.h"

#include <unistd.h>

#include <algorithm>
#include <memory>
#include <mutex>
#include <set>

#include "obs/metrics.h"
#include "util/strings.h"

namespace ndb::obs {

namespace detail {
std::atomic<bool> g_trace_on{false};
}  // namespace detail

namespace {

constexpr std::size_t kRingCapacity = 4096;

// Ring slots hold static strings only: a push is slot writes under an
// uncontended mutex, never an allocation.
struct RawEvent {
    const char* name = nullptr;
    const char* k0 = nullptr;
    const char* k1 = nullptr;
    std::uint64_t ts_ns = 0;
    std::uint64_t dur_ns = kInstantDur;
    std::uint64_t v0 = 0;
    std::uint64_t v1 = 0;
};

struct Ring {
    std::mutex mu;
    std::vector<RawEvent> events;  // reserve(kRingCapacity) at lease time
    std::uint64_t dropped = 0;
    std::uint32_t tid = 0;
    bool leased = false;
};

struct TraceState {
    std::mutex mu;
    std::vector<std::unique_ptr<Ring>> rings;
    std::vector<TraceEventRecord> imported;
    std::uint32_t next_tid = 1;
};

TraceState& state() {
    static TraceState* s = new TraceState();  // leaked, like the registries
    return *s;
}

Ring* acquire_ring() {
    TraceState& st = state();
    const std::lock_guard<std::mutex> lock(st.mu);
    for (auto& r : st.rings) {
        if (!r->leased) {
            r->leased = true;
            return r.get();
        }
    }
    st.rings.push_back(std::make_unique<Ring>());
    Ring* r = st.rings.back().get();
    r->leased = true;
    r->tid = st.next_tid++;
    r->events.reserve(kRingCapacity);
    return r;
}

void release_ring(Ring* ring) {
    TraceState& st = state();
    const std::lock_guard<std::mutex> lock(st.mu);
    ring->leased = false;  // pending events stay until drained/collected
}

struct RingLease {
    Ring* ring = nullptr;
    ~RingLease() {
        if (ring) release_ring(ring);
    }
};

Ring& local_ring() {
    thread_local RingLease lease;
    if (!lease.ring) lease.ring = acquire_ring();
    return *lease.ring;
}

void push_event(const RawEvent& ev) {
    Ring& r = local_ring();
    const std::lock_guard<std::mutex> lock(r.mu);
    if (r.events.size() >= kRingCapacity) {
        ++r.dropped;
        if (metrics_on()) count(Counter::trace_events_dropped);
        return;
    }
    r.events.push_back(ev);
}

TraceEventRecord own_event(const RawEvent& ev, std::uint64_t pid,
                           std::uint32_t tid) {
    TraceEventRecord out;
    out.name = ev.name ? ev.name : "?";
    if (ev.k0) out.arg0 = ev.k0;
    if (ev.k1) out.arg1 = ev.k1;
    out.ts_ns = ev.ts_ns;
    out.dur_ns = ev.dur_ns;
    out.v0 = ev.v0;
    out.v1 = ev.v1;
    out.pid = pid;
    out.tid = tid;
    return out;
}

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    out += util::format("\\u%04x", c);
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace

Trace& Trace::instance() {
    static Trace* t = new Trace();
    return *t;
}

void Trace::set_enabled(bool on) {
    if (on) epoch_ns();  // pin the export epoch before any fork
    detail::g_trace_on.store(on, std::memory_order_relaxed);
}

std::vector<TraceEventRecord> Trace::drain() {
    TraceState& st = state();
    const std::uint64_t pid = static_cast<std::uint64_t>(::getpid());
    std::vector<TraceEventRecord> out;
    const std::lock_guard<std::mutex> lock(st.mu);
    for (auto& r : st.rings) {
        const std::lock_guard<std::mutex> ring_lock(r->mu);
        for (const RawEvent& ev : r->events) {
            out.push_back(own_event(ev, pid, r->tid));
        }
        r->events.clear();
    }
    return out;
}

std::vector<TraceEventRecord> Trace::collect() {
    TraceState& st = state();
    const std::uint64_t pid = static_cast<std::uint64_t>(::getpid());
    std::vector<TraceEventRecord> out;
    const std::lock_guard<std::mutex> lock(st.mu);
    for (auto& r : st.rings) {
        const std::lock_guard<std::mutex> ring_lock(r->mu);
        for (const RawEvent& ev : r->events) {
            out.push_back(own_event(ev, pid, r->tid));
        }
    }
    out.insert(out.end(), st.imported.begin(), st.imported.end());
    return out;
}

void Trace::import_events(std::vector<TraceEventRecord> events) {
    TraceState& st = state();
    const std::lock_guard<std::mutex> lock(st.mu);
    st.imported.insert(st.imported.end(),
                       std::make_move_iterator(events.begin()),
                       std::make_move_iterator(events.end()));
}

std::uint64_t Trace::dropped() const {
    TraceState& st = state();
    std::uint64_t total = 0;
    const std::lock_guard<std::mutex> lock(st.mu);
    for (const auto& r : st.rings) {
        const std::lock_guard<std::mutex> ring_lock(r->mu);
        total += r->dropped;
    }
    return total;
}

void Trace::reset() {
    TraceState& st = state();
    const std::lock_guard<std::mutex> lock(st.mu);
    for (auto& r : st.rings) {
        const std::lock_guard<std::mutex> ring_lock(r->mu);
        r->events.clear();
        r->dropped = 0;
    }
    st.imported.clear();
}

void trace_complete(const char* name, std::uint64_t start_ns,
                    std::uint64_t dur_ns, const char* k0, std::uint64_t v0,
                    const char* k1, std::uint64_t v1) {
    RawEvent ev;
    ev.name = name;
    ev.k0 = k0;
    ev.k1 = k1;
    ev.ts_ns = start_ns;
    // kInstantDur is a sentinel; a (pathological) complete event of that
    // exact duration saturates one tick short instead of changing phase.
    ev.dur_ns = dur_ns == kInstantDur ? dur_ns - 1 : dur_ns;
    ev.v0 = v0;
    ev.v1 = v1;
    push_event(ev);
}

void trace_instant(const char* name, const char* k0, std::uint64_t v0,
                   const char* k1, std::uint64_t v1) {
    RawEvent ev;
    ev.name = name;
    ev.k0 = k0;
    ev.k1 = k1;
    ev.ts_ns = now_ns();
    ev.dur_ns = kInstantDur;
    ev.v0 = v0;
    ev.v1 = v1;
    push_event(ev);
}

std::string trace_events_json(std::vector<TraceEventRecord> events) {
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEventRecord& a, const TraceEventRecord& b) {
                         return a.ts_ns < b.ts_ns;
                     });
    const std::uint64_t epoch = epoch_ns();
    const std::uint64_t self = static_cast<std::uint64_t>(::getpid());

    std::string s = "{\"traceEvents\": [\n";
    // Metadata rows first: name every pid in the merged timeline.
    std::set<std::uint64_t> pids;
    for (const TraceEventRecord& ev : events) pids.insert(ev.pid);
    bool first = true;
    for (const std::uint64_t pid : pids) {
        if (!first) s += ",\n";
        first = false;
        s += util::format(
            "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %llu, "
            "\"tid\": 0, \"args\": {\"name\": \"%s\"}}",
            static_cast<unsigned long long>(pid),
            pid == self ? "ndb parent" : "ndb worker");
    }
    for (const TraceEventRecord& ev : events) {
        if (!first) s += ",\n";
        first = false;
        // Events recorded before the epoch was pinned (there should be
        // none) clamp to 0 rather than wrapping.
        const std::uint64_t rel = ev.ts_ns > epoch ? ev.ts_ns - epoch : 0;
        s += util::format("  {\"name\": \"%s\", \"cat\": \"ndb\", ",
                          json_escape(ev.name).c_str());
        if (ev.instant()) {
            s += "\"ph\": \"i\", \"s\": \"t\", ";
        } else {
            s += util::format("\"ph\": \"X\", \"dur\": %.3f, ",
                              static_cast<double>(ev.dur_ns) / 1000.0);
        }
        s += util::format("\"ts\": %.3f, \"pid\": %llu, \"tid\": %u, ",
                          static_cast<double>(rel) / 1000.0,
                          static_cast<unsigned long long>(ev.pid), ev.tid);
        s += "\"args\": {";
        if (!ev.arg0.empty()) {
            s += util::format("\"%s\": %llu", json_escape(ev.arg0).c_str(),
                              static_cast<unsigned long long>(ev.v0));
        }
        if (!ev.arg1.empty()) {
            if (!ev.arg0.empty()) s += ", ";
            s += util::format("\"%s\": %llu", json_escape(ev.arg1).c_str(),
                              static_cast<unsigned long long>(ev.v1));
        }
        s += "}}";
    }
    s += "\n]}\n";
    return s;
}

}  // namespace ndb::obs
