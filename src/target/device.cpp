#include "target/device.h"

#include <map>
#include <mutex>
#include <utility>

#include "target/sim_device.h"

namespace ndb::target {

dataplane::Quirks sdnet_quirks() {
    dataplane::Quirks q;
    // Headline bug (paper Section 4): the toolchain never implemented the
    // parser reject state, so must-drop packets sail through.
    q.reject_as_accept = true;
    // The hardware parser runs out of stages before deep header stacks end.
    q.parser_depth_limit = 4;
    // Right shifts are emitted as left shifts.
    q.shift_miscompile = true;
    // TCAM priority encoder wired backwards: lowest priority wins.
    q.ternary_priority_inverted = true;
    // State-quirk family: the stateful pipeline never refreshes occupied
    // register cells, latches the aging clock at half resolution, and
    // truncates the hash unit to 3 result bits (8 buckets).
    q.stale_entry = true;
    q.expiry_off_by_one = true;
    q.hash_collision_misdirect = 3;
    return q;
}

namespace {

struct Registry {
    std::mutex mutex;
    std::map<std::string, DeviceFactory> factories;
};

Registry& registry() {
    static Registry r;
    return r;
}

bool register_locked(const std::string& name, DeviceFactory factory) {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    return r.factories.emplace(name, std::move(factory)).second;
}

void ensure_builtin_backends() {
    static const bool once = [] {
        register_locked("reference", [](std::optional<dataplane::Quirks> q) {
            DeviceConfig cfg;
            if (q) cfg.quirks = *q;
            return make_reference_device(std::move(cfg));
        });
        register_locked("sdnet", [](std::optional<dataplane::Quirks> q) {
            // Build directly so an explicit all-defaults override yields a
            // quirk-free device (make_sdnet_device would re-apply the
            // catalogue, which is right for it but wrong for an override).
            DeviceConfig cfg;
            cfg.backend = "sdnet";
            cfg.quirks = q ? *q : sdnet_quirks();
            return std::unique_ptr<Device>(
                std::make_unique<SimDevice>(std::move(cfg)));
        });
        return true;
    }();
    (void)once;
}

}  // namespace

std::unique_ptr<Device> make_reference_device(DeviceConfig config) {
    if (config.backend.empty()) config.backend = "reference";
    return std::make_unique<SimDevice>(std::move(config));
}

std::unique_ptr<Device> make_sdnet_device(DeviceConfig config) {
    if (config.backend.empty()) config.backend = "sdnet";
    if (!config.quirks.any()) config.quirks = sdnet_quirks();
    return std::make_unique<SimDevice>(std::move(config));
}

bool register_backend(const std::string& name, DeviceFactory factory) {
    // Builtins first, so a client registration can never shadow them.
    ensure_builtin_backends();
    return register_locked(name, std::move(factory));
}

std::vector<std::string> registered_backends() {
    ensure_builtin_backends();
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<std::string> names;
    names.reserve(r.factories.size());
    for (const auto& [name, factory] : r.factories) names.push_back(name);
    return names;
}

std::unique_ptr<Device> make_device(std::string_view name,
                                    std::optional<dataplane::Quirks> quirks_override) {
    ensure_builtin_backends();
    DeviceFactory factory;
    {
        Registry& r = registry();
        const std::lock_guard<std::mutex> lock(r.mutex);
        const auto it = r.factories.find(std::string(name));
        if (it == r.factories.end()) return nullptr;
        factory = it->second;
    }
    return factory(std::move(quirks_override));
}

}  // namespace ndb::target
