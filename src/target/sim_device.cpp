#include "target/sim_device.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/strings.h"

namespace ndb::target {

using control::Status;

namespace {
// Egress queues keep at least this much capacity so steady-state batched
// traffic never grows them packet by packet.
constexpr std::size_t kEgressQueueReserve = 64;

// Shared ring policy for the tap and digest records: evict the oldest half
// in one move when the cap is hit, so sustained traffic at the cap stays
// amortized O(1) per packet.
template <typename T>
void push_ring(std::vector<T>& ring, std::size_t cap, T record) {
    if (ring.size() >= cap) {
        ring.erase(ring.begin(),
                   ring.begin() + static_cast<long>(ring.size() / 2 + 1));
    }
    ring.push_back(std::move(record));
}
}  // namespace

SimDevice::SimDevice(DeviceConfig config) : config_(std::move(config)) {
    config_.num_ports = std::max(config_.num_ports, 1);
    cov_salt_ = util::fnv1a_64(config_.backend) ^
                util::fnv1a_64(config_.quirks.signature());
    clock_ns_ = config_.epoch_ns;
    egress_queues_.resize(static_cast<std::size_t>(config_.num_ports));
    for (auto& q : egress_queues_) q.reserve(kEgressQueueReserve);
    port_counters_.resize(static_cast<std::size_t>(config_.num_ports));
}

Status SimDevice::load(const p4::ir::Program& prog) {
    ++generation_;  // invalidates every handle issued against the old image
    prog_ = std::make_unique<p4::ir::Program>(prog.clone());
    tables_ = std::make_unique<dataplane::TableSet>(
        *prog_, config_.quirks.table_size_clamp,
        config_.quirks.ternary_priority_inverted);
    stateful_ = std::make_unique<dataplane::StatefulSet>(*prog_);
    dataplane::PipelineOptions options;
    options.quirks = config_.quirks;
    options.engine = config_.engine;
    options.capture_taps = taps_enabled_;
    options.capture_digests = digests_enabled_;
    pipeline_ = std::make_unique<dataplane::Pipeline>(*prog_, *tables_, *stateful_,
                                                      std::move(options));
    // load() replaces the pipeline wholesale, so coverage mode must be
    // re-applied here for the setting to survive an image swap.
    pipeline_->set_coverage(coverage_, cov_salt_);
    clear_dynamic_state();
    return Status::success();
}

void SimDevice::set_coverage(coverage::CoverageMap* map) {
    coverage_ = map;
    if (pipeline_) pipeline_->set_coverage(map, cov_salt_);
}

void SimDevice::set_engine(dataplane::Engine engine) {
    // Stored in the config so the choice survives load() (which rebuilds
    // the pipeline), mirroring the coverage re-apply above.
    config_.engine = engine;
    if (pipeline_) pipeline_->set_engine(engine);
}

void SimDevice::clear_dynamic_state() {
    for (auto& q : egress_queues_) q.clear();
    std::fill(port_counters_.begin(), port_counters_.end(),
              control::PortCounters{});
    misdirected_ = 0;
    taps_.clear();
    digests_.clear();
}

const p4::ir::Program& SimDevice::program() const {
    if (!prog_) {
        throw std::logic_error("target::Device: no program loaded");
    }
    return *prog_;
}

void SimDevice::inject(packet::Packet pkt) {
    if (!pipeline_) return;  // no image: the wire is dead

    if (pkt.meta.rx_time_ns == 0) pkt.meta.rx_time_ns = clock_ns_;
    // The virtual clock tracks the line: one packet slot per injection, and
    // never behind the newest admitted packet.
    clock_ns_ = std::max(clock_ns_, pkt.meta.rx_time_ns) + config_.ns_per_packet;

    if (pkt.meta.ingress_port < static_cast<std::uint32_t>(config_.num_ports)) {
        auto& rx = port_counters_[pkt.meta.ingress_port];
        ++rx.rx_packets;
        rx.rx_bytes += pkt.size();
    }

    dataplane::PipelineResult result = pipeline_->process(pkt);

    if (result.disposition == dataplane::Disposition::forwarded) {
        result.output.meta.tx_time_ns =
            pkt.meta.rx_time_ns + result.cycles * config_.ns_per_cycle;
    }

    if (taps_enabled_ && config_.max_tap_records > 0) {
        push_ring(taps_, config_.max_tap_records, TapRecord{pkt, result});
    }

    if (digests_enabled_ && config_.max_tap_records > 0) {
        dataplane::TapDigest digest;
        digest.verdict = result.parser_verdict;
        digest.disposition = result.disposition;
        digest.egress_port =
            result.disposition == dataplane::Disposition::forwarded
                ? result.egress_port
                : 0;
        digest.stage_hash = result.stage_hash;
        push_ring(digests_, config_.max_tap_records, digest);
    }

    if (result.disposition == dataplane::Disposition::forwarded) {
        if (result.egress_port < static_cast<std::uint32_t>(config_.num_ports)) {
            auto& tx = port_counters_[result.egress_port];
            ++tx.tx_packets;
            tx.tx_bytes += result.output.size();
            egress_queues_[result.egress_port].push_back(std::move(result.output));
        } else {
            // Models real hardware: a forwarded packet whose egress port does
            // not exist is discarded on the way to the queues.
            ++misdirected_;
        }
    }
}

std::vector<packet::Packet> SimDevice::drain_port(std::uint32_t port) {
    std::vector<packet::Packet> out;
    drain_port_into(port, out);
    return out;
}

void SimDevice::drain_port_into(std::uint32_t port,
                                std::vector<packet::Packet>& out) {
    if (port >= egress_queues_.size()) return;
    auto& q = egress_queues_[port];
    out.insert(out.end(), std::make_move_iterator(q.begin()),
               std::make_move_iterator(q.end()));
    q.clear();  // keeps capacity: the queue never re-grows in steady state
}

void SimDevice::set_taps_enabled(bool on) {
    taps_enabled_ = on;
    if (pipeline_) pipeline_->set_capture_taps(on);
}

void SimDevice::set_digests_enabled(bool on) {
    digests_enabled_ = on;
    if (pipeline_) pipeline_->set_capture_digests(on);
}

// --- management plane ---------------------------------------------------------

control::TableHandle SimDevice::resolve_table(const std::string& name) {
    control::TableHandle h;
    h.name = name;
    if (!prog_) return h;
    if (const p4::ir::Table* t = prog_->table_by_name(name)) {
        h.id = t->id;
        h.generation = generation_;
    }
    return h;
}

control::ExternHandle SimDevice::resolve_extern(const std::string& name) {
    control::ExternHandle h;
    h.name = name;
    if (!prog_) return h;
    if (const p4::ir::ExternDecl* e = prog_->extern_by_name(name)) {
        h.id = e->id;
        h.generation = generation_;
    }
    return h;
}

Status SimDevice::check_table(const control::TableHandle& handle,
                              const p4::ir::Table*& out) const {
    if (!prog_) return Status::failure("no program loaded");
    if (!handle.valid()) {
        // Name-only handle (a backend-agnostic caller, or resolution against
        // an unloaded device): one fresh lookup, same errors as ever.
        const p4::ir::Table* t = prog_->table_by_name(handle.name);
        if (!t) return Status::failure("unknown table '" + handle.name + "'");
        out = t;
        return Status::success();
    }
    if (handle.generation != generation_) {
        return Status::failure("stale table handle '" + handle.name +
                               "': device image reloaded since resolve");
    }
    if (static_cast<std::size_t>(handle.id) >= prog_->tables.size()) {
        return Status::failure("invalid table handle '" + handle.name + "'");
    }
    out = &prog_->tables[static_cast<std::size_t>(handle.id)];
    return Status::success();
}

Status SimDevice::check_extern(const control::ExternHandle& handle,
                               p4::ir::ExternDecl::Kind kind,
                               const p4::ir::ExternDecl*& out) const {
    if (!prog_) return Status::failure("no program loaded");
    if (!handle.valid()) return resolve_extern_decl(handle.name, kind, out);
    if (handle.generation != generation_) {
        return Status::failure("stale extern handle '" + handle.name +
                               "': device image reloaded since resolve");
    }
    for (const p4::ir::ExternDecl& e : prog_->externs) {
        if (e.id != handle.id) continue;
        if (e.kind != kind) {
            return Status::failure("extern '" + handle.name +
                                   "' has the wrong kind");
        }
        out = &e;
        return Status::success();
    }
    return Status::failure("invalid extern handle '" + handle.name + "'");
}

Status SimDevice::resolve_extern_decl(const std::string& name,
                                      p4::ir::ExternDecl::Kind kind,
                                      const p4::ir::ExternDecl*& out) const {
    if (!prog_) return Status::failure("no program loaded");
    const p4::ir::ExternDecl* e = prog_->extern_by_name(name);
    if (!e) return Status::failure("unknown extern '" + name + "'");
    if (e->kind != kind) {
        return Status::failure("extern '" + name + "' has the wrong kind");
    }
    out = e;
    return Status::success();
}

Status SimDevice::translate_entry(const p4::ir::Table& table,
                                  const control::EntrySpec& entry,
                                  dataplane::TableEntry& out) const {
    if (entry.key_values.size() != table.keys.size()) {
        return Status::failure(util::format(
            "table '%s' expects %zu key(s), got %zu", table.name.c_str(),
            table.keys.size(), entry.key_values.size()));
    }
    if (!entry.key_masks.empty() &&
        entry.key_masks.size() != table.keys.size()) {
        return Status::failure(util::format(
            "table '%s': %zu mask(s) for %zu key(s)", table.name.c_str(),
            entry.key_masks.size(), table.keys.size()));
    }
    out = {};
    for (std::size_t i = 0; i < table.keys.size(); ++i) {
        out.key_values.push_back(entry.key_values[i].resize(table.keys[i].width));
        if (!entry.key_masks.empty()) {
            out.key_masks.push_back(entry.key_masks[i].resize(table.keys[i].width));
        }
    }
    out.prefix_len = entry.prefix_len;
    if (table.has_lpm() && out.prefix_len < 0) {
        out.prefix_len = table.keys[0].width;  // exact-as-lpm convenience
    }
    out.priority = entry.priority;

    if (entry.action.empty()) {
        // Key-only spec (delete matches on the key part alone).
        out.action_id = -1;
        return Status::success();
    }
    dataplane::ActionEntry resolved;
    if (Status s = resolve_action(table, entry.action, entry.action_args, resolved);
        !s) {
        return s;
    }
    out.action_id = resolved.action_id;
    out.action_args = std::move(resolved.args);
    return Status::success();
}

Status SimDevice::resolve_action(const p4::ir::Table& table,
                                 const std::string& action,
                                 const std::vector<Bitvec>& args,
                                 dataplane::ActionEntry& out) const {
    const p4::ir::Action* a = prog_->action_by_name(action);
    if (!a) return Status::failure("unknown action '" + action + "'");
    if (std::find(table.actions.begin(), table.actions.end(), a->id) ==
        table.actions.end()) {
        return Status::failure("action '" + action + "' not permitted on table '" +
                               table.name + "'");
    }
    if (args.size() != a->param_widths.size()) {
        return Status::failure(util::format("action '%s' expects %zu arg(s), got %zu",
                                            action.c_str(), a->param_widths.size(),
                                            args.size()));
    }
    out.action_id = a->id;
    out.args.clear();
    for (std::size_t i = 0; i < args.size(); ++i) {
        out.args.push_back(args[i].resize(a->param_widths[i]));
    }
    return Status::success();
}

Status SimDevice::add_entry(const control::TableHandle& table,
                            const control::EntrySpec& entry) {
    const p4::ir::Table* t = nullptr;
    if (Status s = check_table(table, t); !s) return s;
    if (entry.action.empty()) {
        return Status::failure("add_entry requires an action");
    }
    dataplane::TableEntry translated;
    if (Status s = translate_entry(*t, entry, translated); !s) return s;
    const dataplane::InsertStatus result = tables_->insert(t->id, translated);
    if (result != dataplane::InsertStatus::ok) {
        return Status::failure(util::format("insert into '%s' failed: %s",
                                            t->name.c_str(),
                                            dataplane::insert_status_name(result)));
    }
    return Status::success();
}

Status SimDevice::delete_entry(const control::TableHandle& table,
                               const control::EntrySpec& entry) {
    const p4::ir::Table* t = nullptr;
    if (Status s = check_table(table, t); !s) return s;
    dataplane::TableEntry translated;
    if (Status s = translate_entry(*t, entry, translated); !s) return s;
    if (!tables_->erase(t->id, translated)) {
        return Status::failure("no such entry in '" + t->name + "'");
    }
    return Status::success();
}

Status SimDevice::set_default_action(const control::TableHandle& table,
                                     const std::string& action,
                                     const std::vector<Bitvec>& args) {
    const p4::ir::Table* t = nullptr;
    if (Status s = check_table(table, t); !s) return s;
    dataplane::ActionEntry entry;
    if (Status s = resolve_action(*t, action, args, entry); !s) return s;
    tables_->set_default_action(t->id, std::move(entry));
    return Status::success();
}

Status SimDevice::write_register(const control::ExternHandle& ext,
                                 std::uint64_t index, const Bitvec& value) {
    const p4::ir::ExternDecl* e = nullptr;
    if (Status s = check_extern(ext, p4::ir::ExternDecl::Kind::reg, e); !s) {
        return s;
    }
    if (index >= static_cast<std::uint64_t>(e->array_size)) {
        return Status::failure(util::format("register '%s': index %llu out of range",
                                            e->name.c_str(),
                                            static_cast<unsigned long long>(index)));
    }
    stateful_->register_write(e->id, index, value);
    return Status::success();
}

Status SimDevice::read_register(const control::ExternHandle& ext,
                                std::uint64_t index, Bitvec& out) {
    const p4::ir::ExternDecl* e = nullptr;
    if (Status s = check_extern(ext, p4::ir::ExternDecl::Kind::reg, e); !s) {
        return s;
    }
    if (index >= static_cast<std::uint64_t>(e->array_size)) {
        return Status::failure(util::format("register '%s': index %llu out of range",
                                            e->name.c_str(),
                                            static_cast<unsigned long long>(index)));
    }
    out = stateful_->register_read(e->id, index);
    return Status::success();
}

Status SimDevice::add_entry(const std::string& table,
                            const control::EntrySpec& entry) {
    return add_entry(resolve_table(table), entry);
}

Status SimDevice::delete_entry(const std::string& table,
                               const control::EntrySpec& entry) {
    return delete_entry(resolve_table(table), entry);
}

Status SimDevice::set_default_action(const std::string& table,
                                     const std::string& action,
                                     const std::vector<Bitvec>& args) {
    return set_default_action(resolve_table(table), action, args);
}

Status SimDevice::clear_table(const std::string& table) {
    const p4::ir::Table* t = nullptr;
    if (Status s = check_table(resolve_table(table), t); !s) return s;
    tables_->clear(t->id);
    return Status::success();
}

Status SimDevice::write_register(const std::string& name, std::uint64_t index,
                                 const Bitvec& value) {
    return write_register(resolve_extern(name), index, value);
}

Status SimDevice::read_register(const std::string& name, std::uint64_t index,
                                Bitvec& out) {
    return read_register(resolve_extern(name), index, out);
}

Status SimDevice::read_counter(const std::string& name, std::uint64_t index,
                               control::CounterValue& out) {
    const p4::ir::ExternDecl* e = nullptr;
    if (Status s = resolve_extern_decl(name, p4::ir::ExternDecl::Kind::counter, e);
        !s) {
        return s;
    }
    if (index >= static_cast<std::uint64_t>(e->array_size)) {
        return Status::failure(util::format("counter '%s': index %llu out of range",
                                            name.c_str(),
                                            static_cast<unsigned long long>(index)));
    }
    out.packets = stateful_->counter_packets(e->id, index);
    out.bytes = stateful_->counter_bytes(e->id, index);
    return Status::success();
}

Status SimDevice::configure_meter(const std::string& name, std::uint64_t index,
                                  const control::MeterConfig& config) {
    const p4::ir::ExternDecl* e = nullptr;
    if (Status s = resolve_extern_decl(name, p4::ir::ExternDecl::Kind::meter, e);
        !s) {
        return s;
    }
    if (index >= static_cast<std::uint64_t>(e->array_size)) {
        return Status::failure(util::format("meter '%s': index %llu out of range",
                                            name.c_str(),
                                            static_cast<unsigned long long>(index)));
    }
    stateful_->meter_configure(e->id, index, config.committed_rate_bps,
                               config.committed_burst, config.excess_rate_bps,
                               config.excess_burst);
    return Status::success();
}

control::StatusSnapshot SimDevice::snapshot() {
    control::StatusSnapshot snap;
    snap.taken_at_ns = clock_ns_;
    snap.ports = port_counters_;
    snap.misdirected = misdirected_;
    if (pipeline_) snap.stages = pipeline_->counters();
    if (prog_ && tables_) {
        snap.tables.reserve(prog_->tables.size());
        for (const auto& t : prog_->tables) {
            control::TableStatus status;
            status.name = t.name;
            status.hits = tables_->stats(t.id).hits;
            status.misses = tables_->stats(t.id).misses;
            status.entries = tables_->entry_count(t.id);
            status.capacity = tables_->capacity(t.id);
            snap.tables.push_back(std::move(status));
        }
    }
    if (stateful_) {
        for (auto& inf : stateful_->info()) {
            control::ExternStatus status;
            status.name = std::move(inf.name);
            status.kind = std::move(inf.kind);
            status.cells = inf.cells;
            status.state_hash = inf.state_hash;
            status.unconfigured_meters = inf.unconfigured_meters;
            snap.externs.push_back(std::move(status));
        }
    }
    return snap;
}

Status SimDevice::reset_state() {
    clear_dynamic_state();
    if (pipeline_) pipeline_->reset_counters();
    if (tables_) tables_->reset_stats();
    if (stateful_) stateful_->reset_state();
    return Status::success();
}

}  // namespace ndb::target
