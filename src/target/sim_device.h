// Software device model shared by every built-in backend.
//
// One SimDevice is one switch instance: a dataplane::Pipeline plus the
// table/stateful stores behind it, per-port egress queues, port and stage
// counters, a tap ring and a deterministic virtual clock.  Backend identity
// lives entirely in DeviceConfig (name + quirks), so the reference and
// SDNet-like devices are the same machine configured differently -- exactly
// how one vendor toolchain produces differently-buggy images from the same
// source.
#pragma once

#include <memory>
#include <vector>

#include "control/snapshot.h"
#include "dataplane/stateful.h"
#include "dataplane/tables.h"
#include "target/device.h"

namespace ndb::target {

using util::Bitvec;

class SimDevice final : public Device {
public:
    explicit SimDevice(DeviceConfig config);

    // Device.
    control::Status load(const p4::ir::Program& prog) override;
    bool loaded() const override { return pipeline_ != nullptr; }
    const p4::ir::Program& program() const override;
    const DeviceConfig& config() const override { return config_; }
    void inject(packet::Packet pkt) override;
    std::vector<packet::Packet> drain_port(std::uint32_t port) override;
    void drain_port_into(std::uint32_t port,
                         std::vector<packet::Packet>& out) override;
    void set_taps_enabled(bool on) override;
    bool taps_enabled() const override { return taps_enabled_; }
    const std::vector<TapRecord>& tap_records() const override { return taps_; }
    void clear_tap_records() override { taps_.clear(); }
    void set_digests_enabled(bool on) override;
    bool digests_enabled() const override { return digests_enabled_; }
    const std::vector<dataplane::TapDigest>& digest_records() const override {
        return digests_;
    }
    void clear_digest_records() override { digests_.clear(); }
    std::vector<dataplane::TapDigest> take_digest_records() override {
        std::vector<dataplane::TapDigest> out;
        out.swap(digests_);
        return out;
    }
    void set_coverage(coverage::CoverageMap* map) override;
    coverage::CoverageMap* coverage() const override { return coverage_; }
    std::uint64_t coverage_salt() const override { return cov_salt_; }
    void set_engine(dataplane::Engine engine) override;
    dataplane::Engine engine() const override { return config_.engine; }
    std::uint64_t now_ns() const override { return clock_ns_; }

    // control::RuntimeApi -- resolution.  Handles carry the device's image
    // generation; load() bumps it, so handles resolved against a previous
    // image fail loudly instead of addressing whatever reused the id.
    control::TableHandle resolve_table(const std::string& name) override;
    control::ExternHandle resolve_extern(const std::string& name) override;

    // control::RuntimeApi -- handle-addressed (the resolution-free paths).
    control::Status add_entry(const control::TableHandle& table,
                              const control::EntrySpec& entry) override;
    control::Status delete_entry(const control::TableHandle& table,
                                 const control::EntrySpec& entry) override;
    control::Status set_default_action(const control::TableHandle& table,
                                       const std::string& action,
                                       const std::vector<Bitvec>& args) override;
    control::Status write_register(const control::ExternHandle& ext,
                                   std::uint64_t index,
                                   const Bitvec& value) override;
    control::Status read_register(const control::ExternHandle& ext,
                                  std::uint64_t index, Bitvec& out) override;

    // control::RuntimeApi -- string-addressed (resolve-then-delegate shims).
    control::Status add_entry(const std::string& table,
                              const control::EntrySpec& entry) override;
    control::Status delete_entry(const std::string& table,
                                 const control::EntrySpec& entry) override;
    control::Status set_default_action(const std::string& table,
                                       const std::string& action,
                                       const std::vector<Bitvec>& args) override;
    control::Status clear_table(const std::string& table) override;
    control::Status write_register(const std::string& name, std::uint64_t index,
                                   const Bitvec& value) override;
    control::Status read_register(const std::string& name, std::uint64_t index,
                                  Bitvec& out) override;
    control::Status read_counter(const std::string& name, std::uint64_t index,
                                 control::CounterValue& out) override;
    control::Status configure_meter(const std::string& name, std::uint64_t index,
                                    const control::MeterConfig& config) override;
    control::StatusSnapshot snapshot() override;

    // Clears dynamic state (queues, counters, registers, taps) but keeps the
    // loaded image and installed table entries, like a hardware soft-reset.
    control::Status reset_state() override;

private:
    // Validates a table handle (generation + range), falling back to name
    // resolution for handles from backends without id support.
    control::Status check_table(const control::TableHandle& handle,
                                const p4::ir::Table*& out) const;
    // Same for an extern handle, additionally checking the extern kind.
    control::Status check_extern(const control::ExternHandle& handle,
                                 p4::ir::ExternDecl::Kind kind,
                                 const p4::ir::ExternDecl*& out) const;
    // Resolves an extern of the given kind by name.
    control::Status resolve_extern_decl(const std::string& name,
                                        p4::ir::ExternDecl::Kind kind,
                                        const p4::ir::ExternDecl*& out) const;
    // Maps a control-plane EntrySpec onto the table's engine entry.
    control::Status translate_entry(const p4::ir::Table& table,
                                    const control::EntrySpec& entry,
                                    dataplane::TableEntry& out) const;
    // Resolves an action name + args against a table's permitted actions.
    control::Status resolve_action(const p4::ir::Table& table,
                                   const std::string& action,
                                   const std::vector<Bitvec>& args,
                                   dataplane::ActionEntry& out) const;
    // Clears queues, port counters and taps (shared by load and soft reset).
    void clear_dynamic_state();

    DeviceConfig config_;

    std::unique_ptr<p4::ir::Program> prog_;
    std::unique_ptr<dataplane::TableSet> tables_;
    std::unique_ptr<dataplane::StatefulSet> stateful_;
    std::unique_ptr<dataplane::Pipeline> pipeline_;

    // Per-port egress queues: pre-reserved vectors drained by moving the
    // elements out and keeping the capacity, so batched inject/drain rounds
    // stop reallocating.
    std::vector<std::vector<packet::Packet>> egress_queues_;
    std::vector<control::PortCounters> port_counters_;
    std::uint64_t misdirected_ = 0;

    bool taps_enabled_ = false;
    std::vector<TapRecord> taps_;
    bool digests_enabled_ = false;
    std::vector<dataplane::TapDigest> digests_;
    coverage::CoverageMap* coverage_ = nullptr;  // not owned
    // Per-backend coverage salt: fnv(backend name) ^ fnv(quirk signature),
    // folded into every edge the pipeline records.  Two devices tracing the
    // identical path light different slots when they are different
    // backends, which is what lets the campaign scheduler see DUT-side
    // (quirk-divergent) novelty as distinct from reference novelty.
    std::uint64_t cov_salt_ = 0;

    std::uint64_t clock_ns_ = 0;

    // Bumped by every load(): the validity epoch of issued handles.
    std::uint64_t generation_ = 0;
};

}  // namespace ndb::target
