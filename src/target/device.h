// The device layer: what a "real target" looks like to the rest of the
// framework (paper Figure 1).
//
// A target::Device is one switch: it accepts a compiled program image,
// packets on its front-panel ports, and management-plane commands.  It
// exposes the three surfaces the paper's architecture needs:
//
//   * the data path       -- inject() / drain_port(), per-port egress queues;
//   * the management path -- the full control::RuntimeApi (a Device IS a
//                            RuntimeApi, so control::dispatch and therefore
//                            RuntimeClient message traffic work end-to-end --
//                            in-process over control::Channel, or serialized
//                            as control/wire.h frames over a faultable
//                            control/transport.h link, which is how the
//                            multi-process campaign fabric and the
//                            management-plane fuzzing mode drive a device);
//   * the debug path      -- stage taps (tap_records()) that give NetDebug
//                            the internal visibility external testers lack.
//
// Backends differ only in how faithfully they execute P4: the reference
// backend implements the language semantics exactly, the SDNet-like backend
// carries the paper's bug catalogue as a dataplane::Quirks value.  New
// backends register themselves with register_backend() so campaigns and the
// fault localizer (which needs a DUT *and* a golden device) compose without
// touching callers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "control/runtime.h"
#include "dataplane/pipeline.h"
#include "dataplane/quirks.h"
#include "p4/ir.h"
#include "packet/packet.h"

namespace ndb::coverage {
class CoverageMap;
}  // namespace ndb::coverage

namespace ndb::target {

// Static device parameters, fixed for the lifetime of one device instance.
struct DeviceConfig {
    std::string backend;  // filled in by the factory when left empty
    int num_ports = 4;

    // Deterministic virtual clock: now_ns() starts at epoch_ns and advances
    // ns_per_packet per injected packet, so every run of a campaign produces
    // the identical timeline.  Forwarded packets are stamped
    // rx_time + cycles * ns_per_cycle on egress.
    std::uint64_t epoch_ns = 1'000'000;
    std::uint64_t ns_per_packet = 672;  // 84 wire bytes at 1 Gb/s (8 ns/byte)
    std::uint64_t ns_per_cycle = 4;

    // Tap ring size; the oldest half is discarded when it fills, and 0
    // disables recording entirely.
    std::size_t max_tap_records = 4096;

    // Backend behaviour deviations; all-defaults = faithful P4 semantics.
    dataplane::Quirks quirks;

    // Which executor runs the pipeline stages (semantically identical by
    // construction; see src/dataplane/engine.h).
    dataplane::Engine engine = dataplane::default_engine();
};

// One traced packet: the stimulus as injected plus everything the pipeline
// did with it.  Only recorded while taps are enabled.
struct TapRecord {
    packet::Packet input;
    dataplane::PipelineResult result;
};

class Device : public control::RuntimeApi {
public:
    ~Device() override = default;

    // Installs a compiled program.  The device keeps its own copy of the
    // image (callers may discard `prog` immediately); any previously loaded
    // program, its tables and its dynamic state are replaced.
    virtual control::Status load(const p4::ir::Program& prog) = 0;
    virtual bool loaded() const = 0;

    // The installed image.  Throws std::logic_error when nothing is loaded.
    virtual const p4::ir::Program& program() const = 0;

    virtual const DeviceConfig& config() const = 0;

    // --- data path ----------------------------------------------------------
    virtual void inject(packet::Packet pkt) = 0;
    virtual std::vector<packet::Packet> drain_port(std::uint32_t port) = 0;

    // Appends everything pending on `port` to `out` (callers reuse one
    // buffer across batched inject/drain rounds instead of receiving a
    // fresh vector per round).  Backends should override with a move-out
    // implementation; the default adapts drain_port().
    virtual void drain_port_into(std::uint32_t port,
                                 std::vector<packet::Packet>& out) {
        auto drained = drain_port(port);
        out.insert(out.end(), std::make_move_iterator(drained.begin()),
                   std::make_move_iterator(drained.end()));
    }

    // Drains and discards everything pending on every port.
    void flush() {
        for (int port = 0; port < config().num_ports; ++port) {
            drain_port(static_cast<std::uint32_t>(port));
        }
    }

    // --- debug path ---------------------------------------------------------
    // Recording is synchronous: while taps are enabled (and the ring has
    // capacity), every inject() appends its record before returning, so an
    // empty ring right after an injection means this device cannot record.
    // FaultLocalizer relies on this to tell "clean" from "unobservable";
    // backends wrapping asynchronous hardware must buffer until records
    // are available rather than return an empty ring early.
    virtual void set_taps_enabled(bool on) = 0;
    virtual bool taps_enabled() const = 0;
    virtual const std::vector<TapRecord>& tap_records() const = 0;
    virtual void clear_tap_records() = 0;

    // Streaming digest mode: per-packet TapDigest records hashed in place
    // by the pipeline, with the same synchronous-recording contract as the
    // full tap ring but none of the PacketState copies.  This is what the
    // campaign engine's detection loop runs on; full taps remain for
    // replay-based tools (FaultLocalizer).
    virtual void set_digests_enabled(bool on) = 0;
    virtual bool digests_enabled() const = 0;
    virtual const std::vector<dataplane::TapDigest>& digest_records() const = 0;
    virtual void clear_digest_records() = 0;

    // Moves the digest ring out and leaves it empty: the hot-path accessor
    // for consumers that would otherwise copy the records per scenario.
    virtual std::vector<dataplane::TapDigest> take_digest_records() {
        std::vector<dataplane::TapDigest> out = digest_records();
        clear_digest_records();
        return out;
    }

    // Coverage mode: execution-edge events (parser transitions, table
    // hits/misses, action ids, branch edges) stream into `map` while
    // packets flow; nullptr turns instrumentation off.  The setting
    // survives load() on backends that support it.  The default is a no-op
    // so external backends without instrumentation keep compiling; the
    // campaign scheduler treats their (never-written) maps as zero delta.
    virtual void set_coverage(coverage::CoverageMap* /*map*/) {}
    virtual coverage::CoverageMap* coverage() const { return nullptr; }

    // The salt this backend folds into its coverage slot operands (on
    // SimDevice: backend name ^ quirk signature).  coverage::EdgeIndex must
    // be built with the same salt to map slots back to IR sites; the
    // default matches the un-instrumented set_coverage() default above.
    virtual std::uint64_t coverage_salt() const { return 0; }

    // Execution-engine selection, same no-op default contract as
    // set_coverage(): backends that only have one executor ignore it and
    // report Engine::interpreter.  On SimDevice the setting survives load().
    virtual void set_engine(dataplane::Engine /*engine*/) {}
    virtual dataplane::Engine engine() const {
        return dataplane::Engine::interpreter;
    }

    // Deterministic virtual device clock.
    virtual std::uint64_t now_ns() const = 0;

    // The management surface, for callers that want the role spelled out
    // (control::dispatch also accepts the Device itself).
    control::RuntimeApi& runtime() { return *this; }
};

// The paper's bug catalogue for the SDNet-like backend, headed by the
// Section-4 discovery that the parser reject state was never implemented.
dataplane::Quirks sdnet_quirks();

// Faithful P4 semantics: the golden device of every comparison.
std::unique_ptr<Device> make_reference_device(DeviceConfig config = {});

// The vendor backend.  When `config.quirks` is all-defaults the full
// sdnet_quirks() catalogue is applied; a config with any quirk already set
// replaces the catalogue wholesale (use make_device("sdnet", override) for
// the same semantics by name).
std::unique_ptr<Device> make_sdnet_device(DeviceConfig config = {});

// --- backend registry ---------------------------------------------------------

// A factory receives the quirks override requested through make_device();
// std::nullopt means "use the backend's own catalogue".
using DeviceFactory =
    std::function<std::unique_ptr<Device>(std::optional<dataplane::Quirks>)>;

// Registers a backend under `name`; returns false (and changes nothing)
// when the name is already taken.  "reference" and "sdnet" are pre-registered.
bool register_backend(const std::string& name, DeviceFactory factory);

// Names of every registered backend, sorted.
std::vector<std::string> registered_backends();

// Instantiates a backend by name, optionally overriding its quirk catalogue.
// Returns nullptr for an unknown name.
std::unique_ptr<Device> make_device(
    std::string_view name,
    std::optional<dataplane::Quirks> quirks_override = std::nullopt);

}  // namespace ndb::target
