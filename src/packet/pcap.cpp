#include "packet/pcap.h"

#include <cstring>
#include <stdexcept>

namespace ndb::packet {

namespace {

constexpr std::uint32_t kMagic = 0xa1b2c3d4;

struct GlobalHeader {
    std::uint32_t magic;
    std::uint16_t version_major;
    std::uint16_t version_minor;
    std::int32_t thiszone;
    std::uint32_t sigfigs;
    std::uint32_t snaplen;
    std::uint32_t network;  // 1 = LINKTYPE_ETHERNET
};

struct RecordHeader {
    std::uint32_t ts_sec;
    std::uint32_t ts_usec;
    std::uint32_t incl_len;
    std::uint32_t orig_len;
};

}  // namespace

PcapWriter::PcapWriter(const std::string& path) {
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_) throw std::runtime_error("PcapWriter: cannot open " + path);
    const GlobalHeader gh{kMagic, 2, 4, 0, 0, 65535, 1};
    std::fwrite(&gh, sizeof gh, 1, file_);
}

PcapWriter::~PcapWriter() {
    if (file_) std::fclose(file_);
}

void PcapWriter::write(const Packet& p) {
    RecordHeader rh;
    rh.ts_sec = static_cast<std::uint32_t>(p.meta.rx_time_ns / 1'000'000'000ull);
    rh.ts_usec = static_cast<std::uint32_t>(p.meta.rx_time_ns % 1'000'000'000ull / 1000);
    rh.incl_len = static_cast<std::uint32_t>(p.size());
    rh.orig_len = rh.incl_len;
    std::fwrite(&rh, sizeof rh, 1, file_);
    std::fwrite(p.bytes().data(), 1, p.size(), file_);
    ++count_;
}

std::vector<Packet> read_pcap(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) throw std::runtime_error("read_pcap: cannot open " + path);
    const auto closer = std::unique_ptr<std::FILE, int (*)(std::FILE*)>(f, &std::fclose);

    GlobalHeader gh;
    if (std::fread(&gh, sizeof gh, 1, f) != 1) {
        throw std::runtime_error("read_pcap: truncated global header");
    }
    const bool swapped = gh.magic == 0xd4c3b2a1;
    if (!swapped && gh.magic != kMagic) {
        throw std::runtime_error("read_pcap: not a pcap file");
    }
    const auto bswap32 = [](std::uint32_t v) { return __builtin_bswap32(v); };

    std::vector<Packet> out;
    for (;;) {
        RecordHeader rh;
        if (std::fread(&rh, sizeof rh, 1, f) != 1) break;
        if (swapped) {
            rh.ts_sec = bswap32(rh.ts_sec);
            rh.ts_usec = bswap32(rh.ts_usec);
            rh.incl_len = bswap32(rh.incl_len);
            rh.orig_len = bswap32(rh.orig_len);
        }
        std::vector<std::uint8_t> data(rh.incl_len);
        if (rh.incl_len != 0 && std::fread(data.data(), 1, rh.incl_len, f) != rh.incl_len) {
            throw std::runtime_error("read_pcap: truncated record");
        }
        Packet p(std::move(data));
        p.meta.rx_time_ns =
            static_cast<std::uint64_t>(rh.ts_sec) * 1'000'000'000ull +
            static_cast<std::uint64_t>(rh.ts_usec) * 1000ull;
        out.push_back(std::move(p));
    }
    return out;
}

}  // namespace ndb::packet
