// Packet: a byte buffer with bit-granular field access plus device metadata.
//
// Bit addressing follows network order: bit offset 0 is the most significant
// bit of byte 0, matching how P4 header fields map onto the wire.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/bitvec.h"

namespace ndb::packet {

// Metadata carried alongside a packet while it traverses a device model.
struct PacketMeta {
    std::uint32_t ingress_port = 0;
    std::uint32_t egress_port = 0;
    std::uint64_t rx_time_ns = 0;   // when the device accepted the packet
    std::uint64_t tx_time_ns = 0;   // when the device emitted it (0 until sent)
    std::uint64_t id = 0;           // monotonically assigned by generators
};

class Packet {
public:
    Packet() = default;
    explicit Packet(std::vector<std::uint8_t> bytes) : data_(std::move(bytes)) {}
    static Packet zeros(std::size_t n) { return Packet(std::vector<std::uint8_t>(n, 0)); }

    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    std::span<const std::uint8_t> bytes() const { return data_; }
    std::span<std::uint8_t> bytes_mut() { return data_; }
    const std::vector<std::uint8_t>& data() const { return data_; }

    std::uint8_t byte(std::size_t i) const { return data_.at(i); }
    void set_byte(std::size_t i, std::uint8_t v) { data_.at(i) = v; }

    // Reads `width` bits starting at `bit_offset` (network order).
    // Throws std::out_of_range past the end of the buffer.
    util::Bitvec extract_bits(std::size_t bit_offset, int width) const;

    // Writes value.width() bits at `bit_offset`.
    void deposit_bits(std::size_t bit_offset, const util::Bitvec& value);

    // Convenience for fields of <= 64 bits.
    std::uint64_t u(std::size_t bit_offset, int width) const;
    void set_u(std::size_t bit_offset, int width, std::uint64_t value);

    void append(std::span<const std::uint8_t> more);
    void resize(std::size_t n) { data_.resize(n, 0); }

    // Structural equality on bytes only (metadata excluded).
    bool same_bytes(const Packet& o) const { return data_ == o.data_; }

    std::string dump() const;  // hexdump for diagnostics

    PacketMeta meta;

private:
    std::vector<std::uint8_t> data_;
};

}  // namespace ndb::packet
