#include "packet/packet.h"

#include <stdexcept>

#include "util/hex.h"

namespace ndb::packet {

util::Bitvec Packet::extract_bits(std::size_t bit_offset, int width) const {
    if (width < 0) throw std::invalid_argument("extract_bits: negative width");
    if ((bit_offset + static_cast<std::size_t>(width) + 7) / 8 > data_.size() + 0 &&
        bit_offset + static_cast<std::size_t>(width) > data_.size() * 8) {
        throw std::out_of_range("extract_bits: past end of packet");
    }
    util::Bitvec v(width);
    for (int i = 0; i < width; ++i) {
        const std::size_t pos = bit_offset + static_cast<std::size_t>(i);
        const std::uint8_t byte = data_[pos / 8];
        const bool bit = (byte >> (7 - pos % 8)) & 1;
        // Wire bit i (MSB-first) is value bit (width-1-i).
        if (bit) v.set_bit(width - 1 - i, true);
    }
    return v;
}

void Packet::deposit_bits(std::size_t bit_offset, const util::Bitvec& value) {
    const int width = value.width();
    if (bit_offset + static_cast<std::size_t>(width) > data_.size() * 8) {
        throw std::out_of_range("deposit_bits: past end of packet");
    }
    for (int i = 0; i < width; ++i) {
        const std::size_t pos = bit_offset + static_cast<std::size_t>(i);
        const std::uint8_t mask = static_cast<std::uint8_t>(1u << (7 - pos % 8));
        if (value.bit(width - 1 - i)) {
            data_[pos / 8] |= mask;
        } else {
            data_[pos / 8] &= static_cast<std::uint8_t>(~mask);
        }
    }
}

std::uint64_t Packet::u(std::size_t bit_offset, int width) const {
    if (width > 64) throw std::invalid_argument("u: width > 64");
    return extract_bits(bit_offset, width).to_u64();
}

void Packet::set_u(std::size_t bit_offset, int width, std::uint64_t value) {
    if (width > 64) throw std::invalid_argument("set_u: width > 64");
    deposit_bits(bit_offset, util::Bitvec(width, value));
}

void Packet::append(std::span<const std::uint8_t> more) {
    data_.insert(data_.end(), more.begin(), more.end());
}

std::string Packet::dump() const { return util::hex_dump(data_); }

}  // namespace ndb::packet
