#include "packet/packet.h"

#include <stdexcept>

#include "util/hex.h"

namespace ndb::packet {

util::Bitvec Packet::extract_bits(std::size_t bit_offset, int width) const {
    if (width < 0) throw std::invalid_argument("extract_bits: negative width");
    const std::size_t end = bit_offset + static_cast<std::size_t>(width);
    if (end > data_.size() * 8) {
        throw std::out_of_range("extract_bits: past end of packet");
    }
    if (width <= 64) {
        // Fast path: gather the covering bytes big-endian, then shift the
        // value (ending at wire bit `end`) down into place.
        const std::size_t first = bit_offset / 8;
        const std::size_t last = (end + 7) / 8;  // exclusive
        unsigned __int128 acc = 0;
        for (std::size_t i = first; i < last; ++i) {
            acc = (acc << 8) | data_[i];
        }
        acc >>= 8 * last - end;
        return util::Bitvec(width, static_cast<std::uint64_t>(acc));
    }
    util::Bitvec v(width);
    for (int i = 0; i < width; ++i) {
        const std::size_t pos = bit_offset + static_cast<std::size_t>(i);
        const std::uint8_t byte = data_[pos / 8];
        const bool bit = (byte >> (7 - pos % 8)) & 1;
        // Wire bit i (MSB-first) is value bit (width-1-i).
        if (bit) v.set_bit(width - 1 - i, true);
    }
    return v;
}

void Packet::deposit_bits(std::size_t bit_offset, const util::Bitvec& value) {
    const int width = value.width();
    const std::size_t end = bit_offset + static_cast<std::size_t>(width);
    if (end > data_.size() * 8) {
        throw std::out_of_range("deposit_bits: past end of packet");
    }
    if (width > 0 && width <= 64) {
        // Fast path: read the covering bytes, splice the value in, write back.
        const std::size_t first = bit_offset / 8;
        const std::size_t last = (end + 7) / 8;  // exclusive
        unsigned __int128 acc = 0;
        for (std::size_t i = first; i < last; ++i) {
            acc = (acc << 8) | data_[i];
        }
        const unsigned shift = static_cast<unsigned>(8 * last - end);
        const unsigned __int128 mask =
            ((width >= 64 ? ~static_cast<unsigned __int128>(0) >> 64
                          : static_cast<unsigned __int128>((1ull << width) - 1)))
            << shift;
        acc = (acc & ~mask) |
              ((static_cast<unsigned __int128>(value.to_u64()) << shift) & mask);
        for (std::size_t i = last; i-- > first;) {
            data_[i] = static_cast<std::uint8_t>(acc);
            acc >>= 8;
        }
        return;
    }
    for (int i = 0; i < width; ++i) {
        const std::size_t pos = bit_offset + static_cast<std::size_t>(i);
        const std::uint8_t mask = static_cast<std::uint8_t>(1u << (7 - pos % 8));
        if (value.bit(width - 1 - i)) {
            data_[pos / 8] |= mask;
        } else {
            data_[pos / 8] &= static_cast<std::uint8_t>(~mask);
        }
    }
}

std::uint64_t Packet::u(std::size_t bit_offset, int width) const {
    if (width > 64) throw std::invalid_argument("u: width > 64");
    return extract_bits(bit_offset, width).to_u64();
}

void Packet::set_u(std::size_t bit_offset, int width, std::uint64_t value) {
    if (width > 64) throw std::invalid_argument("set_u: width > 64");
    deposit_bits(bit_offset, util::Bitvec(width, value));
}

void Packet::append(std::span<const std::uint8_t> more) {
    data_.insert(data_.end(), more.begin(), more.end());
}

std::string Packet::dump() const { return util::hex_dump(data_); }

}  // namespace ndb::packet
