// Protocol header definitions, builders and a decoder.
//
// These model the concrete wire formats the examples, workload generators
// and the external-tester substrate speak.  The P4 data plane itself never
// uses these structs: it works from the header layouts in the P4 program,
// which is exactly the separation the paper's framework relies on (the
// checker compares what the *program* should do with what the *device* did).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "packet/packet.h"

namespace ndb::packet {

using Mac = std::array<std::uint8_t, 6>;

Mac mac_from_string(std::string_view text);    // "aa:bb:cc:dd:ee:ff"
std::string mac_to_string(const Mac& mac);
std::uint32_t ipv4_from_string(std::string_view text);  // "10.0.0.1"
std::string ipv4_to_string(std::uint32_t addr);

inline constexpr std::uint16_t kEthertypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEthertypeArp = 0x0806;
inline constexpr std::uint16_t kEthertypeVlan = 0x8100;
inline constexpr std::uint16_t kEthertypeIpv6 = 0x86DD;

inline constexpr std::uint8_t kIpProtoIcmp = 1;
inline constexpr std::uint8_t kIpProtoTcp = 6;
inline constexpr std::uint8_t kIpProtoUdp = 17;

struct EthernetHeader {
    static constexpr std::size_t kSize = 14;
    Mac dst{};
    Mac src{};
    std::uint16_t ethertype = 0;

    void write(Packet& p, std::size_t offset) const;
    static EthernetHeader read(const Packet& p, std::size_t offset);
};

struct VlanTag {
    static constexpr std::size_t kSize = 4;
    std::uint8_t pcp = 0;    // 3 bits
    bool dei = false;
    std::uint16_t vid = 0;   // 12 bits
    std::uint16_t ethertype = 0;

    void write(Packet& p, std::size_t offset) const;
    static VlanTag read(const Packet& p, std::size_t offset);
};

struct Ipv4Header {
    static constexpr std::size_t kSize = 20;  // no options in this model
    std::uint8_t version = 4;
    std::uint8_t ihl = 5;
    std::uint8_t dscp = 0;
    std::uint8_t ecn = 0;
    std::uint16_t total_len = 0;
    std::uint16_t identification = 0;
    std::uint8_t flags = 0;       // 3 bits
    std::uint16_t frag_offset = 0;
    std::uint8_t ttl = 64;
    std::uint8_t protocol = 0;
    std::uint16_t checksum = 0;
    std::uint32_t src = 0;
    std::uint32_t dst = 0;

    void write(Packet& p, std::size_t offset) const;
    static Ipv4Header read(const Packet& p, std::size_t offset);
    // Checksum over the 20 header bytes as currently laid out in `p`.
    static std::uint16_t compute_checksum(const Packet& p, std::size_t offset);
};

struct Ipv6Header {
    static constexpr std::size_t kSize = 40;
    std::uint8_t version = 6;
    std::uint8_t traffic_class = 0;
    std::uint32_t flow_label = 0;  // 20 bits
    std::uint16_t payload_len = 0;
    std::uint8_t next_header = 0;
    std::uint8_t hop_limit = 64;
    std::array<std::uint8_t, 16> src{};
    std::array<std::uint8_t, 16> dst{};

    void write(Packet& p, std::size_t offset) const;
    static Ipv6Header read(const Packet& p, std::size_t offset);
};

struct UdpHeader {
    static constexpr std::size_t kSize = 8;
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    std::uint16_t length = 0;
    std::uint16_t checksum = 0;

    void write(Packet& p, std::size_t offset) const;
    static UdpHeader read(const Packet& p, std::size_t offset);
};

struct TcpHeader {
    static constexpr std::size_t kSize = 20;  // no options
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    std::uint32_t seq = 0;
    std::uint32_t ack = 0;
    std::uint8_t data_offset = 5;
    std::uint8_t flags = 0;
    std::uint16_t window = 0;
    std::uint16_t checksum = 0;
    std::uint16_t urgent = 0;

    void write(Packet& p, std::size_t offset) const;
    static TcpHeader read(const Packet& p, std::size_t offset);
};

struct IcmpHeader {
    static constexpr std::size_t kSize = 8;
    std::uint8_t type = 8;   // echo request
    std::uint8_t code = 0;
    std::uint16_t checksum = 0;
    std::uint16_t identifier = 0;
    std::uint16_t sequence = 0;

    void write(Packet& p, std::size_t offset) const;
    static IcmpHeader read(const Packet& p, std::size_t offset);
};

struct ArpMessage {
    static constexpr std::size_t kSize = 28;
    std::uint16_t opcode = 1;  // 1 request, 2 reply
    Mac sender_mac{};
    std::uint32_t sender_ip = 0;
    Mac target_mac{};
    std::uint32_t target_ip = 0;

    void write(Packet& p, std::size_t offset) const;
    static ArpMessage read(const Packet& p, std::size_t offset);
};

// Fluent builder that stacks headers, then fixes lengths and checksums.
//
//   Packet p = PacketBuilder()
//       .ethernet(dst_mac, src_mac)
//       .ipv4("10.0.0.1", "10.0.0.2", kIpProtoUdp)
//       .udp(1234, 4321)
//       .payload_size(64)
//       .build();
class PacketBuilder {
public:
    PacketBuilder& ethernet(const Mac& dst, const Mac& src);
    PacketBuilder& vlan(std::uint16_t vid, std::uint8_t pcp = 0);
    PacketBuilder& ipv4(std::string_view src, std::string_view dst,
                        std::uint8_t protocol, std::uint8_t ttl = 64);
    PacketBuilder& ipv4_raw(std::uint32_t src, std::uint32_t dst,
                            std::uint8_t protocol, std::uint8_t ttl = 64);
    PacketBuilder& ipv6(const std::array<std::uint8_t, 16>& src,
                        const std::array<std::uint8_t, 16>& dst,
                        std::uint8_t next_header, std::uint8_t hop_limit = 64);
    PacketBuilder& udp(std::uint16_t src_port, std::uint16_t dst_port);
    PacketBuilder& tcp(std::uint16_t src_port, std::uint16_t dst_port,
                       std::uint32_t seq = 0, std::uint8_t flags = 0x02);
    PacketBuilder& icmp_echo(std::uint16_t identifier, std::uint16_t sequence);
    PacketBuilder& arp(const ArpMessage& msg);
    PacketBuilder& payload(std::span<const std::uint8_t> bytes);
    PacketBuilder& payload_size(std::size_t n, std::uint8_t fill = 0);

    // Lays out every header, patches lengths, then computes checksums.
    Packet build() const;

private:
    struct Layer {
        enum class Kind { ethernet, vlan, ipv4, ipv6, udp, tcp, icmp, arp } kind;
        EthernetHeader eth;
        VlanTag vlan;
        Ipv4Header ip4;
        Ipv6Header ip6;
        UdpHeader udp;
        TcpHeader tcp;
        IcmpHeader icmp;
        ArpMessage arp;
    };
    std::vector<Layer> layers_;
    std::vector<std::uint8_t> payload_;
};

// Best-effort decode of a packet into its header stack; fields the decoder
// cannot reach (truncated packet) are left unset.
struct Decoded {
    std::optional<EthernetHeader> eth;
    std::vector<VlanTag> vlans;
    std::optional<Ipv4Header> ipv4;
    std::optional<Ipv6Header> ipv6;
    std::optional<UdpHeader> udp;
    std::optional<TcpHeader> tcp;
    std::optional<IcmpHeader> icmp;
    std::optional<ArpMessage> arp;
    std::size_t payload_offset = 0;

    std::string summary() const;
};

Decoded decode(const Packet& p);

}  // namespace ndb::packet
