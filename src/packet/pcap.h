// Minimal pcap (libpcap classic format) writer/reader so failing test
// campaigns can be inspected with standard tools.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "packet/packet.h"

namespace ndb::packet {

class PcapWriter {
public:
    // Opens (truncates) `path` and writes the global header.
    // Throws std::runtime_error if the file cannot be opened.
    explicit PcapWriter(const std::string& path);
    ~PcapWriter();
    PcapWriter(const PcapWriter&) = delete;
    PcapWriter& operator=(const PcapWriter&) = delete;

    // Records the packet with its rx timestamp (ns resolution truncated to us).
    void write(const Packet& p);
    std::size_t packets_written() const { return count_; }

private:
    std::FILE* file_ = nullptr;
    std::size_t count_ = 0;
};

// Reads every record of a classic pcap file (both endiannesses).
// Timestamps land in Packet::meta.rx_time_ns.
std::vector<Packet> read_pcap(const std::string& path);

}  // namespace ndb::packet
