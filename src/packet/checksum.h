// Checksums used by the protocol builders and the data-plane checksum unit.
#pragma once

#include <cstdint>
#include <span>

namespace ndb::packet {

// RFC 1071 Internet checksum over an arbitrary byte span.
// Returns the final complemented 16-bit checksum in host order.
std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes);

// Ones-complement sum without the final complement, for composing the
// TCP/UDP pseudo-header with the payload.
std::uint32_t ones_complement_sum(std::span<const std::uint8_t> bytes,
                                  std::uint32_t initial = 0);

// Folds a 32-bit ones-complement accumulator to 16 bits and complements it.
std::uint16_t fold_checksum(std::uint32_t sum);

// Incremental update per RFC 1624: recompute a checksum after a 16-bit word
// at some even offset changed from `old_word` to `new_word`.
std::uint16_t incremental_checksum_update(std::uint16_t old_checksum,
                                          std::uint16_t old_word,
                                          std::uint16_t new_word);

// IEEE 802.3 CRC32 (reflected, polynomial 0xEDB88320).
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

}  // namespace ndb::packet
