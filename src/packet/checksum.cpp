#include "packet/checksum.h"

#include <array>

namespace ndb::packet {

std::uint32_t ones_complement_sum(std::span<const std::uint8_t> bytes,
                                  std::uint32_t initial) {
    std::uint32_t sum = initial;
    std::size_t i = 0;
    for (; i + 1 < bytes.size(); i += 2) {
        sum += (static_cast<std::uint32_t>(bytes[i]) << 8) | bytes[i + 1];
    }
    if (i < bytes.size()) {
        sum += static_cast<std::uint32_t>(bytes[i]) << 8;  // pad odd byte with 0
    }
    return sum;
}

std::uint16_t fold_checksum(std::uint32_t sum) {
    while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
    return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes) {
    return fold_checksum(ones_complement_sum(bytes));
}

std::uint16_t incremental_checksum_update(std::uint16_t old_checksum,
                                          std::uint16_t old_word,
                                          std::uint16_t new_word) {
    // RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m')
    std::uint32_t sum = static_cast<std::uint16_t>(~old_checksum);
    sum += static_cast<std::uint16_t>(~old_word);
    sum += new_word;
    while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
    return static_cast<std::uint16_t>(~sum & 0xffff);
}

namespace {
std::array<std::uint32_t, 256> make_crc_table() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t n = 0; n < 256; ++n) {
        std::uint32_t c = n;
        for (int k = 0; k < 8; ++k) {
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        }
        table[n] = c;
    }
    return table;
}
}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
    static const auto table = make_crc_table();
    std::uint32_t c = 0xFFFFFFFFu;
    for (const auto b : bytes) {
        c = table[(c ^ b) & 0xFF] ^ (c >> 8);
    }
    return c ^ 0xFFFFFFFFu;
}

}  // namespace ndb::packet
