#include "packet/protocols.h"

#include <stdexcept>

#include "packet/checksum.h"
#include "util/strings.h"

namespace ndb::packet {

Mac mac_from_string(std::string_view text) {
    const auto parts = util::split(text, ':');
    if (parts.size() != 6) throw std::invalid_argument("bad MAC: " + std::string(text));
    Mac mac{};
    for (int i = 0; i < 6; ++i) {
        mac[i] = static_cast<std::uint8_t>(std::stoul(parts[i], nullptr, 16));
    }
    return mac;
}

std::string mac_to_string(const Mac& mac) {
    return util::format("%02x:%02x:%02x:%02x:%02x:%02x", mac[0], mac[1], mac[2],
                        mac[3], mac[4], mac[5]);
}

std::uint32_t ipv4_from_string(std::string_view text) {
    const auto parts = util::split(text, '.');
    if (parts.size() != 4) throw std::invalid_argument("bad IPv4: " + std::string(text));
    std::uint32_t addr = 0;
    for (const auto& part : parts) {
        const unsigned long v = std::stoul(part);
        if (v > 255) throw std::invalid_argument("bad IPv4 octet: " + part);
        addr = (addr << 8) | static_cast<std::uint32_t>(v);
    }
    return addr;
}

std::string ipv4_to_string(std::uint32_t addr) {
    return util::format("%u.%u.%u.%u", addr >> 24, (addr >> 16) & 0xff,
                        (addr >> 8) & 0xff, addr & 0xff);
}

// --- header encode/decode -------------------------------------------------

void EthernetHeader::write(Packet& p, std::size_t offset) const {
    for (int i = 0; i < 6; ++i) p.set_byte(offset + i, dst[i]);
    for (int i = 0; i < 6; ++i) p.set_byte(offset + 6 + i, src[i]);
    p.set_u((offset + 12) * 8, 16, ethertype);
}

EthernetHeader EthernetHeader::read(const Packet& p, std::size_t offset) {
    EthernetHeader h;
    for (int i = 0; i < 6; ++i) h.dst[i] = p.byte(offset + i);
    for (int i = 0; i < 6; ++i) h.src[i] = p.byte(offset + 6 + i);
    h.ethertype = static_cast<std::uint16_t>(p.u((offset + 12) * 8, 16));
    return h;
}

void VlanTag::write(Packet& p, std::size_t offset) const {
    p.set_u(offset * 8, 3, pcp);
    p.set_u(offset * 8 + 3, 1, dei ? 1 : 0);
    p.set_u(offset * 8 + 4, 12, vid);
    p.set_u((offset + 2) * 8, 16, ethertype);
}

VlanTag VlanTag::read(const Packet& p, std::size_t offset) {
    VlanTag t;
    t.pcp = static_cast<std::uint8_t>(p.u(offset * 8, 3));
    t.dei = p.u(offset * 8 + 3, 1) != 0;
    t.vid = static_cast<std::uint16_t>(p.u(offset * 8 + 4, 12));
    t.ethertype = static_cast<std::uint16_t>(p.u((offset + 2) * 8, 16));
    return t;
}

void Ipv4Header::write(Packet& p, std::size_t offset) const {
    const std::size_t b = offset * 8;
    p.set_u(b, 4, version);
    p.set_u(b + 4, 4, ihl);
    p.set_u(b + 8, 6, dscp);
    p.set_u(b + 14, 2, ecn);
    p.set_u(b + 16, 16, total_len);
    p.set_u(b + 32, 16, identification);
    p.set_u(b + 48, 3, flags);
    p.set_u(b + 51, 13, frag_offset);
    p.set_u(b + 64, 8, ttl);
    p.set_u(b + 72, 8, protocol);
    p.set_u(b + 80, 16, checksum);
    p.set_u(b + 96, 32, src);
    p.set_u(b + 128, 32, dst);
}

Ipv4Header Ipv4Header::read(const Packet& p, std::size_t offset) {
    const std::size_t b = offset * 8;
    Ipv4Header h;
    h.version = static_cast<std::uint8_t>(p.u(b, 4));
    h.ihl = static_cast<std::uint8_t>(p.u(b + 4, 4));
    h.dscp = static_cast<std::uint8_t>(p.u(b + 8, 6));
    h.ecn = static_cast<std::uint8_t>(p.u(b + 14, 2));
    h.total_len = static_cast<std::uint16_t>(p.u(b + 16, 16));
    h.identification = static_cast<std::uint16_t>(p.u(b + 32, 16));
    h.flags = static_cast<std::uint8_t>(p.u(b + 48, 3));
    h.frag_offset = static_cast<std::uint16_t>(p.u(b + 51, 13));
    h.ttl = static_cast<std::uint8_t>(p.u(b + 64, 8));
    h.protocol = static_cast<std::uint8_t>(p.u(b + 72, 8));
    h.checksum = static_cast<std::uint16_t>(p.u(b + 80, 16));
    h.src = static_cast<std::uint32_t>(p.u(b + 96, 32));
    h.dst = static_cast<std::uint32_t>(p.u(b + 128, 32));
    return h;
}

std::uint16_t Ipv4Header::compute_checksum(const Packet& p, std::size_t offset) {
    // Checksum field (bytes 10-11) counts as zero during computation.
    std::vector<std::uint8_t> hdr(p.bytes().begin() + static_cast<long>(offset),
                                  p.bytes().begin() + static_cast<long>(offset + kSize));
    hdr[10] = 0;
    hdr[11] = 0;
    return internet_checksum(hdr);
}

void Ipv6Header::write(Packet& p, std::size_t offset) const {
    const std::size_t b = offset * 8;
    p.set_u(b, 4, version);
    p.set_u(b + 4, 8, traffic_class);
    p.set_u(b + 12, 20, flow_label);
    p.set_u(b + 32, 16, payload_len);
    p.set_u(b + 48, 8, next_header);
    p.set_u(b + 56, 8, hop_limit);
    for (int i = 0; i < 16; ++i) p.set_byte(offset + 8 + i, src[i]);
    for (int i = 0; i < 16; ++i) p.set_byte(offset + 24 + i, dst[i]);
}

Ipv6Header Ipv6Header::read(const Packet& p, std::size_t offset) {
    const std::size_t b = offset * 8;
    Ipv6Header h;
    h.version = static_cast<std::uint8_t>(p.u(b, 4));
    h.traffic_class = static_cast<std::uint8_t>(p.u(b + 4, 8));
    h.flow_label = static_cast<std::uint32_t>(p.u(b + 12, 20));
    h.payload_len = static_cast<std::uint16_t>(p.u(b + 32, 16));
    h.next_header = static_cast<std::uint8_t>(p.u(b + 48, 8));
    h.hop_limit = static_cast<std::uint8_t>(p.u(b + 56, 8));
    for (int i = 0; i < 16; ++i) h.src[i] = p.byte(offset + 8 + i);
    for (int i = 0; i < 16; ++i) h.dst[i] = p.byte(offset + 24 + i);
    return h;
}

void UdpHeader::write(Packet& p, std::size_t offset) const {
    const std::size_t b = offset * 8;
    p.set_u(b, 16, src_port);
    p.set_u(b + 16, 16, dst_port);
    p.set_u(b + 32, 16, length);
    p.set_u(b + 48, 16, checksum);
}

UdpHeader UdpHeader::read(const Packet& p, std::size_t offset) {
    const std::size_t b = offset * 8;
    UdpHeader h;
    h.src_port = static_cast<std::uint16_t>(p.u(b, 16));
    h.dst_port = static_cast<std::uint16_t>(p.u(b + 16, 16));
    h.length = static_cast<std::uint16_t>(p.u(b + 32, 16));
    h.checksum = static_cast<std::uint16_t>(p.u(b + 48, 16));
    return h;
}

void TcpHeader::write(Packet& p, std::size_t offset) const {
    const std::size_t b = offset * 8;
    p.set_u(b, 16, src_port);
    p.set_u(b + 16, 16, dst_port);
    p.set_u(b + 32, 32, seq);
    p.set_u(b + 64, 32, ack);
    p.set_u(b + 96, 4, data_offset);
    p.set_u(b + 100, 4, 0);  // reserved
    p.set_u(b + 104, 8, flags);
    p.set_u(b + 112, 16, window);
    p.set_u(b + 128, 16, checksum);
    p.set_u(b + 144, 16, urgent);
}

TcpHeader TcpHeader::read(const Packet& p, std::size_t offset) {
    const std::size_t b = offset * 8;
    TcpHeader h;
    h.src_port = static_cast<std::uint16_t>(p.u(b, 16));
    h.dst_port = static_cast<std::uint16_t>(p.u(b + 16, 16));
    h.seq = static_cast<std::uint32_t>(p.u(b + 32, 32));
    h.ack = static_cast<std::uint32_t>(p.u(b + 64, 32));
    h.data_offset = static_cast<std::uint8_t>(p.u(b + 96, 4));
    h.flags = static_cast<std::uint8_t>(p.u(b + 104, 8));
    h.window = static_cast<std::uint16_t>(p.u(b + 112, 16));
    h.checksum = static_cast<std::uint16_t>(p.u(b + 128, 16));
    h.urgent = static_cast<std::uint16_t>(p.u(b + 144, 16));
    return h;
}

void IcmpHeader::write(Packet& p, std::size_t offset) const {
    const std::size_t b = offset * 8;
    p.set_u(b, 8, type);
    p.set_u(b + 8, 8, code);
    p.set_u(b + 16, 16, checksum);
    p.set_u(b + 32, 16, identifier);
    p.set_u(b + 48, 16, sequence);
}

IcmpHeader IcmpHeader::read(const Packet& p, std::size_t offset) {
    const std::size_t b = offset * 8;
    IcmpHeader h;
    h.type = static_cast<std::uint8_t>(p.u(b, 8));
    h.code = static_cast<std::uint8_t>(p.u(b + 8, 8));
    h.checksum = static_cast<std::uint16_t>(p.u(b + 16, 16));
    h.identifier = static_cast<std::uint16_t>(p.u(b + 32, 16));
    h.sequence = static_cast<std::uint16_t>(p.u(b + 48, 16));
    return h;
}

void ArpMessage::write(Packet& p, std::size_t offset) const {
    const std::size_t b = offset * 8;
    p.set_u(b, 16, 1);        // htype ethernet
    p.set_u(b + 16, 16, kEthertypeIpv4);
    p.set_u(b + 32, 8, 6);    // hlen
    p.set_u(b + 40, 8, 4);    // plen
    p.set_u(b + 48, 16, opcode);
    for (int i = 0; i < 6; ++i) p.set_byte(offset + 8 + i, sender_mac[i]);
    p.set_u((offset + 14) * 8, 32, sender_ip);
    for (int i = 0; i < 6; ++i) p.set_byte(offset + 18 + i, target_mac[i]);
    p.set_u((offset + 24) * 8, 32, target_ip);
}

ArpMessage ArpMessage::read(const Packet& p, std::size_t offset) {
    ArpMessage m;
    m.opcode = static_cast<std::uint16_t>(p.u((offset + 6) * 8, 16));
    for (int i = 0; i < 6; ++i) m.sender_mac[i] = p.byte(offset + 8 + i);
    m.sender_ip = static_cast<std::uint32_t>(p.u((offset + 14) * 8, 32));
    for (int i = 0; i < 6; ++i) m.target_mac[i] = p.byte(offset + 18 + i);
    m.target_ip = static_cast<std::uint32_t>(p.u((offset + 24) * 8, 32));
    return m;
}

// --- builder ----------------------------------------------------------------

PacketBuilder& PacketBuilder::ethernet(const Mac& dst, const Mac& src) {
    Layer l{};
    l.kind = Layer::Kind::ethernet;
    l.eth.dst = dst;
    l.eth.src = src;
    layers_.push_back(l);
    return *this;
}

PacketBuilder& PacketBuilder::vlan(std::uint16_t vid, std::uint8_t pcp) {
    Layer l{};
    l.kind = Layer::Kind::vlan;
    l.vlan.vid = vid;
    l.vlan.pcp = pcp;
    layers_.push_back(l);
    return *this;
}

PacketBuilder& PacketBuilder::ipv4(std::string_view src, std::string_view dst,
                                   std::uint8_t protocol, std::uint8_t ttl) {
    return ipv4_raw(ipv4_from_string(src), ipv4_from_string(dst), protocol, ttl);
}

PacketBuilder& PacketBuilder::ipv4_raw(std::uint32_t src, std::uint32_t dst,
                                       std::uint8_t protocol, std::uint8_t ttl) {
    Layer l{};
    l.kind = Layer::Kind::ipv4;
    l.ip4.src = src;
    l.ip4.dst = dst;
    l.ip4.protocol = protocol;
    l.ip4.ttl = ttl;
    layers_.push_back(l);
    return *this;
}

PacketBuilder& PacketBuilder::ipv6(const std::array<std::uint8_t, 16>& src,
                                   const std::array<std::uint8_t, 16>& dst,
                                   std::uint8_t next_header, std::uint8_t hop_limit) {
    Layer l{};
    l.kind = Layer::Kind::ipv6;
    l.ip6.src = src;
    l.ip6.dst = dst;
    l.ip6.next_header = next_header;
    l.ip6.hop_limit = hop_limit;
    layers_.push_back(l);
    return *this;
}

PacketBuilder& PacketBuilder::udp(std::uint16_t src_port, std::uint16_t dst_port) {
    Layer l{};
    l.kind = Layer::Kind::udp;
    l.udp.src_port = src_port;
    l.udp.dst_port = dst_port;
    layers_.push_back(l);
    return *this;
}

PacketBuilder& PacketBuilder::tcp(std::uint16_t src_port, std::uint16_t dst_port,
                                  std::uint32_t seq, std::uint8_t flags) {
    Layer l{};
    l.kind = Layer::Kind::tcp;
    l.tcp.src_port = src_port;
    l.tcp.dst_port = dst_port;
    l.tcp.seq = seq;
    l.tcp.flags = flags;
    layers_.push_back(l);
    return *this;
}

PacketBuilder& PacketBuilder::icmp_echo(std::uint16_t identifier, std::uint16_t sequence) {
    Layer l{};
    l.kind = Layer::Kind::icmp;
    l.icmp.identifier = identifier;
    l.icmp.sequence = sequence;
    layers_.push_back(l);
    return *this;
}

PacketBuilder& PacketBuilder::arp(const ArpMessage& msg) {
    Layer l{};
    l.kind = Layer::Kind::arp;
    l.arp = msg;
    layers_.push_back(l);
    return *this;
}

PacketBuilder& PacketBuilder::payload(std::span<const std::uint8_t> bytes) {
    payload_.assign(bytes.begin(), bytes.end());
    return *this;
}

PacketBuilder& PacketBuilder::payload_size(std::size_t n, std::uint8_t fill) {
    payload_.assign(n, fill);
    return *this;
}

Packet PacketBuilder::build() const {
    // First pass: total size and per-layer offsets.
    std::size_t size = 0;
    std::vector<std::size_t> offsets;
    offsets.reserve(layers_.size());
    for (const auto& l : layers_) {
        offsets.push_back(size);
        switch (l.kind) {
            case Layer::Kind::ethernet: size += EthernetHeader::kSize; break;
            case Layer::Kind::vlan: size += VlanTag::kSize; break;
            case Layer::Kind::ipv4: size += Ipv4Header::kSize; break;
            case Layer::Kind::ipv6: size += Ipv6Header::kSize; break;
            case Layer::Kind::udp: size += UdpHeader::kSize; break;
            case Layer::Kind::tcp: size += TcpHeader::kSize; break;
            case Layer::Kind::icmp: size += IcmpHeader::kSize; break;
            case Layer::Kind::arp: size += ArpMessage::kSize; break;
        }
    }
    const std::size_t payload_offset = size;
    size += payload_.size();
    Packet p = Packet::zeros(size);
    for (std::size_t i = 0; i < payload_.size(); ++i) {
        p.set_byte(payload_offset + i, payload_[i]);
    }

    // Second pass: write headers, chaining ethertype / protocol defaults.
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        Layer l = layers_[i];
        const bool has_next = i + 1 < layers_.size();
        const auto next_kind = has_next ? layers_[i + 1].kind : Layer::Kind::ethernet;
        const auto ethertype_of = [](Layer::Kind k) -> std::uint16_t {
            switch (k) {
                case Layer::Kind::vlan: return kEthertypeVlan;
                case Layer::Kind::ipv4: return kEthertypeIpv4;
                case Layer::Kind::ipv6: return kEthertypeIpv6;
                case Layer::Kind::arp: return kEthertypeArp;
                default: return 0xFFFF;
            }
        };
        switch (l.kind) {
            case Layer::Kind::ethernet:
                if (l.eth.ethertype == 0 && has_next) l.eth.ethertype = ethertype_of(next_kind);
                l.eth.write(p, offsets[i]);
                break;
            case Layer::Kind::vlan:
                if (l.vlan.ethertype == 0 && has_next) l.vlan.ethertype = ethertype_of(next_kind);
                l.vlan.write(p, offsets[i]);
                break;
            case Layer::Kind::ipv4: {
                l.ip4.total_len = static_cast<std::uint16_t>(size - offsets[i]);
                if (has_next && l.ip4.protocol == 0) {
                    if (next_kind == Layer::Kind::udp) l.ip4.protocol = kIpProtoUdp;
                    if (next_kind == Layer::Kind::tcp) l.ip4.protocol = kIpProtoTcp;
                    if (next_kind == Layer::Kind::icmp) l.ip4.protocol = kIpProtoIcmp;
                }
                l.ip4.write(p, offsets[i]);
                const std::uint16_t csum = Ipv4Header::compute_checksum(p, offsets[i]);
                p.set_u((offsets[i] + 10) * 8, 16, csum);
                break;
            }
            case Layer::Kind::ipv6:
                l.ip6.payload_len = static_cast<std::uint16_t>(size - offsets[i] - Ipv6Header::kSize);
                l.ip6.write(p, offsets[i]);
                break;
            case Layer::Kind::udp:
                l.udp.length = static_cast<std::uint16_t>(size - offsets[i]);
                l.udp.write(p, offsets[i]);
                break;
            case Layer::Kind::tcp:
                l.tcp.write(p, offsets[i]);
                break;
            case Layer::Kind::icmp: {
                l.icmp.write(p, offsets[i]);
                // Checksum over ICMP header + payload with the field zeroed.
                std::vector<std::uint8_t> region(p.bytes().begin() + static_cast<long>(offsets[i]),
                                                 p.bytes().end());
                region[2] = 0;
                region[3] = 0;
                p.set_u((offsets[i] + 2) * 8, 16, internet_checksum(region));
                break;
            }
            case Layer::Kind::arp:
                l.arp.write(p, offsets[i]);
                break;
        }
    }
    return p;
}

// --- decoder ----------------------------------------------------------------

Decoded decode(const Packet& p) {
    Decoded d;
    std::size_t off = 0;
    if (p.size() < off + EthernetHeader::kSize) return d;
    d.eth = EthernetHeader::read(p, off);
    off += EthernetHeader::kSize;
    std::uint16_t ethertype = d.eth->ethertype;
    while (ethertype == kEthertypeVlan && p.size() >= off + VlanTag::kSize) {
        d.vlans.push_back(VlanTag::read(p, off));
        ethertype = d.vlans.back().ethertype;
        off += VlanTag::kSize;
    }
    if (ethertype == kEthertypeArp && p.size() >= off + ArpMessage::kSize) {
        d.arp = ArpMessage::read(p, off);
        off += ArpMessage::kSize;
    } else if (ethertype == kEthertypeIpv4 && p.size() >= off + Ipv4Header::kSize) {
        d.ipv4 = Ipv4Header::read(p, off);
        off += Ipv4Header::kSize;
        switch (d.ipv4->protocol) {
            case kIpProtoUdp:
                if (p.size() >= off + UdpHeader::kSize) {
                    d.udp = UdpHeader::read(p, off);
                    off += UdpHeader::kSize;
                }
                break;
            case kIpProtoTcp:
                if (p.size() >= off + TcpHeader::kSize) {
                    d.tcp = TcpHeader::read(p, off);
                    off += TcpHeader::kSize;
                }
                break;
            case kIpProtoIcmp:
                if (p.size() >= off + IcmpHeader::kSize) {
                    d.icmp = IcmpHeader::read(p, off);
                    off += IcmpHeader::kSize;
                }
                break;
            default:
                break;
        }
    } else if (ethertype == kEthertypeIpv6 && p.size() >= off + Ipv6Header::kSize) {
        d.ipv6 = Ipv6Header::read(p, off);
        off += Ipv6Header::kSize;
        if (d.ipv6->next_header == kIpProtoUdp && p.size() >= off + UdpHeader::kSize) {
            d.udp = UdpHeader::read(p, off);
            off += UdpHeader::kSize;
        } else if (d.ipv6->next_header == kIpProtoTcp && p.size() >= off + TcpHeader::kSize) {
            d.tcp = TcpHeader::read(p, off);
            off += TcpHeader::kSize;
        }
    }
    d.payload_offset = off;
    return d;
}

std::string Decoded::summary() const {
    std::string s;
    if (eth) {
        s += "eth " + mac_to_string(eth->src) + " > " + mac_to_string(eth->dst);
    }
    for (const auto& v : vlans) s += util::format(" vlan %u", v.vid);
    if (arp) s += util::format(" arp op=%u", arp->opcode);
    if (ipv4) {
        s += " ipv4 " + ipv4_to_string(ipv4->src) + " > " + ipv4_to_string(ipv4->dst) +
             util::format(" ttl=%u proto=%u", ipv4->ttl, ipv4->protocol);
    }
    if (ipv6) s += " ipv6";
    if (udp) s += util::format(" udp %u > %u", udp->src_port, udp->dst_port);
    if (tcp) s += util::format(" tcp %u > %u", tcp->src_port, tcp->dst_port);
    if (icmp) s += util::format(" icmp type=%u", icmp->type);
    return s;
}

}  // namespace ndb::packet
