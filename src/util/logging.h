// Minimal leveled logger.
//
// Kept deliberately small: a global level, a sink the tests can redirect,
// and a stream-style macro-free API.  Components pass a short tag so device
// traces can be filtered in test output.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace ndb::util {

enum class LogLevel { trace = 0, debug = 1, info = 2, warn = 3, error = 4, off = 5 };

const char* log_level_name(LogLevel level);

// Process-wide log configuration.  Thread-safe: campaign workers log from
// pool threads while tests reconfigure level and sink from the main thread.
// The level is an atomic (so the enabled() fast path stays lock-free) and
// the sink is swapped behind a shared_ptr -- a writer mid-call keeps the
// sink it started with even if another thread replaces it.
class Logger {
public:
    using Sink = std::function<void(LogLevel, std::string_view tag, std::string_view msg)>;

    static Logger& instance();

    void set_level(LogLevel level) {
        level_.store(level, std::memory_order_relaxed);
    }
    LogLevel level() const { return level_.load(std::memory_order_relaxed); }

    // Replaces the sink; pass nullptr to restore stderr output.
    void set_sink(Sink sink);

    bool enabled(LogLevel level) const { return level >= this->level(); }
    void write(LogLevel level, std::string_view tag, std::string_view msg);

private:
    Logger();
    std::atomic<LogLevel> level_{LogLevel::warn};
    mutable std::mutex sink_mutex_;
    std::shared_ptr<const Sink> sink_;
};

// Builds one log line; emits on destruction.
class LogLine {
public:
    LogLine(LogLevel level, std::string_view tag) : level_(level), tag_(tag) {}
    ~LogLine() {
        if (Logger::instance().enabled(level_)) {
            Logger::instance().write(level_, tag_, out_.str());
        }
    }
    LogLine(const LogLine&) = delete;
    LogLine& operator=(const LogLine&) = delete;

    template <typename T>
    LogLine& operator<<(const T& v) {
        if (Logger::instance().enabled(level_)) out_ << v;
        return *this;
    }

private:
    LogLevel level_;
    std::string tag_;
    std::ostringstream out_;
};

inline LogLine log_trace(std::string_view tag) { return {LogLevel::trace, tag}; }
inline LogLine log_debug(std::string_view tag) { return {LogLevel::debug, tag}; }
inline LogLine log_info(std::string_view tag) { return {LogLevel::info, tag}; }
inline LogLine log_warn(std::string_view tag) { return {LogLevel::warn, tag}; }
inline LogLine log_error(std::string_view tag) { return {LogLevel::error, tag}; }

}  // namespace ndb::util
