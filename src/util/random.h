// Deterministic PRNG for workload generation and property tests.
//
// xoshiro256** seeded via SplitMix64.  Deterministic across platforms so
// benchmark workloads and failing property-test seeds are reproducible.
#pragma once

#include <cstdint>

namespace ndb::util {

class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
        // SplitMix64 expansion of the seed into the xoshiro state.
        std::uint64_t x = seed;
        for (auto& slot : s_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            slot = z ^ (z >> 31);
        }
    }

    std::uint64_t next_u64() {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    // Uniform in [0, bound); bound must be nonzero.
    std::uint64_t next_below(std::uint64_t bound) {
        // Rejection sampling to avoid modulo bias.
        const std::uint64_t threshold = -bound % bound;
        for (;;) {
            const std::uint64_t r = next_u64();
            if (r >= threshold) return r % bound;
        }
    }

    // Uniform in [lo, hi] inclusive.
    std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi) {
        return lo + next_below(hi - lo + 1);
    }

    bool next_bool(double p_true = 0.5) {
        return next_double() < p_true;
    }

    double next_double() {
        return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    }

private:
    static std::uint64_t rotl(std::uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }
    std::uint64_t s_[4];
};

}  // namespace ndb::util
